// E9 — Design ablations (DESIGN.md §4): why the paper's constants and module
// composition are what they are. Each ablation keeps correctness (BackUp is
// parameter-agnostic) and measures the cost of deviating.
//
//   D1  timer period cmax = 41m      — sweep the multiplier
//   D2  nonce width Φ = ⌈(2/3)lg m⌉  — wider/narrower nonces
//   D3  level cap lmax = 5m          — lottery overflow probability
//   D4  module composition           — disable QuickElimination/Tournament
//   D5  knowledge parameter m        — underestimate log2 n
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "core/engine.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/thread_pool.hpp"
#include "protocols/pll.hpp"

namespace {

using namespace ppsim;

struct AblationOutcome {
    RunningStats parallel_time;
    std::size_t failures = 0;
};

AblationOutcome run_config(const PllConfig& cfg, std::size_t n, std::size_t reps,
                           std::uint64_t seed, double budget_factor = 4000.0) {
    AblationOutcome outcome;
    std::vector<double> times(reps, -1.0);
    const auto budget = static_cast<StepCount>(
        budget_factor * static_cast<double>(n) * std::log2(static_cast<double>(n)));
    ThreadPool::parallel_for(reps, 0, [&](std::size_t rep) {
        Engine<Pll> engine(Pll(cfg), n, derive_seed(seed, rep));
        const RunResult r = engine.run_until_one_leader(budget);
        if (r.converged && r.stabilization_step) {
            times[rep] = r.stabilization_parallel_time(n);
        }
    });
    for (const double t : times) {
        if (t >= 0.0) {
            outcome.parallel_time.add(t);
        } else {
            ++outcome.failures;
        }
    }
    return outcome;
}

std::string cell(const AblationOutcome& o) {
    if (o.parallel_time.count() == 0) return "all failed";
    std::string s = format_with_ci(o.parallel_time.mean(), o.parallel_time.ci_half_width());
    if (o.failures > 0) s += " (" + std::to_string(o.failures) + " failed)";
    return s;
}

}  // namespace

int main() {
    const unsigned scale = repro_scale();
    const std::size_t n = 1024;
    const std::size_t reps = 24 * scale;
    const PllConfig base = PllConfig::for_population(n);

    std::cout << "== E9: design ablations (n = " << n << ", m = " << base.m << ", "
              << reps << " runs each) ==\n\n";

    // --- D1: timer period --------------------------------------------------
    TextTable d1;
    d1.add_column("cmax multiplier");
    d1.add_column("cmax");
    d1.add_column("stabilisation time (par.)");
    for (const unsigned mult : {11U, 21U, 41U, 61U}) {
        PllConfig cfg = base;
        cfg.cmax_multiplier = mult;
        d1.add_row({std::to_string(mult), std::to_string(cfg.cmax()),
                    cell(run_config(cfg, n, reps, 0xD1))});
    }
    std::cout << d1.render("D1: timer period cmax = mult*m (paper: 41)") << "\n"
              << "Shorter periods speed every epoch but shrink the safety margin\n"
              << "of Lemma 6's P1 (epochs may tick before epidemics finish);\n"
              << "longer periods pay proportionally more time per epoch.\n\n";

    // --- D2: nonce width -----------------------------------------------------
    TextTable d2;
    d2.add_column("phi");
    d2.add_column("nonce values");
    d2.add_column("stabilisation time (par.)");
    for (const unsigned phi : {1U, 2U, 3U, 5U, 8U}) {
        PllConfig cfg = base;
        cfg.phi_override = phi;
        d2.add_row({std::to_string(cfg.phi()), std::to_string(1U << cfg.phi()),
                    cell(run_config(cfg, n, reps, 0xD2))});
    }
    std::cout << d2.render("D2: Tournament nonce width (paper: ceil(2/3*lg m) = " +
                           std::to_string(base.phi()) + ")")
              << "\n"
              << "Narrow nonces collide (ties fall through to BackUp's slow path);\n"
              << "wide nonces waste states — the 2/3 exponent balances the two\n"
              << "Tournament epochs against the state budget of Lemma 3.\n\n";

    // --- D3: level cap ----------------------------------------------------------
    TextTable d3;
    d3.add_column("lmax multiplier");
    d3.add_column("lmax");
    d3.add_column("stabilisation time (par.)");
    for (const unsigned mult : {1U, 2U, 5U, 8U}) {
        PllConfig cfg = base;
        cfg.lmax_multiplier = mult;
        d3.add_row({std::to_string(mult), std::to_string(cfg.lmax()),
                    cell(run_config(cfg, n, reps, 0xD3))});
    }
    std::cout << d3.render("D3: level cap lmax = mult*m (paper: 5)") << "\n"
              << "levelQ exceeds c*lg n with probability n^-c: small caps distort\n"
              << "the lottery (capped agents tie) and stall BackUp's level climb;\n"
              << "5m makes both events n^-5-rare while costing only states.\n\n";

    // --- D4: module composition ---------------------------------------------------
    TextTable d4;
    d4.add_column("configuration", Align::left);
    d4.add_column("stabilisation time (par.)");
    {
        PllConfig cfg = base;
        d4.add_row({"full PLL (QE + T + BackUp)", cell(run_config(cfg, n, reps, 0xD4))});
        cfg.enable_tournament = false;
        d4.add_row({"no Tournament", cell(run_config(cfg, n, reps, 0xD4, 8000.0))});
        cfg.enable_tournament = true;
        cfg.enable_quick_elimination = false;
        d4.add_row({"no QuickElimination", cell(run_config(cfg, n, reps, 0xD4))});
        cfg.enable_tournament = false;
        d4.add_row({"BackUp only", cell(run_config(cfg, n, reps, 0xD4, 16000.0))});
    }
    std::cout << d4.render("D4: module composition") << "\n"
              << "QE leaves >= i survivors with prob <= 2^(1-i) in one epoch;\n"
              << "Tournament finishes the job with prob 1-O(1/log n); BackUp alone\n"
              << "is correct but pays Theta(log^2 n) — the composition is what\n"
              << "brings the expectation down to O(log n).\n\n";

    // --- D5: knowledge parameter -----------------------------------------------------
    TextTable d5;
    d5.add_column("m");
    d5.add_column("valid (m >= log2 n)?", Align::left);
    d5.add_column("stabilisation time (par.)");
    for (const unsigned m : {4U, 6U, 10U, 20U}) {
        PllConfig cfg = base;
        cfg.m = m;
        const bool valid = static_cast<double>(m) >= std::log2(static_cast<double>(n));
        d5.add_row({std::to_string(m), valid ? "yes" : "no (undersized)",
                    cell(run_config(cfg, n, reps, 0xD5, 8000.0))});
    }
    std::cout << d5.render("D5: knowledge parameter m (paper: m >= log2 n = 10)") << "\n"
              << "Undersized m shortens timers below the epidemic horizon, so the\n"
              << "fast path desynchronises and BackUp (still correct) carries more\n"
              << "of the load; oversized m slows every epoch linearly in m.\n";
    return 0;
}
