// Scaling benchmarks for the count-based BatchedEngine vs the agent-based
// Engine: interactions/second as a function of population size, per
// protocol. The batched engine's per-interaction cost *falls* with n
// (batches are Θ(√n) interactions amortising Θ(#live states) sampling
// work), so the curves cross: the agent engine wins while its population
// array is cache-resident, the batched engine wins beyond — by orders of
// magnitude at n ≥ 2^24, which is exactly the regime where the paper's
// Θ(log n) trend separates from the alternatives.
#include <benchmark/benchmark.h>

#include "core/batched_engine.hpp"
#include "core/engine.hpp"
#include "protocols/angluin.hpp"
#include "protocols/loose.hpp"
#include "protocols/lottery.hpp"
#include "protocols/pll.hpp"

namespace {

using namespace ppsim;

// Each benchmark iteration advances a persistent engine by a fixed chunk of
// interactions, so the reported items/s is interactions/s mid-run (not
// engine construction, and not the converged fixed point only).
constexpr StepCount chunk = 1 << 14;

template <typename P>
void run_batched(benchmark::State& state, P proto) {
    const auto n = static_cast<std::size_t>(state.range(0));
    BatchedEngine<P> engine(std::move(proto), n, 42);
    StepCount done = 0;
    for (auto _ : state) {
        const StepCount before = engine.steps();
        benchmark::DoNotOptimize(engine.run_for(chunk));
        done += engine.steps() - before;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(done));
}

template <typename P>
void run_agent(benchmark::State& state, P proto) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Engine<P> engine(std::move(proto), n, 42);
    StepCount done = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run_for(chunk));
        done += chunk;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(done));
}

void BM_BatchedAngluin(benchmark::State& state) { run_batched(state, Angluin{}); }
// Up to n = 10^8: the regime the ISSUE targets. The count representation is
// O(#states), so memory stays trivial where the agent engine would need
// gigabytes.
BENCHMARK(BM_BatchedAngluin)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 20)
    ->Arg(1 << 24)
    ->Arg(100'000'000);

void BM_AgentAngluin(benchmark::State& state) { run_agent(state, Angluin{}); }
BENCHMARK(BM_AgentAngluin)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 20)->Arg(1 << 24);

void BM_BatchedLottery(benchmark::State& state) {
    run_batched(state, Lottery::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_BatchedLottery)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 20)
    ->Arg(1 << 24)
    ->Arg(100'000'000);

void BM_AgentLottery(benchmark::State& state) {
    run_agent(state, Lottery::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_AgentLottery)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 20)->Arg(1 << 24);

void BM_BatchedLoose(benchmark::State& state) {
    run_batched(state,
                LooselyStabilizing::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_BatchedLoose)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 20)->Arg(1 << 24);

void BM_AgentLoose(benchmark::State& state) {
    run_agent(state,
              LooselyStabilizing::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_AgentLoose)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 20)->Arg(1 << 24);

void BM_BatchedPll(benchmark::State& state) {
    run_batched(state, Pll::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_BatchedPll)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 20)->Arg(1 << 24);

void BM_AgentPll(benchmark::State& state) {
    run_agent(state, Pll::for_population(static_cast<std::size_t>(state.range(0))));
}
// 2^24 PLL agents are a 256 MB population — still benchable, and the cache
// cliff it demonstrates is the point of the comparison.
BENCHMARK(BM_AgentPll)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 20)->Arg(1 << 24);

// Full elections, end to end: the batched engine makes large-n elections
// routine. (The agent-engine counterpart at this size is bench_scaling's
// job and takes minutes per election.)
void BM_BatchedPllElection(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::uint64_t seed = 7;
    for (auto _ : state) {
        BatchedEngine<Pll> engine(Pll::for_population(n), n, seed++);
        const RunResult r = engine.run_until_one_leader(
            static_cast<StepCount>(static_cast<double>(n) * 4000.0 * 20.0));
        benchmark::DoNotOptimize(r.converged);
    }
}
BENCHMARK(BM_BatchedPllElection)->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
