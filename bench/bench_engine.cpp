// E10 — engine microbenchmarks (google-benchmark): interactions per second
// for each protocol, scheduler overhead, and the epidemic substrate. These
// calibrate how large an n the reproduction can afford.
#include <benchmark/benchmark.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/scheduler.hpp"
#include "protocols/angluin.hpp"
#include "protocols/epidemic.hpp"
#include "protocols/lottery.hpp"
#include "protocols/mst.hpp"
#include "protocols/pll.hpp"
#include "protocols/pll_symmetric.hpp"
#include "protocols/rated.hpp"

namespace {

using namespace ppsim;

void BM_SchedulerNext(benchmark::State& state) {
    UniformScheduler scheduler(static_cast<std::size_t>(state.range(0)), 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheduler.next());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SchedulerNext)->Arg(1024)->Arg(1 << 16);

// Baseline for the scheduler's single-draw fast path: the original two-draw
// pair sampler (one uniform_below per agent), inlined here for comparison.
void BM_SchedulerNextTwoDraw(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    for (auto _ : state) {
        const auto a = static_cast<AgentId>(uniform_below(rng, n));
        auto b = static_cast<AgentId>(uniform_below(rng, n - 1));
        if (b >= a) ++b;
        benchmark::DoNotOptimize(Interaction{a, b});
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SchedulerNextTwoDraw)->Arg(1024)->Arg(1 << 16);

template <typename P>
void run_steps(benchmark::State& state, P proto) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Engine<P> engine(std::move(proto), n, 42);
    for (auto _ : state) {
        engine.step();
        benchmark::DoNotOptimize(engine.leader_count());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_StepAngluin(benchmark::State& state) { run_steps(state, Angluin{}); }
BENCHMARK(BM_StepAngluin)->Arg(1024)->Arg(1 << 14);

void BM_StepLottery(benchmark::State& state) {
    run_steps(state, Lottery::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_StepLottery)->Arg(1024)->Arg(1 << 14);

void BM_StepMst(benchmark::State& state) {
    run_steps(state, MstStyle::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_StepMst)->Arg(1024)->Arg(1 << 14);

void BM_StepPll(benchmark::State& state) {
    run_steps(state, Pll::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_StepPll)->Arg(1024)->Arg(1 << 14)->Arg(1 << 17);

void BM_StepPllSymmetric(benchmark::State& state) {
    run_steps(state,
              SymmetricPll::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_StepPllSymmetric)->Arg(1024)->Arg(1 << 14);

// Rate-annotated rows: the per-step cost of rejection thinning on the agent
// engine (one rate evaluation + at most one uniform draw per scheduled
// pair) against the unrated rows above. rated_epidemic's mean firing
// probability falls toward 1/4 as the population settles slow; the
// rated_election bulk idles at 1/9, so most steps are thinned nulls.
void BM_StepRatedEpidemic(benchmark::State& state) { run_steps(state, RatedEpidemic{}); }
BENCHMARK(BM_StepRatedEpidemic)->Arg(1024)->Arg(1 << 14);

void BM_StepRatedElection(benchmark::State& state) {
    run_steps(state,
              TwoRateElection::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_StepRatedElection)->Arg(1024)->Arg(1 << 14);

void BM_FullPllElection(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::uint64_t seed = 7;
    for (auto _ : state) {
        Engine<Pll> engine(Pll::for_population(n), n, seed++);
        const RunResult r = engine.run_until_one_leader(
            static_cast<StepCount>(4000.0 * static_cast<double>(n) *
                                   std::log2(static_cast<double>(n))));
        benchmark::DoNotOptimize(r.converged);
    }
}
BENCHMARK(BM_FullPllElection)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_EpidemicApply(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto proc = EpidemicProcess::prefix_subpopulation(n, n);
    UniformScheduler scheduler(n, 3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(proc.apply(scheduler.next()));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EpidemicApply)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
