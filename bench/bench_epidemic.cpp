// E6 — Lemma 2 as a figure: one-way epidemic completion time in a
// sub-population V′ ⊆ V, against the tail bound
// Pr[I(2⌈n/n′⌉·t) ≠ V′] ≤ n·e^{−t/n}.
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "protocols/epidemic.hpp"

namespace {
using namespace ppsim;
}

int main() {
    const unsigned scale = repro_scale();
    const std::size_t n = 4096;
    const std::size_t reps = 200 * scale;

    std::cout << "== E6: Lemma 2 — one-way epidemic completion in sub-populations ==\n"
              << "(n = " << n << ", " << reps << " runs per sub-population size)\n\n";

    TextTable table;
    table.add_column("n'/n", Align::left);
    table.add_column("mean steps");
    table.add_column("p95 steps");
    table.add_column("max steps");
    table.add_column("bound horizon (t=n ln 2n)");
    table.add_column("P(exceed horizon)");
    table.add_column("bound says <=");

    for (const unsigned denom : {1U, 2U, 4U, 8U}) {
        const std::size_t n_prime = n / denom;
        SampleSet steps_sample;
        std::uint64_t exceeded = 0;
        // Horizon from the lemma with t = n·ln(2n): failure ≤ n·e^{−t/n} = 1/2.
        // We report against the much tighter empirical spread.
        const double t = static_cast<double>(n) * std::log(2.0 * n);
        const double horizon = 2.0 * std::ceil(static_cast<double>(n) / n_prime) * t;
        for (std::size_t rep = 0; rep < reps; ++rep) {
            auto proc = EpidemicProcess::prefix_subpopulation(n, n_prime);
            const StepCount used = proc.run_to_completion(
                derive_seed(0xEA1D, rep + denom * 100000ULL),
                static_cast<StepCount>(horizon) * 50);
            steps_sample.add(static_cast<double>(used));
            if (static_cast<double>(used) > horizon) ++exceeded;
        }
        auto proc = EpidemicProcess::prefix_subpopulation(n, n_prime);
        table.add_row({
            "1/" + std::to_string(denom),
            format_double(steps_sample.mean(), 0),
            format_double(steps_sample.percentile(95.0), 0),
            format_double(steps_sample.max(), 0),
            format_double(horizon, 0),
            format_probability(static_cast<double>(exceeded) / static_cast<double>(reps)),
            format_probability(
                proc.lemma2_failure_bound(static_cast<StepCount>(horizon))),
        });
    }
    std::cout << table.render("epidemic completion (interactions)") << "\n";

    // Scaling in n at fixed n'/n = 1: completion should track Θ(n·log n).
    TextTable growth;
    growth.add_column("n");
    growth.add_column("mean steps");
    growth.add_column("mean / (n ln n)");
    for (const std::size_t size : std::vector<std::size_t>{256, 1024, 4096, 16384}) {
        RunningStats stats;
        for (std::size_t rep = 0; rep < reps / 2 + 1; ++rep) {
            auto proc = EpidemicProcess::prefix_subpopulation(size, size);
            stats.add(static_cast<double>(proc.run_to_completion(
                derive_seed(0xEA1E, rep + size), 1'000'000'000ULL)));
        }
        growth.add_row({std::to_string(size), format_double(stats.mean(), 0),
                        format_double(stats.mean() / (static_cast<double>(size) *
                                                      std::log(static_cast<double>(size))),
                                      3)});
    }
    std::cout << growth.render("whole-population epidemic growth (expectation is (n-1)*H_{n-1} ~ n ln n)")
              << "\n";

    std::cout << "Reading guide: Lemma 2 is reproduced if no (or almost no) run\n"
              << "exceeds the bound horizon — the bound is loose by design — and\n"
              << "the whole-population completion tracks ~n ln n interactions (the\n"
              << "exact expectation is (n-1)*H_{n-1}; [Ang+06]'s Theta(n log n)).\n";
    return 0;
}
