// Pairing-layer crossover benchmarks (google-benchmark): batched-engine
// throughput under each BatchMode (auto = 0, pairwise = 1, bulk = 2 — the
// enum values of src/core/batch_pairing.hpp) across population sizes, per
// protocol. These locate the pairwise↔bulk crossover that the `auto`
// heuristic encodes: bulk (contingency-table) pairing wins once the batch
// length Θ(√n) outgrows the sampled distinct-state-pair count, pairwise wins
// for high-entropy profiles (many live states, e.g. mst18_style's nonces).
// `tools/bench_to_json` commits the same comparison to BENCH_engine.json.
#include <benchmark/benchmark.h>

#include "core/batched_engine.hpp"
#include "protocols/angluin.hpp"
#include "protocols/loose.hpp"
#include "protocols/lottery.hpp"
#include "protocols/pll.hpp"

namespace {

using namespace ppsim;

/// Runs 16n mid-election interactions per iteration on a fresh engine under
/// the BatchMode given by the second benchmark argument — the same
/// fixed-work window as `tools/bench_to_json`, so the two benches agree on
/// what "crossover" means.
template <typename P>
void run_modes(benchmark::State& state, P proto) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto mode = static_cast<BatchMode>(state.range(1));
    const auto steps = static_cast<StepCount>(16) * n;
    std::uint64_t seed = 17;
    for (auto _ : state) {
        BatchedEngine<P> engine(proto, n, seed++, mode);
        const RunResult r = engine.run_for(steps);
        benchmark::DoNotOptimize(r.steps);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(steps));
}

void BM_PairingAngluin(benchmark::State& state) {
    run_modes(state, Angluin{});
}
BENCHMARK(BM_PairingAngluin)
    ->ArgsProduct({{1 << 14, 1 << 17, 1 << 20}, {0, 1, 2}})
    ->ArgNames({"n", "mode"});

void BM_PairingLottery(benchmark::State& state) {
    run_modes(state, Lottery::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_PairingLottery)
    ->ArgsProduct({{1 << 14, 1 << 17, 1 << 20}, {0, 1, 2}})
    ->ArgNames({"n", "mode"});

void BM_PairingLoose(benchmark::State& state) {
    run_modes(state, LooselyStabilizing::for_population(
                         static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_PairingLoose)
    ->ArgsProduct({{1 << 14, 1 << 17, 1 << 20}, {0, 1, 2}})
    ->ArgNames({"n", "mode"});

void BM_PairingPll(benchmark::State& state) {
    run_modes(state, Pll::for_population(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_PairingPll)
    ->ArgsProduct({{1 << 14, 1 << 17, 1 << 20}, {0, 1, 2}})
    ->ArgNames({"n", "mode"});

/// The contingency sampler primitive itself: one multivariate hypergeometric
/// draw of k items over m colours, the per-row cost unit of bulk pairing.
void BM_MultivariateHypergeometric(benchmark::State& state) {
    const auto m = static_cast<std::size_t>(state.range(0));
    const auto draws = static_cast<std::uint64_t>(state.range(1));
    std::vector<std::uint64_t> counts(m, 1000);
    std::vector<std::uint64_t> out(m, 0);
    Rng gen(42);
    for (auto _ : state) {
        multivariate_hypergeometric(gen, counts.data(), m, draws, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MultivariateHypergeometric)
    ->ArgsProduct({{4, 32, 256}, {1, 64, 1024}})
    ->ArgNames({"colours", "draws"});

}  // namespace

BENCHMARK_MAIN();
