// E5 — Lemma 7 as a figure: the distribution of the number of leaders
// surviving QuickElimination, measured at the lemma's own horizon of
// ⌊21·n·ln n⌋ interactions, against the geometric bound P(|VL| = i) ≤ 2^{1−i}.
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/estimators.hpp"
#include "analysis/report.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"

namespace {
using namespace ppsim;
}

int main() {
    const unsigned scale = repro_scale();
    const std::size_t runs = 600 * scale;

    std::cout << "== E5: Lemma 7 — QuickElimination survivor distribution ==\n"
              << "(" << runs << " seeded runs per n, inspected at floor(21*n*ln n) "
              << "interactions)\n\n";

    for (const std::size_t n : std::vector<std::size_t>{256, 1024, 4096}) {
        const SurvivorDistribution dist = survivor_distribution(n, runs, 0xE5 + n, 0);

        TextTable table;
        table.add_column("survivors i");
        table.add_column("runs");
        table.add_column("empirical P");
        table.add_column("bound 2^(1-i)");
        table.add_column("within bound?");
        bool shape_ok = true;
        const std::uint64_t top = std::max<std::uint64_t>(dist.counts.max_key(), 6);
        for (std::uint64_t i = 1; i <= top; ++i) {
            const double p = dist.counts.fraction(i);
            const double bound = std::pow(2.0, 1.0 - static_cast<double>(i));
            // i = 1 has no bound (it is the good outcome); for i ≥ 2 allow
            // three binomial standard deviations of slack, and never let a
            // single run flip the verdict (a one-count cell in the deep tail
            // is expected somewhere in a 600-run sweep).
            const double slack = std::max(
                3.0 * std::sqrt(bound * (1.0 - bound) / static_cast<double>(runs)),
                2.0 / static_cast<double>(runs));
            const bool ok = i == 1 || p <= bound + slack;
            shape_ok = shape_ok && ok;
            table.add_row({std::to_string(i), std::to_string(dist.counts.count(i)),
                           format_probability(p),
                           i == 1 ? "-" : format_probability(bound),
                           i == 1 ? "-" : (ok ? "yes" : "NO")});
        }
        std::cout << table.render("n = " + std::to_string(n)) << "\n";
        std::cout << "whp side conditions violated (epoch/cap/agreement): "
                  << dist.epoch_violations << "/" << dist.cap_violations << "/"
                  << dist.agreement_violations << " of " << runs << " runs\n"
                  << "geometric bound respected: " << (shape_ok ? "YES" : "NO") << "\n\n";
    }

    std::cout << "Reading guide: Lemma 7 is reproduced if the i >= 2 rows sit at or\n"
              << "below 2^(1-i) (within sampling noise) and the side conditions are\n"
              << "rare — they fail with probability O(1/n) by Lemmas 5-6.\n";
    return 0;
}
