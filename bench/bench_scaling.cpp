// E4 — Theorem 1 as a figure: expected stabilisation time of PLL versus n,
// against the baselines. This is the paper's headline claim — O(log n)
// expected parallel time with O(log n) states — rendered as the time-vs-n
// series a figure would plot.
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "core/json.hpp"
#include "core/plot.hpp"
#include "core/table.hpp"

namespace {
using namespace ppsim;
}

int main() {
    const unsigned scale = repro_scale();
    const std::size_t reps = 200 * scale;

    std::cout << "== E4: Theorem 1 — stabilisation time vs n (the 'figure') ==\n"
              << "(mean parallel time over " << reps << " runs; pll should track\n"
              << "a*log2(n)+b while angluin06 grows linearly)\n\n";

    std::vector<std::size_t> fast_sizes{64, 128, 256, 512, 1024, 2048, 4096};
    if (scale > 1) {
        fast_sizes.push_back(8192);
        fast_sizes.push_back(16384);
    }
    const std::vector<std::size_t> slow_sizes{64, 128, 256, 512};

    std::vector<SweepResult> sweeps;
    for (const char* name : {"pll", "pll_symmetric", "mst18_style"}) {
        SweepConfig cfg;
        cfg.protocol = name;
        cfg.sizes = fast_sizes;
        cfg.repetitions = reps;
        cfg.seed = 0x5CA11;
        cfg.budget = [](std::size_t n) { return StepBudget::n_log_n(n, 3000.0); };
        sweeps.push_back(run_sweep(cfg));
    }
    {
        SweepConfig cfg;
        cfg.protocol = "angluin06";
        cfg.sizes = slow_sizes;
        cfg.repetitions = reps;
        cfg.seed = 0x5CA11;
        cfg.budget = [](std::size_t n) { return StepBudget::n_squared(n, 80.0); };
        sweeps.push_back(run_sweep(cfg));
    }

    std::cout << render_comparison_table(sweeps, "mean stabilisation time (parallel)")
              << "\n";

    // The "figure": time vs n on a log2 x-axis.
    AsciiPlot plot;
    plot.set_title("stabilisation time vs n (mean parallel time)");
    plot.set_x_label("n");
    plot.set_y_label("parallel time");
    plot.set_log2_x(true);
    const char glyphs[] = {'p', 's', 'm', 'a'};
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        PlotSeries series;
        series.name = sweeps[i].protocol;
        series.glyph = glyphs[i % sizeof glyphs];
        for (const SweepPoint& point : sweeps[i].points) {
            if (point.parallel_time.count() == 0) continue;
            series.x.push_back(static_cast<double>(point.n));
            series.y.push_back(point.parallel_time.mean());
        }
        plot.add_series(std::move(series));
    }
    std::cout << plot.render() << "\n";

    TextTable fits;
    fits.add_column("protocol", Align::left);
    fits.add_column("a*log2(n)+b", Align::left);
    fits.add_column("r^2 (log fit)");
    fits.add_column("n^e fit");
    fits.add_column("r^2 (power)");
    for (const SweepResult& sweep : sweeps) {
        const LinearFit lf = sweep.fit_vs_log_n();
        const LinearFit pf = sweep.fit_power_law();
        fits.add_row({
            sweep.protocol,
            format_double(lf.slope, 2) + "*log2(n) + " + format_double(lf.intercept, 1),
            format_double(lf.r_squared, 4),
            "n^" + format_double(pf.slope, 3),
            format_double(pf.r_squared, 4),
        });
    }
    std::cout << fits.render("scaling fits") << "\n";

    // Machine-readable artefact for plotting.
    JsonValue root = JsonValue::array();
    for (const SweepResult& sweep : sweeps) root.push_back(sweep_to_json(sweep));
    write_json_file("bench_scaling.json", root);
    std::cout << "wrote bench_scaling.json\n\n"
              << "Reading guide: Theorem 1 is reproduced if pll's power-law\n"
              << "exponent is near 0 (far below angluin06's ~1) and its log-fit\n"
              << "explains the series; the log-fit slope is the empirical constant\n"
              << "of the O(log n) bound (dominated by the 41m timer period).\n"
              << "pll_symmetric must track pll within a constant factor (Section 4).\n";
    return 0;
}
