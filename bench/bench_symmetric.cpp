// E8 — Section 4 as a figure: the symmetric variant's coin substrate
// (fairness + independence of J/K/F0/F1 flips) and the symmetric-vs-
// asymmetric stabilisation-time comparison.
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/estimators.hpp"
#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "core/table.hpp"

namespace {
using namespace ppsim;
}

int main() {
    const unsigned scale = repro_scale();

    std::cout << "== E8: Section 4 — symmetric transitions and fair coins ==\n\n";

    // --- coin fairness ------------------------------------------------------
    TextTable coins;
    coins.add_column("n");
    coins.add_column("flips observed");
    coins.add_column("P(head)");
    coins.add_column("95% CI");
    coins.add_column("lag-1 corr");
    coins.add_column("#F0 = #F1 always");
    for (const std::size_t n : std::vector<std::size_t>{256, 1024, 4096}) {
        const auto steps = static_cast<StepCount>(
            800.0 * static_cast<double>(n) * std::log2(static_cast<double>(n)));
        const CoinFairnessReport report =
            measure_symmetric_coins(n, steps * scale, 0xC0FF + n);
        coins.add_row({
            std::to_string(n),
            std::to_string(report.flips),
            format_double(report.head_fraction, 4),
            "[" + format_double(report.head_ci.lower, 4) + ", " +
                format_double(report.head_ci.upper, 4) + "]",
            format_double(report.lag1_correlation, 4),
            report.f0_f1_always_equal ? "yes" : "NO",
        });
    }
    std::cout << coins.render("J/K/F0/F1 substrate: leader coin observations") << "\n";

    // --- stabilisation-time comparison ---------------------------------------
    const std::size_t reps = 60 * scale;
    std::vector<SweepResult> sweeps;
    for (const char* name : {"pll", "pll_symmetric"}) {
        SweepConfig cfg;
        cfg.protocol = name;
        cfg.sizes = {64, 256, 1024, 4096};
        cfg.repetitions = reps;
        cfg.seed = 0x5E11;
        cfg.budget = [](std::size_t n) { return StepBudget::n_log_n(n, 3000.0); };
        sweeps.push_back(run_sweep(cfg));
    }
    std::cout << render_comparison_table(sweeps,
                                         "asymmetric vs symmetric stabilisation time "
                                         "(mean parallel time, " +
                                             std::to_string(reps) + " runs)")
              << "\n";

    const LinearFit asym = sweeps[0].fit_vs_log_n();
    const LinearFit sym = sweeps[1].fit_vs_log_n();
    std::cout << "log-fit slopes: pll = " << format_double(asym.slope, 2)
              << ", pll_symmetric = " << format_double(sym.slope, 2) << "\n\n"
              << "Reading guide: Section 4 is reproduced if (a) the coin substrate\n"
              << "is exactly fair (CI straddles 0.5) with negligible lag-1\n"
              << "correlation and the #F0 = #F1 invariant never breaks, and (b) the\n"
              << "symmetric variant stays within a constant factor of PLL — the\n"
              << "overhead is the wait for minted coins and the duel tie-break.\n";
    return 0;
}
