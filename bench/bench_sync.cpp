// E7 — Lemma 6 / the CountUp synchroniser: colour-change timing (P1) and
// epoch completion, plus the leader-driven phase-clock substrate for
// comparison with the design space PLL rejected.
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/estimators.hpp"
#include "analysis/report.hpp"
#include "core/engine.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "protocols/junta_clock.hpp"
#include "protocols/phase_clock.hpp"

namespace {
using namespace ppsim;
}

int main() {
    const unsigned scale = repro_scale();
    const std::size_t reps = 20 * scale;

    std::cout << "== E7: Lemma 6 — the CountUp synchroniser ==\n\n";

    TextTable table;
    table.add_column("n");
    table.add_column("P1 horizon 21n*ln n");
    table.add_column("first colour change (mean)");
    table.add_column("P1 violations");
    table.add_column("all in epoch 2 (mean par.)");
    table.add_column("epoch 3");
    table.add_column("epoch 4");

    for (const std::size_t n : std::vector<std::size_t>{256, 1024, 4096}) {
        const double horizon = 21.0 * static_cast<double>(n) *
                               std::log(static_cast<double>(n));
        RunningStats first_change;
        RunningStats epoch2;
        RunningStats epoch3;
        RunningStats epoch4;
        std::size_t violations = 0;
        for (std::size_t rep = 0; rep < reps; ++rep) {
            const SyncObservation obs = observe_synchronizer(
                n, derive_seed(0x57AC, rep + n), static_cast<StepCount>(horizon * 40));
            first_change.add(static_cast<double>(obs.first_color_change));
            if (static_cast<double>(obs.first_color_change) < horizon) ++violations;
            const auto par = [n](StepCount s) {
                return static_cast<double>(s) / static_cast<double>(n);
            };
            if (obs.all_in_epoch[0]) epoch2.add(par(*obs.all_in_epoch[0]));
            if (obs.all_in_epoch[1]) epoch3.add(par(*obs.all_in_epoch[1]));
            if (obs.all_in_epoch[2]) epoch4.add(par(*obs.all_in_epoch[2]));
        }
        table.add_row({
            std::to_string(n),
            format_double(horizon, 0),
            format_double(first_change.mean(), 0),
            std::to_string(violations) + "/" + std::to_string(reps),
            epoch2.count() ? format_double(epoch2.mean()) : "n/a",
            epoch3.count() ? format_double(epoch3.mean()) : "n/a",
            epoch4.count() ? format_double(epoch4.mean()) : "n/a",
        });
    }
    std::cout << table.render("CountUp colour/epoch pacing (epoch cols in parallel time; "
                              "runs may stabilise before epoch 4 and stop early)")
              << "\n";

    // Phase-clock substrate: rounds per parallel time for context.
    std::cout << "-- leader-driven phase clock substrate (AAE08 family) --\n";
    TextTable clock_table;
    clock_table.add_column("n");
    clock_table.add_column("period");
    clock_table.add_column("driver rounds in 200 par. time");
    for (const std::size_t n : std::vector<std::size_t>{256, 1024, 4096}) {
        Engine<LeaderPhaseClock> engine(LeaderPhaseClock::for_population(n), n, 0xC10C);
        engine.population()[0] = engine.protocol().driver_state();
        engine.recount_leaders();
        engine.run_for(200 * static_cast<StepCount>(n));
        clock_table.add_row({std::to_string(n),
                             std::to_string(engine.protocol().period()),
                             std::to_string(engine.population()[0].rounds)});
    }
    std::cout << clock_table.render() << "\n";

    // Junta-driven clock: the *leaderless* alternative of the GS18/GSU18
    // family — the design point PLL positions itself against.
    std::cout << "-- junta-driven phase clock substrate (GS18/GSU18 family) --\n";
    TextTable junta_table;
    junta_table.add_column("n");
    junta_table.add_column("threshold");
    junta_table.add_column("junta size");
    junta_table.add_column("E[junta] = n/2^theta");
    junta_table.add_column("max rounds in 200 par. time");
    for (const std::size_t n : std::vector<std::size_t>{256, 1024, 4096}) {
        Engine<JuntaPhaseClock> engine(JuntaPhaseClock::for_population(n), n, 0x14A7A);
        engine.run_for(200 * static_cast<StepCount>(n));
        std::size_t junta = 0;
        std::uint16_t rounds = 0;
        for (const JuntaClockState& s : engine.population().states()) {
            junta += s.junta ? 1 : 0;
            rounds = std::max(rounds, s.rounds);
        }
        const double expected = static_cast<double>(n) /
                                std::exp2(engine.protocol().threshold());
        junta_table.add_row({std::to_string(n),
                             std::to_string(engine.protocol().threshold()),
                             std::to_string(junta), format_double(expected, 1),
                             std::to_string(rounds)});
    }
    std::cout << junta_table.render() << "\n";

    std::cout << "Reading guide: P1 of Lemma 6 is reproduced if (almost) no run\n"
              << "changes colour before the 21n*ln n horizon; epochs must complete\n"
              << "in Theta(log n) parallel time each (~cmax/2 = 20.5m). The phase\n"
              << "clock shows the alternative synchroniser family: ~constant-space,\n"
              << "but requiring an elected driver — which is what PLL is electing.\n";
    return 0;
}
