// E1 — Reproduction of Table 1 (Sudo et al., PODC 2019): leader-election
// protocols compared by states per agent and expected stabilisation time.
//
// For every runnable protocol the harness measures (a) the empirical
// reachable-state count per agent at a reference population size and (b) the
// mean stabilisation time (in parallel time, over seeded repetitions) across
// a population sweep, then prints the paper's table with measured columns
// appended. Protocols whose full reproduction is out of scope (see
// DESIGN.md) are printed as unmeasured rows with their published asymptotics.
//
// Scale: defaults finish in ~1 minute; REPRO_SCALE=full (or a number ≥ 2)
// enlarges the sweep and repetition counts.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "analysis/statespace.hpp"
#include "core/table.hpp"
#include "protocols/registry.hpp"

namespace {

using namespace ppsim;

struct MeasuredRow {
    ProtocolInfo info;
    std::size_t states_measured = 0;
    std::size_t states_reference_n = 0;
    SweepResult sweep;
};

}  // namespace

int main() {
    const unsigned scale = repro_scale();
    const std::size_t reps = 30 * scale;
    const ProtocolRegistry& registry = ProtocolRegistry::instance();

    std::cout << "== E1: Table 1 — states and expected stabilisation time ==\n"
              << "(stabilisation time in parallel time units; mean over " << reps
              << " seeded runs per size)\n\n";

    // Per-protocol sweep ranges: the O(n)-time baselines cannot afford the
    // sizes the polylog protocols use.
    const std::vector<std::size_t> small_sizes{64, 128, 256, 512};
    std::vector<std::size_t> big_sizes{64, 256, 1024, 4096};
    if (scale > 1) big_sizes.push_back(16384);
    const std::size_t reference_n = 1024;

    std::vector<MeasuredRow> rows;
    for (const std::string& name : registry.names()) {
        MeasuredRow row;
        row.info = registry.info(name);

        SweepConfig config;
        config.protocol = name;
        config.repetitions = reps;
        config.seed = 0x7AB1E1;
        const bool linear_time = name == "angluin06" || name == "lottery";
        config.sizes = linear_time ? small_sizes : big_sizes;
        config.budget = [linear_time](std::size_t n) {
            return linear_time ? StepBudget::n_squared(n, 80.0)
                               : StepBudget::n_log_n(n, 2000.0);
        };
        row.sweep = run_sweep(config);

        row.states_reference_n = reference_n;
        row.states_measured =
            count_reachable_states(name, reference_n, 3, 0x57A7E).distinct_states;
        rows.push_back(std::move(row));
    }

    TextTable table;
    table.add_column("protocol", Align::left);
    table.add_column("citation", Align::left);
    table.add_column("states (theory)", Align::left);
    table.add_column("time (theory)", Align::left);
    table.add_column("states @n=1024");
    table.add_column("time @n=64");
    table.add_column("time @largest n");
    table.add_column("fit");

    for (const ProtocolInfo& info : unimplemented_table1_rows()) {
        table.add_row({info.name, info.citation, info.theory_states, info.theory_time,
                       "(not re-measured)", "-", "-", "-"});
    }
    table.add_separator();

    for (const MeasuredRow& row : rows) {
        const SweepPoint& first = row.sweep.points.front();
        const SweepPoint& last = row.sweep.points.back();
        std::string fit;
        if (row.info.name == "angluin06" || row.info.name == "lottery") {
            const LinearFit power = row.sweep.fit_power_law();
            fit = "~n^" + format_double(power.slope, 2);
        } else {
            const LinearFit log_fit = row.sweep.fit_vs_log_n();
            fit = format_double(log_fit.slope, 2) + "*log2(n)+" +
                  format_double(log_fit.intercept, 1);
        }
        table.add_row({
            row.info.name,
            row.info.citation,
            row.info.theory_states,
            row.info.theory_time,
            std::to_string(row.states_measured),
            first.parallel_time.count() > 0 ? format_double(first.parallel_time.mean())
                                            : "n/a",
            last.parallel_time.count() > 0
                ? format_double(last.parallel_time.mean()) + " (n=" +
                      std::to_string(last.n) + ")"
                : "n/a",
            fit,
        });
    }
    std::cout << table.render("Table 1 (paper rows + measured reproduction)") << "\n";

    for (const MeasuredRow& row : rows) {
        std::cout << render_sweep_table(row.sweep, "-- " + row.info.name + " sweep --")
                  << "\n";
    }

    std::cout << "Reading guide: the measured columns must reproduce the paper's\n"
              << "*shape*: angluin06 and the tie-bound lottery grow polynomially\n"
              << "(fit ~n^e, e near 1), while mst18_style, pll and pll_symmetric\n"
              << "stay flat-ish in n (logarithmic fits) — pll matching mst18_style's\n"
              << "time regime with ~n-fold fewer states, which is the paper's claim.\n";
    return 0;
}
