// E2 — Consistency checks against Table 2 (lower bounds for leader election).
//
// Lower bounds cannot be "run", but measured systems must respect them:
//  * [DS18]  Ω(n) for constant-state protocols — the measured angluin06
//            growth exponent must be ≈ 1 (linear), not sub-linear.
//  * [SM19]  Ω(log n) for any state count — every measured protocol,
//            including PLL, must stay above a conservative epidemic floor
//            (propagating anything to n agents already costs ~2·ln n).
//  * [Ali+17] <(1/2)·loglog n states ⇒ Ω(n/polylog n) — reported from the
//            paper; our O(log n)-state PLL is comfortably above the state
//            threshold, which the state-count bench (E3) verifies.
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "core/table.hpp"

namespace {
using namespace ppsim;
}

int main() {
    const unsigned scale = repro_scale();
    const std::size_t reps = 30 * scale;

    std::cout << "== E2: Table 2 — lower-bound consistency checks ==\n\n";

    TextTable bounds;
    bounds.add_column("bound", Align::left);
    bounds.add_column("statement", Align::left);
    bounds.add_row({"[DS18]", "O(1) states  =>  Omega(n) expected time"});
    bounds.add_row({"[Ali+17]", "< 1/2 loglog n states  =>  Omega(n/polylog n)"});
    bounds.add_row({"[SM19]", "any states  =>  Omega(log n) expected time"});
    std::cout << bounds.render("Table 2 (as published)") << "\n";

    // --- [DS18]: angluin06 must scale linearly --------------------------------
    SweepConfig angluin;
    angluin.protocol = "angluin06";
    angluin.sizes = {32, 64, 128, 256, 512};
    angluin.repetitions = reps;
    angluin.seed = 0x7AB1E2;
    angluin.budget = [](std::size_t n) { return StepBudget::n_squared(n, 80.0); };
    const SweepResult ang = run_sweep(angluin);
    const LinearFit ang_power = ang.fit_power_law();
    std::cout << render_sweep_table(ang, "angluin06 (O(1) states) scaling") << "\n";
    std::cout << "measured growth exponent: n^" << format_double(ang_power.slope, 3)
              << " (r^2 = " << format_double(ang_power.r_squared, 4) << ")\n"
              << "consistent with Omega(n): "
              << (ang_power.slope > 0.75 ? "YES (exponent ~1)" : "NO — investigate!")
              << "\n\n";

    // --- [SM19]: every protocol stays above the Omega(log n) floor ------------
    TextTable floor_table;
    floor_table.add_column("protocol", Align::left);
    floor_table.add_column("n");
    floor_table.add_column("measured mean (par.)");
    floor_table.add_column("ln(n) floor");
    floor_table.add_column("above floor?");
    bool all_above = true;
    for (const char* name : {"mst18_style", "pll", "pll_symmetric"}) {
        SweepConfig cfg;
        cfg.protocol = name;
        cfg.sizes = {256, 1024, 4096};
        cfg.repetitions = reps;
        cfg.seed = 0x7AB1E3;
        cfg.budget = [](std::size_t n) { return StepBudget::n_log_n(n, 2000.0); };
        const SweepResult sweep = run_sweep(cfg);
        for (const SweepPoint& p : sweep.points) {
            if (p.parallel_time.count() == 0) continue;
            // Conservative floor: even a single one-way epidemic needs about
            // 2·ln n parallel time to reach everyone; use ln n to leave slack.
            const double floor = std::log(static_cast<double>(p.n));
            const bool above = p.parallel_time.mean() >= floor;
            all_above = all_above && above;
            floor_table.add_row({name, std::to_string(p.n),
                                 format_double(p.parallel_time.mean()),
                                 format_double(floor), above ? "yes" : "NO"});
        }
    }
    std::cout << floor_table.render("[SM19] Omega(log n) consistency") << "\n";
    std::cout << "all measured times respect the Omega(log n) bound: "
              << (all_above ? "YES" : "NO — investigate!") << "\n\n"
              << "[Ali+17] state-threshold note: PLL uses Theta(log n) states\n"
              << "(measured in E3/bench_table3), far above 1/2*loglog n, so the\n"
              << "sub-linear time measured in E1 does not contradict that bound.\n";
    return 0;
}
