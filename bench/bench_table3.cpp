// E3 — Reproduction of Table 3 / Lemma 3: PLL's per-agent state usage.
//
// Table 3 lists PLL's variables and their domains per group; Lemma 3
// concludes O(log n) states per agent. This bench measures the *reachable*
// state count empirically — distinct canonical states observed across
// seeded executions — in total and split by the paper's five groups
// (VX, VB, VA∩V1, VA∩(V2∪V3), VA∩V4), and checks logarithmic growth in n.
#include <cmath>
#include <iostream>
#include <map>
#include <unordered_set>
#include <vector>

#include "analysis/report.hpp"
#include "core/engine.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "protocols/pll.hpp"

namespace {

using namespace ppsim;

const char* group_of(const PllState& s) {
    if (s.status == PllStatus::x) return "VX";
    if (s.status == PllStatus::b) return "VB";
    if (s.epoch == 1) return "VA&V1";
    if (s.epoch == 4) return "VA&V4";
    return "VA&V23";
}

struct GroupCounts {
    std::map<std::string, std::unordered_set<std::uint64_t>> by_group;
    std::unordered_set<std::uint64_t> total;

    void observe(const Pll& pll, const PllState& s) {
        const std::uint64_t key = pll.state_key(s);
        by_group[group_of(s)].insert(key);
        total.insert(key);
    }
};

GroupCounts explore(std::size_t n, std::size_t runs, StepCount steps,
                    std::uint64_t seed) {
    GroupCounts counts;
    for (std::size_t run = 0; run < runs; ++run) {
        Engine<Pll> engine(Pll::for_population(n), n, derive_seed(seed, run));
        counts.observe(engine.protocol(), engine.population()[0]);
        for (StepCount step = 0; step < steps; ++step) {
            const Interaction ia = engine.step();
            counts.observe(engine.protocol(), engine.population()[ia.initiator]);
            counts.observe(engine.protocol(), engine.population()[ia.responder]);
        }
    }
    return counts;
}

}  // namespace

int main() {
    const unsigned scale = repro_scale();

    std::cout << "== E3: Table 3 / Lemma 3 — PLL states per agent ==\n\n";

    // The paper's Table 3, for reference.
    TextTable domains;
    domains.add_column("group", Align::left);
    domains.add_column("variables", Align::left);
    domains.add_column("domain sizes", Align::left);
    domains.add_row({"all agents", "leader, tick, status, epoch, init, color",
                     "2*2*3*4*4*3"});
    domains.add_row({"VB", "count", "41m"});
    domains.add_row({"VA&V1", "levelQ, done", "(5m+1)*2"});
    domains.add_row({"VA&(V2|V3)", "rand, index", "2^phi*(phi+1)"});
    domains.add_row({"VA&V4", "levelB", "5m+1"});
    std::cout << domains.render("Table 3 (domains; phi = ceil(2/3*lg m))") << "\n";

    std::vector<std::size_t> sizes{64, 256, 1024, 4096};
    if (scale > 1) sizes.push_back(16384);

    TextTable table;
    table.add_column("n");
    table.add_column("m");
    table.add_column("reachable (total)");
    table.add_column("VB");
    table.add_column("VA&V1");
    table.add_column("VA&V23");
    table.add_column("VA&V4");
    table.add_column("domain bound");
    table.add_column("reachable/m");

    std::vector<double> xs;
    std::vector<double> ys;
    for (const std::size_t n : sizes) {
        const Pll pll = Pll::for_population(n);
        const unsigned m = pll.config().m;
        const double lg = std::log2(static_cast<double>(n));
        const auto steps = static_cast<StepCount>(80.0 * static_cast<double>(n) * lg);
        const GroupCounts counts = explore(n, 3 * scale, steps, 0x7AB1E3);
        const auto group = [&](const char* g) {
            const auto it = counts.by_group.find(g);
            return it == counts.by_group.end() ? std::size_t{0} : it->second.size();
        };
        table.add_row({
            std::to_string(n),
            std::to_string(m),
            std::to_string(counts.total.size()),
            std::to_string(group("VB")),
            std::to_string(group("VA&V1")),
            std::to_string(group("VA&V23")),
            std::to_string(group("VA&V4")),
            std::to_string(pll.state_bound()),
            format_double(static_cast<double>(counts.total.size()) / m, 1),
        });
        xs.push_back(static_cast<double>(n));
        ys.push_back(static_cast<double>(counts.total.size()));
    }
    std::cout << table.render("Reachable states (empirical, over seeded runs)") << "\n";

    const LinearFit log_fit = fit_log2(xs, ys);
    const LinearFit power = fit_power_law(xs, ys);
    std::cout << "growth of reachable states:\n"
              << "  vs log2(n): " << format_double(log_fit.slope, 1) << "*log2(n) + "
              << format_double(log_fit.intercept, 1)
              << "  (r^2 = " << format_double(log_fit.r_squared, 4) << ")\n"
              << "  power law:  n^" << format_double(power.slope, 3)
              << "  (r^2 = " << format_double(power.r_squared, 4) << ")\n"
              << "Lemma 3 is reproduced if the reachable count tracks the\n"
              << "logarithmic fit (exponent well below 0.5) and the per-m ratio\n"
              << "stays roughly constant — the timer group VB (41m values) and\n"
              << "the level groups (5m+1) dominate, all linear in m = O(log n).\n";
    return 0;
}
