// E11 — leader-count trajectory: the decay "figure". Tracks how the leader
// census falls from n to 1 across many seeded runs — QuickElimination's
// geometric cull, the Tournament plateaus, and the epoch in which runs
// actually stabilise (the measured weight of each module in Theorem 1's
// expectation).
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "core/engine.hpp"
#include "core/plot.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "protocols/pll.hpp"

namespace {
using namespace ppsim;
}

int main() {
    const unsigned scale = repro_scale();
    const std::size_t n = 1024;
    const std::size_t runs = 100 * scale;

    std::cout << "== E11: leader-count trajectory of PLL (n = " << n << ", " << runs
              << " runs) ==\n\n";

    // Checkpoints in parallel time, log-spaced.
    std::vector<double> checkpoints{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
    std::vector<SampleSet> counts(checkpoints.size());
    std::vector<std::size_t> stabilized_in_epoch(5, 0);
    RunningStats stabilization_time;

    for (std::size_t rep = 0; rep < runs; ++rep) {
        Engine<Pll> engine(Pll::for_population(n), n, derive_seed(0x7247, rep));
        std::size_t next_checkpoint = 0;
        bool recorded_epoch = false;
        const auto budget = static_cast<StepCount>(
            4000.0 * static_cast<double>(n) * std::log2(static_cast<double>(n)));
        while (engine.steps() < budget) {
            engine.step();
            while (next_checkpoint < checkpoints.size() &&
                   engine.parallel_time() >= checkpoints[next_checkpoint]) {
                counts[next_checkpoint].add(static_cast<double>(engine.leader_count()));
                ++next_checkpoint;
            }
            if (!recorded_epoch && engine.leader_count() == 1) {
                // Attribute the stabilisation to the epoch of the survivor.
                unsigned epoch = 1;
                for (const PllState& s : engine.population().states()) {
                    if (s.leader) epoch = Pll::epoch_of(s);
                }
                ++stabilized_in_epoch[epoch];
                stabilization_time.add(engine.parallel_time());
                recorded_epoch = true;
            }
            if (recorded_epoch && next_checkpoint >= checkpoints.size()) break;
        }
        // Fill remaining checkpoints with the final (stable) count.
        while (next_checkpoint < checkpoints.size()) {
            counts[next_checkpoint].add(static_cast<double>(engine.leader_count()));
            ++next_checkpoint;
        }
    }

    TextTable table;
    table.add_column("parallel time");
    table.add_column("median leaders");
    table.add_column("p25");
    table.add_column("p75");
    table.add_column("max");
    PlotSeries median_series{"median log2(leaders)", '*', {}, {}};
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
        table.add_row({format_double(checkpoints[i], 1),
                       format_double(counts[i].median(), 1),
                       format_double(counts[i].percentile(25.0), 1),
                       format_double(counts[i].percentile(75.0), 1),
                       format_double(counts[i].max(), 0)});
        median_series.x.push_back(checkpoints[i]);
        median_series.y.push_back(std::log2(std::max(1.0, counts[i].median())));
    }
    std::cout << table.render("leader census over time (" + std::to_string(runs) +
                              " runs)")
              << "\n";

    AsciiPlot plot;
    plot.set_title("median leader count (log2) vs parallel time");
    plot.set_x_label("parallel time");
    plot.set_y_label("log2(leaders)");
    plot.set_log2_x(true);
    plot.add_series(std::move(median_series));
    std::cout << plot.render() << "\n";

    TextTable epochs;
    epochs.add_column("stabilised during", Align::left);
    epochs.add_column("runs");
    epochs.add_column("fraction");
    const char* names[5] = {"", "epoch 1 (QuickElimination)", "epoch 2 (Tournament I)",
                            "epoch 3 (Tournament II)", "epoch 4 (BackUp)"};
    for (unsigned e = 1; e <= 4; ++e) {
        epochs.add_row({names[e], std::to_string(stabilized_in_epoch[e]),
                        format_double(static_cast<double>(stabilized_in_epoch[e]) /
                                          static_cast<double>(runs),
                                      3)});
    }
    std::cout << epochs.render("module attribution") << "\n";
    std::cout << "mean stabilisation time: "
              << format_with_ci(stabilization_time.mean(),
                                stabilization_time.ci_half_width())
              << " parallel time units\n\n"
              << "Reading guide: the census must collapse geometrically within the\n"
              << "first few parallel time units (the lottery), then plateau at a\n"
              << "handful of survivors until the first timer tick (~20.5m parallel\n"
              << "time) lets Tournament finish the job; the attribution row for\n"
              << "epoch 4 is Theorem 1's O(1/log n) slow-path weight.\n";
    return 0;
}
