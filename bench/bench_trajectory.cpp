// E11 — leader-count trajectory: the decay "figure", rewritten on the
// observer subsystem. Tracks how the leader census falls from n to 1 across
// many seeded runs — QuickElimination's geometric cull, the Tournament
// plateaus, and the milestones on the way down — through the type-erased
// Simulation layer, so the same program runs on either engine. The default
// is the count-based batched engine, which makes a 16× larger population
// than the old agent-based version of this bench affordable: observation is
// O(#states) per sample there, independent of n.
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "core/observer.hpp"
#include "core/plot.hpp"
#include "core/random.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "protocols/registry.hpp"

namespace {
using namespace ppsim;
}

int main() {
    const unsigned scale = repro_scale();
    const std::size_t n = 1 << 14;
    const std::size_t runs = 100 * scale;
    const EngineKind engine = EngineKind::batched;

    std::cout << "== E11: leader-count trajectory of PLL (n = " << n << ", " << runs
              << " runs, engine " << to_string(engine) << ") ==\n\n";

    // Checkpoints in parallel time, log-spaced.
    std::vector<double> checkpoints{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
    std::vector<SampleSet> counts(checkpoints.size());

    // Convergence milestones: parallel time until the census first reached
    // each threshold (observed at stride granularity).
    const std::vector<std::size_t> thresholds{
        n / 2, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))),
        static_cast<std::size_t>(std::log2(static_cast<double>(n))), 8, 2, 1};
    std::vector<SampleSet> milestone_times(thresholds.size());
    RunningStats stabilization_time;
    std::size_t converged = 0;

    const auto budget = static_cast<StepCount>(
        4000.0 * static_cast<double>(n) * std::log2(static_cast<double>(n)));

    for (std::size_t rep = 0; rep < runs; ++rep) {
        const auto sim = ProtocolRegistry::instance().make_simulation(
            "pll", n, derive_seed(0x7247, rep), engine);
        TrajectoryRecorder recorder(n / 2);  // sample every ½ unit of parallel time
        ConvergenceObserver milestones(thresholds, n / 8);
        sim->add_observer(recorder);
        sim->add_observer(milestones);
        const RunResult result = sim->run_until_one_leader(budget);

        if (result.converged && result.stabilization_step) {
            ++converged;
            stabilization_time.add(result.stabilization_parallel_time(n));
        }
        // Census at each checkpoint: the last sample at or before it; runs
        // that stabilised earlier contribute their final (absorbing) count.
        const std::vector<TrajectoryPoint>& points = recorder.points();
        for (std::size_t i = 0; i < checkpoints.size(); ++i) {
            double census = static_cast<double>(points.back().leader_count);
            for (const TrajectoryPoint& p : points) {
                if (p.parallel_time > checkpoints[i]) break;
                census = static_cast<double>(p.leader_count);
            }
            counts[i].add(census);
        }
        for (std::size_t i = 0; i < thresholds.size(); ++i) {
            if (const auto step = milestones.first_step_at_or_below(thresholds[i])) {
                milestone_times[i].add(to_parallel_time(*step, n));
            }
        }
    }

    TextTable table;
    table.add_column("parallel time");
    table.add_column("median leaders");
    table.add_column("p25");
    table.add_column("p75");
    table.add_column("max");
    PlotSeries median_series{"median log2(leaders)", '*', {}, {}};
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
        table.add_row({format_double(checkpoints[i], 1),
                       format_double(counts[i].median(), 1),
                       format_double(counts[i].percentile(25.0), 1),
                       format_double(counts[i].percentile(75.0), 1),
                       format_double(counts[i].max(), 0)});
        median_series.x.push_back(checkpoints[i]);
        median_series.y.push_back(std::log2(std::max(1.0, counts[i].median())));
    }
    std::cout << table.render("leader census over time (" + std::to_string(runs) +
                              " runs)")
              << "\n";

    AsciiPlot plot;
    plot.set_title("median leader count (log2) vs parallel time");
    plot.set_x_label("parallel time");
    plot.set_y_label("log2(leaders)");
    plot.set_log2_x(true);
    plot.add_series(std::move(median_series));
    std::cout << plot.render() << "\n";

    TextTable milestone_table;
    milestone_table.add_column("census reached", Align::left);
    milestone_table.add_column("runs");
    milestone_table.add_column("median parallel time");
    milestone_table.add_column("p95");
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        const bool reached = !milestone_times[i].empty();
        milestone_table.add_row(
            {"<= " + std::to_string(thresholds[i]),
             std::to_string(milestone_times[i].count()),
             reached ? format_double(milestone_times[i].median(), 1) : "-",
             reached ? format_double(milestone_times[i].percentile(95.0), 1) : "-"});
    }
    std::cout << milestone_table.render("convergence milestones") << "\n";
    std::cout << "converged runs: " << converged << "/" << runs << "\n"
              << "mean stabilisation time: "
              << format_with_ci(stabilization_time.mean(),
                                stabilization_time.ci_half_width())
              << " parallel time units\n\n"
              << "Reading guide: the census must collapse geometrically within the\n"
              << "first few parallel time units (the lottery), then plateau at a\n"
              << "handful of survivors until the first timer tick (~20.5m parallel\n"
              << "time) lets Tournament finish the job; the gap between the '<= 8'\n"
              << "and '<= 1' milestones is that plateau, Theorem 1's dominant term.\n";
    return 0;
}
