// Custom protocol tutorial: build your own population protocol on the
// library's public API, host it in the engine, check its invariants and
// benchmark it against the built-ins via a private registry.
//
// The protocol implemented here is *fratricide with a witness bit*: a
// three-state folk protocol where leaders eliminate each other pairwise
// (like [Ang+06]) but a defeated leader becomes a "witness" that can still
// absorb other leaders' witness marks — a toy example exercising every hook
// a protocol can implement (state_bound, state_key, introspection).
//
//   ./build/examples/custom_protocol [n]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "core/observer.hpp"
#include "protocols/registry.hpp"

namespace example {

using namespace ppsim;

/// States: leader (L), witness (W) — a former leader — and follower (F).
enum class Kind : std::uint8_t { leader, witness, follower };

struct FratricideState {
    Kind kind = Kind::leader;

    friend constexpr bool operator==(const FratricideState&,
                                     const FratricideState&) = default;
};

/// L×L → L×W (responder becomes a witness); L×W → L×F (the leader absorbs
/// the witness mark); everything else is a no-op. Exactly one leader
/// survives, and eventually no witness remains — the final configuration is
/// one L and n−1 F.
class Fratricide {
public:
    using State = FratricideState;

    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.kind == Kind::leader ? Role::leader : Role::follower;
    }

    void interact(State& a0, State& a1) const noexcept {
        if (a0.kind == Kind::leader && a1.kind == Kind::leader) {
            a1.kind = Kind::witness;
        } else if (a0.kind == Kind::leader && a1.kind == Kind::witness) {
            a1.kind = Kind::follower;
        } else if (a1.kind == Kind::leader && a0.kind == Kind::witness) {
            a0.kind = Kind::follower;
        }
    }

    [[nodiscard]] std::string_view name() const noexcept { return "fratricide"; }
    [[nodiscard]] std::size_t state_bound() const noexcept { return 3; }
    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return static_cast<std::uint64_t>(s.kind);
    }
};

static_assert(Protocol<Fratricide>, "Fratricide must satisfy the Protocol concept");

}  // namespace example

int main(int argc, char** argv) {
    using namespace ppsim;
    using example::Fratricide;
    using example::Kind;

    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;

    // Host the custom protocol directly in the templated engine.
    Engine<Fratricide> engine(Fratricide{}, n, 99);
    const RunResult result =
        engine.run_until_one_leader(static_cast<StepCount>(200) * n * n);
    std::cout << "fratricide on n = " << n << ": "
              << (result.converged ? "1 leader" : "did not converge") << " after "
              << result.parallel_time << " parallel time units\n";

    // Introspect the final census.
    std::size_t witnesses = 0;
    for (const example::FratricideState& s : engine.population().states()) {
        witnesses += s.kind == Kind::witness ? 1 : 0;
    }
    std::cout << "remaining witnesses: " << witnesses
              << " (they drain towards 0 as the leader absorbs them)\n";

    // Register it in a private registry to reuse the experiment tooling
    // (sweeps, verified runs) that the built-ins enjoy.
    ProtocolRegistry registry;
    registry.register_protocol(ProtocolInfo{"fratricide", "[this example]", "O(1)", "O(n)"},
                               [](std::size_t) { return Fratricide{}; });
    const RunResult verified = registry.run_election_verified(
        "fratricide", n, 7, static_cast<StepCount>(200) * n * n, 10 * n);
    std::cout << "verified run via registry: converged = " << verified.converged
              << ", leaders = " << verified.leader_count << "\n";

    // The same registration also yields a type-erased Simulation on either
    // engine — here the count-based one, with a trajectory observer watching
    // the leader census fall (O(#states) = O(3) per sample, whatever n is).
    const auto sim = registry.make_simulation("fratricide", n, 123, EngineKind::batched);
    // Fratricide stabilises in O(n) parallel time, so sample every n/8 units
    // to keep the series readable.
    TrajectoryRecorder recorder(std::max<StepCount>(1, n * (n / 8)));
    sim->add_observer(recorder);
    (void)sim->run_until_one_leader(static_cast<StepCount>(200) * n * n);
    std::cout << "trajectory through the batched engine (" << recorder.points().size()
              << " samples):\n";
    for (std::size_t i = 0; i < recorder.points().size(); ++i) {
        if (i == 12 && recorder.points().size() > 13) {
            std::cout << "  ...\n";
            break;
        }
        const TrajectoryPoint& p = recorder.points()[i];
        std::cout << "  t = " << p.parallel_time << ": " << p.leader_count
                  << " leaders, " << p.live_states << " live states\n";
    }
    const ConfigurationSnapshot final_census = sim->state_counts();
    std::cout << "final census: " << final_census.leaders() << " leader among "
              << final_census.total() << " agents in " << final_census.counts.size()
              << " distinct states\n";

    // And the analysis hooks work too: count its reachable states.
    const auto any = registry.make("fratricide", n);
    std::cout << "state bound declared by the protocol: " << any->state_bound() << "\n";
    return verified.converged ? 0 : 1;
}
