// Election census: sweep every registered protocol across population sizes,
// print a comparison table and write a JSON artefact — the workflow a user
// evaluating leader-election protocols for a sensor-network deployment (the
// PP model's motivating scenario) would run.
//
//   ./build/examples/election_census [reps] [max_n]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "core/json.hpp"
#include "protocols/registry.hpp"

int main(int argc, char** argv) {
    using namespace ppsim;

    const std::size_t reps = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
    const std::size_t max_n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2048;

    std::vector<std::size_t> sizes;
    for (std::size_t n = 64; n <= max_n; n *= 4) sizes.push_back(n);

    std::cout << "Census over " << sizes.size() << " population sizes, " << reps
              << " seeded runs each.\n"
              << "Protocols: ";
    for (const std::string& name : ProtocolRegistry::instance().names()) {
        std::cout << name << " ";
    }
    std::cout << "\n\n";

    std::vector<SweepResult> sweeps;
    JsonValue artefact = JsonValue::array();
    for (const std::string& name : ProtocolRegistry::instance().names()) {
        SweepConfig config;
        config.protocol = name;
        config.repetitions = reps;
        config.seed = 0xCE4505;
        // The linear-time protocols get smaller sizes and quadratic budgets.
        const bool linear = name == "angluin06" || name == "lottery";
        config.sizes = sizes;
        if (linear) {
            config.sizes.clear();
            for (std::size_t n = 64; n <= std::min<std::size_t>(max_n, 512); n *= 2) {
                config.sizes.push_back(n);
            }
        }
        config.budget = [linear](std::size_t n) {
            return linear ? StepBudget::n_squared(n, 80.0)
                          : StepBudget::n_log_n(n, 3000.0);
        };
        SweepResult sweep = run_sweep(config);
        artefact.push_back(sweep_to_json(sweep));
        std::cout << render_sweep_table(sweep, "== " + name + " ==") << "\n";
        sweeps.push_back(std::move(sweep));
    }

    std::cout << render_comparison_table(sweeps, "mean stabilisation time (parallel)");
    write_json_file("election_census.json", artefact);
    std::cout << "\nwrote election_census.json\n";
    return 0;
}
