// Beyond leader election: the same engine hosting exact majority, the PP
// model's other canonical problem (and the subject of the paper's Table-1
// neighbour [AAG18]). A sensor swarm votes between two configurations; the
// four-state protocol converges to the initial majority opinion with
// probability 1 for any non-zero margin — even a margin of one.
//
//   ./build/examples/majority_vote [n] [a_count] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "core/table.hpp"
#include "protocols/majority.hpp"

int main(int argc, char** argv) {
    using namespace ppsim;

    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
    const std::size_t a_count =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : n / 2 + 1;  // margin of one
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

    Engine<ExactMajority> engine(ExactMajority{}, n, seed);
    ExactMajority::seed_inputs(engine.population(), a_count);
    engine.recount_leaders();  // outputs changed by seeding

    std::cout << "exact majority on n = " << n << ": " << a_count << " vote A, "
              << n - a_count << " vote B (margin "
              << static_cast<long long>(2 * a_count) - static_cast<long long>(n)
              << ")\n\n";

    TextTable trace;
    trace.add_column("parallel time");
    trace.add_column("A supporters");
    trace.add_column("B supporters");
    trace.add_column("strong agents");
    const auto snapshot = [&] {
        std::size_t strong = 0;
        for (const MajorityState& s : engine.population().states()) {
            strong += ExactMajority::is_strong(s) ? 1 : 0;
        }
        trace.add_row({format_double(engine.parallel_time(), 1),
                       std::to_string(engine.leader_count()),
                       std::to_string(n - engine.leader_count()),
                       std::to_string(strong)});
    };

    snapshot();
    const auto burst = static_cast<StepCount>(2 * n);
    for (int i = 0; i < 30 && !majority_consensus_reached(engine); ++i) {
        engine.run_for(burst);
        if (i % 3 == 0) snapshot();
    }
    // Long tail for the margin-of-one case.
    while (!majority_consensus_reached(engine) &&
           engine.parallel_time() < 500.0 * std::log2(static_cast<double>(n))) {
        engine.run_for(burst);
    }
    snapshot();
    std::cout << trace.render("opinion census over time") << "\n";

    if (!majority_consensus_reached(engine)) {
        std::cerr << "no consensus within the budget (tie inputs never converge)\n";
        return 1;
    }
    const bool a_won = engine.leader_count() == n;
    const bool correct = a_won == (2 * a_count > n);
    std::cout << "consensus: everyone outputs " << (a_won ? "A" : "B") << " — "
              << (correct ? "the true majority (exact majority computed correctly)"
                          : "WRONG (this must never happen)")
              << "\n";
    return correct ? 0 : 1;
}
