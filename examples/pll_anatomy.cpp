// Anatomy of a PLL election: a timeline trace through the paper's three
// modules — the figure the paper never drew. Watch QuickElimination's
// lottery thin the candidate set, the CountUp synchroniser advance the
// epochs, Tournament settle the survivors, and (rarely) BackUp finish the
// stragglers.
//
//   ./build/examples/pll_anatomy [n] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "core/table.hpp"
#include "protocols/pll.hpp"
#include "protocols/pll_census.hpp"

int main(int argc, char** argv) {
    using namespace ppsim;

    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    Engine<Pll> engine(Pll::for_population(n), n, seed);
    const PllConfig& cfg = engine.protocol().config();
    std::cout << "PLL anatomy: n = " << n << ", m = " << cfg.m
              << " (timer period cmax = " << cfg.cmax() << " own-interactions ≈ "
              << cfg.cmax() / 2 << " parallel time per epoch)\n\n";

    TextTable timeline;
    timeline.add_column("parallel time");
    timeline.add_column("snapshot", Align::left);

    const auto budget = static_cast<StepCount>(
        4000.0 * static_cast<double>(n) * std::log2(static_cast<double>(n)));
    StepCount next_snapshot = 0;
    unsigned last_min_epoch = 0;
    std::size_t last_leaders = 0;
    while (engine.steps() < budget) {
        engine.step();
        const bool due = engine.steps() >= next_snapshot;
        const PllCensus census = take_census(engine.population().states());
        // Snapshot on a coarse cadence plus at every epoch frontier change.
        if (due || census.min_epoch != last_min_epoch ||
            (census.leaders != last_leaders && census.leaders <= 5)) {
            timeline.add_row({format_double(engine.parallel_time(), 1),
                              render_census_line(census)});
            next_snapshot = engine.steps() + 4 * static_cast<StepCount>(n);
            last_min_epoch = census.min_epoch;
            last_leaders = census.leaders;
        }
        if (engine.leader_count() == 1) break;
    }
    std::cout << timeline.render("timeline (snapshots on cadence and at events)")
              << "\n";

    if (engine.leader_count() != 1) {
        std::cerr << "did not stabilise within the budget\n";
        return 1;
    }
    const PllCensus final_census = take_census(engine.population().states());
    std::cout << "stabilised at " << engine.parallel_time()
              << " parallel time units with the unique leader in epoch "
              << final_census.max_epoch << ".\n"
              << "Most runs never need BackUp: QuickElimination leaves one leader\n"
              << "with constant probability, and Tournament catches nearly all the\n"
              << "rest — that composition is Theorem 1's O(log n) expectation.\n";
    return 0;
}
