// Quickstart: elect a leader among 1000 anonymous agents with PLL.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [n] [seed]
//
// The example walks through the library's three core steps:
//   1. instantiate a protocol (PLL takes the knowledge parameter m ≈ log2 n),
//   2. host it in an Engine (population + uniformly random scheduler),
//   3. run to a single leader and inspect the result.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "protocols/pll.hpp"

int main(int argc, char** argv) {
    using namespace ppsim;

    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2019;

    // 1. The paper's protocol, parameterised for this population size
    //    (m = max(2, ceil(log2 n)), so lmax = 5m, cmax = 41m, phi = ceil(2/3 lg m)).
    const Pll protocol = Pll::for_population(n);
    std::cout << "PLL with m = " << protocol.config().m
              << " (lmax = " << protocol.config().lmax()
              << ", cmax = " << protocol.config().cmax()
              << ", phi = " << protocol.config().phi() << ")\n"
              << "state bound per agent: " << protocol.state_bound() << " states\n\n";

    // 2. Engine: n agents in the initial state + seeded random scheduler.
    Engine<Pll> engine(protocol, n, seed);
    std::cout << "initial leaders: " << engine.leader_count() << " (all agents)\n";

    // 3. Run until exactly one leader remains (generous step budget).
    const RunResult result = engine.run_until_one_leader(
        static_cast<StepCount>(4000.0 * static_cast<double>(n) *
                               std::log2(static_cast<double>(n))));
    if (!result.converged) {
        std::cerr << "did not stabilise within the budget (increase it?)\n";
        return 1;
    }

    std::cout << "stabilised: " << result.leader_count << " leader after "
              << *result.stabilization_step << " interactions = "
              << result.stabilization_parallel_time(n) << " parallel time units\n";

    // Identify the elected leader and show its final state.
    for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<AgentId>(i);
        if (engine.role_of(id) == Role::leader) {
            const PllState& s = engine.population()[id];
            std::cout << "leader = agent " << id << " (epoch " << unsigned(s.epoch)
                      << ", levelB " << s.level_b << ")\n";
        }
    }

    // The single-leader configuration is absorbing; demonstrate it.
    const bool stable = engine.verify_outputs_stable(10 * static_cast<StepCount>(n));
    std::cout << "outputs stable over " << 10 * n
              << " extra interactions: " << (stable ? "yes" : "NO") << "\n";
    return stable ? 0 : 1;
}
