// Section-4 demo: the symmetric fair-coin substrate in action.
//
// Chemical reaction networks cannot distinguish initiator from responder, so
// the asymmetric coin of PLL ("am I the initiator?") is unavailable. The
// paper's Section 4 builds totally fair, independent coins from follower
// states J/K/F0/F1 instead. This example traces the substrate: the coin
// census over time, the fairness of the flips leaders observe, and the
// resulting election.
//
//   ./build/examples/symmetric_coins [n] [seed]
#include <array>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "analysis/estimators.hpp"
#include "core/engine.hpp"
#include "core/table.hpp"
#include "protocols/pll_symmetric.hpp"

int main(int argc, char** argv) {
    using namespace ppsim;

    const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

    Engine<SymmetricPll> engine(SymmetricPll::for_population(n), n, seed);

    // Trace the coin census as the substrate mints F0/F1 pairs out of J/K.
    TextTable census;
    census.add_column("parallel time");
    census.add_column("J");
    census.add_column("K");
    census.add_column("F0");
    census.add_column("F1");
    census.add_column("leaders");
    const auto snapshot = [&] {
        std::array<std::size_t, 4> counts{};
        for (const SymPllState& s : engine.population().states()) {
            if (!s.leader) ++counts[static_cast<std::size_t>(s.coin)];
        }
        census.add_row({format_double(engine.parallel_time(), 1),
                        std::to_string(counts[0]), std::to_string(counts[1]),
                        std::to_string(counts[2]), std::to_string(counts[3]),
                        std::to_string(engine.leader_count())});
    };
    snapshot();
    for (int burst = 0; burst < 8; ++burst) {
        engine.run_for(2 * static_cast<StepCount>(n));
        snapshot();
    }
    std::cout << census.render("coin census (note: #F0 == #F1 in every row — the "
                               "invariant that makes flips exactly fair)")
              << "\n";

    // Fairness measurement on a fresh run (flips observed by leaders).
    const CoinFairnessReport report =
        measure_symmetric_coins(n, 400 * static_cast<StepCount>(n), seed + 1);
    std::cout << "coin observations by leaders: " << report.flips << " flips, "
              << "P(head) = " << format_double(report.head_fraction, 4) << " (95% CI ["
              << format_double(report.head_ci.lower, 4) << ", "
              << format_double(report.head_ci.upper, 4) << "])\n"
              << "lag-1 correlation: " << format_double(report.lag1_correlation, 4)
              << "  |  #F0 = #F1 throughout: "
              << (report.f0_f1_always_equal ? "yes" : "NO") << "\n\n";

    // Finish the election symmetrically.
    const RunResult result = engine.run_until_one_leader(
        static_cast<StepCount>(4000.0 * static_cast<double>(n) *
                               std::log2(static_cast<double>(n))));
    std::cout << "symmetric election: "
              << (result.converged ? "exactly one leader" : "not converged") << " at "
              << result.stabilization_parallel_time(n) << " parallel time units\n";
    return result.converged ? 0 : 1;
}
