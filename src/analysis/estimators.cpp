#include "estimators.hpp"

#include <array>
#include <cmath>
#include <mutex>

#include "../core/engine.hpp"
#include "../core/random.hpp"
#include "../core/thread_pool.hpp"
#include "../protocols/pll.hpp"
#include "../protocols/pll_symmetric.hpp"

namespace ppsim {

namespace {

/// ⌊21·n·ln n⌋ — the interaction horizon of Lemma 7 (and P1 of Lemma 6).
[[nodiscard]] StepCount lemma7_horizon(std::size_t n) {
    return static_cast<StepCount>(
        std::floor(21.0 * static_cast<double>(n) * std::log(static_cast<double>(n))));
}

}  // namespace

QuickElimObservation observe_quick_elimination(std::size_t n, std::uint64_t seed) {
    require(n >= 2, "population too small");
    Engine<Pll> engine(Pll::for_population(n), n, seed);
    engine.run_for(lemma7_horizon(n));

    const Pll& pll = engine.protocol();
    const unsigned lmax = pll.config().lmax();

    QuickElimObservation obs;
    obs.leaders = engine.leader_count();
    std::optional<unsigned> agreed_level;
    for (const PllState& s : engine.population().states()) {
        if (s.epoch != 1) obs.all_in_first_epoch = false;
        if (Pll::in_va(s)) {
            if (s.level_q >= lmax) obs.any_level_capped = true;
            if (!s.done) {
                obs.all_done_and_agreed = false;
            } else if (!agreed_level) {
                agreed_level = s.level_q;
            } else if (*agreed_level != s.level_q) {
                obs.all_done_and_agreed = false;
            }
        }
    }
    return obs;
}

SurvivorDistribution survivor_distribution(std::size_t n, std::size_t runs,
                                           std::uint64_t seed, std::size_t threads) {
    SurvivorDistribution dist;
    dist.runs = runs;
    std::mutex merge_mutex;
    shared_pool().for_each(
        runs,
        [&](std::size_t rep) {
            const QuickElimObservation obs =
                observe_quick_elimination(n, derive_seed(seed, rep));
            const std::lock_guard lock(merge_mutex);
            dist.counts.add(obs.leaders);
            if (!obs.all_in_first_epoch) ++dist.epoch_violations;
            if (obs.any_level_capped) ++dist.cap_violations;
            if (!obs.all_done_and_agreed) ++dist.agreement_violations;
        },
        threads);
    return dist;
}

SyncObservation observe_synchronizer(std::size_t n, std::uint64_t seed,
                                     StepCount max_steps) {
    Engine<Pll> engine(Pll::for_population(n), n, seed);
    SyncObservation obs;

    // Shadow per-agent epochs so progress tracking is O(1) per interaction.
    std::vector<std::uint8_t> epochs(n, 1);
    std::array<std::size_t, 5> at_least{n, n, 0, 0, 0};  // at_least[e] = #agents with epoch ≥ e

    for (StepCount step = 1; step <= max_steps; ++step) {
        const Interaction ia = engine.step();
        for (const AgentId id : {ia.initiator, ia.responder}) {
            const auto e = static_cast<std::uint8_t>(
                Pll::epoch_of(engine.population()[id]));
            for (std::uint8_t k = epochs[id] + 1U; k <= e; ++k) ++at_least[k];
            epochs[id] = e;
            if (obs.first_color_change == 0 &&
                Pll::color_of(engine.population()[id]) != 0) {
                obs.first_color_change = step;
            }
        }
        for (std::size_t e = 2; e <= 4; ++e) {
            if (!obs.all_in_epoch[e - 2] && at_least[e] == n) {
                obs.all_in_epoch[e - 2] = step;
            }
        }
        if (engine.leader_count() == 1 && obs.all_in_epoch[2]) break;
    }
    obs.stabilization_step = engine.stabilization_step();
    obs.steps_run = engine.steps();
    return obs;
}

CoinFairnessReport measure_symmetric_coins(std::size_t n, StepCount steps,
                                           std::uint64_t seed) {
    require(n >= 3, "symmetric PLL requires n >= 3");
    Engine<SymmetricPll> engine(SymmetricPll::for_population(n), n, seed);
    UniformScheduler scheduler(n, derive_seed(seed, 0x0C01));

    CoinFairnessReport report;
    std::vector<std::uint8_t> flip_results;
    flip_results.reserve(1024);

    std::int64_t f_balance = 0;  // #F0 − #F1, updated incrementally

    const auto coin_of = [&](AgentId id) {
        return SymmetricPll::coin_of(engine.population()[id]);
    };
    const auto count_as = [](CoinStatus c) {
        return c == CoinStatus::f0 ? 1 : (c == CoinStatus::f1 ? -1 : 0);
    };

    for (StepCount step = 0; step < steps; ++step) {
        const Interaction ia = scheduler.next();
        const bool lead0 = SymmetricPll::is_leader(engine.population()[ia.initiator]);
        const bool lead1 = SymmetricPll::is_leader(engine.population()[ia.responder]);
        // A coin observation: exactly one leader, partner holding a minted coin.
        if (lead0 != lead1) {
            const AgentId follower = lead0 ? ia.responder : ia.initiator;
            const CoinStatus c = coin_of(follower);
            if (c == CoinStatus::f0 || c == CoinStatus::f1) {
                ++report.flips;
                const bool head = c == CoinStatus::f0;
                report.heads += head ? 1 : 0;
                flip_results.push_back(head ? 1 : 0);
            }
        }
        const int before = count_as(coin_of(ia.initiator)) + count_as(coin_of(ia.responder));
        engine.apply(ia);
        const int after = count_as(coin_of(ia.initiator)) + count_as(coin_of(ia.responder));
        f_balance += after - before;
        if (f_balance != 0) report.f0_f1_always_equal = false;
    }

    if (report.flips > 0) {
        report.head_fraction =
            static_cast<double>(report.heads) / static_cast<double>(report.flips);
        report.head_ci = wilson_interval(report.heads, report.flips);
    }
    if (flip_results.size() >= 3) {
        // Sample lag-1 autocorrelation of the 0/1 flip sequence.
        const double mean = report.head_fraction;
        double num = 0.0;
        double den = 0.0;
        for (std::size_t i = 0; i < flip_results.size(); ++i) {
            const double d = flip_results[i] - mean;
            den += d * d;
            if (i + 1 < flip_results.size()) {
                num += d * (flip_results[i + 1] - mean);
            }
        }
        report.lag1_correlation = den == 0.0 ? 0.0 : num / den;
    }
    return report;
}

}  // namespace ppsim
