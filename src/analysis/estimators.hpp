/// \file estimators.hpp
/// \brief Protocol-specific measurements that turn the paper's quantitative
/// lemmas into experiments: Lemma 7 (QuickElimination survivor counts),
/// Lemma 6 (synchroniser behaviour) and the Section-4 coin-fairness claim.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "../core/common.hpp"
#include "../core/stats.hpp"

namespace ppsim {

/// Outcome of one QuickElimination observation (Lemma 7): run PLL from its
/// initial configuration for exactly ⌊21·n·ln n⌋ interactions — the horizon
/// of Lemma 7 — and inspect the configuration.
struct QuickElimObservation {
    std::size_t leaders = 0;        ///< |VL| at the horizon
    bool all_in_first_epoch = true; ///< no agent left epoch 1 (condition 1 of Lemma 7)
    bool any_level_capped = false;  ///< some levelQ hit lmax (condition 2 violated)
    bool all_done_and_agreed = true;///< VA agents all done with equal levelQ (condition 3)
};

/// Runs one seeded QuickElimination observation at population size n.
[[nodiscard]] QuickElimObservation observe_quick_elimination(std::size_t n,
                                                             std::uint64_t seed);

/// Aggregated Lemma-7 experiment: distribution of surviving leader counts
/// over many seeded runs, plus how often the lemma's three whp side
/// conditions held.
struct SurvivorDistribution {
    FrequencyTable counts;            ///< key = surviving leaders at the horizon
    std::size_t runs = 0;
    std::size_t epoch_violations = 0; ///< runs where some agent left epoch 1 early
    std::size_t cap_violations = 0;   ///< runs where levelQ saturated
    std::size_t agreement_violations = 0;  ///< runs where VA had not agreed yet
};
[[nodiscard]] SurvivorDistribution survivor_distribution(std::size_t n, std::size_t runs,
                                                         std::uint64_t seed,
                                                         std::size_t threads = 0);

/// Synchroniser trace of one PLL run (Lemma 6 / the CountUp machinery):
/// when colours first change and when the population completes each epoch.
struct SyncObservation {
    StepCount first_color_change = 0;      ///< first step any agent leaves colour 0
    /// Step at which the *last* agent entered epoch e (index e−2 ⇒ epochs 2..4);
    /// unset if the run ended first.
    std::array<std::optional<StepCount>, 3> all_in_epoch;
    std::optional<StepCount> stabilization_step;  ///< first single-leader step
    StepCount steps_run = 0;
};
[[nodiscard]] SyncObservation observe_synchronizer(std::size_t n, std::uint64_t seed,
                                                   StepCount max_steps);

/// Fairness measurement of the Section-4 symmetric coin substrate: drive a
/// symmetric-PLL run, record every coin observation made by a leader
/// (meeting a follower with coin F0 = head / F1 = tail) and test fairness
/// and lag-1 independence; also verify the #F0 = #F1 invariant after every
/// interaction.
struct CoinFairnessReport {
    std::uint64_t flips = 0;
    std::uint64_t heads = 0;
    double head_fraction = 0.0;
    double lag1_correlation = 0.0;  ///< sample autocorrelation of the flip sequence
    bool f0_f1_always_equal = true; ///< invariant held at every step
    ProportionCi head_ci;           ///< Wilson CI for P(head)
};
[[nodiscard]] CoinFairnessReport measure_symmetric_coins(std::size_t n, StepCount steps,
                                                         std::uint64_t seed);

}  // namespace ppsim
