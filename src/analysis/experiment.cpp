#include "experiment.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <optional>

#include "../core/log.hpp"
#include "../core/random.hpp"
#include "../core/thread_pool.hpp"
#include "../protocols/registry.hpp"

namespace ppsim {

StepCount StepBudget::n_log_n(std::size_t n, double factor) {
    const double lg = std::max(1.0, std::log2(static_cast<double>(n)));
    return static_cast<StepCount>(factor * static_cast<double>(n) * lg);
}

StepCount StepBudget::n_squared(std::size_t n, double factor) {
    return static_cast<StepCount>(factor * static_cast<double>(n) * static_cast<double>(n));
}

LinearFit SweepResult::fit_vs_log_n() const {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const SweepPoint& p : points) {
        if (p.parallel_time.count() == 0) continue;
        xs.push_back(static_cast<double>(p.n));
        ys.push_back(p.parallel_time.mean());
    }
    return fit_log2(xs, ys);
}

LinearFit SweepResult::fit_power_law() const {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const SweepPoint& p : points) {
        if (p.parallel_time.count() == 0) continue;
        xs.push_back(static_cast<double>(p.n));
        ys.push_back(p.parallel_time.mean());
    }
    return ppsim::fit_power_law(xs, ys);
}

SweepResult run_sweep(const SweepConfig& config) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    require(registry.contains(config.protocol), "unknown protocol: " + config.protocol);
    require(!config.sizes.empty(), "sweep needs at least one population size");
    require(config.repetitions >= 1, "sweep needs at least one repetition");

    const auto budget = config.budget
        ? config.budget
        : [](std::size_t n) { return StepBudget::n_log_n(n); };

    SweepResult result;
    result.protocol = config.protocol;
    result.engine = config.engine;
    result.batch_mode = config.batch_mode;
    for (const std::size_t n : config.sizes) {
        SweepPoint point;
        point.n = n;
        point.repetitions = config.repetitions;
        const StepCount max_steps = budget(n);

        std::mutex merge_mutex;
        // Repetitions fan out over the process-wide shared pool; when the
        // engines shard internally (engine_threads > 1) the repetition
        // concurrency is capped so repetitions x engine shards never exceed
        // the hardware thread count.
        const std::size_t hw =
            std::max<std::size_t>(1, std::thread::hardware_concurrency());
        const std::size_t engine_threads =
            config.engine_threads == 0 ? hw : config.engine_threads;
        std::size_t rep_threads = config.threads == 0 ? hw : config.threads;
        if (engine_threads > 1) {
            rep_threads = std::min(rep_threads, std::max<std::size_t>(1, hw / engine_threads));
        }
        shared_pool().for_each(
            config.repetitions,
            [&](std::size_t rep) {
                const std::uint64_t seed =
                    derive_seed(config.seed, (static_cast<std::uint64_t>(n) << 20U) + rep);
                const auto sim = registry.make_simulation(config.protocol, n, seed,
                                                          config.engine, config.batch_mode,
                                                          engine_threads);
                if (!config.checkpoint_dir.empty()) {
                    const StepCount every =
                        config.checkpoint_every > 0
                            ? config.checkpoint_every
                            : std::max<StepCount>(1, max_steps / 8);
                    sim->set_checkpoint(config.checkpoint_dir + "/" + config.protocol +
                                            "-n" + std::to_string(n) + "-rep" +
                                            std::to_string(rep) + ".ppck",
                                        every);
                }
                std::optional<TrajectoryRecorder> recorder;
                if (config.trajectory_stride > 0) {
                    recorder.emplace(config.trajectory_stride,
                                     config.trajectory_live_states);
                    sim->add_observer(*recorder);
                }
                std::optional<DeadlineObserver> deadline;
                if (config.deadline_time > 0.0) {
                    deadline.emplace(config.deadline_time, n);
                    sim->add_observer(*deadline);
                }
                std::optional<RecoveryObserver> recovery;
                if (!config.fault_plan.empty()) {
                    sim->set_fault_plan(config.fault_plan);
                    recovery.emplace(n);
                    sim->add_observer(*recovery);
                }
                std::unique_ptr<SimulationObserver> custom;
                if (config.make_observer) {
                    custom = config.make_observer(n, rep);
                    if (custom) sim->add_observer(*custom);
                }
                const RunResult run =
                    run_to_single_leader(*sim, max_steps, config.verify_steps);
                const std::lock_guard lock(merge_mutex);
                if (run.converged && run.stabilization_step) {
                    const double t = run.stabilization_parallel_time(n);
                    point.parallel_time.add(t);
                    point.samples.add(t);
                } else {
                    ++point.failures;
                }
                if (deadline && deadline->report()) {
                    const DeadlineReport& report = *deadline->report();
                    // A report is a valid deadline-time census when the run
                    // reached the deadline step, or stabilised first (the
                    // absorbing final state holds through the deadline). A
                    // run that merely exhausted its budget reports an
                    // earlier, still-evolving census — exclude it rather
                    // than poison the aggregate (it also counts in
                    // `failures`).
                    if (report.reached_deadline || report.stabilized) {
                        point.deadline_leaders.add(
                            static_cast<double>(report.leader_count));
                        if (report.stabilized) ++point.deadline_stabilized;
                    }
                }
                if (recovery) {
                    for (const RecoveryRecord& record : recovery->records()) {
                        RecoveryRow row;
                        row.rep = rep;
                        row.fault_index = record.fault_index;
                        row.fault_time = record.fault_time;
                        if (const auto span = record.recovery_time(n)) {
                            row.recovered = true;
                            row.recovery_time = *span;
                            point.recovery_time.add(*span);
                            ++point.recovery_events;
                        } else {
                            ++point.unrecovered_faults;
                        }
                        point.recovery_rows.push_back(row);
                    }
                }
                if (recorder) {
                    point.trajectories.push_back(RepTrajectory{rep, recorder->take_points()});
                }
            },
            rep_threads);
        // Repetitions merge in completion order; sort for reproducible output.
        std::sort(point.trajectories.begin(), point.trajectories.end(),
                  [](const RepTrajectory& a, const RepTrajectory& b) { return a.rep < b.rep; });
        std::sort(point.recovery_rows.begin(), point.recovery_rows.end(),
                  [](const RecoveryRow& a, const RecoveryRow& b) {
                      return a.rep != b.rep ? a.rep < b.rep
                                            : a.fault_index < b.fault_index;
                  });

        log_debug("sweep " + config.protocol + " n=" + std::to_string(n) + " mean=" +
                  std::to_string(point.parallel_time.mean()) + " failures=" +
                  std::to_string(point.failures));
        result.points.push_back(std::move(point));
    }
    return result;
}

std::vector<RunResult> run_repeated(const std::string& protocol, std::size_t n,
                                    std::size_t repetitions, std::uint64_t seed,
                                    StepCount max_steps, std::size_t threads) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    require(registry.contains(protocol), "unknown protocol: " + protocol);
    std::vector<RunResult> results(repetitions);
    shared_pool().for_each(
        repetitions,
        [&](std::size_t rep) {
            const std::uint64_t child = derive_seed(seed, rep);
            const auto sim = registry.make_simulation(protocol, n, child);
            results[rep] = run_to_single_leader(*sim, max_steps);
        },
        threads);
    return results;
}

TrajectoryRun record_trajectory(const std::string& protocol, std::size_t n,
                                std::uint64_t seed, StepCount max_steps,
                                StepCount stride, EngineKind engine,
                                bool record_live_states, BatchMode batch_mode,
                                const FaultPlan& fault_plan, std::size_t engine_threads) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    require(registry.contains(protocol), "unknown protocol: " + protocol);
    const auto sim =
        registry.make_simulation(protocol, n, seed, engine, batch_mode, engine_threads);
    if (!fault_plan.empty()) sim->set_fault_plan(fault_plan);
    TrajectoryRecorder recorder(stride, record_live_states);
    sim->add_observer(recorder);
    TrajectoryRun out;
    out.result = sim->run_until_one_leader(max_steps);
    out.points = recorder.take_points();
    return out;
}

}  // namespace ppsim
