/// \file experiment.hpp
/// \brief The experiment driver: repeated, seeded, parallel election runs
/// across population sweeps, with aggregation ready for table rendering.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "../core/common.hpp"
#include "../core/engine.hpp"
#include "../core/stats.hpp"

namespace ppsim {

/// Step budgets for bounded runs, as multiples of the protocol's expected
/// scaling. Budgets are generous (a failed run is a reported failure, not a
/// crash), but must stay finite to keep sweeps bounded.
struct StepBudget {
    /// ~factor · n·log2(n) steps — for polylogarithmic-time protocols.
    [[nodiscard]] static StepCount n_log_n(std::size_t n, double factor = 200.0);
    /// ~factor · n² steps — for linear-parallel-time protocols.
    [[nodiscard]] static StepCount n_squared(std::size_t n, double factor = 60.0);
};

/// Configuration of a sweep: one protocol, several population sizes, many
/// seeded repetitions per size.
struct SweepConfig {
    std::string protocol;           ///< registry name
    std::vector<std::size_t> sizes; ///< population sizes n
    std::size_t repetitions = 30;   ///< runs per size
    std::uint64_t seed = 0xACE1ULL; ///< root seed; rep i uses derive_seed(seed, i)
    std::size_t threads = 0;        ///< 0 = hardware concurrency
    /// Simulation back-end: per-interaction agent engine or count-based
    /// batched engine (same distribution, far faster at large n).
    EngineKind engine = EngineKind::agent;
    /// Step budget per n; defaults to StepBudget::n_log_n.
    std::function<StepCount(std::size_t)> budget;
    /// Extra steps of output-stability verification after convergence
    /// (0 = skip verification).
    StepCount verify_steps = 0;
};

/// Aggregated results for one population size.
struct SweepPoint {
    std::size_t n = 0;
    std::size_t repetitions = 0;
    std::size_t failures = 0;       ///< runs that missed the budget or failed verification
    RunningStats parallel_time;     ///< stabilisation time (parallel) over converged runs
    SampleSet samples;              ///< raw stabilisation times for percentiles
};

/// Results of a full sweep.
struct SweepResult {
    std::string protocol;
    EngineKind engine = EngineKind::agent;  ///< back-end the sweep ran on
    std::vector<SweepPoint> points;

    /// Least-squares fit of mean stabilisation time against log2(n).
    [[nodiscard]] LinearFit fit_vs_log_n() const;
    /// Least-squares power-law fit of mean stabilisation time against n.
    [[nodiscard]] LinearFit fit_power_law() const;
};

/// Runs the sweep described by `config` (parallel across repetitions).
[[nodiscard]] SweepResult run_sweep(const SweepConfig& config);

/// Runs `repetitions` elections of one protocol at a single size and
/// returns the raw per-run results (building block for custom experiments).
[[nodiscard]] std::vector<RunResult> run_repeated(const std::string& protocol, std::size_t n,
                                                  std::size_t repetitions, std::uint64_t seed,
                                                  StepCount max_steps,
                                                  std::size_t threads = 0);

}  // namespace ppsim
