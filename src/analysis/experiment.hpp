/// \file experiment.hpp
/// \brief The experiment driver: repeated, seeded, parallel election runs
/// across population sweeps, with aggregation ready for table rendering.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "../core/batch_pairing.hpp"
#include "../core/common.hpp"
#include "../core/engine.hpp"
#include "../core/fault.hpp"
#include "../core/observer.hpp"
#include "../core/stats.hpp"

namespace ppsim {

/// Step budgets for bounded runs, as multiples of the protocol's expected
/// scaling. Budgets are generous (a failed run is a reported failure, not a
/// crash), but must stay finite to keep sweeps bounded.
struct StepBudget {
    /// ~factor · n·log2(n) steps — for polylogarithmic-time protocols.
    [[nodiscard]] static StepCount n_log_n(std::size_t n, double factor = 200.0);
    /// ~factor · n² steps — for linear-parallel-time protocols.
    [[nodiscard]] static StepCount n_squared(std::size_t n, double factor = 60.0);
};

/// Configuration of a sweep: one protocol, several population sizes, many
/// seeded repetitions per size.
struct SweepConfig {
    std::string protocol;           ///< registry name
    std::vector<std::size_t> sizes; ///< population sizes n
    std::size_t repetitions = 30;   ///< runs per size
    std::uint64_t seed = 0xACE1ULL; ///< root seed; rep i uses derive_seed(seed, i)
    /// Worker cap for the repetition fan-out (0 = hardware concurrency).
    /// Repetitions run on the process-wide shared pool (core/thread_pool.hpp)
    /// so nested parallel layers never oversubscribe; when `engine_threads`
    /// > 1 the effective repetition concurrency is additionally capped at
    /// hardware_concurrency / engine_threads.
    std::size_t threads = 0;
    /// Simulation back-end: per-interaction agent engine, count-based
    /// batched engine, reaction-rate gillespie engine, or the adaptive
    /// hybrid meta-engine (see README "Choosing an engine" for
    /// distribution and speed trade-offs). A hybrid sweep reads the
    /// process-wide calibration options (core/calibration.hpp) — set them
    /// before run_sweep when a non-default cache dir or an injected cost
    /// table is wanted; all repetitions then share one memoised table, so
    /// the sweep stays seeded-deterministic.
    EngineKind engine = EngineKind::agent;
    /// Batch-pairing strategy of the batched engine (core/batch_pairing.hpp):
    /// auto (per-batch choice), pairwise shuffle, or bulk contingency-table
    /// sampling. Ignored by the agent engine.
    BatchMode batch_mode = BatchMode::automatic;
    /// Intra-run worker count of the count engines (1 = sequential engines,
    /// 0 = hardware concurrency; core/shard.hpp documents the stream-split
    /// contract). Ignored by the agent engine. The code path behind
    /// `ppsim_sim --threads`.
    std::size_t engine_threads = 1;
    /// Step budget per n; defaults to StepBudget::n_log_n.
    std::function<StepCount(std::size_t)> budget;
    /// Extra steps of output-stability verification after convergence
    /// (0 = skip verification).
    StepCount verify_steps = 0;
    /// When > 0, attach a DeadlineObserver (core/observer.hpp) to every
    /// repetition at this model-time point (parallel-time units): each run
    /// reports its leader count at model time `deadline_time`, aggregated
    /// into SweepPoint::deadline_leaders / deadline_stabilized. Runs that
    /// stabilise before the deadline report their absorbing final census.
    /// The code path behind `ppsim_sim --deadline`.
    double deadline_time = 0.0;
    /// When > 0, record a leader-count trajectory for every repetition,
    /// sampled every `trajectory_stride` interactions (kept per SweepPoint,
    /// sorted by repetition index for reproducibility).
    StepCount trajectory_stride = 0;
    /// Also record the distinct-state census per trajectory sample. Free on
    /// the batched engine (O(#states)); an O(n) pass per sample on the
    /// agent engine — switch off for large-n agent sweeps.
    bool trajectory_live_states = true;
    /// Fault plan injected into every repetition (empty = fault-free). Times
    /// are model times in units of the initial population (core/fault.hpp).
    /// When non-empty, a RecoveryObserver is attached per repetition and its
    /// records aggregate into SweepPoint::recovery_time / recovery_rows.
    /// The code path behind `ppsim_sim --inject` and `--scenario`.
    FaultPlan fault_plan;
    /// When non-empty, every repetition periodically checkpoints its full
    /// run state (core/persist.hpp "PPCK" containers, one file per
    /// repetition: "<protocol>-n<N>-rep<R>.ppck") into this directory, so a
    /// killed sweep's longest runs can be resumed individually via
    /// ProtocolRegistry::resume_simulation / `ppsim_sim --resume`. The
    /// directory is created on first write.
    std::string checkpoint_dir;
    /// Checkpoint cadence in steps for `checkpoint_dir` (0 = an eighth of
    /// the repetition's step budget). The cadence is part of the replay
    /// contract (see docs/ARCHITECTURE.md): runs checkpointing on different
    /// cadences slice their engine rounds differently.
    StepCount checkpoint_every = 0;
    /// Optional per-repetition observer factory: called as (n, rep) before
    /// each run; the returned observer is attached to that run's Simulation
    /// and destroyed right after it completes. Use for custom
    /// instrumentation (milestones, snapshots) beyond the built-in
    /// trajectory capture. Concurrency contract: repetitions run on a
    /// thread pool, so the factory and each observer's observe()/finish()
    /// execute on worker threads with no lock held — harvest results in the
    /// factory-created observer's destructor or behind your own mutex, and
    /// keep any state captured by the factory synchronised.
    std::function<std::unique_ptr<SimulationObserver>(std::size_t, std::size_t)>
        make_observer;
};

/// One repetition's recorded trajectory within a sweep point.
struct RepTrajectory {
    std::size_t rep = 0;                   ///< repetition index within the point
    std::vector<TrajectoryPoint> points;   ///< leader-count time series
};

/// One injected fault's recovery outcome within one repetition of a sweep.
struct RecoveryRow {
    std::size_t rep = 0;          ///< repetition index within the point
    std::size_t fault_index = 0;  ///< index into the plan's firing order
    double fault_time = 0.0;      ///< when the fault fired (model time, n₀ units)
    double recovery_time = 0.0;   ///< re-stabilisation span (n₀ units); 0 if unrecovered
    bool recovered = false;       ///< the run re-stabilised after this fault
};

/// Aggregated results for one population size.
struct SweepPoint {
    std::size_t n = 0;
    std::size_t repetitions = 0;
    std::size_t failures = 0;       ///< runs that missed the budget or failed verification
    RunningStats parallel_time;     ///< stabilisation time (parallel) over converged runs
    SampleSet samples;              ///< raw stabilisation times for percentiles
    /// Leader counts observed at SweepConfig::deadline_time — one sample
    /// per repetition that reached the deadline or stabilised before it
    /// (budget-exhausted runs are excluded: their census predates the
    /// deadline). Empty unless deadline_time > 0.
    RunningStats deadline_leaders;
    /// Repetitions that had stabilised (single leader) by the deadline.
    std::size_t deadline_stabilized = 0;
    /// Post-fault recovery spans (parallel time, n₀ units) pooled over every
    /// recovered fault of every repetition. Empty unless
    /// SweepConfig::fault_plan is non-empty.
    RunningStats recovery_time;
    /// Faults that recovered (resp. never re-stabilised within budget),
    /// summed over repetitions.
    std::size_t recovery_events = 0;
    std::size_t unrecovered_faults = 0;
    /// Per-(repetition, fault) recovery rows, sorted by (rep, fault_index)
    /// (empty unless fault_plan is non-empty).
    std::vector<RecoveryRow> recovery_rows;
    /// Per-repetition trajectories (empty unless trajectory_stride > 0).
    std::vector<RepTrajectory> trajectories;
};

/// Results of a full sweep.
struct SweepResult {
    std::string protocol;
    EngineKind engine = EngineKind::agent;  ///< back-end the sweep ran on
    BatchMode batch_mode = BatchMode::automatic;  ///< pairing strategy used
    std::vector<SweepPoint> points;

    /// Least-squares fit of mean stabilisation time against log2(n).
    [[nodiscard]] LinearFit fit_vs_log_n() const;
    /// Least-squares power-law fit of mean stabilisation time against n.
    [[nodiscard]] LinearFit fit_power_law() const;
};

/// Runs the sweep described by `config` (parallel across repetitions).
[[nodiscard]] SweepResult run_sweep(const SweepConfig& config);

/// Runs `repetitions` elections of one protocol at a single size and
/// returns the raw per-run results (building block for custom experiments).
[[nodiscard]] std::vector<RunResult> run_repeated(const std::string& protocol, std::size_t n,
                                                  std::size_t repetitions, std::uint64_t seed,
                                                  StepCount max_steps,
                                                  std::size_t threads = 0);

/// One seeded election with trajectory capture: runs `protocol` on `n`
/// agents until one leader (or `max_steps`), recording the leader-count
/// series every `stride` interactions. The code path behind
/// `ppsim_sim --trajectory`, shared with the tests for both engines.
/// `record_live_states` as in SweepConfig::trajectory_live_states.
struct TrajectoryRun {
    RunResult result;
    std::vector<TrajectoryPoint> points;
};
[[nodiscard]] TrajectoryRun record_trajectory(const std::string& protocol, std::size_t n,
                                              std::uint64_t seed, StepCount max_steps,
                                              StepCount stride,
                                              EngineKind engine = EngineKind::agent,
                                              bool record_live_states = true,
                                              BatchMode batch_mode = BatchMode::automatic,
                                              const FaultPlan& fault_plan = {},
                                              std::size_t engine_threads = 1);

}  // namespace ppsim
