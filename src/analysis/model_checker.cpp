#include "model_checker.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace ppsim {

namespace {

/// A configuration: the sorted multiset of per-agent state keys.
using Config = std::vector<std::uint64_t>;

struct ConfigHash {
    std::size_t operator()(const Config& c) const noexcept {
        // FNV-1a over the key words; configurations are canonical (sorted).
        std::uint64_t h = 1469598103934665603ULL;
        for (const std::uint64_t k : c) {
            h ^= k;
            h *= 1099511628211ULL;
        }
        return static_cast<std::size_t>(h);
    }
};

/// Side table of discovered agent states: key → raw bytes + output role.
class StateTable {
public:
    explicit StateTable(const AnyProtocol& protocol) : protocol_(protocol) {}

    std::uint64_t intern(const std::byte* bytes) {
        const std::uint64_t key = protocol_.state_key(bytes);
        auto [it, inserted] = states_.try_emplace(key);
        if (inserted) {
            it->second.bytes.assign(bytes, bytes + protocol_.state_size());
            it->second.is_leader = protocol_.output(bytes) == Role::leader;
        }
        return key;
    }

    [[nodiscard]] const std::byte* bytes(std::uint64_t key) const {
        return states_.at(key).bytes.data();
    }

    [[nodiscard]] bool is_leader(std::uint64_t key) const {
        return states_.at(key).is_leader;
    }

private:
    struct Entry {
        std::vector<std::byte> bytes;
        bool is_leader = false;
    };
    const AnyProtocol& protocol_;
    std::unordered_map<std::uint64_t, Entry> states_;
};

std::size_t leader_count(const Config& config, const StateTable& table) {
    std::size_t leaders = 0;
    for (const std::uint64_t key : config) leaders += table.is_leader(key) ? 1 : 0;
    return leaders;
}

}  // namespace

ModelCheckReport model_check(const AnyProtocol& protocol, std::size_t n,
                             std::size_t max_configurations) {
    require(n >= 2, "model checking needs at least two agents");
    require(max_configurations >= 1, "configuration budget must be positive");

    StateTable table(protocol);
    const std::size_t stride = protocol.state_size();

    // Initial configuration: n copies of the initial state.
    std::vector<std::byte> scratch(stride * 2);
    protocol.write_initial_state(scratch.data());
    const std::uint64_t init_key = table.intern(scratch.data());
    Config initial(n, init_key);

    std::unordered_map<Config, std::uint32_t, ConfigHash> index_of;
    std::vector<Config> configs;
    std::vector<std::vector<std::uint32_t>> reverse_edges;
    std::deque<std::uint32_t> frontier;

    const auto intern_config = [&](Config c) -> std::int64_t {
        const auto it = index_of.find(c);
        if (it != index_of.end()) return it->second;
        if (configs.size() >= max_configurations) return -1;
        const auto id = static_cast<std::uint32_t>(configs.size());
        index_of.emplace(c, id);
        configs.push_back(std::move(c));
        reverse_edges.emplace_back();
        frontier.push_back(id);
        return id;
    };

    ModelCheckReport report;
    (void)intern_config(initial);
    bool truncated = false;

    while (!frontier.empty()) {
        const std::uint32_t id = frontier.front();
        frontier.pop_front();
        const Config config = configs[id];  // copy: configs may reallocate below
        const std::size_t leaders_here = leader_count(config, table);
        if (leaders_here == 0) report.safety_holds = false;

        // Enumerate ordered pairs of *state values* present in the multiset;
        // a same-state pair needs multiplicity ≥ 2.
        std::vector<std::pair<std::uint64_t, std::size_t>> census;
        for (const std::uint64_t key : config) {
            if (!census.empty() && census.back().first == key) {
                ++census.back().second;
            } else {
                census.emplace_back(key, 1);
            }
        }
        std::unordered_set<Config, ConfigHash> successors;
        for (const auto& [ka, count_a] : census) {
            for (const auto& [kb, count_b] : census) {
                if (ka == kb && count_a < 2) continue;
                std::memcpy(scratch.data(), table.bytes(ka), stride);
                std::memcpy(scratch.data() + stride, table.bytes(kb), stride);
                protocol.interact(scratch.data(), scratch.data() + stride);
                const std::uint64_t ka2 = table.intern(scratch.data());
                const std::uint64_t kb2 = table.intern(scratch.data() + stride);

                Config next = config;
                // Remove one occurrence of ka and one of kb, insert ka2, kb2.
                next.erase(std::find(next.begin(), next.end(), ka));
                next.erase(std::find(next.begin(), next.end(), kb));
                next.push_back(ka2);
                next.push_back(kb2);
                std::sort(next.begin(), next.end());
                successors.insert(std::move(next));
            }
        }

        for (const Config& next : successors) {
            ++report.transitions;
            if (leaders_here == 1 && leader_count(next, table) != 1) {
                report.single_leader_absorbing = false;
            }
            const std::int64_t next_id = intern_config(next);
            if (next_id < 0) {
                truncated = true;
                continue;
            }
            reverse_edges[static_cast<std::size_t>(next_id)].push_back(id);
        }
    }

    report.configurations = configs.size();
    report.exhausted = !truncated;

    // Convergence certificate: backward reachability from single-leader
    // configurations must cover everything (only sound when exhausted).
    if (report.exhausted) {
        std::vector<bool> can_converge(configs.size(), false);
        std::deque<std::uint32_t> work;
        for (std::uint32_t id = 0; id < configs.size(); ++id) {
            if (leader_count(configs[id], table) == 1) {
                can_converge[id] = true;
                work.push_back(id);
            }
        }
        while (!work.empty()) {
            const std::uint32_t id = work.front();
            work.pop_front();
            for (const std::uint32_t pred : reverse_edges[id]) {
                if (!can_converge[pred]) {
                    can_converge[pred] = true;
                    work.push_back(pred);
                }
            }
        }
        report.convergence_certified =
            std::all_of(can_converge.begin(), can_converge.end(),
                        [](bool b) { return b; });
    }
    return report;
}

}  // namespace ppsim
