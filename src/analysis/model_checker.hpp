/// \file model_checker.hpp
/// \brief Exhaustive configuration-space exploration for tiny populations.
///
/// Agents in the PP model are anonymous and the interaction graph is
/// complete, so a configuration is fully described by the *multiset* of
/// agent states. For small n and small per-agent state spaces the whole
/// reachable configuration graph fits in memory, and we can verify — by
/// exhaustive search rather than sampling — the two properties every
/// leader-election protocol in this library certifies:
///
///  * **Safety**: every reachable configuration has at least one leader.
///  * **Convergence-with-probability-1** (the probability-1 core of the
///    paper's correctness argument): from every reachable configuration a
///    single-leader configuration is reachable, and single-leader
///    configurations only step to single-leader configurations (the
///    absorbing certificate). Under the uniformly random scheduler, these
///    two facts imply stabilisation with probability 1.
///
/// Exploration is budgeted: protocols with large per-agent state spaces
/// (PLL's timers) exceed any budget, in which case the checker reports
/// `exhausted = false` and the verdicts hold for the explored subgraph —
/// still a strong, deterministic complement to the sampled property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "../core/common.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// Result of a model-checking run.
struct ModelCheckReport {
    std::size_t configurations = 0;     ///< distinct configurations visited
    std::size_t transitions = 0;        ///< edges traversed
    bool exhausted = false;             ///< full reachable set explored?
    bool safety_holds = true;           ///< ≥ 1 leader everywhere visited
    /// Single-leader configurations never step to 0 or ≥ 2 leaders.
    bool single_leader_absorbing = true;
    /// Every visited configuration can reach a single-leader configuration
    /// (only meaningful when `exhausted`; false otherwise).
    bool convergence_certified = false;
};

/// Explores the configuration graph of `protocol` on `n` agents, up to
/// `max_configurations` distinct configurations.
[[nodiscard]] ModelCheckReport model_check(const AnyProtocol& protocol, std::size_t n,
                                           std::size_t max_configurations);

}  // namespace ppsim
