#include "report.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

namespace ppsim {

std::string render_sweep_table(const SweepResult& sweep, const std::string& title) {
    TextTable table;
    table.add_column("n");
    table.add_column("runs");
    table.add_column("mean time (par.)");
    table.add_column("median");
    table.add_column("p95");
    table.add_column("failures");
    for (const SweepPoint& p : sweep.points) {
        const bool has_data = p.parallel_time.count() > 0;
        table.add_row({
            std::to_string(p.n),
            std::to_string(p.repetitions),
            has_data ? format_with_ci(p.parallel_time.mean(),
                                      p.parallel_time.ci_half_width())
                     : "n/a",
            has_data ? format_double(p.samples.median()) : "n/a",
            has_data ? format_double(p.samples.percentile(95.0)) : "n/a",
            std::to_string(p.failures),
        });
    }
    return table.render(title);
}

std::string render_comparison_table(const std::vector<SweepResult>& sweeps,
                                    const std::string& title) {
    std::set<std::size_t> sizes;
    for (const SweepResult& sweep : sweeps) {
        for (const SweepPoint& p : sweep.points) sizes.insert(p.n);
    }
    TextTable table;
    table.add_column("n");
    for (const SweepResult& sweep : sweeps) table.add_column(sweep.protocol);
    for (const std::size_t n : sizes) {
        std::vector<std::string> row;
        row.push_back(std::to_string(n));
        for (const SweepResult& sweep : sweeps) {
            std::string cell = "-";
            for (const SweepPoint& p : sweep.points) {
                if (p.n == n && p.parallel_time.count() > 0) {
                    cell = format_double(p.parallel_time.mean());
                    if (p.failures > 0) cell += "*";
                }
            }
            row.push_back(std::move(cell));
        }
        table.add_row(std::move(row));
    }
    return table.render(title) + "(* = some runs missed the step budget)\n";
}

JsonValue sweep_to_json(const SweepResult& sweep) {
    JsonValue root = JsonValue::object();
    root.set("protocol", sweep.protocol);
    root.set("engine", to_string(sweep.engine));
    root.set("batch_mode", to_string(sweep.batch_mode));
    JsonValue points = JsonValue::array();
    for (const SweepPoint& p : sweep.points) {
        JsonValue point = JsonValue::object();
        point.set("n", static_cast<std::uint64_t>(p.n));
        point.set("repetitions", static_cast<std::uint64_t>(p.repetitions));
        point.set("failures", static_cast<std::uint64_t>(p.failures));
        if (p.parallel_time.count() > 0) {
            point.set("mean_parallel_time", p.parallel_time.mean());
            point.set("stddev", p.parallel_time.stddev());
            point.set("median", p.samples.median());
            point.set("p95", p.samples.percentile(95.0));
        }
        if (p.deadline_leaders.count() > 0) {
            point.set("deadline_mean_leaders", p.deadline_leaders.mean());
            point.set("deadline_max_leaders", p.deadline_leaders.max());
            point.set("deadline_stabilized",
                      static_cast<std::uint64_t>(p.deadline_stabilized));
        }
        if (p.recovery_events > 0 || p.unrecovered_faults > 0) {
            if (p.recovery_time.count() > 0) {
                point.set("recovery_mean_time", p.recovery_time.mean());
                point.set("recovery_max_time", p.recovery_time.max());
            }
            point.set("recovery_events",
                      static_cast<std::uint64_t>(p.recovery_events));
            point.set("unrecovered_faults",
                      static_cast<std::uint64_t>(p.unrecovered_faults));
        }
        points.push_back(std::move(point));
    }
    root.set("points", std::move(points));
    if (sweep.points.size() >= 2) {
        const LinearFit log_fit = sweep.fit_vs_log_n();
        JsonValue fit = JsonValue::object();
        fit.set("slope_per_log2n", log_fit.slope);
        fit.set("intercept", log_fit.intercept);
        fit.set("r_squared", log_fit.r_squared);
        root.set("fit_vs_log2n", std::move(fit));
        const LinearFit power = sweep.fit_power_law();
        JsonValue pfit = JsonValue::object();
        pfit.set("exponent", power.slope);
        pfit.set("r_squared", power.r_squared);
        root.set("fit_power_law", std::move(pfit));
    }
    return root;
}

void write_recovery_csv(std::ostream& out, const SweepResult& sweep) {
    out << "n,rep,fault_index,fault_time,recovery_time,recovered\n";
    for (const SweepPoint& p : sweep.points) {
        for (const RecoveryRow& row : p.recovery_rows) {
            out << p.n << ',' << row.rep << ',' << row.fault_index << ','
                << row.fault_time << ',' << row.recovery_time << ','
                << (row.recovered ? 1 : 0) << '\n';
        }
    }
}

void write_recovery_csv(const std::string& path, const SweepResult& sweep) {
    std::ofstream out(path);
    require(out.good(), "cannot open recovery file for writing: " + path);
    write_recovery_csv(out, sweep);
    out.flush();
    require(out.good(), "failed writing recovery file: " + path);
}

unsigned repro_scale() {
    const char* env = std::getenv("REPRO_SCALE");
    if (env == nullptr) return 1;
    const std::string value(env);
    if (value == "full") return 4;
    const int parsed = std::atoi(env);
    return parsed >= 1 ? static_cast<unsigned>(parsed) : 1;
}

}  // namespace ppsim
