/// \file report.hpp
/// \brief Rendering of experiment results as paper-style tables and
/// machine-readable JSON artefacts (shared by the bench binaries).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "../core/json.hpp"
#include "../core/table.hpp"
#include "experiment.hpp"

namespace ppsim {

/// Renders one sweep as a table: n | mean ± 95% CI | median | p95 | failures.
[[nodiscard]] std::string render_sweep_table(const SweepResult& sweep,
                                             const std::string& title);

/// Renders several sweeps side by side (rows = n, columns = protocols),
/// cells showing mean stabilisation parallel time.
[[nodiscard]] std::string render_comparison_table(const std::vector<SweepResult>& sweeps,
                                                  const std::string& title);

/// Serialises a sweep to JSON (per-point stats + scaling fits; recovery
/// aggregates appear when the sweep ran with a fault plan).
[[nodiscard]] JsonValue sweep_to_json(const SweepResult& sweep);

/// Writes per-(repetition, fault) recovery rows as CSV — the single
/// definition of the schema:
/// n,rep,fault_index,fault_time,recovery_time,recovered.
/// The path overload throws on I/O failure.
void write_recovery_csv(std::ostream& out, const SweepResult& sweep);
void write_recovery_csv(const std::string& path, const SweepResult& sweep);

/// Resolves the scale factor for benches: 1 by default, larger when the
/// REPRO_SCALE environment variable is set ("full" = 4, or a number).
[[nodiscard]] unsigned repro_scale();

}  // namespace ppsim
