#include "scenario.hpp"

#include <algorithm>

namespace ppsim {

namespace {

/// Leader-election churn: a crash wave mid-election, a rejoin wave of fresh
/// contenders (each a new leader candidate, reopening the race), then a
/// full adversarial reset. Exercises every count-surgery path and the
/// re-stabilisation measurement on a protocol whose whole point is electing
/// exactly one leader.
///
/// The final reset is deliberately the *whole* population: a crash wave can
/// remove every live leader while done followers carrying the dead leaders'
/// high lottery levels survive, and fresh level-0 contenders then lose to
/// those orphans — leader extinction is effectively permanent (the
/// loose-stabilisation caveat of the source paper, observed empirically).
/// A full reset wipes the orphaned levels, so the scenario is guaranteed to
/// re-elect and every repetition yields a recovery-time sample.
FaultPlan churn_election_plan(std::size_t n0) {
    FaultPlan plan;
    plan.add(2.0, FaultAction::crash_fraction(0.3));
    plan.add(5.0, FaultAction::rejoin_count(
                      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n0) * 3 / 10)));
    plan.add(8.0, FaultAction::reset_fraction(1.0));
    return plan;
}

/// Rated-protocol chaos: half the population reset to fresh candidates
/// (the epidemic must re-spread through the rate-thinned channels), a
/// silence window where model time passes with nothing reacting, then a
/// crash wave. Exercises faults under non-uniform reaction rates.
FaultPlan reset_epidemic_plan(std::size_t n0) {
    (void)n0;  // fraction-based throughout
    FaultPlan plan;
    plan.add(1.5, FaultAction::reset_fraction(0.5));
    plan.add(3.0, FaultAction::transient_silence(0.75));
    plan.add(5.0, FaultAction::crash_fraction(0.25));
    return plan;
}

}  // namespace

const std::vector<ChaosScenario>& chaos_scenarios() {
    static const std::vector<ChaosScenario> scenarios = {
        ChaosScenario{
            "churn_election", "lottery",
            "crash 30% at t=2, rejoin 30% fresh contenders at t=5, full reset at t=8",
            3000.0, &churn_election_plan},
        ChaosScenario{
            "reset_epidemic", "rated_epidemic",
            "reset 50% at t=1.5, silence for 0.75 time at t=3, crash 25% at t=5",
            3000.0, &reset_epidemic_plan},
    };
    return scenarios;
}

const ChaosScenario& find_chaos_scenario(const std::string& name) {
    for (const ChaosScenario& scenario : chaos_scenarios()) {
        if (scenario.name == name) return scenario;
    }
    std::string known;
    for (const ChaosScenario& scenario : chaos_scenarios()) {
        if (!known.empty()) known += ", ";
        known += scenario.name;
    }
    throw InvalidArgument("unknown scenario '" + name + "' (registered: " + known + ")");
}

}  // namespace ppsim
