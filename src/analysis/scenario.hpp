/// \file scenario.hpp
/// \brief Registered chaos workloads: named fault plans with a default
/// protocol, resolved per population size. The scenario registry is to
/// fault plans what the protocol registry is to protocols — the CLI
/// (`ppsim_sim --scenario`), the statistical cross-engine suites and the
/// docs all name the same workload and get the same plan.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "../core/fault.hpp"

namespace ppsim {

/// One registered chaos workload. `make_plan` resolves the plan against the
/// initial population n₀ (rejoin needs absolute counts; fractions stay
/// fractions so they track the population as it churns).
struct ChaosScenario {
    std::string name;       ///< registry key (`--scenario <name>`)
    std::string protocol;   ///< default protocol when the CLI is given none
    std::string summary;    ///< one-line description for `--list-scenarios`
    double budget_factor = 3000.0;  ///< suggested `--budget-factor`
    FaultPlan (*make_plan)(std::size_t n0) = nullptr;
};

/// Every registered chaos workload, in listing order.
[[nodiscard]] const std::vector<ChaosScenario>& chaos_scenarios();

/// Looks a scenario up by name; throws InvalidArgument when unknown (the
/// message lists the registered names).
[[nodiscard]] const ChaosScenario& find_chaos_scenario(const std::string& name);

}  // namespace ppsim
