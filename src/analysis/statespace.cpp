#include "statespace.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

#include "../core/random.hpp"
#include "../core/scheduler.hpp"
#include "../protocols/registry.hpp"

namespace ppsim {

StateSpaceReport count_reachable_states(const AnyProtocol& protocol, std::size_t n,
                                        std::size_t runs, StepCount steps_per_run,
                                        std::uint64_t seed) {
    require(n >= 2, "state-space exploration needs at least two agents");
    require(runs >= 1, "state-space exploration needs at least one run");

    const std::size_t stride = protocol.state_size();
    std::unordered_set<std::uint64_t> seen;
    StateSpaceReport report;
    report.declared_bound = protocol.state_bound();

    std::vector<std::byte> states(n * stride);
    for (std::size_t run = 0; run < runs; ++run) {
        // Fresh initial configuration.
        for (std::size_t i = 0; i < n; ++i) {
            protocol.write_initial_state(states.data() + i * stride);
        }
        seen.insert(protocol.state_key(states.data()));

        UniformScheduler scheduler(n, derive_seed(seed, run));
        for (StepCount step = 0; step < steps_per_run; ++step) {
            const Interaction ia = scheduler.next();
            std::byte* a = states.data() + static_cast<std::size_t>(ia.initiator) * stride;
            std::byte* b = states.data() + static_cast<std::size_t>(ia.responder) * stride;
            protocol.interact(a, b);
            seen.insert(protocol.state_key(a));
            seen.insert(protocol.state_key(b));
            ++report.steps_explored;
        }
    }
    report.distinct_states = seen.size();
    report.runs = runs;
    return report;
}

StateSpaceReport count_reachable_states(const std::string& protocol_name, std::size_t n,
                                        std::size_t runs, std::uint64_t seed) {
    const auto protocol = ProtocolRegistry::instance().make(protocol_name, n);
    const double lg = std::max(1.0, std::log2(static_cast<double>(n)));
    const auto steps = static_cast<StepCount>(60.0 * static_cast<double>(n) * lg);
    return count_reachable_states(*protocol, n, runs, steps, seed);
}

}  // namespace ppsim
