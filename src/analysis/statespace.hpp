/// \file statespace.hpp
/// \brief Empirical reachable-state-space counter — the measurement behind
/// the Table-3 / Lemma-3 reproduction ("PLL uses O(log n) states per agent").
///
/// We count *distinct agent states observed* across seeded executions: the
/// initial state plus the state of each touched agent after every
/// interaction. This lower-bounds the reachable set and, with enough seeded
/// runs, converges to the states a real execution visits — the quantity the
/// space complexity of a protocol talks about.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "../core/common.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// Result of a state-space exploration.
struct StateSpaceReport {
    std::size_t distinct_states = 0;    ///< distinct state_key values observed
    std::size_t declared_bound = 0;     ///< protocol's own domain-product bound (0 = none)
    StepCount steps_explored = 0;       ///< total interactions simulated
    std::size_t runs = 0;               ///< seeded executions explored
};

/// Counts distinct observed states of `protocol` on populations of size n,
/// across `runs` seeded executions of `steps_per_run` interactions each.
[[nodiscard]] StateSpaceReport count_reachable_states(const AnyProtocol& protocol,
                                                      std::size_t n, std::size_t runs,
                                                      StepCount steps_per_run,
                                                      std::uint64_t seed);

/// Convenience: looks the protocol up in the registry, instantiates it for
/// n, and explores with a Θ(n log n)·runs budget.
[[nodiscard]] StateSpaceReport count_reachable_states(const std::string& protocol_name,
                                                      std::size_t n, std::size_t runs,
                                                      std::uint64_t seed);

}  // namespace ppsim
