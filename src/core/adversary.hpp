/// \file adversary.hpp
/// \brief Non-uniform schedulers for robustness testing.
///
/// The paper's guarantees hold under the uniformly random scheduler Γ.
/// Safety properties (at least one leader, follower-ness absorbing, domain
/// bounds) must hold under *any* schedule, and these adversaries exercise
/// exactly that: structured interaction patterns a deployment might see
/// (synchronous matchings, a hub-and-spoke gateway, a biased sub-clique).
/// Tests drive protocol executions with them and re-check the invariants;
/// none of them is expected to preserve the *time* bounds.
#pragma once

#include <vector>

#include "common.hpp"
#include "random.hpp"
#include "scheduler.hpp"

namespace ppsim {

/// Deterministic round-robin tournament (the classic circle method): each
/// round is a perfect matching, consecutive rounds rotate the circle, and
/// every unordered pair meets exactly once per tournament — a synchronous-
/// network-like schedule where all agents interact at the same rate and the
/// schedule is globally fair. An odd population is padded with a phantom
/// "bye" seat: the agent matched against it sits the round out, so rounds
/// then hold (n−1)/2 pairs and a full tournament takes n rounds.
class RoundRobinScheduler {
public:
    explicit RoundRobinScheduler(std::size_t n) : n_(n), m_(n % 2 == 0 ? n : n + 1) {
        require(n >= 2, "population must contain at least two agents");
    }

    [[nodiscard]] Interaction next() noexcept {
        const std::size_t pairs_per_round = m_ / 2;
        while (true) {
            const std::size_t pair_index = cursor_ % pairs_per_round;
            const std::size_t round = cursor_ / pairs_per_round;
            ++cursor_;
            // Circle method over the padded size m: position 0 hosts seat 0
            // permanently; positions 1..m−1 hold seat
            // 1 + ((position − 1 + round) mod (m − 1)). Pair position k with
            // position m−1−k. With odd n, seat m−1 = n is the bye.
            const auto seat_at = [&](std::size_t position) {
                if (position == 0) return std::size_t{0};
                return 1 + (position - 1 + round) % (m_ - 1);
            };
            const std::size_t a = seat_at(pair_index);
            const std::size_t b = seat_at(m_ - 1 - pair_index);
            if (a >= n_ || b >= n_) continue;  // bye pair: skip, nobody interacts
            // Alternate roles between rounds so neither side is permanently
            // the initiator (a permanently one-sided adversary would freeze
            // PLL's geometric race, which is legal but uninteresting).
            return round % 2 == 0
                       ? Interaction{static_cast<AgentId>(a), static_cast<AgentId>(b)}
                       : Interaction{static_cast<AgentId>(b), static_cast<AgentId>(a)};
        }
    }

private:
    std::size_t n_;
    std::size_t m_;  ///< n rounded up to even (phantom bye seat when odd)
    std::size_t cursor_ = 0;
};

/// Star scheduler: every interaction involves the hub (agent 0) and a
/// uniformly random leaf, with random roles — models a gateway relay.
class StarScheduler {
public:
    StarScheduler(std::size_t n, std::uint64_t seed) : n_(n), rng_(seed) {
        require(n >= 2, "population must contain at least two agents");
    }

    [[nodiscard]] Interaction next() noexcept {
        const auto leaf = static_cast<AgentId>(1 + uniform_below(rng_, n_ - 1));
        return coin_flip(rng_) ? Interaction{0, leaf} : Interaction{leaf, 0};
    }

private:
    std::size_t n_;
    Rng rng_;
};

/// Clique-biased scheduler: with probability `bias` the interaction is drawn
/// uniformly inside a fixed sub-clique (the first `clique_size` agents);
/// otherwise uniformly over the whole population — models a dense cluster
/// with thin links to the rest.
class CliqueBiasedScheduler {
public:
    CliqueBiasedScheduler(std::size_t n, std::size_t clique_size, double bias,
                          std::uint64_t seed)
        : n_(n), clique_(clique_size), bias_(bias), rng_(seed) {
        require(n >= 2, "population must contain at least two agents");
        require(clique_size >= 2 && clique_size <= n, "clique size out of range");
        require(bias >= 0.0 && bias <= 1.0, "bias must be a probability");
    }

    [[nodiscard]] Interaction next() noexcept {
        const std::size_t universe = uniform_unit(rng_) < bias_ ? clique_ : n_;
        const auto a = static_cast<AgentId>(uniform_below(rng_, universe));
        auto b = static_cast<AgentId>(uniform_below(rng_, universe - 1));
        if (b >= a) ++b;
        return Interaction{a, b};
    }

private:
    std::size_t n_;
    std::size_t clique_;
    double bias_;
    Rng rng_;
};

/// Drives `engine` with `scheduler` for `steps` interactions (the engine's
/// internal scheduler is bypassed via Engine::apply).
template <typename EngineT, typename SchedulerT>
void drive(EngineT& engine, SchedulerT& scheduler, StepCount steps) {
    for (StepCount i = 0; i < steps; ++i) engine.apply(scheduler.next());
}

}  // namespace ppsim
