/// \file args.hpp
/// \brief Minimal command-line flag parser for the tools and examples.
///
/// Supports `--name value`, `--name=value` and boolean `--flag` forms, plus
/// typed accessors with defaults and a rendered usage string. Flags may
/// repeat: the typed getters read the last occurrence, `get_strings`
/// returns them all (how `--inject` accumulates a fault plan). Deliberately
/// tiny: no subcommands, no dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"

namespace ppsim {

/// Parsed command-line flags.
class ArgParser {
public:
    /// Declares a flag with a help line and optional default (shown in usage).
    void declare(const std::string& name, const std::string& help,
                 const std::string& default_value = "") {
        declared_.push_back(Declared{name, help, default_value});
    }

    /// Parses argv; throws InvalidArgument on unknown or malformed flags.
    void parse(int argc, const char* const* argv) {
        for (int i = 1; i < argc; ++i) {
            std::string token = argv[i];
            require(token.size() > 2 && token.starts_with("--"),
                    "unexpected argument: " + token + " (flags are --name value)");
            token.erase(0, 2);
            std::string value;
            if (const std::size_t eq = token.find('='); eq != std::string::npos) {
                value = token.substr(eq + 1);
                token.erase(eq);
            } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";  // bare boolean flag
            }
            require(is_declared(token), "unknown flag: --" + token);
            values_[token].push_back(value);
        }
    }

    [[nodiscard]] bool has(const std::string& name) const {
        return values_.contains(name);
    }

    [[nodiscard]] std::string get_string(const std::string& name,
                                         const std::string& fallback) const {
        const auto it = values_.find(name);
        return it == values_.end() ? fallback : it->second.back();
    }

    /// Every value a repeatable flag was given, in command-line order
    /// (empty when the flag is absent). `--inject a --inject b` → {a, b}.
    [[nodiscard]] std::vector<std::string> get_strings(const std::string& name) const {
        const auto it = values_.find(name);
        return it == values_.end() ? std::vector<std::string>{} : it->second;
    }

    [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                        std::uint64_t fallback) const {
        const auto it = values_.find(name);
        if (it == values_.end()) return fallback;
        try {
            return std::stoull(it->second.back());
        } catch (const std::exception&) {
            throw InvalidArgument("flag --" + name + " expects an integer, got '" +
                                  it->second.back() + "'");
        }
    }

    [[nodiscard]] double get_double(const std::string& name, double fallback) const {
        const auto it = values_.find(name);
        if (it == values_.end()) return fallback;
        try {
            return std::stod(it->second.back());
        } catch (const std::exception&) {
            throw InvalidArgument("flag --" + name + " expects a number, got '" +
                                  it->second.back() + "'");
        }
    }

    [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const {
        const auto it = values_.find(name);
        if (it == values_.end()) return fallback;
        return it->second.back() == "true" || it->second.back() == "1" ||
               it->second.back() == "yes";
    }

    /// Usage text assembled from the declared flags.
    [[nodiscard]] std::string usage(const std::string& program) const {
        std::ostringstream out;
        out << "usage: " << program << " [flags]\n";
        for (const Declared& d : declared_) {
            out << "  --" << d.name;
            if (!d.default_value.empty()) out << " (default: " << d.default_value << ")";
            out << "\n      " << d.help << "\n";
        }
        return out.str();
    }

private:
    struct Declared {
        std::string name;
        std::string help;
        std::string default_value;
    };

    [[nodiscard]] bool is_declared(const std::string& name) const {
        for (const Declared& d : declared_) {
            if (d.name == name) return true;
        }
        return false;
    }

    std::vector<Declared> declared_;
    std::map<std::string, std::vector<std::string>> values_;  ///< flags repeat
};

}  // namespace ppsim
