/// \file batch_pairing.hpp
/// \brief The pluggable pairing layer of the batched engine: strategies that
/// turn a batch's initiator and responder state multisets into the multiset
/// of ordered (initiator-state, responder-state) pairs.
///
/// A batch of L collision-free interactions touches 2L distinct agents. The
/// engine samples the initiator and responder state multisets (multivariate
/// hypergeometric chains over the count vector); what remains is pairing
/// them by a uniformly random bijection. Conditioned on the two multisets,
/// the result is fully described by the *contingency table* of pair counts
/// — and the table's cells are exchangeable, so any consumer that needs the
/// exact interaction order (the stabilisation-step replay) can recover it by
/// a uniform shuffle of the expanded cells. Two exact strategies with
/// different cost profiles implement the bijection:
///
///  * `PairwiseShufflePairing` — expand both multisets and Fisher–Yates
///    shuffle the responder side: Θ(L) PRNG draws and Θ(L) downstream
///    transition applications. Cost is independent of how many distinct
///    states are live, so it is the right tool for high-entropy profiles
///    (many sampled states, e.g. `mst18_style`'s wide nonces).
///
///  * `ContingencyTablePairing` — sample the table row by row: the
///    responder-state counts matched to one initiator state's block form a
///    multivariate hypergeometric draw from the remaining responder
///    multiset (the same conditional-chain factorisation as
///    `multivariate_hypergeometric` in random.hpp, specialised to the
///    in-place sparse multiset). O(#distinct state pairs) sampler calls and
///    O(#non-zero cells) downstream transition applications per batch —
///    *independent of the batch size*, which removes the Θ(L)-per-batch
///    term that bounds multi-state protocols under the shuffle strategy.
///
/// `BatchMode` selects the strategy per engine: `pairwise` and `bulk` force
/// one, `auto` chooses per batch from the sampled state-count profile
/// (distinct-initiator × distinct-responder counts vs the batch length, the
/// cost crossover validated by `bench_pairing`). The descriptor table below
/// is the single source of truth for names, parsing and CLI help, exactly
/// like `engine_table` in engine.hpp.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common.hpp"
#include "random.hpp"
#include "state_index.hpp"

namespace ppsim {

/// Pairing strategy of the batched engine's batch rounds.
enum class BatchMode : std::uint8_t {
    automatic = 0,  ///< per-batch choice from the sampled state-count profile
    pairwise = 1,   ///< always the expanded-multiset Fisher–Yates shuffle
    bulk = 2,       ///< always contingency-table sampling
};

/// One row of the batch-mode table: the mode, its CLI name, and a one-line
/// summary for help text.
struct BatchModeDescriptor {
    BatchMode mode;
    std::string_view name;
    std::string_view summary;
};

/// The single source of truth for the batch-mode list. `to_string`,
/// `parse_batch_mode` and every CLI help string derive from this table, so
/// adding a strategy is a one-row change that cannot desync them.
inline constexpr std::array<BatchModeDescriptor, 3> batch_mode_table{{
    {BatchMode::automatic, "auto",
     "choose per batch from the sampled state-count profile"},
    {BatchMode::pairwise, "pairwise",
     "expanded-multiset Fisher-Yates shuffle, Theta(1) per pair"},
    {BatchMode::bulk, "bulk",
     "contingency-table sampling, O(#state pairs) per batch"},
}};

/// CLI name of a batch mode.
[[nodiscard]] constexpr std::string_view to_string(BatchMode mode) noexcept {
    for (const BatchModeDescriptor& d : batch_mode_table) {
        if (d.mode == mode) return d.name;
    }
    return "unknown";
}

/// The batch-mode names joined as "auto | pairwise | bulk", for usage strings.
[[nodiscard]] inline std::string batch_mode_list(std::string_view separator = " | ") {
    std::string out;
    for (const BatchModeDescriptor& d : batch_mode_table) {
        if (!out.empty()) out += separator;
        out += d.name;
    }
    return out;
}

/// Parses a batch-mode name from the table; throws on anything else.
[[nodiscard]] inline BatchMode parse_batch_mode(std::string_view name) {
    for (const BatchModeDescriptor& d : batch_mode_table) {
        if (d.name == name) return d.mode;
    }
    throw InvalidArgument("unknown batch mode: '" + std::string(name) + "' (expected " +
                          batch_mode_list(" or ") + ")");
}

/// One contingency-table cell: an ordered state pair and its multiplicity.
struct PairCount {
    StateId a;
    StateId b;
    std::uint64_t mult;
};

/// A state multiset as (state id, count) entries — the form in which the
/// engine samples a batch's initiator and responder sides.
using StateMultiset = std::vector<std::pair<StateId, std::uint64_t>>;

/// Output of a pairing strategy. Two representations behind one visitation
/// interface: aggregated contingency cells (bulk) or expanded per-pair
/// arrays (pairwise; pair i = (flat_a[i], flat_b[i])). Owned by the engine
/// and reused across batches so neither path allocates in steady state.
class BatchPairs {
public:
    void clear() noexcept {
        cells.clear();
        flat_a.clear();
        flat_b.clear();
        aggregated = false;
    }

    /// Visits every ordered pair group as (initiator, responder, multiplicity).
    template <typename Visitor>
    void for_each(Visitor&& visit) const {
        if (aggregated) {
            for (const PairCount& pc : cells) visit(pc.a, pc.b, pc.mult);
        } else {
            for (std::size_t i = 0; i < flat_a.size(); ++i) {
                visit(flat_a[i], flat_b[i], std::uint64_t{1});
            }
        }
    }

    /// Visits the ordered pair groups with indices in [first, last) as
    /// (group index, initiator, responder, multiplicity) — the sharded form
    /// of `for_each`, used by the engines' parallel cell phase so each shard
    /// walks a contiguous slice of the same group order the sequential
    /// visitation would see. Group indices match `for_each`'s visit order.
    template <typename Visitor>
    void for_each_range(std::size_t first, std::size_t last, Visitor&& visit) const {
        if (aggregated) {
            for (std::size_t g = first; g < last; ++g) {
                const PairCount& pc = cells[g];
                visit(g, pc.a, pc.b, pc.mult);
            }
        } else {
            for (std::size_t g = first; g < last; ++g) {
                visit(g, flat_a[g], flat_b[g], std::uint64_t{1});
            }
        }
    }

    /// Total number of pairs across all groups (= the batch length).
    [[nodiscard]] std::uint64_t pair_total() const noexcept {
        if (!aggregated) return flat_a.size();
        std::uint64_t total = 0;
        for (const PairCount& pc : cells) total += pc.mult;
        return total;
    }

    /// Number of visited groups: #cells when aggregated, #pairs otherwise.
    [[nodiscard]] std::size_t group_count() const noexcept {
        return aggregated ? cells.size() : flat_a.size();
    }

    std::vector<PairCount> cells;   ///< bulk representation (non-zero cells)
    std::vector<StateId> flat_a;    ///< pairwise representation, initiators
    std::vector<StateId> flat_b;    ///< pairwise representation, responders
    bool aggregated = false;        ///< which representation is live
};

/// Uniform bijection via Fisher–Yates: expand the responder multiset and
/// shuffle it against the (fixed-order) initiator expansion. Θ(fresh) PRNG
/// draws; downstream consumers see one group per pair.
struct PairwiseShufflePairing {
    template <typename Generator>
    static void pair(Generator& gen, const StateMultiset& initiators,
                     const StateMultiset& responders, std::uint64_t fresh,
                     BatchPairs& out) {
        out.aggregated = false;
        for (const auto& [state_a, count_a] : initiators) {
            out.flat_a.insert(out.flat_a.end(), count_a, state_a);
        }
        for (const auto& [state_b, count_b] : responders) {
            out.flat_b.insert(out.flat_b.end(), count_b, state_b);
        }
        if (out.flat_a.size() != fresh || out.flat_b.size() != fresh) [[unlikely]] {
            ensure(false, "pairing multisets disagree with the batch length");
        }
        shuffle_vector(out.flat_b, gen);
    }
};

/// Uniform bijection via direct contingency-table sampling: row i (one
/// initiator state, multiplicity r_i) is a multivariate hypergeometric draw
/// of r_i responders from the multiset left over by rows 0..i−1 — the exact
/// conditional-chain factorisation of the table's distribution, valid for
/// any fixed row/column order. The responder multiset is consumed in place.
/// This is a sparse specialisation of `multivariate_hypergeometric`
/// (random.hpp): that primitive is the dense reference form — its
/// distribution tests in test_random.cpp pin the shared math — while this
/// loop fuses cell emission, in-place consumption, early row exit and a
/// batched (want ≤ cap) categorical path that a dense out-array cannot
/// express without an O(#columns) pass per row. Changes to either chain's
/// fast paths should be mirrored in the other.
///
/// Cost per batch is O(Σ_i columns visited in row i) scalar hypergeometric
/// draws, bounded by #distinct_initiators × #distinct_responders and usually
/// far below it: columns are pre-sorted by descending count so heavy columns
/// absorb each row's demand first, rows stop as soon as their demand is met,
/// and two generator-free/cheap shortcuts (take-the-rest, single-item
/// categorical draw) mirror `multivariate_hypergeometric`'s fast paths.
struct ContingencyTablePairing {
    /// Rows wanting at most this many items are filled by sequential
    /// categorical draws (uniform pick of one remaining responder each, a
    /// handful of ns) instead of the per-column hypergeometric chain (tens
    /// of ns per column visited). Sequential without-replacement picks are
    /// exactly a simple random sample, so the cut-over is free of bias; the
    /// constant is a measured crossover (bench_pairing), not a tuning knob
    /// that affects distribution.
    static constexpr std::uint64_t categorical_row_cap = 8;

    template <typename Generator>
    static void pair(Generator& gen, const StateMultiset& initiators,
                     StateMultiset& responders, std::uint64_t fresh, BatchPairs& out) {
        out.aggregated = true;
        // Descending-count column order: exact for any fixed order (the
        // chain factorisation holds column by column), and it minimises both
        // the columns a row's chain visits before its demand is exhausted
        // and the scan length of a categorical draw. Ties break on state id:
        // std::sort is unstable and an implementation-defined tie order
        // would consume the RNG in a different column order per stdlib,
        // breaking cross-platform reproducibility of seeded runs.
        std::sort(responders.begin(), responders.end(),
                  [](const auto& x, const auto& y) {
                      return x.second != y.second ? x.second > y.second
                                                  : x.first < y.first;
                  });
        std::uint64_t responders_left = fresh;
        for (const auto& [state_a, count_a] : initiators) {
            std::uint64_t want = count_a;
            std::uint64_t pool = responders_left;  // Σ counts from column j on
            for (std::size_t j = 0; j < responders.size() && want > 0; ++j) {
                std::uint64_t& count_b = responders[j].second;
                if (count_b == 0) continue;
                if (want <= categorical_row_cap) {
                    // Small demand: pick the remaining items one at a time,
                    // each a uniform categorical draw over the responder
                    // mass from column j on (pool counts exactly that).
                    while (want > 0) {
                        std::uint64_t r = uniform_below(gen, pool);
                        std::size_t k = j;
                        while (k < responders.size() && r >= responders[k].second) {
                            r -= responders[k].second;
                            ++k;
                        }
                        if (k >= responders.size()) [[unlikely]] {
                            // cheap check: no string temporary per pick
                            ensure(false, "contingency-table categorical draw overran");
                        }
                        if (!out.cells.empty() && out.cells.back().a == state_a &&
                            out.cells.back().b == responders[k].first) {
                            out.cells.back().mult += 1;  // coalesce repeat picks
                        } else {
                            out.cells.push_back(PairCount{state_a, responders[k].first, 1});
                        }
                        responders[k].second -= 1;
                        responders_left -= 1;
                        pool -= 1;
                        want -= 1;
                    }
                    break;
                }
                // Take the rest without touching the generator when the row
                // must absorb everything that remains.
                const std::uint64_t y =
                    want == pool ? count_b : hypergeometric(gen, pool, count_b, want);
                pool -= count_b;
                if (y > 0) {
                    out.cells.push_back(PairCount{state_a, responders[j].first, y});
                    count_b -= y;
                    want -= y;
                    responders_left -= y;
                }
            }
            if (want != 0) [[unlikely]] {  // cheap check: no string temporary per row
                ensure(false, "contingency-table row under-matched");
            }
        }
    }
};

/// The `auto` heuristic: bulk pairing when the worst-case number of visited
/// cells (distinct initiators × distinct responders) does not exceed the
/// batch length — below that the table costs fewer sampler calls than the
/// shuffle costs PRNG draws *and* the downstream transition loop shrinks
/// from Θ(fresh) applications to the cell count. Crossover validated by
/// `bench_pairing`; forced modes bypass the profile entirely.
[[nodiscard]] constexpr bool use_bulk_pairing(BatchMode mode, std::size_t distinct_initiators,
                                              std::size_t distinct_responders,
                                              std::uint64_t fresh) noexcept {
    if (mode == BatchMode::pairwise) return false;
    if (mode == BatchMode::bulk) return true;
    return static_cast<std::uint64_t>(distinct_initiators) * distinct_responders <= fresh;
}

/// Dispatches one batch's pairing to the strategy selected by `mode` (and,
/// under `auto`, by the sampled profile). Returns true when the bulk
/// (contingency-table) strategy ran. The responder multiset is scratch:
/// bulk reorders and consumes it (counts drop to zero), pairwise leaves it
/// untouched — callers must not rely on its contents afterwards.
template <typename Generator>
bool sample_batch_pairing(BatchMode mode, Generator& gen, const StateMultiset& initiators,
                          StateMultiset& responders, std::uint64_t fresh, BatchPairs& out) {
    out.clear();
    if (use_bulk_pairing(mode, initiators.size(), responders.size(), fresh)) {
        ContingencyTablePairing::pair(gen, initiators, responders, fresh, out);
        return true;
    }
    PairwiseShufflePairing::pair(gen, initiators, responders, fresh, out);
    return false;
}

}  // namespace ppsim
