/// \file batched_engine.hpp
/// \brief Count-based batched simulation engine: Gillespie-style simulation
/// of the population-protocol model with sub-constant expected cost per
/// interaction at large n.
///
/// The agent-based `Engine<P>` pays one PRNG draw plus one transition plus
/// two random memory accesses per interaction — Θ(n log n) sequential work
/// per stabilisation run. This engine instead represents the configuration
/// as a dense vector of per-state *counts* (the shared InternedCountStore,
/// count_store.hpp; states interned on first sight by `StateIndex`) and
/// advances time in batches, following the scheme of Berenbrink, Hammer,
/// Kaaser, Meyer, Penschuck and Tran ("Simulating Population Protocols in
/// Sub-Constant Time per Interaction", ESA 2020), the same algorithm behind
/// Doty & Severson's `ppsim` package:
///
///  1. Sample the collision-free run length L — the number of consecutive
///     interactions whose 2L agents are all distinct (birthday problem,
///     E[L] = Θ(√n)) — directly from its survival function.
///  2. The 2L agents are a uniform sample without replacement, so the
///     initiator and responder state multisets come from multivariate
///     hypergeometric chains over the count vector, and the pairing between
///     them is a uniform random bijection. The bijection is delegated to
///     the pluggable pairing layer (batch_pairing.hpp): contingency-table
///     sampling (O(#state pairs) per batch) or a Fisher–Yates shuffle of
///     the expanded responder multiset (Θ(L)), selected by `BatchMode` —
///     forced, or chosen per batch from the sampled state-count profile.
///  3. Each distinct ordered state pair (q_u, q_v) is applied through a
///     memoised transition table (dense matrix for low ids, hash map
///     beyond) and its count delta scaled by the pair's multiplicity —
///     O(#distinct pairs) transition evaluations, not O(#interactions).
///  4. The interaction that ends the batch involves at least one
///     already-touched agent; it is sampled exactly from the conditional
///     distribution (both-touched : touched-untouched : untouched-touched
///     with weights t(t−1) : t(n−t) : (n−t)t) and applied individually.
///
/// Every step of the construction reproduces the model's semantics in
/// distribution: ordered pairs stay uniform, and the initiator/responder
/// asymmetry (PLL's coin flips) is preserved because initiator and responder
/// multisets are sampled per slot parity, never merged.
///
/// **Rate-annotated protocols** (RatedProtocol, protocol.hpp) are honoured
/// by rejection thinning against the maximum rate: each cell of a batch
/// draws the number of pairs that actually fire as
/// Binomial(mult, rate/max_rate); the rest met without reacting and re-enter
/// the touched multiset with their states unchanged — exactly the thinned
/// chain the agent engine runs pair by pair, so cross-engine agreement is
/// preserved (KS harness, tests/test_statistical.cpp). Unrated protocols
/// compile to the identical pre-rate hot path (`if constexpr`), so their
/// seeded replay streams are bit-for-bit unchanged.
///
/// The stabilisation step is recorded *exactly*, not at batch granularity:
/// when a batch crosses to a single leader, the per-pair leader deltas are
/// replayed in a uniformly shuffled order (the pair sequence is exchangeable,
/// so a uniform permutation is the exact conditional order distribution) to
/// locate the crossing interaction. This happens at most once per run for
/// the absorbing single-leader predicate. For protocols where one leader is
/// NOT absorbing (the loosely-stabilising baseline), a transient mid-batch
/// visit to a single leader that the batch leaves again is not observed —
/// leader-count detection is then batch-granular, a documented deviation
/// from the agent engine (see README "Choosing an engine").
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "batch_pairing.hpp"
#include "common.hpp"
#include "count_store.hpp"
#include "engine.hpp"  // RunResult
#include "fault.hpp"
#include "population.hpp"
#include "protocol.hpp"
#include "random.hpp"
#include "shard.hpp"
#include "state_index.hpp"
#include "transition_cache.hpp"

namespace ppsim {

/// Count-based batched simulation engine. Drop-in alternative to Engine<P>
/// for the run/verify surface (run_until_one_leader, run_for,
/// verify_outputs_stable, RunResult), minus per-agent observation — a
/// count-based configuration has no agent identities.
template <typename P>
    requires InternableProtocol<P>
class BatchedEngine {
public:
    using State = typename P::State;

    /// \param threads  intra-run worker count: 1 (default) keeps the
    /// pre-existing sequential engine bit-for-bit; 0 means hardware
    /// concurrency; ≥ 2 shards the batch hot loops per the stream-split
    /// contract (shard.hpp) — replay is exact per (seed, threads) value.
    BatchedEngine(P protocol, std::size_t n, std::uint64_t seed,
                  BatchMode batch_mode = BatchMode::automatic, std::size_t threads = 1)
        : protocol_(std::move(protocol)),
          n_(n),
          rng_(seed),
          fault_rng_(derive_seed(seed, fault_stream_tag)),
          run_sampler_(n),
          batch_mode_(batch_mode) {
        if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
        if (threads > 1) {
            shard_ctx_ = std::make_unique<ShardContext>(seed, threads);
            shard_deltas_.resize(threads);
            shard_outs_.resize(threads);
            shard_totals_.resize(threads);
            shard_draws_.resize(threads);
        }
        require(n >= 2, "population must contain at least two agents");
        // The collision-step case weights t(t−1) and t(n−t) are computed in
        // 64 bits; with t = Θ(√n) they stay far below 2^64 for any n ≤ 2^32,
        // which is also the agent-id ceiling of the rest of the library.
        require(n <= (std::uint64_t{1} << 32U),
                "batched engine supports populations up to 2^32 agents");
        const StateId init = intern(protocol_.initial_state());
        store_.counts()[init] = n_;
        store_.make_live(init);
        leader_count_ = store_.index().is_leader(init) ? n_ : 0;
        initiators_.reserve(64);
        responders_.reserve(64);
        pairs_.cells.reserve(64);
    }

    // --- observation ------------------------------------------------------

    [[nodiscard]] std::size_t population_size() const noexcept { return n_; }
    [[nodiscard]] StepCount steps() const noexcept { return steps_; }
    [[nodiscard]] double parallel_time() const noexcept {
        return to_parallel_time(steps_, n_);
    }
    [[nodiscard]] std::size_t leader_count() const noexcept { return leader_count_; }
    [[nodiscard]] const P& protocol() const noexcept { return protocol_; }
    /// The pairing strategy this engine was configured with.
    [[nodiscard]] BatchMode batch_mode() const noexcept { return batch_mode_; }
    /// The intra-run worker count this engine was configured with.
    [[nodiscard]] std::size_t threads() const noexcept {
        return shard_ctx_ ? shard_ctx_->threads() : 1;
    }
    [[nodiscard]] std::optional<StepCount> stabilization_step() const noexcept {
        return first_single_leader_step_;
    }

    /// Exact count of agents currently in state `s` (0 when never interned).
    [[nodiscard]] std::uint64_t count_of(const State& s) const {
        return store_.count_of(protocol_, s);
    }

    /// Number of distinct states with a non-zero count.
    [[nodiscard]] std::size_t live_state_count() const noexcept {
        return store_.live_state_count();
    }

    /// Sum of all counts — the population size, by conservation.
    [[nodiscard]] std::uint64_t total_count() const noexcept {
        return store_.total_count();
    }

    /// Visits every state with a non-zero count as (state, count, role) —
    /// O(#states) regardless of n, the batched engine's snapshot primitive.
    /// Only valid between public calls (the in-flight touched multiset of a
    /// batch round has been merged back by then).
    template <typename Visitor>
    void visit_counts(Visitor&& visit) const {
        store_.visit_counts(visit);
    }

    /// Recomputes the leader count from the count vector (tests / checks).
    std::size_t recount_leaders() {
        leader_count_ = store_.recount_leaders();
        return leader_count_;
    }

    /// Read-only view of the shared count store (hybrid-engine feature
    /// extraction, tests).
    [[nodiscard]] const InternedCountStore<P>& store() const noexcept { return store_; }

    /// Read-only view of the memoised transition cache (introspection).
    [[nodiscard]] const TransitionCache& transition_cache() const noexcept {
        return cache_;
    }

    /// Adopts a configuration handed over by another engine (the hybrid
    /// meta-engine's mid-run switch, hybrid_engine.hpp): replaces the count
    /// vector with the census and carries the step counter and
    /// stabilisation step across. The census must conserve this engine's
    /// population size. The batch / fault streams keep the seed this engine
    /// was built with — each hybrid segment owns its stream.
    void adopt_census(const std::vector<std::pair<State, std::uint64_t>>& census,
                      StepCount steps, std::optional<StepCount> stabilization_step) {
        const std::uint64_t total = store_.adopt_census(protocol_, census);
        require(total == n_, "census does not conserve the population");
        steps_ = steps;
        first_single_leader_step_ = stabilization_step;
        leader_count_ = store_.recount_leaders();
    }

    // --- execution --------------------------------------------------------

    /// Runs until exactly one leader remains or `max_steps` further steps
    /// have been executed, whichever comes first. The final batch may run a
    /// few interactions past the stabilisation step (they cannot change the
    /// outcome: single-leader is absorbing); `stabilization_step` is exact.
    RunResult run_until_one_leader(StepCount max_steps) {
        StepCount executed = 0;
        while (leader_count_ != 1 && executed < max_steps) {
            executed += round(max_steps - executed);
        }
        return make_result(leader_count_ == 1);
    }

    /// Runs exactly `count` steps: the final batch's collision-free run is
    /// clamped to the remaining budget, so there is no overrun.
    RunResult run_for(StepCount count) {
        StepCount executed = 0;
        while (executed < count) executed += round(count - executed);
        return make_result(leader_count_ == 1);
    }

    /// Runs `count` additional steps and reports whether any agent's output
    /// changed during them (and the leader count stayed put).
    [[nodiscard]] bool verify_outputs_stable(StepCount count) {
        const std::size_t leaders_before = leader_count_;
        role_change_seen_ = false;
        StepCount executed = 0;
        while (executed < count) executed += round(count - executed);
        return !role_change_seen_ && leader_count_ == leaders_before;
    }

    // --- fault injection ---------------------------------------------------

    /// Applies one crash/rejoin/reset fault between rounds by count-vector
    /// surgery on the shared store. The transition cache stays valid (it is
    /// keyed on state ids, never on counts); the repairs the surgery *does*
    /// owe are the live-list compaction (inside `remove_uniform_agents`)
    /// and re-sizing the collision-run sampler to the new population. All
    /// randomness comes from the dedicated fault stream, so the batch
    /// stream replays deterministically after the fault. Silence never
    /// reaches the engine (run-layer concern).
    void apply_fault(const FaultAction& action) {
        require(action.kind != FaultKind::silence,
                "silence is applied by the run layer, not the engine");
        switch (action.kind) {
            case FaultKind::crash: {
                std::uint64_t k = resolve_fault_count(action, n_);
                if (k >= n_) k = n_ - 1;  // always leave one survivor
                const std::uint64_t leaders_removed =
                    remove_uniform_agents(store_, fault_rng_, k, n_);
                n_ -= k;
                leader_count_ -= leaders_removed;
                if (n_ >= 2) run_sampler_ = CollisionRunSampler(n_);
                break;
            }
            case FaultKind::rejoin: {
                const std::uint64_t k = action.count;
                require(n_ + k <= (std::uint64_t{1} << 32U),
                        "rejoin would grow the population past 2^32 agents");
                const StateId init = intern(protocol_.initial_state());
                store_.counts()[init] += k;
                store_.make_live(init);
                n_ += k;
                if (store_.index().is_leader(init)) leader_count_ += k;
                run_sampler_ = CollisionRunSampler(n_);
                break;
            }
            case FaultKind::reset: {
                std::uint64_t k = resolve_fault_count(action, n_);
                if (k > n_) k = n_;
                const std::uint64_t leaders_removed =
                    remove_uniform_agents(store_, fault_rng_, k, n_);
                const StateId init = intern(protocol_.initial_state());
                store_.counts()[init] += k;
                store_.make_live(init);
                leader_count_ -= leaders_removed;
                if (store_.index().is_leader(init)) leader_count_ += k;
                break;
            }
            case FaultKind::silence: break;  // unreachable (guarded above)
        }
        // Re-anchor single-leader detection at the post-fault configuration.
        first_single_leader_step_ = leader_count_ == 1
                                        ? std::optional<StepCount>(steps_)
                                        : std::nullopt;
    }

    /// Advances the step counter through a rate-zero silence window without
    /// touching counts or randomness.
    void advance_silent(StepCount count) noexcept { steps_ += count; }

    // --- checkpointing ------------------------------------------------------

    /// Serialises the engine's complete replay-relevant state: the batch and
    /// fault stream positions, the shard round counter (every shard stream
    /// is a pure function of it — the PR 7 contract), the interned count
    /// store, and the step/leader/stabilisation counters. Legal between
    /// public calls only (touched multiset empty), which the store asserts.
    void save_state(CheckpointWriter& w) const {
        w.u64(n_);
        w.pod(rng_.state());
        w.pod(fault_rng_.state());
        w.u64(shard_ctx_ ? shard_ctx_->round() : 0);
        store_.save_state(w);
        w.u64(steps_);
        w.u64(leader_count_);
        w.opt_u64(first_single_leader_step_);
        w.boolean(role_change_seen_);
    }

    /// Restores a `save_state` payload into an engine built with the same
    /// protocol, batch mode and thread count. The transition cache is
    /// dropped (a pure memo, but its entries may reference states interned
    /// after the checkpoint was taken); recomputation re-interns outputs in
    /// the exact order the original run did, so replay stays bit-identical.
    void restore_state(CheckpointReader& r) {
        n_ = r.u64();
        rng_.set_state(r.pod<std::array<std::uint64_t, 4>>());
        fault_rng_.set_state(r.pod<std::array<std::uint64_t, 4>>());
        const std::uint64_t round = r.u64();
        if (shard_ctx_) shard_ctx_->set_round(round);
        store_.restore_state(protocol_, r);
        steps_ = r.u64();
        leader_count_ = r.u64();
        first_single_leader_step_ = r.opt_u64();
        role_change_seen_ = r.boolean();
        cache_ = TransitionCache{};
        if (n_ >= 2) run_sampler_ = CollisionRunSampler(n_);
    }

private:
    // --- interning --------------------------------------------------------

    StateId intern(const State& s) { return store_.intern(protocol_, s); }

    /// Memoised transition lookup through the shared cache
    /// (transition_cache.hpp).
    const CachedTransition& transition(StateId a, StateId b) {
        return cache_.get(a, b,
                          [this](StateId x, StateId y) { return compute_transition(x, y); });
    }

    CachedTransition compute_transition(StateId a, StateId b) {
        return compute_cached_transition(protocol_, store_.index(), a, b,
                                         [this](const State& s) { return intern(s); });
    }

    // --- batch round ------------------------------------------------------

    /// Executes one batch of at most `budget` interactions; returns the
    /// number executed (≥ 1 for budget ≥ 1).
    StepCount round(StepCount budget) {
        if (budget == 0) return 0;
        if (n_ < 2) {  // crash fault left a single survivor: no pairs exist
            steps_ += budget;
            return budget;
        }
        // Tick the shard streams once per non-trivial round, whether or not
        // any loop below ends up above the sharding threshold — the stream-
        // split contract keys shard rngs on the round counter alone, never
        // on data-dependent fallback decisions. Consumes no rng_ draws, so
        // threads == 1 and never-sharding runs keep the sequential stream.
        if (shard_ctx_) shard_ctx_->begin_round();
        const std::uint64_t run = run_sampler_.sample(rng_);
        // Room for the batch-ending collision interaction only when the
        // whole collision-free run fits in the budget.
        const bool with_collision = budget > run;
        const std::uint64_t fresh = with_collision ? run : budget;

        untouched_ = n_;

        sample_fresh_pairs(fresh);
        apply_pairs(fresh);
        StepCount executed = fresh;
        if (with_collision) {
            collision_step();
            ++executed;
        }
        store_.merge_touched();
        return executed;
    }

    /// Draws a without-replacement multiset of `k` agents' states from the
    /// untouched counts (multivariate hypergeometric chain) into `out`.
    /// `compact` additionally drops dead ids from the live list — only legal
    /// on the first chain of a round, when a zero count means genuinely
    /// empty rather than in-flight.
    void sample_multiset(std::uint64_t k,
                         std::vector<std::pair<StateId, std::uint64_t>>& out,
                         bool compact) {
        out.clear();
        if (shard_ctx_ && k >= shard_ctx_->threads() &&
            store_.live_ids().size() >= shard_ctx_->threads() * shard_min_states) {
            sample_multiset_sharded(k, out, compact);
            return;
        }
        std::vector<StateId>& live_ids = store_.live_ids();
        std::vector<std::uint64_t>& counts = store_.counts();
        std::uint64_t pool = untouched_;
        std::size_t i = 0;
        while (i < live_ids.size()) {
            const StateId id = live_ids[i];
            const std::uint64_t c = counts[id];
            if (c == 0) {
                if (compact && store_.drop_dead_at(i)) {
                    continue;  // revisit index i (swapped-in id)
                }
                ++i;
                continue;
            }
            if (k == 0) break;
            const std::uint64_t x = hypergeometric(rng_, pool, c, k);
            pool -= c;
            if (x > 0) {
                out.emplace_back(id, x);
                counts[id] -= x;
                untouched_ -= x;
                k -= x;
            }
            ++i;
        }
        if (k != 0) [[unlikely]] {  // cheap check: no string temporary on the hot path
            ensure(false, "hypergeometric chain under-drew the batch multiset");
        }
    }

    /// The sequential fallback engages below this many live states per shard
    /// (and below `shard_min_groups` pair groups per shard for the cell
    /// loop): under that, the per-round bookkeeping costs more than the
    /// draws it parallelises, and small-n / narrow-profile runs pay zero
    /// overhead — they never even consume the shard streams' draws. The
    /// per-item work either threshold guards is a libm-heavy variate draw
    /// (hypergeometric / binomial, ~10² ns each), so even 8 items per shard
    /// outweigh a pre-spawned pool's hand-off; protocols concentrate on a
    /// few dozen live states at typical n, which is why the knee sits this
    /// low rather than at cache-line granularity.
    static constexpr std::size_t shard_min_states = 8;
    static constexpr std::size_t shard_min_groups = 8;

    /// Sharded form of the without-replacement chain, exact by the grouping
    /// property of the multivariate hypergeometric: the per-shard subtotals
    /// (how many of the k draws land in each shard's contiguous live-id
    /// slice) form a hypergeometric chain over the slice count sums — drawn
    /// sequentially from the main rng_ — and conditioned on its subtotal
    /// each shard's within-slice chain is independent of every other
    /// shard's, so it runs on the shard's private stream. Concatenating the
    /// slices in shard order reproduces the sequential live_ids visit order
    /// with a different (but fixed per (seed, threads)) draw stream.
    void sample_multiset_sharded(std::uint64_t k,
                                 std::vector<std::pair<StateId, std::uint64_t>>& out,
                                 bool compact) {
        if (compact) store_.compact_live();  // sequential: mutates the live list
        std::vector<StateId>& live_ids = store_.live_ids();
        std::vector<std::uint64_t>& counts = store_.counts();
        const std::size_t shards = shard_ctx_->threads();

        std::uint64_t pool = untouched_;
        std::uint64_t left = k;
        for (std::size_t s = 0; s < shards; ++s) {
            const ShardRange r = shard_range(live_ids.size(), shards, s);
            std::uint64_t total = 0;
            for (std::size_t i = r.first; i < r.last; ++i) total += counts[live_ids[i]];
            std::uint64_t x = 0;
            if (left > 0 && total > 0) {
                x = total == pool ? left : hypergeometric(rng_, pool, total, left);
            }
            shard_totals_[s] = total;
            shard_draws_[s] = x;
            pool -= total;
            left -= x;
        }
        ensure(left == 0, "sharded hypergeometric subtotal chain under-drew");

        // Parallel: each shard draws its within-slice chain on its private
        // stream and decrements its own ids' count words — slices are
        // disjoint, so no two shards ever write the same word.
        shard_ctx_->run([&](std::size_t s) {
            StateMultiset& mine = shard_outs_[s];
            mine.clear();
            const ShardRange r = shard_range(live_ids.size(), shards, s);
            Rng& rng = shard_ctx_->rng(s);
            std::uint64_t pool_s = shard_totals_[s];
            std::uint64_t want = shard_draws_[s];
            for (std::size_t i = r.first; i < r.last && want > 0; ++i) {
                const StateId id = live_ids[i];
                const std::uint64_t c = counts[id];
                if (c == 0) continue;
                const std::uint64_t x =
                    c == pool_s ? want : hypergeometric(rng, pool_s, c, want);
                pool_s -= c;
                if (x > 0) {
                    mine.emplace_back(id, x);
                    counts[id] -= x;
                    want -= x;
                }
            }
            ensure(want == 0, "sharded hypergeometric slice chain under-drew");
        });

        for (std::size_t s = 0; s < shards; ++s) {
            out.insert(out.end(), shard_outs_[s].begin(), shard_outs_[s].end());
        }
        untouched_ -= k;
    }

    /// Samples the `fresh` ordered state pairs of the collision-free run:
    /// initiator multiset, responder multiset, then a uniform random
    /// bijection between them via the pairing layer (batch_pairing.hpp) —
    /// contingency-table sampling or the expanded-multiset shuffle, per the
    /// engine's BatchMode (the `auto` heuristic decides per batch from the
    /// sampled state-count profile).
    void sample_fresh_pairs(std::uint64_t fresh) {
        sample_multiset(fresh, initiators_, /*compact=*/true);
        sample_multiset(fresh, responders_, /*compact=*/false);
        sample_batch_pairing(batch_mode_, rng_, initiators_, responders_, fresh, pairs_);
    }

    /// Applies every pair group of the batch through the transition cache;
    /// locates the exact stabilisation step when this batch crosses to one
    /// leader. O(#groups): cell count under bulk pairing, batch length under
    /// pairwise. Rated protocols thin each group binomially first (the
    /// thinned pairs met without reacting).
    void apply_pairs(std::uint64_t fresh) {
        const StepCount steps_before = steps_;
        std::int64_t delta_total = 0;
        bool role_changed = false;
        const std::size_t groups = pairs_.group_count();
        if (shard_ctx_ && groups >= shard_ctx_->threads() * shard_min_groups) {
            apply_pairs_sharded(groups, delta_total, role_changed);
        } else {
            if constexpr (RatedProtocol<P>) fired_mult_.clear();
            pairs_.for_each([&](StateId a, StateId b, std::uint64_t mult) {
                const CachedTransition& tr = transition(a, b);
                std::uint64_t fired = mult;
                if constexpr (RatedProtocol<P>) {
                    // Thinning only matters for non-null transitions (a
                    // thinned null is a null); skipping the draw there keeps
                    // unrated-like cells cheap and changes nothing in
                    // distribution.
                    if (tr.fire_weight < 1.0F && (tr.out_a != a || tr.out_b != b)) {
                        fired = binomial(rng_, mult, static_cast<double>(tr.fire_weight));
                    }
                    fired_mult_.push_back(fired);
                    const std::uint64_t nulls = mult - fired;
                    if (nulls > 0) {  // met without reacting: states unchanged
                        store_.touch(a, nulls);
                        store_.touch(b, nulls);
                    }
                    if (fired == 0) return;
                }
                store_.touch(tr.out_a, fired);
                store_.touch(tr.out_b, fired);
                delta_total += static_cast<std::int64_t>(tr.leader_delta) *
                               static_cast<std::int64_t>(fired);
                role_changed |= tr.role_changed;
            });
        }
        role_change_seen_ = role_change_seen_ || role_changed;
        steps_ += fresh;
        const auto post = static_cast<std::size_t>(
            static_cast<std::int64_t>(leader_count_) + delta_total);
        if (!first_single_leader_step_ && post == 1 && leader_count_ != 1) {
            first_single_leader_step_ = steps_before + crossing_offset();
        }
        leader_count_ = post;
    }

    /// Sharded per-cell application: a sequential warm pass populates the
    /// transition cache (interning and cache growth are single-threaded),
    /// then each shard walks a contiguous slice of the group order read-only
    /// — cached transitions via the const find, touches buffered in its
    /// ShardDelta, rated thinning on its private stream writing fired_mult_
    /// by group index — and the deltas fold into the store in ascending
    /// shard order. Concatenated contiguous slices reproduce the sequential
    /// visit order, so the store's touched-id ordering (which the collision
    /// step's draws walk) is independent of scheduling. Unrated protocols
    /// consume no shard randomness here, so their sharded round output is
    /// bit-identical to the sequential cell loop's.
    void apply_pairs_sharded(std::size_t groups, std::int64_t& delta_total,
                             bool& role_changed) {
        // Warm every pair the shards will look up. A dense-matrix growth
        // mid-pass drops previously warmed entries, so re-warm once when the
        // dimension moved (growth happens a handful of times per lifetime).
        const StateId dim_before = cache_.dense_dimension();
        pairs_.for_each([&](StateId a, StateId b, std::uint64_t) { transition(a, b); });
        if (cache_.dense_dimension() != dim_before) {
            pairs_.for_each([&](StateId a, StateId b, std::uint64_t) { transition(a, b); });
        }
        if constexpr (RatedProtocol<P>) fired_mult_.assign(groups, 0);
        const std::size_t states = store_.counts().size();
        const std::size_t shards = shard_ctx_->threads();
        for (std::size_t s = 0; s < shards; ++s) shard_deltas_[s].ensure_capacity(states);
        shard_ctx_->run([&](std::size_t s) {
            ShardDelta& delta = shard_deltas_[s];
            const ShardRange r = shard_range(groups, shards, s);
            Rng& rng = shard_ctx_->rng(s);
            pairs_.for_each_range(
                r.first, r.last,
                [&](std::size_t g, StateId a, StateId b, std::uint64_t mult) {
                    const CachedTransition* tr = cache_.find(a, b);
                    std::uint64_t fired = mult;
                    if constexpr (RatedProtocol<P>) {
                        if (tr->fire_weight < 1.0F && (tr->out_a != a || tr->out_b != b)) {
                            fired = binomial(rng, mult, static_cast<double>(tr->fire_weight));
                        }
                        fired_mult_[g] = fired;
                        const std::uint64_t nulls = mult - fired;
                        if (nulls > 0) {
                            delta.touch(a, nulls);
                            delta.touch(b, nulls);
                        }
                        if (fired == 0) return;
                    } else {
                        (void)g;
                        (void)rng;
                    }
                    delta.touch(tr->out_a, fired);
                    delta.touch(tr->out_b, fired);
                    delta.leader_delta += static_cast<std::int64_t>(tr->leader_delta) *
                                          static_cast<std::int64_t>(fired);
                    delta.role_changed |= tr->role_changed;
                });
        });
        for (std::size_t s = 0; s < shards; ++s) {
            delta_total += shard_deltas_[s].leader_delta;
            role_changed = role_changed || shard_deltas_[s].role_changed;
            shard_deltas_[s].merge_into(store_);
        }
    }

    /// The batch's pairs are exchangeable — contingency cells no less than
    /// shuffled pairs — so the shared replay (`locate_leader_crossing`,
    /// transition_cache.hpp) localises the crossing from their expanded
    /// leader deltas. Rated protocols expand each group as its fired count's
    /// deltas plus zeros for the thinned pairs (null interactions occupy
    /// step slots too). Called at most once per run (single-leader is
    /// absorbing).
    [[nodiscard]] std::uint64_t crossing_offset() {
        scratch_deltas_.clear();
        std::size_t group = 0;
        pairs_.for_each([&](StateId a, StateId b, std::uint64_t mult) {
            std::uint64_t fired = mult;
            if constexpr (RatedProtocol<P>) {
                fired = fired_mult_[group++];
            } else {
                (void)group;
            }
            scratch_deltas_.insert(scratch_deltas_.end(), fired,
                                   transition(a, b).leader_delta);
            scratch_deltas_.insert(scratch_deltas_.end(), mult - fired, 0);
        });
        return locate_leader_crossing(scratch_deltas_, rng_, leader_count_);
    }

    /// The interaction that ends the batch: at least one participant is an
    /// already-touched agent. Ordered-slot cases weighted t(t−1) : t(n−t)
    /// : (n−t)t; a touched slot samples a uniform touched agent (post-batch
    /// state multiset), an untouched slot a uniform untouched agent. Rated
    /// protocols thin the single interaction by one Bernoulli draw.
    void collision_step() {
        const std::uint64_t t = store_.touched_total();
        const std::uint64_t m = untouched_;
        const std::uint64_t w_both = t * (t - 1);
        const std::uint64_t w_mixed = t * m;
        const std::uint64_t r = uniform_below(rng_, w_both + 2 * w_mixed);
        const bool a_touched = r < w_both + w_mixed;
        const bool b_touched = r < w_both || r >= w_both + w_mixed;

        const StateId qa = a_touched ? take_touched() : take_untouched();
        const StateId qb = b_touched ? take_touched() : take_untouched();
        const CachedTransition& tr = transition(qa, qb);
        if constexpr (RatedProtocol<P>) {
            if (tr.fire_weight < 1.0F && (tr.out_a != qa || tr.out_b != qb) &&
                uniform_unit(rng_) >= static_cast<double>(tr.fire_weight)) {
                // Thinned: the pair met, nothing happened.
                store_.touch(qa, 1);
                store_.touch(qb, 1);
                ++steps_;
                return;
            }
        }
        store_.touch(tr.out_a, 1);
        store_.touch(tr.out_b, 1);
        role_change_seen_ = role_change_seen_ || tr.role_changed;
        leader_count_ = static_cast<std::size_t>(
            static_cast<std::int64_t>(leader_count_) + tr.leader_delta);
        ++steps_;
        if (!first_single_leader_step_ && leader_count_ == 1) {
            first_single_leader_step_ = steps_;
        }
    }

    // --- touched-multiset draws --------------------------------------------

    /// Removes and returns a uniformly random touched agent's state.
    [[nodiscard]] StateId take_touched() {
        std::uint64_t r = uniform_below(rng_, store_.touched_total());
        for (const StateId id : store_.touched_ids()) {
            const std::uint64_t c = store_.touched()[id];
            if (r < c) {
                store_.untouch_one(id);
                return id;
            }
            r -= c;
        }
        ensure(false, "touched multiset sampling ran past its total");
        return 0;
    }

    /// Removes and returns a uniformly random untouched agent's state.
    [[nodiscard]] StateId take_untouched() {
        std::uint64_t r = uniform_below(rng_, untouched_);
        for (const StateId id : store_.live_ids()) {
            const std::uint64_t c = store_.counts()[id];
            if (r < c) {
                store_.counts()[id] -= 1;
                untouched_ -= 1;
                return id;
            }
            r -= c;
        }
        ensure(false, "untouched count sampling ran past its total");
        return 0;
    }

    [[nodiscard]] RunResult make_result(bool converged) const noexcept {
        RunResult r;
        r.converged = converged;
        r.steps = steps_;
        r.parallel_time = to_parallel_time(steps_, n_);
        r.leader_count = leader_count_;
        r.stabilization_step = first_single_leader_step_;
        return r;
    }

    P protocol_;
    std::size_t n_;
    Rng rng_;
    Rng fault_rng_;  ///< fault-surgery stream; never touches the batch stream
    CollisionRunSampler run_sampler_;
    InternedCountStore<P> store_;  ///< counts + live list + touched multiset
    std::uint64_t untouched_ = 0;
    TransitionCache cache_;
    BatchMode batch_mode_ = BatchMode::automatic;
    StateMultiset initiators_;
    StateMultiset responders_;
    BatchPairs pairs_;
    std::vector<std::uint64_t> fired_mult_;  ///< per-group fired count (rated only)
    std::vector<std::int8_t> scratch_deltas_;
    std::unique_ptr<ShardContext> shard_ctx_;  ///< null unless threads > 1
    std::vector<ShardDelta> shard_deltas_;     ///< one per shard, reused
    std::vector<StateMultiset> shard_outs_;    ///< per-shard multiset slices
    std::vector<std::uint64_t> shard_totals_;  ///< per-shard slice count sums
    std::vector<std::uint64_t> shard_draws_;   ///< per-shard subtotal draws
    StepCount steps_ = 0;
    std::size_t leader_count_ = 0;
    std::optional<StepCount> first_single_leader_step_;
    bool role_change_seen_ = false;
};

/// Convenience mirror of simulate_to_single_leader for the batched engine.
template <typename P>
    requires InternableProtocol<P>
[[nodiscard]] RunResult batched_simulate_to_single_leader(
    P proto, std::size_t n, std::uint64_t seed, StepCount max_steps,
    BatchMode batch_mode = BatchMode::automatic, std::size_t threads = 1) {
    BatchedEngine<P> engine(std::move(proto), n, seed, batch_mode, threads);
    return engine.run_until_one_leader(max_steps);
}

}  // namespace ppsim
