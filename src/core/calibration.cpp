#include "calibration.hpp"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "common.hpp"

namespace ppsim {

namespace {

constexpr std::uint32_t calibration_magic = 0x5050434C;  // "PPCL"
constexpr std::uint32_t calibration_format_version = 2;

void write_u32(std::ofstream& out, std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_u64(std::ofstream& out, std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_f64(std::ofstream& out, double v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_string(std::ofstream& out, std::string_view s) {
    write_u64(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint32_t read_u32(std::ifstream& in) {
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    require(in.good(), "truncated file while reading header");
    return v;
}

std::uint64_t read_u64(std::ifstream& in) {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    require(in.good(), "truncated file while reading header");
    return v;
}

double read_f64(std::ifstream& in) {
    double v = 0.0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    require(in.good(), "truncated file while reading payload");
    return v;
}

std::string read_string(std::ifstream& in) {
    const std::uint64_t len = read_u64(in);
    require(len < 4096, "implausible string length");
    std::string s(len, '\0');
    in.read(s.data(), static_cast<std::streamsize>(len));
    require(in.good(), "truncated string payload");
    return s;
}

/// Strict loader: throws on any structural or identity mismatch; the public
/// load_calibration catches and degrades to nullopt (stale cache = re-probe,
/// never an error).
CalibrationTable load_calibration_strict(const std::string& path,
                                         std::string_view protocol) {
    std::ifstream in(path, std::ios::binary);
    require(in.good(), "cannot open " + path + " for reading");
    require(read_u32(in) == calibration_magic, path + " is not a calibration file");
    require(read_u32(in) == calibration_format_version,
            "unsupported calibration format version");
    require(read_string(in) == library_version, "calibration from another library version");
    require(read_string(in) == cpu_signature(), "calibration from another machine");
    require(read_string(in) == protocol, "calibration for another protocol");
    CalibrationTable table;
    table.threads = read_u64(in);
    table.probe_population = read_u64(in);
    for (ModeCost& cost : table.costs) {
        cost.wide_ns = read_f64(in);
        cost.narrow_ns = read_f64(in);
        cost.wide_exponent = read_f64(in);
        cost.narrow_exponent = read_f64(in);
        require(cost.wide_ns > 0.0 && cost.narrow_ns > 0.0,
                "calibration holds non-positive costs");
        require(std::isfinite(cost.wide_exponent) && std::isfinite(cost.narrow_exponent),
                "calibration holds non-finite exponents");
    }
    return table;
}

/// The ambient options + per-key memo, one mutex for both: option changes
/// and table lookups are rare (per engine construction, never per round).
struct CalibrationRegistry {
    std::mutex mutex;
    HybridOptions options;
    std::map<std::string, CalibrationTable> memo;  ///< key: proto|threads|n_p
};

CalibrationRegistry& registry() {
    static CalibrationRegistry instance;
    return instance;
}

std::string memo_key(const std::string& protocol, std::size_t threads,
                     std::size_t probe_population) {
    return protocol + "|" + std::to_string(threads) + "|" +
           std::to_string(probe_population);
}

}  // namespace

std::string_view to_string(HybridMode mode) noexcept {
    switch (mode) {
        case HybridMode::agent: return "agent";
        case HybridMode::batched_pairwise: return "batched-pairwise";
        case HybridMode::batched_bulk: return "batched-bulk";
        case HybridMode::gillespie: return "gillespie";
    }
    return "unknown";
}

std::string cpu_signature() {
    std::string model = "unknown-cpu";
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        if (line.rfind("model name", 0) == 0) {
            const std::size_t colon = line.find(':');
            if (colon != std::string::npos) {
                model = line.substr(colon + 1);
                const std::size_t first = model.find_first_not_of(' ');
                if (first != std::string::npos) model.erase(0, first);
            }
            break;
        }
    }
    return model + " x" + std::to_string(std::thread::hardware_concurrency());
}

std::string default_calibration_dir() {
    if (const char* dir = std::getenv("PPSIM_CALIBRATION_DIR"); dir != nullptr && *dir) {
        return dir;
    }
    if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg != nullptr && *xdg) {
        return std::string(xdg) + "/ppsim";
    }
    if (const char* home = std::getenv("HOME"); home != nullptr && *home) {
        return std::string(home) + "/.cache/ppsim";
    }
    return std::filesystem::temp_directory_path().string() + "/ppsim";
}

std::string calibration_cache_path(std::string_view protocol, std::size_t threads,
                                   std::size_t probe_population, std::string_view dir) {
    std::string base = dir.empty() ? default_calibration_dir() : std::string(dir);
    std::string name(protocol);
    for (char& c : name) {  // registry names are alnum/underscore; be defensive
        if (c == '/' || c == '\\' || c == '.') c = '_';
    }
    return base + "/calibration-" + name + "-t" + std::to_string(threads) + "-n" +
           std::to_string(probe_population) + ".ppcl";
}

void save_calibration(const std::string& path, std::string_view protocol,
                      const CalibrationTable& table) {
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
    }
    // Temp-file-plus-rename keeps concurrent processes (parallel ctest, racing
    // sweeps) from ever observing a torn table; last writer wins.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<std::uint64_t>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        require(out.good(), "cannot open " + tmp + " for writing");
        write_u32(out, calibration_magic);
        write_u32(out, calibration_format_version);
        write_string(out, library_version);
        write_string(out, cpu_signature());
        write_string(out, protocol);
        write_u64(out, table.threads);
        write_u64(out, table.probe_population);
        for (const ModeCost& cost : table.costs) {
            write_f64(out, cost.wide_ns);
            write_f64(out, cost.narrow_ns);
            write_f64(out, cost.wide_exponent);
            write_f64(out, cost.narrow_exponent);
        }
        require(out.good(), "I/O error while writing " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        require(false, "cannot move calibration into place at " + path);
    }
}

std::optional<CalibrationTable> load_calibration(const std::string& path,
                                                 std::string_view protocol) {
    try {
        return load_calibration_strict(path, protocol);
    } catch (const std::exception&) {
        return std::nullopt;  // missing/corrupt/stale cache: caller re-probes
    }
}

void set_hybrid_options(HybridOptions options) {
    CalibrationRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.options = std::move(options);
    reg.memo.clear();
}

HybridOptions hybrid_options() {
    CalibrationRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.options;
}

CalibrationTable calibration_for(const std::string& protocol, std::size_t threads,
                                 std::size_t probe_population,
                                 const std::function<CalibrationTable()>& probe) {
    CalibrationRegistry& reg = registry();
    // Held across the probe on purpose: the first builder pays the probe, a
    // concurrent second builder blocks and then reads the memo — both see
    // the identical table, the same-process determinism contract.
    const std::lock_guard<std::mutex> lock(reg.mutex);
    if (reg.options.injected) return *reg.options.injected;
    const std::string key = memo_key(protocol, threads, probe_population);
    if (const auto it = reg.memo.find(key); it != reg.memo.end()) return it->second;
    const std::string path =
        calibration_cache_path(protocol, threads, probe_population, reg.options.cache_dir);
    if (!reg.options.recalibrate) {
        if (std::optional<CalibrationTable> cached = load_calibration(path, protocol)) {
            reg.memo.emplace(key, *cached);
            return *cached;
        }
    }
    const CalibrationTable probed = probe();
    try {
        save_calibration(path, protocol, probed);
    } catch (const std::exception&) {
        // Best-effort: an unwritable cache dir degrades to per-process
        // probing, never to a failed run.
    }
    reg.memo.emplace(key, probed);
    return probed;
}

}  // namespace ppsim
