/// \file calibration.hpp
/// \brief The hybrid engine's measured cost model: per-mode ns/interaction
/// tables calibrated by short probe runs and cached on disk per
/// (protocol, machine, threads), plus the process-wide ambient options that
/// configure where the cache lives and when it is rebuilt.
///
/// The hybrid engine (hybrid_engine.hpp) switches between the library's
/// execution modes mid-run based on *measured* costs, not hard-coded
/// heuristics. Probing costs real wall time, so tables persist in a small
/// versioned binary container (magic "PPCL", the persist.cpp idiom): a table
/// is only reused when the library version and the CPU signature it was
/// measured on both match, and `--recalibrate` forces a fresh probe. Within
/// a process tables are additionally memoised under a mutex, which is what
/// makes two hybrid simulations built in the same process take identical
/// mode decisions (the seeded-determinism contract of the engine table).
///
/// Configuration is ambient (process-wide) rather than threaded through
/// `make_simulation`: the registry / sweep / CLI surfaces stay unchanged,
/// and `EngineKind::hybrid` flows through the existing engine parameters.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace ppsim {

/// Execution modes the hybrid engine chooses among. `batched_pairwise` and
/// `batched_bulk` pin the batched engine's pairing strategy
/// (batch_pairing.hpp); `gillespie` covers both of that engine's internal
/// paths (exact SSA and τ-leaping — it already self-selects between them
/// from the live configuration, so the hybrid layer treats it as one mode).
enum class HybridMode : std::uint8_t {
    agent = 0,
    batched_pairwise = 1,
    batched_bulk = 2,
    gillespie = 3,
};

inline constexpr std::size_t hybrid_mode_count = 4;

/// Display name of a hybrid mode ("agent", "batched-pairwise", …).
[[nodiscard]] std::string_view to_string(HybridMode mode) noexcept;

/// Measured cost of one mode, in nanoseconds per interaction, under the two
/// anchor profiles the decision model interpolates between:
///  * `wide_ns`  — the early-run profile: many live states, nearly every
///    channel non-null (probed from the initial configuration);
///  * `narrow_ns` — the absorbed tail: few live states, null-dominated
///    channel mass (probed from a pre-run census), where the gillespie
///    engine's geometric null-skipping shines.
///
/// Per-interaction costs are population-dependent — the count engines
/// amortise per-round work over batches that grow with n, the agent engine
/// does not — so each anchor also carries a measured power-law exponent:
/// the anchor's cost at population n is `anchor_ns · (n / probe_population)^b`,
/// with b fitted from probes at two population buckets (hybrid_engine.hpp)
/// and clamped to a sane range. Exponents of 0 (the default, and the value
/// for single-bucket probes) reproduce the unscaled anchors exactly.
struct ModeCost {
    double wide_ns = 0.0;
    double narrow_ns = 0.0;
    double wide_exponent = 0.0;
    double narrow_exponent = 0.0;
};

/// One protocol's calibration on one machine: per-mode costs plus the probe
/// parameters they were measured under.
struct CalibrationTable {
    std::array<ModeCost, hybrid_mode_count> costs{};
    std::uint64_t probe_population = 0;  ///< the n the probes ran at
    std::uint64_t threads = 1;           ///< count-engine worker count probed
};

/// A short signature of the CPU the table was measured on (model name +
/// hardware thread count). A cached table from a different machine is stale:
/// relative mode costs do not transfer.
[[nodiscard]] std::string cpu_signature();

/// The calibration cache directory, resolved in order: the
/// PPSIM_CALIBRATION_DIR environment variable, XDG_CACHE_HOME/ppsim,
/// HOME/.cache/ppsim, then the system temp directory. Created on demand by
/// `save_calibration`.
[[nodiscard]] std::string default_calibration_dir();

/// Cache file path for (protocol, threads, probe population) under `dir`
/// (empty = `default_calibration_dir()`).
[[nodiscard]] std::string calibration_cache_path(std::string_view protocol,
                                                 std::size_t threads,
                                                 std::size_t probe_population,
                                                 std::string_view dir = {});

/// Writes a calibration table to `path` (versioned "PPCL" container,
/// stamped with the library version, CPU signature and protocol name).
/// The write is atomic: a temp file in the same directory is renamed over
/// the target, so concurrent writers can never expose a torn file.
void save_calibration(const std::string& path, std::string_view protocol,
                      const CalibrationTable& table);

/// Reads a table written by `save_calibration`. Returns nullopt — the
/// caller re-probes — when the file is missing, truncated, corrupt, from a
/// different library version or CPU, or for a different protocol/threads/
/// probe-population triple. Never throws for cache-staleness reasons.
[[nodiscard]] std::optional<CalibrationTable> load_calibration(
    const std::string& path, std::string_view protocol);

/// Process-wide hybrid configuration, set once (CLI startup, test setup)
/// and read by every hybrid engine built afterwards.
struct HybridOptions {
    /// Cache directory; empty = `default_calibration_dir()`.
    std::string cache_dir;
    /// Ignore any existing cache file and re-probe (then overwrite it).
    bool recalibrate = false;
    /// Test hook: use this table verbatim — no probing, no disk. Also the
    /// lever for seeded-reproducible hybrid replay across machines: a run
    /// is a deterministic function of (seed, calibration table).
    std::optional<CalibrationTable> injected;
};

/// Replaces the ambient options (and clears the in-process memo, so the new
/// options take effect for the next engine built).
void set_hybrid_options(HybridOptions options);

/// A copy of the current ambient options.
[[nodiscard]] HybridOptions hybrid_options();

/// The memoised table for (protocol, threads, probe_population): the
/// injected table if one is set, else the first of {in-process memo, valid
/// disk cache, fresh `probe()` run} that applies — probed tables are saved
/// back to disk (best-effort) and memoised. Serialised under a mutex so a
/// process probes each key at most once and two same-process simulations
/// see the identical table.
[[nodiscard]] CalibrationTable calibration_for(
    const std::string& protocol, std::size_t threads, std::size_t probe_population,
    const std::function<CalibrationTable()>& probe);

}  // namespace ppsim
