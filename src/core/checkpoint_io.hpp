/// \file checkpoint_io.hpp
/// \brief In-memory byte-buffer writer/reader for checkpoint payloads.
///
/// A checkpoint (persist.hpp, the "PPCK" container) is a validated header
/// plus one opaque payload: the engine, run-layer and observer state,
/// serialised by templated code in the engine headers. That code cannot
/// live in persist.cpp (it is templated over the protocol), so it writes
/// through this small fixed vocabulary instead — little-endian scalars,
/// length-prefixed strings, raw byte blocks for trivially-copyable protocol
/// states (the same representation persist.cpp's ConfigurationDump uses).
///
/// The payload is buffered in memory rather than streamed so the container
/// writer can checksum it (bit-flip detection) and length-prefix it
/// (truncation detection) before anything touches the disk, and so a resume
/// validates the whole container before mutating any engine — a bad file
/// must fail cleanly, never leave a half-restored simulation.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

#include "common.hpp"

namespace ppsim {

/// Accumulates a checkpoint payload in memory. All scalars are written in
/// the host's (little-endian) byte order — checkpoint files are already
/// machine-pinned by the container's CPU-signature check.
class CheckpointWriter {
public:
    void u8(std::uint8_t v) { raw(&v, sizeof v); }
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    /// Length-prefixed string.
    void str(std::string_view s) {
        u64(s.size());
        raw(s.data(), s.size());
    }

    /// Optional u64: presence flag + value.
    void opt_u64(const std::optional<std::uint64_t>& v) {
        boolean(v.has_value());
        if (v) u64(*v);
    }

    /// Raw object bytes of a trivially-copyable value (protocol states).
    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void pod(const T& v) {
        raw(&v, sizeof v);
    }

    void raw(const void* data, std::size_t size) {
        buffer_.append(static_cast<const char*>(data), size);
    }

    [[nodiscard]] const std::string& buffer() const noexcept { return buffer_; }
    [[nodiscard]] std::string take() noexcept { return std::move(buffer_); }

private:
    std::string buffer_;
};

/// Reads a payload produced by CheckpointWriter. Every read bounds-checks
/// against the buffer — a short or desynchronised payload throws
/// InvalidArgument instead of reading garbage.
class CheckpointReader {
public:
    explicit CheckpointReader(std::string buffer) : buffer_(std::move(buffer)) {}

    [[nodiscard]] std::uint8_t u8() { return scalar<std::uint8_t>(); }
    [[nodiscard]] std::uint32_t u32() { return scalar<std::uint32_t>(); }
    [[nodiscard]] std::uint64_t u64() { return scalar<std::uint64_t>(); }
    [[nodiscard]] double f64() { return scalar<double>(); }
    [[nodiscard]] bool boolean() { return u8() != 0; }

    [[nodiscard]] std::string str() {
        const std::uint64_t len = u64();
        require(len <= remaining(), "truncated checkpoint payload: string overruns buffer");
        std::string s(buffer_.data() + offset_, len);
        offset_ += len;
        return s;
    }

    [[nodiscard]] std::optional<std::uint64_t> opt_u64() {
        if (!boolean()) return std::nullopt;
        return u64();
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    [[nodiscard]] T pod() {
        return scalar<T>();
    }

    void raw(void* data, std::size_t size) {
        require(size <= remaining(), "truncated checkpoint payload");
        std::memcpy(data, buffer_.data() + offset_, size);
        offset_ += size;
    }

    [[nodiscard]] std::size_t remaining() const noexcept {
        return buffer_.size() - offset_;
    }

    /// Restores must consume the payload exactly: trailing bytes mean the
    /// reader and writer disagree about the format — fail loudly.
    void expect_end() const {
        require(remaining() == 0,
                "checkpoint payload has " + std::to_string(remaining()) +
                    " unconsumed bytes: reader/writer format mismatch");
    }

private:
    template <typename T>
    [[nodiscard]] T scalar() {
        T v{};
        raw(&v, sizeof v);
        return v;
    }

    std::string buffer_;
    std::size_t offset_ = 0;
};

}  // namespace ppsim
