/// \file common.hpp
/// \brief Fundamental types and small utilities shared across the library.
///
/// Part of ppsim, a population-protocol simulation library reproducing
/// Sudo et al., "Logarithmic Expected-Time Leader Election in Population
/// Protocol Model" (PODC 2019).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ppsim {

/// Index of an agent within a population. Populations are bounded well below
/// 2^32 in practice, but step counts are not, so steps use 64 bits.
using AgentId = std::uint32_t;

/// A count of interactions (steps). One unit of *parallel time* equals
/// `n` steps, where `n` is the population size.
using StepCount = std::uint64_t;

/// Sentinel for "no agent".
inline constexpr AgentId invalid_agent = std::numeric_limits<AgentId>::max();

/// The output alphabet of a leader-election protocol (the set `Y` of the
/// paper's protocol tuple restricted to the leader-election problem).
enum class Role : std::uint8_t {
    follower = 0,  ///< output symbol `F`
    leader = 1,    ///< output symbol `L`
};

/// Human-readable name of a role.
[[nodiscard]] constexpr std::string_view to_string(Role r) noexcept {
    return r == Role::leader ? "leader" : "follower";
}

/// Exception type for violated preconditions in public API entry points.
class InvalidArgument : public std::invalid_argument {
public:
    using std::invalid_argument::invalid_argument;
};

/// Exception type for violated internal invariants (bugs, not user errors).
class InvariantViolation : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// Throws InvalidArgument with a formatted message when `cond` is false.
/// Used to validate user-facing API preconditions; never compiled out.
inline void require(bool cond, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
    if (!cond) {
        throw InvalidArgument(std::string(loc.file_name()) + ":" +
                              std::to_string(loc.line()) + ": " + message);
    }
}

/// Throws InvariantViolation when `cond` is false. Checks internal
/// invariants that indicate a library bug rather than user error.
inline void ensure(bool cond, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
    if (!cond) {
        throw InvariantViolation(std::string(loc.file_name()) + ":" +
                                 std::to_string(loc.line()) + ": " + message);
    }
}

/// Converts a step count to parallel time for a population of size n.
/// Parallel time is the paper's unit of time: steps divided by n.
[[nodiscard]] constexpr double to_parallel_time(StepCount steps, std::size_t n) noexcept {
    return n == 0 ? 0.0 : static_cast<double>(steps) / static_cast<double>(n);
}

/// ceil(log2(x)) for x >= 1; 0 for x <= 1.
[[nodiscard]] constexpr unsigned ceil_log2(std::uint64_t x) noexcept {
    if (x <= 1) return 0;
    unsigned bits = 0;
    std::uint64_t v = x - 1;
    while (v > 0) {
        v >>= 1U;
        ++bits;
    }
    return bits;
}

/// floor(log2(x)) for x >= 1; 0 for x == 0.
[[nodiscard]] constexpr unsigned floor_log2(std::uint64_t x) noexcept {
    unsigned bits = 0;
    while (x > 1) {
        x >>= 1U;
        ++bits;
    }
    return bits;
}

/// Converts a model-time point (parallel-time units) to the absolute step
/// index at which it occurs for a population of size n: step = ceil(t * n).
/// Model time T is the paper's parallel time — T units equal T*n steps —
/// and both the deadline observers and the fault-injection plans anchor
/// their triggers at exactly this step on every engine. Saturates to the
/// maximum step count for times beyond the representable range.
[[nodiscard]] inline StepCount model_time_to_step(double time, std::size_t n) {
    require(time >= 0.0, "model time must be non-negative");
    const double steps = std::ceil(time * static_cast<double>(n));
    if (steps >= 1.8e19) return std::numeric_limits<StepCount>::max();
    return static_cast<StepCount>(steps);
}

/// Library version, reported by tools and embedded in result artefacts.
inline constexpr std::string_view library_version = "1.0.0";

}  // namespace ppsim
