/// \file count_store.hpp
/// \brief The interned-count configuration store shared by the count-based
/// engines (BatchedEngine, GillespieEngine): per-state-id agent counts with
/// a live-id list, plus the in-flight "touched" side multiset both engines
/// use to keep a round's outputs out of that same round's inputs.
///
/// Sibling of TransitionCache (transition_cache.hpp): the cache memoises
/// what a transition *does*, this store tracks how many agents sit in each
/// state while rounds are applied. Both engines used to carry private copies
/// of this bookkeeping (intern/live-list/touch-merge); one definition here
/// means a fix — or an invariant change — lands once for every count engine.
/// The store is pure bookkeeping: it draws no randomness and never calls the
/// protocol outside `intern`, so moving an engine onto it cannot change the
/// engine's seeded replay stream.
///
/// Invariants between engine rounds (the states in which engines expose
/// observation):
///  * `counts()[id]` is the exact number of agents in state id; their sum is
///    the population size;
///  * every id with a non-zero count is in `live_ids()` exactly once
///    (`live_ids()` may additionally hold dead ids until a compaction);
///  * the touched multiset is empty (`merge_touched` folded it back).
/// During a round, engines may move agents from `counts()` into the touched
/// multiset (outputs produced mid-round) and back via `merge_touched()`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "checkpoint_io.hpp"
#include "state_index.hpp"

namespace ppsim {

/// Interned per-state agent counts + live-id list + touched side multiset.
/// The hot-path accessors hand out direct references to the underlying
/// vectors: the engines' inner loops index them exactly as they indexed
/// their former private members, so the extraction costs nothing.
template <typename P>
    requires InternableProtocol<P>
class InternedCountStore {
public:
    using State = typename P::State;

    /// Dense id of `s`, interning it on first sight and growing every
    /// per-id vector in lock step. The engines' single interning gateway
    /// (also re-entered by the transition cache's compute callback).
    StateId intern(const P& proto, const State& s) {
        const StateId id = index_.intern(proto, s);
        if (index_.size() > counts_.size()) {
            counts_.resize(index_.size(), 0);
            touched_.resize(index_.size(), 0);
            in_live_.resize(index_.size(), 0);
        }
        return id;
    }

    /// Adds `id` to the live list if absent.
    void make_live(StateId id) {
        if (in_live_[id] == 0) {
            in_live_[id] = 1;
            live_ids_.push_back(id);
        }
    }

    /// Drops every dead id from the live list. Legal between rounds only
    /// (while a round is in flight a zero count may mean "all in the touched
    /// multiset", not "empty").
    void compact_live() {
        std::size_t i = 0;
        while (i < live_ids_.size()) {
            if (!drop_dead_at(i)) ++i;
        }
    }

    /// Swap-removes `live_ids()[i]` when its count is zero; returns true on
    /// removal (the caller revisits index i, which now holds the swapped-in
    /// id). Building block for walks that compact while iterating — the
    /// batched engine's first multiset chain of each round.
    bool drop_dead_at(std::size_t i) {
        const StateId id = live_ids_[i];
        if (counts_[id] != 0) return false;
        in_live_[id] = 0;
        live_ids_[i] = live_ids_.back();
        live_ids_.pop_back();
        return true;
    }

    /// Adds `mult` agents in state `id` to the touched side multiset.
    void touch(StateId id, std::uint64_t mult) {
        if (touched_[id] == 0) touched_ids_.push_back(id);
        touched_[id] += mult;
        touched_total_ += mult;
    }

    /// Folds the touched multiset back into the counts and empties it.
    void merge_touched() {
        for (const StateId id : touched_ids_) {
            counts_[id] += touched_[id];
            touched_[id] = 0;
            make_live(id);
        }
        touched_ids_.clear();
        touched_total_ = 0;
    }

    // --- hot-path access ---------------------------------------------------

    [[nodiscard]] StateIndex<P>& index() noexcept { return index_; }
    [[nodiscard]] const StateIndex<P>& index() const noexcept { return index_; }
    [[nodiscard]] std::vector<std::uint64_t>& counts() noexcept { return counts_; }
    [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
        return counts_;
    }
    [[nodiscard]] std::vector<std::uint64_t>& touched() noexcept { return touched_; }
    [[nodiscard]] const std::vector<StateId>& touched_ids() const noexcept {
        return touched_ids_;
    }
    [[nodiscard]] std::vector<StateId>& live_ids() noexcept { return live_ids_; }
    [[nodiscard]] const std::vector<StateId>& live_ids() const noexcept {
        return live_ids_;
    }
    [[nodiscard]] std::uint64_t touched_total() const noexcept { return touched_total_; }

    /// Removes one agent from the touched multiset's entry for `id`
    /// (the batched engine's collision-step draw).
    void untouch_one(StateId id) {
        touched_[id] -= 1;
        touched_total_ -= 1;
    }

    // --- observation (between rounds) --------------------------------------

    /// Exact count of agents currently in state `s` (0 when never interned).
    [[nodiscard]] std::uint64_t count_of(const P& proto, const State& s) const {
        const std::optional<StateId> id = index_.find(state_key_of(proto, s));
        return id ? counts_[*id] : 0;
    }

    /// Number of distinct states with a non-zero count.
    [[nodiscard]] std::size_t live_state_count() const noexcept {
        std::size_t live = 0;
        for (const std::uint64_t c : counts_) live += c != 0 ? 1 : 0;
        return live;
    }

    /// Sum of all counts — the population size, by conservation.
    [[nodiscard]] std::uint64_t total_count() const noexcept {
        std::uint64_t total = 0;
        for (const std::uint64_t c : counts_) total += c;
        return total;
    }

    /// Visits every state with a non-zero count as (state, count, role) —
    /// O(#states) regardless of population size.
    template <typename Visitor>
    void visit_counts(Visitor&& visit) const {
        for (StateId id = 0; id < counts_.size(); ++id) {
            if (counts_[id] != 0) {
                visit(index_.state(id), counts_[id], index_.role(id));
            }
        }
    }

    /// Leader count recomputed from the count vector (tests / checks).
    [[nodiscard]] std::uint64_t recount_leaders() const noexcept {
        std::uint64_t leaders = 0;
        for (StateId id = 0; id < counts_.size(); ++id) {
            if (index_.is_leader(id)) leaders += counts_[id];
        }
        return leaders;
    }

    /// Replaces the configuration wholesale with `census` (state, count)
    /// pairs: zero every count, intern and set the census entries, rebuild
    /// the live list. The count engines' adoption primitive for the hybrid
    /// engine's mid-run handoff (hybrid_engine.hpp). Only legal between
    /// rounds (touched multiset empty). Returns the census total for the
    /// caller's conservation check.
    std::uint64_t adopt_census(const P& proto,
                               const std::vector<std::pair<State, std::uint64_t>>& census) {
        std::fill(counts_.begin(), counts_.end(), 0);
        std::uint64_t total = 0;
        for (const auto& [state, count] : census) {
            if (count == 0) continue;
            const StateId id = intern(proto, state);
            counts_[id] += count;
            make_live(id);
            total += count;
        }
        compact_live();
        return total;
    }

    // --- checkpointing (between rounds) -------------------------------------

    /// Serialises the store for a checkpoint: interned states in id order
    /// (id assignment order is part of the replay contract — downstream
    /// multiset chains walk ids), their counts, and the live list *in its
    /// current order* (the chains walk it in order too). Only legal between
    /// rounds: the touched multiset must be empty.
    void save_state(CheckpointWriter& w) const {
        ensure(touched_total_ == 0 && touched_ids_.empty(),
               "cannot checkpoint a count store mid-round");
        w.u64(index_.size());
        for (StateId id = 0; id < index_.size(); ++id) w.pod(index_.state(id));
        for (StateId id = 0; id < index_.size(); ++id) w.u64(counts_[id]);
        w.u64(live_ids_.size());
        for (const StateId id : live_ids_) w.u32(id);
    }

    /// Rebuilds the store from a `save_state` payload: re-interns the saved
    /// states in id order (reproducing the exact id assignment), restores
    /// the counts, and replays the live list in its saved order.
    void restore_state(const P& proto, CheckpointReader& r) {
        *this = InternedCountStore<P>{};
        const std::uint64_t states = r.u64();
        for (std::uint64_t i = 0; i < states; ++i) {
            const State s = r.pod<State>();
            const StateId id = intern(proto, s);
            require(id == i, "checkpoint holds duplicate interned states");
        }
        for (StateId id = 0; id < states; ++id) counts_[id] = r.u64();
        const std::uint64_t live = r.u64();
        for (std::uint64_t i = 0; i < live; ++i) {
            const StateId id = r.u32();
            require(id < states, "checkpoint live list references unknown state");
            make_live(id);
        }
    }

private:
    StateIndex<P> index_;
    std::vector<std::uint64_t> counts_;   ///< agents per state id
    std::vector<std::uint64_t> touched_;  ///< in-flight round outputs per state id
    std::vector<StateId> touched_ids_;    ///< ids with touched_[id] > 0
    std::vector<StateId> live_ids_;       ///< ids that may have counts_[id] > 0
    std::vector<std::uint8_t> in_live_;   ///< membership flags for live_ids_
    std::uint64_t touched_total_ = 0;     ///< Σ touched_[id]
};

}  // namespace ppsim
