#include "csv.hpp"

#include <algorithm>

#include "common.hpp"

namespace ppsim {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path, std::ios::trunc), columns_(header.size()) {
    require(out_.good(), "cannot open " + path + " for writing");
    require(columns_ > 0, "CSV header must declare at least one column");
    for (std::size_t i = 0; i < header.size(); ++i) {
        out_ << escape(header[i]);
        out_ << (i + 1 < header.size() ? "," : "\n");
    }
}

void CsvWriter::write_row(std::span<const std::string> cells) {
    require(cells.size() == columns_,
            "CSV row has " + std::to_string(cells.size()) + " cells, expected " +
                std::to_string(columns_));
    for (std::size_t i = 0; i < cells.size(); ++i) {
        out_ << escape(cells[i]);
        out_ << (i + 1 < cells.size() ? "," : "\n");
    }
    ++rows_;
}

void CsvWriter::write_row(std::initializer_list<std::string> cells) {
    write_row(std::span<const std::string>(cells.begin(), cells.size()));
}

void CsvWriter::flush() { out_.flush(); }

std::string CsvWriter::escape(const std::string& field) {
    const bool needs_quoting =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting) return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') out += "\"\"";
        else out += c;
    }
    out += '"';
    return out;
}

}  // namespace ppsim
