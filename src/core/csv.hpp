/// \file csv.hpp
/// \brief CSV writer for experiment output (one row per measurement), the
/// format consumed by external plotting tools.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace ppsim {

/// Streams rows into a CSV file with a fixed header. Fields containing
/// commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
public:
    /// Opens `path` (truncating) and writes the header row.
    CsvWriter(const std::string& path, std::vector<std::string> header);

    /// Writes a data row; must match the header's column count.
    void write_row(std::span<const std::string> cells);
    void write_row(std::initializer_list<std::string> cells);

    /// Number of data rows written so far.
    [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

    /// Flushes buffered rows to disk.
    void flush();

private:
    static std::string escape(const std::string& field);

    std::ofstream out_;
    std::size_t columns_;
    std::size_t rows_ = 0;
};

}  // namespace ppsim
