/// \file engine.hpp
/// \brief The simulation engine: applies scheduled interactions to a
/// population and tracks convergence incrementally.
///
/// The engine is templated on the protocol so the transition function is
/// inlined into the interaction loop (tens of millions of interactions per
/// second). Leader counts are maintained incrementally by re-evaluating the
/// output map only for the two agents touched by each interaction.
///
/// Stabilisation semantics: for every protocol in this library, "exactly one
/// leader" is an *absorbing* predicate — followers never become leaders and
/// no transition eliminates the last leader (the paper proves this for PLL
/// module by module; the baselines satisfy it by construction). The engine
/// therefore reports the first step at which the leader count reaches one as
/// the stabilisation step. Tests additionally run long post-convergence
/// suffixes through `verify_outputs_stable` to validate the certificates.
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint_io.hpp"
#include "common.hpp"
#include "fault.hpp"
#include "population.hpp"
#include "protocol.hpp"
#include "scheduler.hpp"

namespace ppsim {

/// Which simulation back-end to run an election on. `agent` is the exact
/// per-interaction Engine<P>; `batched` is the count-based BatchedEngine<P>
/// — equal in distribution for protocols whose single-leader predicate is
/// absorbing (every election protocol here except the loosely-stabilising
/// baseline, whose transient one-leader visits the batched engine only
/// observes at batch granularity) and orders of magnitude faster at large n.
/// `gillespie` is the reaction-rate GillespieEngine<P>: exact SSA over
/// non-null reaction channels (geometric null-reaction skipping) with a
/// τ-leaping fast path at large n — exact below its leap threshold,
/// approximate (statistically validated) above it.
enum class EngineKind : std::uint8_t {
    agent = 0,
    batched = 1,
    gillespie = 2,
    hybrid = 3,
};

/// One row of the engine table: the kind, its registry/CLI name, and a
/// one-line summary for help text.
struct EngineDescriptor {
    EngineKind kind;
    std::string_view name;
    std::string_view summary;
};

/// The single source of truth for the engine list. `to_string`,
/// `parse_engine_kind` and every CLI help string derive from this table, so
/// adding an engine is a one-row change that cannot desync them.
inline constexpr std::array<EngineDescriptor, 4> engine_table{{
    {EngineKind::agent, "agent", "exact per-interaction simulation of every agent"},
    {EngineKind::batched, "batched",
     "count-based batch simulation, sub-constant time per interaction at large n"},
    {EngineKind::gillespie, "gillespie",
     "reaction-rate SSA with null-reaction skipping and tau-leaping at large n"},
    {EngineKind::hybrid, "hybrid",
     "adaptive meta-engine: switches mode per phase from a measured cost model"},
}};

/// Registry/CLI name of an engine kind.
[[nodiscard]] constexpr std::string_view to_string(EngineKind kind) noexcept {
    for (const EngineDescriptor& d : engine_table) {
        if (d.kind == kind) return d.name;
    }
    return "unknown";
}

/// The engine names joined as "agent | batched | gillespie", for usage
/// strings.
[[nodiscard]] inline std::string engine_kind_list(std::string_view separator = " | ") {
    std::string out;
    for (const EngineDescriptor& d : engine_table) {
        if (!out.empty()) out += separator;
        out += d.name;
    }
    return out;
}

/// Parses an engine name from the engine table; throws on anything else.
/// The error enumerates every valid engine with its one-line summary, so
/// the CLI's `--engine` diagnostics can never desync from the table.
[[nodiscard]] inline EngineKind parse_engine_kind(std::string_view name) {
    for (const EngineDescriptor& d : engine_table) {
        if (d.name == name) return d.kind;
    }
    std::string message = "unknown engine: '" + std::string(name) + "'; valid engines:";
    for (const EngineDescriptor& d : engine_table) {
        message += "\n  ";
        message += d.name;
        message += " — ";
        message += d.summary;
    }
    throw InvalidArgument(message);
}

/// Outcome of a bounded engine run.
struct RunResult {
    bool converged = false;        ///< reached the target predicate within the budget
    StepCount steps = 0;           ///< total steps executed by this engine so far
    double parallel_time = 0.0;    ///< steps / n
    std::size_t leader_count = 0;  ///< leaders at the end of the run
    /// First step index t such that after interaction t the population had
    /// exactly one leader; unset if that never happened.
    std::optional<StepCount> stabilization_step;

    /// Stabilisation time in parallel-time units (steps / n); NaN if the run
    /// never reached a single leader.
    [[nodiscard]] double stabilization_parallel_time(std::size_t n) const noexcept {
        if (!stabilization_step) return std::numeric_limits<double>::quiet_NaN();
        return to_parallel_time(*stabilization_step, n);
    }
};

/// Simulation engine for a statically-typed protocol.
///
/// Rate-annotated protocols (RatedProtocol, protocol.hpp) are honoured by
/// per-step rejection thinning: after the scheduler draws a pair, the
/// transition fires with probability rate(a, b)/max_rate() — otherwise the
/// step is a null interaction (it still counts as a step, exactly as in the
/// count-based engines). The thinning draws come from a dedicated stream so
/// unrated protocols' seeded schedules are untouched. Hand-driven
/// `apply(Interaction)` calls (replay, adversary tests) are *not* thinned:
/// they apply the transition the caller asked for.
template <Protocol P>
class Engine {
public:
    using State = typename P::State;

    /// Creates an engine over a fresh population of `n` agents in the
    /// protocol's initial state, with an internal uniformly random scheduler.
    Engine(P protocol, std::size_t n, std::uint64_t seed)
        : protocol_(std::move(protocol)),
          population_(n, protocol_.initial_state()),
          scheduler_(n, seed),
          thin_rng_(derive_seed(seed, 0x7468696eULL)),  // "thin"
          fault_rng_(derive_seed(seed, fault_stream_tag)) {
        recount_leaders();
    }

    // --- observation ------------------------------------------------------

    [[nodiscard]] std::size_t population_size() const noexcept { return population_.size(); }
    [[nodiscard]] StepCount steps() const noexcept { return steps_; }
    [[nodiscard]] double parallel_time() const noexcept {
        return to_parallel_time(steps_, population_.size());
    }
    [[nodiscard]] std::size_t leader_count() const noexcept { return leader_count_; }
    [[nodiscard]] const Population<State>& population() const noexcept { return population_; }
    [[nodiscard]] Population<State>& population() noexcept { return population_; }
    [[nodiscard]] const P& protocol() const noexcept { return protocol_; }
    [[nodiscard]] std::optional<StepCount> stabilization_step() const noexcept {
        return first_single_leader_step_;
    }

    /// Role of a single agent under the protocol's output map.
    [[nodiscard]] Role role_of(AgentId id) const noexcept {
        return protocol_.output(population_[id]);
    }

    // --- execution --------------------------------------------------------

    /// Executes one interaction drawn from the internal random scheduler and
    /// returns the pair that interacted. For rated protocols the step may be
    /// thinned to a null interaction (the pair met, nothing happened).
    Interaction step() {
        if (population_.size() < 2) {
            // A crash fault can leave a single survivor: no pair exists, so
            // the scheduler ticks without an interaction.
            ++steps_;
            return Interaction{};
        }
        const Interaction interaction = scheduler_.next();
        if constexpr (RatedProtocol<P>) {
            if (!fires(interaction)) {
                ++steps_;  // a null interaction occupies its step slot
                return interaction;
            }
        }
        apply(interaction);
        return interaction;
    }

    /// Applies one specific interaction (replay / hand-driven tests).
    void apply(Interaction interaction) {
        auto& a = population_[interaction.initiator];
        auto& b = population_[interaction.responder];
        const int before = roles_as_int(a, b);
        protocol_.interact(a, b);
        const int after = roles_as_int(a, b);
        leader_count_ =
            static_cast<std::size_t>(static_cast<long long>(leader_count_) + after - before);
        ++steps_;
        if (leader_count_ == 1 && !first_single_leader_step_) {
            first_single_leader_step_ = steps_;
        }
    }

    /// Applies every interaction of a recorded schedule in order.
    void apply(const RecordedSchedule& schedule) {
        for (const Interaction& interaction : schedule.view()) apply(interaction);
    }

    /// Runs until exactly one leader remains or `max_steps` further steps
    /// have been executed, whichever comes first. Specialised hot loop: the
    /// incrementally-maintained leader count is read directly, with no
    /// predicate callback and no re-evaluation before the first step.
    RunResult run_until_one_leader(StepCount max_steps) {
        StepCount executed = 0;
        while (leader_count_ != 1 && executed < max_steps) {
            step();
            ++executed;
        }
        return make_result(leader_count_ == 1);
    }

    /// Runs until `done(*this)` holds or the step budget is exhausted.
    template <typename DonePredicate>
    RunResult run_until(StepCount max_steps, DonePredicate done) {
        StepCount executed = 0;
        bool reached = done(*this);
        while (!reached && executed < max_steps) {
            step();
            ++executed;
            reached = done(*this);
        }
        return make_result(reached);
    }

    /// Runs exactly `count` steps (or fewer if you compose with run_until).
    RunResult run_for(StepCount count) {
        for (StepCount i = 0; i < count; ++i) step();
        return make_result(leader_count_ == 1);
    }

    /// Runs `count` additional steps and reports whether any agent's *output*
    /// changed during them. Used to validate that a detected stabilisation
    /// point really is absorbing.
    [[nodiscard]] bool verify_outputs_stable(StepCount count) {
        if (population_.size() < 2) {  // no pairs: outputs trivially stable
            steps_ += count;
            return true;
        }
        const std::size_t leaders_before = leader_count_;
        bool changed = false;
        for (StepCount i = 0; i < count; ++i) {
            const Interaction interaction = scheduler_.next();
            if constexpr (RatedProtocol<P>) {
                if (!fires(interaction)) {  // thinned: outputs cannot change
                    ++steps_;
                    continue;
                }
            }
            const Role a_before = role_of(interaction.initiator);
            const Role b_before = role_of(interaction.responder);
            apply(interaction);
            if (role_of(interaction.initiator) != a_before ||
                role_of(interaction.responder) != b_before) {
                changed = true;
            }
        }
        return !changed && leader_count_ == leaders_before;
    }

    // --- fault injection ---------------------------------------------------

    /// Applies one crash/rejoin/reset fault between steps (the run layer
    /// slices chunks at fault steps, so this never lands mid-interaction).
    /// All randomness comes from the dedicated fault stream; the scheduler's
    /// stream is untouched, so the post-fault schedule is a deterministic
    /// function of (seed, plan). Silence is a run-layer concern and is never
    /// forwarded here. After the mutation the single-leader detection is
    /// re-anchored: the run layer's stabilisation step becomes the first
    /// step at which the *post-fault* configuration has exactly one leader.
    void apply_fault(const FaultAction& action) {
        require(action.kind != FaultKind::silence,
                "silence is applied by the run layer, not the engine");
        const std::size_t n = population_.size();
        switch (action.kind) {
            case FaultKind::crash: {
                std::uint64_t k = resolve_fault_count(action, n);
                if (k >= n) k = n - 1;  // always leave one survivor
                for (std::uint64_t i = 0; i < k; ++i) {
                    const auto victim = static_cast<AgentId>(
                        uniform_below(fault_rng_, population_.size()));
                    if (protocol_.output(population_[victim]) == Role::leader) {
                        --leader_count_;
                    }
                    population_.remove_swap(victim);
                }
                scheduler_.set_population_size(population_.size());
                break;
            }
            case FaultKind::rejoin: {
                const State fresh = protocol_.initial_state();
                population_.append(fresh, action.count);
                if (protocol_.output(fresh) == Role::leader) {
                    leader_count_ += action.count;
                }
                scheduler_.set_population_size(population_.size());
                break;
            }
            case FaultKind::reset: {
                std::uint64_t k = resolve_fault_count(action, n);
                if (k > n) k = n;
                // Partial Fisher–Yates picks k distinct victims uniformly.
                std::vector<AgentId> ids(n);
                std::iota(ids.begin(), ids.end(), AgentId{0});
                const State fresh = protocol_.initial_state();
                const bool fresh_leads = protocol_.output(fresh) == Role::leader;
                for (std::uint64_t i = 0; i < k; ++i) {
                    const std::uint64_t j =
                        i + uniform_below(fault_rng_, static_cast<std::uint64_t>(n) - i);
                    std::swap(ids[i], ids[j]);
                    State& victim = population_[ids[i]];
                    const bool led = protocol_.output(victim) == Role::leader;
                    leader_count_ = static_cast<std::size_t>(
                        static_cast<long long>(leader_count_) +
                        static_cast<int>(fresh_leads) - static_cast<int>(led));
                    victim = fresh;
                }
                break;
            }
            case FaultKind::silence: break;  // unreachable (guarded above)
        }
        first_single_leader_step_ = leader_count_ == 1
                                        ? std::optional<StepCount>(steps_)
                                        : std::nullopt;
    }

    /// Advances the step counter through a rate-zero silence window: the
    /// scheduler ticks `count` times with no pair reacting. Consumes no
    /// randomness, so the post-window schedule stream is unperturbed.
    void advance_silent(StepCount count) noexcept { steps_ += count; }

    /// Adopts a configuration handed over by another engine (the hybrid
    /// meta-engine's mid-run switch, hybrid_engine.hpp): lays the census out
    /// over the population in the given order (identities are irrelevant
    /// under the uniform scheduler), and carries the step counter and
    /// stabilisation step across so observers see one continuous run. The
    /// census must conserve this engine's population size. The scheduler /
    /// thinning / fault streams keep the seed this engine was built with —
    /// the handoff contract assigns each hybrid segment its own stream.
    void adopt_census(const std::vector<std::pair<State, std::uint64_t>>& census,
                      StepCount steps, std::optional<StepCount> stabilization_step) {
        auto states = population_.states();
        std::size_t i = 0;
        for (const auto& [state, count] : census) {
            require(count <= states.size() - i, "census overfills the population");
            for (std::uint64_t k = 0; k < count; ++k) states[i++] = state;
        }
        require(i == states.size(), "census does not conserve the population");
        steps_ = steps;
        first_single_leader_step_ = stabilization_step;
        recount_leaders();
    }

    /// Recomputes the leader count from scratch (O(n)); the engine keeps the
    /// count incrementally, so this exists for tests and defensive checks.
    std::size_t recount_leaders() {
        leader_count_ = population_.count_if(
            [this](const State& s) { return protocol_.output(s) == Role::leader; });
        return leader_count_;
    }

    /// Direct access to the scheduler (e.g. to inspect or reseed streams).
    [[nodiscard]] UniformScheduler& scheduler() noexcept { return scheduler_; }

    // --- checkpointing ------------------------------------------------------

    /// Serialises the engine's complete replay-relevant state: the raw agent
    /// states, every PRNG stream position (scheduler, thinning, fault), and
    /// the step/leader/stabilisation counters. The streams are private by
    /// design, so this is a member rather than an external walker.
    void save_state(CheckpointWriter& w) const {
        static_assert(std::is_trivially_copyable_v<State>);
        w.u64(population_.size());
        w.raw(population_.states().data(), population_.size() * sizeof(State));
        w.pod(scheduler_.rng().state());
        w.pod(thin_rng_.state());
        w.pod(fault_rng_.state());
        w.u64(steps_);
        w.u64(leader_count_);
        w.opt_u64(first_single_leader_step_);
    }

    /// Restores a `save_state` payload. The engine must have been built with
    /// the same protocol; the population is resized if faults changed n.
    void restore_state(CheckpointReader& r) {
        const std::uint64_t n = r.u64();
        require(n >= 1, "checkpointed population is empty");
        // Resize by append/remove rather than reconstruction: a crash fault
        // may have left fewer than the two agents Population's ctor demands.
        while (population_.size() > n) population_.remove_swap(0);
        if (population_.size() < n) {
            population_.append(protocol_.initial_state(), n - population_.size());
        }
        scheduler_.set_population_size(n);
        r.raw(population_.states().data(), population_.size() * sizeof(State));
        scheduler_.rng().set_state(r.pod<std::array<std::uint64_t, 4>>());
        thin_rng_.set_state(r.pod<std::array<std::uint64_t, 4>>());
        fault_rng_.set_state(r.pod<std::array<std::uint64_t, 4>>());
        steps_ = r.u64();
        leader_count_ = r.u64();
        first_single_leader_step_ = r.opt_u64();
    }

private:
    /// Rejection-thinning draw: does the scheduled pair's transition fire?
    /// (Instantiated for rated protocols only.)
    [[nodiscard]] bool fires(const Interaction& interaction) {
        const State& a = population_[interaction.initiator];
        const State& b = population_[interaction.responder];
        const double rate = pair_rate_of(protocol_, a, b);
        const double rmax = max_rate_of(protocol_);
        if (rate >= rmax) return true;
        return uniform_unit(thin_rng_) * rmax < rate;
    }

    [[nodiscard]] int roles_as_int(const State& a, const State& b) const noexcept {
        return static_cast<int>(protocol_.output(a) == Role::leader) +
               static_cast<int>(protocol_.output(b) == Role::leader);
    }

    [[nodiscard]] RunResult make_result(bool converged) const noexcept {
        RunResult r;
        r.converged = converged;
        r.steps = steps_;
        r.parallel_time = to_parallel_time(steps_, population_.size());
        r.leader_count = leader_count_;
        r.stabilization_step = first_single_leader_step_;
        return r;
    }

    P protocol_;
    Population<State> population_;
    UniformScheduler scheduler_;
    Rng thin_rng_;  ///< rate-thinning stream (only drawn from by rated protocols)
    Rng fault_rng_;  ///< fault-surgery stream (only drawn from by apply_fault)
    StepCount steps_ = 0;
    std::size_t leader_count_ = 0;
    std::optional<StepCount> first_single_leader_step_;
};

/// Convenience: simulate protocol `proto` on `n` agents with `seed` until one
/// leader remains or the budget runs out, and return the result.
template <Protocol P>
[[nodiscard]] RunResult simulate_to_single_leader(P proto, std::size_t n, std::uint64_t seed,
                                                  StepCount max_steps) {
    Engine<P> engine(std::move(proto), n, seed);
    return engine.run_until_one_leader(max_steps);
}

}  // namespace ppsim
