/// \file fault.hpp
/// \brief Fault-injection plans: model-time-triggered crash / rejoin /
/// reset / silence actions applied exactly and deterministically by every
/// engine.
///
/// The paper's protocols are interesting precisely where things go wrong —
/// the loosely-stabilizing line (loose_sud12) and the companion lower bound
/// are about *re*-electing after disruption. A `FaultPlan` is an ordered
/// list of `{model time, action}` pairs; the run layer
/// (src/core/simulation.hpp) slices the step budget at each fault's step
/// (step = ⌈t·n₀⌉, the same anchoring as DeadlineObserver) and hands the
/// action to the engine between chunks, so a fault at model time T lands
/// after *exactly* ⌈T·n₀⌉ interactions on every engine — agent, batched
/// and gillespie alike.
///
/// Action semantics (n = current population, n₀ = population at plan
/// attach time; fractions resolve against the *current* n):
///
///  * `crash(fraction|count)` — remove k uniformly random agents. The
///    population shrinks; parallel-time conversion and protocol parameters
///    stay anchored at n₀ (documented in docs/ARCHITECTURE.md).
///  * `rejoin(count)` — inject k fresh agents in the protocol's initial
///    state (new contenders: for an election this reopens the race).
///  * `reset(fraction|count)` — adversarial corruption: k uniformly random
///    agents are overwritten with the initial state. Population unchanged.
///  * `silence(duration)` — a rate-zero window: for ⌈duration·n₀⌉ steps
///    the scheduler ticks (steps advance, observers fire) but no pair
///    reacts. Handled by the run layer; engines never see it.
///
/// Determinism: every engine owns a dedicated `fault_rng_` stream (seeded
/// `derive_seed(seed, fault_stream_tag)` at construction, like the rated
/// thinning stream), so fault randomness never perturbs the main schedule
/// stream — no-fault runs keep bit-identical golden-seed streams, and the
/// same seed + plan replays the same post-fault stream on each engine.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common.hpp"
#include "count_store.hpp"
#include "random.hpp"

namespace ppsim {

/// The four fault actions of the scenario engine.
enum class FaultKind : std::uint8_t {
    crash = 0,    ///< remove agents uniformly at random
    rejoin = 1,   ///< inject fresh agents in the initial state
    reset = 2,    ///< overwrite random agents with the initial state
    silence = 3,  ///< rate-zero window: steps tick, nothing reacts
};

[[nodiscard]] constexpr std::string_view to_string(FaultKind kind) noexcept {
    switch (kind) {
        case FaultKind::crash: return "crash";
        case FaultKind::rejoin: return "rejoin";
        case FaultKind::reset: return "reset";
        case FaultKind::silence: return "silence";
    }
    return "unknown";
}

/// One fault action. `count > 0` selects an absolute number of agents;
/// otherwise `fraction` of the *current* population (rounded to nearest,
/// at least one agent). `duration` is only meaningful for silence.
struct FaultAction {
    FaultKind kind = FaultKind::crash;
    double fraction = 0.0;     ///< fraction of the current population (crash/reset)
    std::uint64_t count = 0;   ///< absolute agent count (crash/rejoin/reset)
    double duration = 0.0;     ///< silence window length, parallel-time units

    [[nodiscard]] static FaultAction crash_fraction(double f) {
        return FaultAction{FaultKind::crash, f, 0, 0.0};
    }
    [[nodiscard]] static FaultAction crash_count(std::uint64_t k) {
        return FaultAction{FaultKind::crash, 0.0, k, 0.0};
    }
    [[nodiscard]] static FaultAction rejoin_count(std::uint64_t k) {
        return FaultAction{FaultKind::rejoin, 0.0, k, 0.0};
    }
    [[nodiscard]] static FaultAction reset_fraction(double f) {
        return FaultAction{FaultKind::reset, f, 0, 0.0};
    }
    [[nodiscard]] static FaultAction reset_count(std::uint64_t k) {
        return FaultAction{FaultKind::reset, 0.0, k, 0.0};
    }
    [[nodiscard]] static FaultAction transient_silence(double duration) {
        return FaultAction{FaultKind::silence, 0.0, 0, duration};
    }
};

/// A fault at a model-time point (parallel-time units, anchored at the
/// population size when the plan is attached).
struct TimedFault {
    double time = 0.0;
    FaultAction action;
};

/// An ordered fault schedule. Order of insertion breaks ties at equal
/// times (the run layer stable-sorts by step).
struct FaultPlan {
    std::vector<TimedFault> faults;

    [[nodiscard]] bool empty() const noexcept { return faults.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return faults.size(); }

    FaultPlan& add(double time, FaultAction action) {
        faults.push_back(TimedFault{time, std::move(action)});
        return *this;
    }
};

/// Validates one action's parameters (throws InvalidArgument). Shared by
/// the CLI parser and `Simulation::set_fault_plan`.
inline void validate_fault_action(const FaultAction& a) {
    switch (a.kind) {
        case FaultKind::crash:
        case FaultKind::reset:
            require(a.count > 0 || (a.fraction > 0.0 && a.fraction <= 1.0),
                    std::string(to_string(a.kind)) +
                        " needs a count >= 1 or a fraction in (0, 1]");
            break;
        case FaultKind::rejoin:
            require(a.count > 0, "rejoin needs a count >= 1");
            break;
        case FaultKind::silence:
            require(a.duration > 0.0, "silence needs a positive duration");
            break;
    }
}

/// Resolves an action to an agent count against the current population:
/// absolute counts pass through, fractions round to nearest with a floor
/// of one agent (a scheduled fault always does *something*).
[[nodiscard]] inline std::uint64_t resolve_fault_count(const FaultAction& a,
                                                       std::uint64_t population) {
    if (a.count > 0) return a.count;
    const double k = a.fraction * static_cast<double>(population);
    const auto rounded = static_cast<std::uint64_t>(k + 0.5);
    return rounded == 0 ? 1 : rounded;
}

/// Parses one `--inject` specification:
///
///     t=<time>:crash=<fraction|count>
///     t=<time>:rejoin=<count>
///     t=<time>:reset=<fraction|count>
///     t=<time>:silence=<duration>
///
/// A value containing '.' or an exponent is a fraction (crash/reset) or a
/// duration (silence); a plain integer is an absolute agent count. Throws
/// InvalidArgument on malformed specs.
[[nodiscard]] inline TimedFault parse_fault_spec(const std::string& spec) {
    const auto fail = [&spec](const std::string& why) -> TimedFault {
        throw InvalidArgument("bad fault spec '" + spec + "': " + why +
                              " (expected t=<time>:crash|rejoin|reset|silence=<value>)");
    };
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos) return fail("missing ':'");
    const std::string time_part = spec.substr(0, colon);
    const std::string action_part = spec.substr(colon + 1);
    if (time_part.rfind("t=", 0) != 0) return fail("time must be 't=<time>'");
    const std::size_t eq = action_part.find('=');
    if (eq == std::string::npos) return fail("missing '=' after the action name");
    const std::string name = action_part.substr(0, eq);
    const std::string value = action_part.substr(eq + 1);
    if (value.empty()) return fail("empty value");

    TimedFault out;
    try {
        out.time = std::stod(time_part.substr(2));
    } catch (const std::exception&) {
        return fail("not a model-time point: '" + time_part.substr(2) + "'");
    }
    if (out.time < 0.0) return fail("time must be non-negative");

    const bool fractional = value.find_first_of(".eE") != std::string::npos;
    double as_double = 0.0;
    std::uint64_t as_count = 0;
    try {
        if (fractional) {
            as_double = std::stod(value);
        } else {
            as_count = std::stoull(value);
        }
    } catch (const std::exception&) {
        return fail("not a numeric value: '" + value + "'");
    }

    if (name == "crash") {
        out.action = fractional ? FaultAction::crash_fraction(as_double)
                                : FaultAction::crash_count(as_count);
    } else if (name == "rejoin") {
        if (fractional) return fail("rejoin takes an absolute agent count");
        out.action = FaultAction::rejoin_count(as_count);
    } else if (name == "reset") {
        out.action = fractional ? FaultAction::reset_fraction(as_double)
                                : FaultAction::reset_count(as_count);
    } else if (name == "silence") {
        out.action = FaultAction::transient_silence(
            fractional ? as_double : static_cast<double>(as_count));
    } else {
        return fail("unknown action '" + name + "'");
    }
    validate_fault_action(out.action);
    return out;
}

/// PRNG stream tag of the per-engine fault stream ("faul"): engines seed
/// `fault_rng_` with `derive_seed(seed, fault_stream_tag)` at construction
/// so fault randomness never touches the main schedule stream.
inline constexpr std::uint64_t fault_stream_tag = 0x6661756cULL;

/// Count-vector surgery shared by the batched and gillespie engines:
/// removes `k` agents drawn uniformly without replacement from a
/// configuration of `total` agents held in `store` — a multivariate
/// hypergeometric split realised as the same conditional chain the batched
/// engine uses for its multisets. Compacts the live list and returns the
/// number of removed agents whose state outputs leader, so the caller can
/// maintain its leader count incrementally.
template <typename P>
[[nodiscard]] std::uint64_t remove_uniform_agents(InternedCountStore<P>& store,
                                                  Rng& rng, std::uint64_t k,
                                                  std::uint64_t total) {
    ensure(k <= total, "fault surgery cannot remove more agents than exist");
    std::uint64_t pool = total;
    std::uint64_t remaining = k;
    std::uint64_t leaders_removed = 0;
    auto& counts = store.counts();
    for (const StateId id : store.live_ids()) {
        if (remaining == 0) break;
        const std::uint64_t c = counts[id];
        if (c == 0) continue;
        const std::uint64_t x =
            c >= pool ? remaining : hypergeometric(rng, pool, c, remaining);
        pool -= c;
        if (x > 0) {
            counts[id] -= x;
            remaining -= x;
            if (store.index().is_leader(id)) leaders_removed += x;
        }
    }
    ensure(remaining == 0, "fault surgery failed to place all removals");
    store.compact_live();
    return leaders_removed;
}

}  // namespace ppsim
