/// \file gillespie_engine.hpp
/// \brief Reaction-rate simulation engine: the population protocol viewed as
/// a chemical reaction network, simulated by Gillespie's stochastic
/// simulation algorithm (SSA) over reaction channels with a τ-leaping fast
/// path.
///
/// The discrete scheduler picks a uniformly random ordered pair of agents
/// per step, so conditioned on the per-state counts the *channel* — the
/// ordered (initiator-state, responder-state) pair — of step t is
/// categorical with weight c_a·(c_b − [a = b]) out of n(n−1). Channels whose
/// transition is the identity ("null reactions") leave the configuration
/// unchanged, which is what the two execution paths exploit:
///
///  * **Exact SSA.** The number of steps until the next *non-null* firing is
///    geometric with success probability W_nonnull / n(n−1), where W_nonnull
///    sums the non-null channel weights. One geometric draw skips every null
///    step at once, then one categorical draw over the non-null channels
///    picks the reaction — the embedded-jump-chain form of Gillespie's
///    direct method, exact in distribution for the step-indexed chain (the
///    analogue of exponential waiting times in continuous time). Channel
///    enumeration is O(d²) per event (d = live states) and is used while
///    d ≤ `channel_state_cap`; wider configurations at small n fall back to
///    an exact per-step categorical sampler (O(d) per step, still the exact
///    chain — it just cannot skip nulls).
///
///  * **τ-leaping.** At large n the engine freezes the per-state counts for
///    a leap of L = n/`leap_divisor` steps and spreads the L interactions
///    over the states at once: initiator and responder multisets are
///    multinomial draws over the counts (conditional chains of `binomial`
///    draws — the with-replacement sibling of the batched engine's
///    hypergeometric chains), paired through the pluggable batch-pairing
///    layer (batch_pairing.hpp) and applied through the shared memoised
///    transition cache with per-cell multiplicities. Unlike the batched
///    engine, a leap is NOT bounded by the birthday-problem collision-free
///    run (Θ(√n)): the per-leap O(#live states + #cells) overheads amortise
///    over Θ(n) steps, which is what wins on wide-state protocols where
///    those overheads bound the batched engine. The price is the standard
///    τ-leaping approximation: propensities are frozen within a leap
///    (relative drift ≤ ~1/leap_divisor per state per leap), sampling is
///    with replacement (a state can be over-drawn past its count; excess
///    pairs are dropped as nulls, counted in `dropped_pairs()`), and the
///    initiator/responder draws ignore the same-agent exclusion (O(1/n)
///    per pair). Statistical agreement with the exact engines is enforced
///    by the KS harness in tests/test_statistical.cpp.
///
/// **Rate-annotated protocols** (RatedProtocol, protocol.hpp) are this
/// engine's native habitat: a channel's propensity simply becomes
/// c_a·(c_b − [a = b])·rate(a, b)/max_rate — the geometric null-skip then
/// jumps both null *transitions* and rate-thinned steps at once, and the
/// categorical draw picks among non-null channels by their rated weights.
/// No rejection loop: rates enter the weights directly (exact for the
/// thinned chain defined in protocol.hpp). The τ-leap path thins each cell
/// binomially, identical in distribution to the batched engine's thinning.
/// Unrated protocols keep the integer-weight hot path bit-for-bit.
///
/// The paths compose automatically: leaping needs n ≥ `leap_min_population`
/// (below that the engine is *exact* — the configuration is one of the two
/// SSA forms), and when the enumerated channels show fewer than
/// `ssa_event_threshold` expected non-null firings per leap the engine drops
/// back to exact SSA — near stabilisation of annihilation-style protocols
/// (angluin06's last few leaders) one geometric draw then jumps millions of
/// null steps at once, which is both exact and far faster than leaping.
///
/// Stabilisation steps are recorded exactly on the SSA paths by
/// construction; a leap that crosses to a single leader is localised by
/// replaying the leap's per-pair leader deltas in a uniformly shuffled
/// order, exactly as the batched engine replays its batches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "batch_pairing.hpp"
#include "common.hpp"
#include "count_store.hpp"
#include "engine.hpp"  // RunResult
#include "fault.hpp"
#include "protocol.hpp"
#include "random.hpp"
#include "shard.hpp"
#include "state_index.hpp"
#include "transition_cache.hpp"

namespace ppsim {

/// One row of the exact-SSA firing tally (test introspection): an ordered
/// channel identified by the canonical state keys of its input pair, and
/// how many times it fired. See GillespieEngine::enable_channel_tally.
struct ChannelFiredCount {
    std::uint64_t initiator_key = 0;
    std::uint64_t responder_key = 0;
    std::uint64_t fired = 0;
};

/// Reaction-rate (Gillespie SSA + τ-leaping) simulation engine. Drop-in
/// alternative to Engine<P> / BatchedEngine<P> for the run/verify surface
/// (run_until_one_leader, run_for, verify_outputs_stable, RunResult), minus
/// per-agent observation — like the batched engine it works on counts.
template <typename P>
    requires InternableProtocol<P>
class GillespieEngine {
public:
    using State = typename P::State;

    /// Population floor for the τ-leaping path; below it every step is
    /// simulated by an exact SSA form, which is what the cross-engine KS
    /// harness relies on at small n.
    static constexpr std::size_t leap_min_population = 4096;
    /// Live-state cap for per-event channel enumeration (O(d²) per event).
    static constexpr std::size_t channel_state_cap = 32;
    /// Leap length as a fraction of n: L = max(1, n / leap_divisor), the
    /// τ-selection bound — each state's expected relative drift per leap is
    /// at most ~2/leap_divisor. 64 keeps the per-leap drift below ~3%, the
    /// level at which the KS agreement harness (tests/test_statistical.cpp)
    /// cannot distinguish leaped from exact runs, while leaps stay 1–2
    /// orders of magnitude longer than the batched engine's Θ(√n) batches.
    static constexpr std::uint64_t leap_divisor = 64;
    /// Expected non-null firings per leap below which exact SSA (geometric
    /// null-skipping) replaces leaping — the near-stabilisation fallback.
    static constexpr double ssa_event_threshold = 4.0;
    /// Steps per round of the exact per-step categorical form (wide d at
    /// small n), so callers regain control at a bounded cadence.
    static constexpr StepCount categorical_chunk = 4096;

    /// \param threads  intra-run worker count: 1 (default) keeps the
    /// pre-existing sequential engine bit-for-bit; 0 means hardware
    /// concurrency; ≥ 2 shards the leap multiset chains (and rated cell
    /// pre-thinning) per the stream-split contract (shard.hpp). The exact
    /// SSA paths and `build_channels` stay sequential by design: they only
    /// run while d ≤ channel_state_cap = 32 live states, below any useful
    /// sharding threshold.
    GillespieEngine(P protocol, std::size_t n, std::uint64_t seed,
                    std::size_t threads = 1)
        : protocol_(std::move(protocol)),
          n_(n),
          rng_(seed),
          fault_rng_(derive_seed(seed, fault_stream_tag)) {
        if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
        if (threads > 1) {
            shard_ctx_ = std::make_unique<ShardContext>(seed, threads);
            shard_outs_.resize(threads);
            shard_totals_.resize(threads);
            shard_draws_.resize(threads);
        }
        require(n >= 2, "population must contain at least two agents");
        // Channel weights c_a·c_b are computed in 64 bits; n ≤ 2^32 keeps
        // them (and their sum, ≤ n(n−1)) below 2^64, matching the agent-id
        // ceiling of the rest of the library.
        require(n <= (std::uint64_t{1} << 32U),
                "gillespie engine supports populations up to 2^32 agents");
        const StateId init = intern(protocol_.initial_state());
        store_.counts()[init] = n_;
        store_.make_live(init);
        leader_count_ = store_.index().is_leader(init) ? n_ : 0;
        initiators_.reserve(64);
        responders_.reserve(64);
        pairs_.cells.reserve(64);
        channels_.reserve(64);
    }

    // --- observation ------------------------------------------------------

    [[nodiscard]] std::size_t population_size() const noexcept { return n_; }
    [[nodiscard]] StepCount steps() const noexcept { return steps_; }
    [[nodiscard]] double parallel_time() const noexcept {
        return to_parallel_time(steps_, n_);
    }
    [[nodiscard]] std::size_t leader_count() const noexcept { return leader_count_; }
    [[nodiscard]] const P& protocol() const noexcept { return protocol_; }
    [[nodiscard]] std::optional<StepCount> stabilization_step() const noexcept {
        return first_single_leader_step_;
    }

    /// Exact count of agents currently in state `s` (0 when never interned).
    [[nodiscard]] std::uint64_t count_of(const State& s) const {
        return store_.count_of(protocol_, s);
    }

    /// Number of distinct states with a non-zero count.
    [[nodiscard]] std::size_t live_state_count() const noexcept {
        return store_.live_state_count();
    }

    /// Sum of all counts — the population size, by conservation.
    [[nodiscard]] std::uint64_t total_count() const noexcept {
        return store_.total_count();
    }

    /// The intra-run worker count this engine was configured with.
    [[nodiscard]] std::size_t threads() const noexcept {
        return shard_ctx_ ? shard_ctx_->threads() : 1;
    }

    /// τ-leaps executed so far (introspection for tests and benches).
    [[nodiscard]] std::uint64_t leaps_taken() const noexcept { return leaps_; }
    /// Exact SSA firings executed so far (both enumerated and categorical).
    [[nodiscard]] std::uint64_t exact_events() const noexcept { return exact_events_; }
    /// Over-drawn pairs dropped by τ-leap clamping — the engine's measure of
    /// its own leaping error (0 whenever the engine never leaped).
    [[nodiscard]] std::uint64_t dropped_pairs() const noexcept { return dropped_pairs_; }

    /// Test introspection: start counting exact-SSA firings per ordered
    /// channel (one branch per non-null event while enabled; τ-leap cells
    /// are not tallied — use small n so the engine stays on the SSA paths).
    /// The sampler-marginal chi-square tests compare the tally against the
    /// propensity ratios c_a·(c_b − [a = b])·rate(a, b).
    void enable_channel_tally() noexcept { tally_enabled_ = true; }

    /// Clears the tally (e.g. after a warm-up phase).
    void clear_channel_tally() { tally_.clear(); }

    /// The firing tally as (initiator key, responder key, fired) rows,
    /// sorted by key pair for deterministic comparison.
    [[nodiscard]] std::vector<ChannelFiredCount> channel_tally() const {
        std::vector<ChannelFiredCount> out;
        out.reserve(tally_.size());
        for (const auto& [packed, fired] : tally_) {
            const auto a = static_cast<StateId>(packed >> 32U);
            const auto b = static_cast<StateId>(packed & 0xFFFFFFFFULL);
            out.push_back(ChannelFiredCount{
                state_key_of(protocol_, store_.index().state(a)),
                state_key_of(protocol_, store_.index().state(b)), fired});
        }
        std::sort(out.begin(), out.end(),
                  [](const ChannelFiredCount& x, const ChannelFiredCount& y) {
                      return x.initiator_key != y.initiator_key
                                 ? x.initiator_key < y.initiator_key
                                 : x.responder_key < y.responder_key;
                  });
        return out;
    }

    /// Visits every state with a non-zero count as (state, count, role) —
    /// O(#states) regardless of n; only valid between public calls.
    template <typename Visitor>
    void visit_counts(Visitor&& visit) const {
        store_.visit_counts(visit);
    }

    /// Recomputes the leader count from the count vector (tests / checks).
    std::size_t recount_leaders() {
        leader_count_ = store_.recount_leaders();
        return leader_count_;
    }

    /// Read-only view of the shared count store (hybrid-engine feature
    /// extraction, tests).
    [[nodiscard]] const InternedCountStore<P>& store() const noexcept { return store_; }

    /// Read-only view of the memoised transition cache (introspection).
    [[nodiscard]] const TransitionCache& transition_cache() const noexcept {
        return cache_;
    }

    /// Adopts a configuration handed over by another engine (the hybrid
    /// meta-engine's mid-run switch, hybrid_engine.hpp): replaces the count
    /// vector with the census and carries the step counter and
    /// stabilisation step across. The census must conserve this engine's
    /// population size; channels are rebuilt from the counts at the next
    /// round as always. The SSA / fault streams keep the seed this engine
    /// was built with — each hybrid segment owns its stream.
    void adopt_census(const std::vector<std::pair<State, std::uint64_t>>& census,
                      StepCount steps, std::optional<StepCount> stabilization_step) {
        const std::uint64_t total = store_.adopt_census(protocol_, census);
        require(total == n_, "census does not conserve the population");
        steps_ = steps;
        first_single_leader_step_ = stabilization_step;
        leader_count_ = store_.recount_leaders();
    }

    // --- execution --------------------------------------------------------

    /// Runs until exactly one leader remains or `max_steps` further steps
    /// have been executed, whichever comes first. A final τ-leap may run a
    /// few interactions past the stabilisation step (harmless for absorbing
    /// predicates); `stabilization_step` is exact.
    RunResult run_until_one_leader(StepCount max_steps) {
        StepCount executed = 0;
        while (leader_count_ != 1 && executed < max_steps) {
            executed += round(max_steps - executed, /*stop_at_single_leader=*/true);
        }
        return make_result(leader_count_ == 1);
    }

    /// Runs exactly `count` steps: every path clamps to the remaining
    /// budget, so there is no overrun.
    RunResult run_for(StepCount count) {
        StepCount executed = 0;
        while (executed < count) {
            executed += round(count - executed, /*stop_at_single_leader=*/false);
        }
        return make_result(leader_count_ == 1);
    }

    /// Runs `count` additional steps and reports whether any agent's output
    /// changed during them (and the leader count stayed put). Null reactions
    /// never change outputs, so the geometric skips are free here too.
    [[nodiscard]] bool verify_outputs_stable(StepCount count) {
        const std::size_t leaders_before = leader_count_;
        role_change_seen_ = false;
        StepCount executed = 0;
        while (executed < count) {
            executed += round(count - executed, /*stop_at_single_leader=*/false);
        }
        return !role_change_seen_ && leader_count_ == leaders_before;
    }

    // --- fault injection ---------------------------------------------------

    /// Applies one crash/rejoin/reset fault between rounds by count-vector
    /// surgery on the shared store. No explicit propensity invalidation is
    /// needed: the channel list is rebuilt from the live counts at the top
    /// of every round (`build_channels` / the leap multiset chains read the
    /// counts directly), and the transition cache is keyed on state ids,
    /// which surgery never perturbs. All randomness comes from the
    /// dedicated fault stream, so the post-fault SSA stream replays
    /// deterministically. Silence never reaches the engine.
    void apply_fault(const FaultAction& action) {
        require(action.kind != FaultKind::silence,
                "silence is applied by the run layer, not the engine");
        switch (action.kind) {
            case FaultKind::crash: {
                std::uint64_t k = resolve_fault_count(action, n_);
                if (k >= n_) k = n_ - 1;  // always leave one survivor
                const std::uint64_t leaders_removed =
                    remove_uniform_agents(store_, fault_rng_, k, n_);
                n_ -= k;
                leader_count_ -= leaders_removed;
                break;
            }
            case FaultKind::rejoin: {
                const std::uint64_t k = action.count;
                require(n_ + k <= (std::uint64_t{1} << 32U),
                        "rejoin would grow the population past 2^32 agents");
                const StateId init = intern(protocol_.initial_state());
                store_.counts()[init] += k;
                store_.make_live(init);
                n_ += k;
                if (store_.index().is_leader(init)) leader_count_ += k;
                break;
            }
            case FaultKind::reset: {
                std::uint64_t k = resolve_fault_count(action, n_);
                if (k > n_) k = n_;
                const std::uint64_t leaders_removed =
                    remove_uniform_agents(store_, fault_rng_, k, n_);
                const StateId init = intern(protocol_.initial_state());
                store_.counts()[init] += k;
                store_.make_live(init);
                leader_count_ -= leaders_removed;
                if (store_.index().is_leader(init)) leader_count_ += k;
                break;
            }
            case FaultKind::silence: break;  // unreachable (guarded above)
        }
        // Re-anchor single-leader detection at the post-fault configuration.
        first_single_leader_step_ = leader_count_ == 1
                                        ? std::optional<StepCount>(steps_)
                                        : std::nullopt;
    }

    /// Advances the step counter through a rate-zero silence window without
    /// touching counts or randomness.
    void advance_silent(StepCount count) noexcept { steps_ += count; }

    // --- checkpointing ------------------------------------------------------

    /// Serialises the engine's complete replay-relevant state: the SSA and
    /// fault stream positions, the shard round counter, the interned count
    /// store, the step/leader/stabilisation counters and the leap/event
    /// tallies. The channel list and its weights are per-round transients
    /// (rebuilt from the live counts at the top of every round), so they
    /// are never persisted. Legal between public calls only.
    void save_state(CheckpointWriter& w) const {
        w.u64(n_);
        w.pod(rng_.state());
        w.pod(fault_rng_.state());
        w.u64(shard_ctx_ ? shard_ctx_->round() : 0);
        store_.save_state(w);
        w.u64(steps_);
        w.u64(leader_count_);
        w.opt_u64(first_single_leader_step_);
        w.boolean(role_change_seen_);
        w.u64(leaps_);
        w.u64(exact_events_);
        w.u64(dropped_pairs_);
    }

    /// Restores a `save_state` payload into an engine built with the same
    /// protocol and thread count. The transition cache is dropped (its
    /// entries may reference states interned after the checkpoint);
    /// recomputation re-interns outputs in the original order, keeping
    /// replay bit-identical.
    void restore_state(CheckpointReader& r) {
        n_ = r.u64();
        rng_.set_state(r.pod<std::array<std::uint64_t, 4>>());
        fault_rng_.set_state(r.pod<std::array<std::uint64_t, 4>>());
        const std::uint64_t round = r.u64();
        if (shard_ctx_) shard_ctx_->set_round(round);
        store_.restore_state(protocol_, r);
        steps_ = r.u64();
        leader_count_ = r.u64();
        first_single_leader_step_ = r.opt_u64();
        role_change_seen_ = r.boolean();
        leaps_ = r.u64();
        exact_events_ = r.u64();
        dropped_pairs_ = r.u64();
        cache_ = TransitionCache{};
    }

private:
    /// One non-null reaction channel: the ordered state pair and its current
    /// propensity weight. `weight` is the structural part c_a·(c_b − [a = b])
    /// (always integral); rated protocols scale it by the memoised firing
    /// probability into `rated_weight` and draw against the scaled weights.
    /// The transition itself is re-read from the cache at firing time (the
    /// cache may reallocate).
    struct Channel {
        StateId a;
        StateId b;
        std::uint64_t weight;
        double rated_weight;
    };

    // --- interning --------------------------------------------------------

    StateId intern(const State& s) { return store_.intern(protocol_, s); }

    /// Memoised transition lookup through the shared cache
    /// (transition_cache.hpp).
    const CachedTransition& transition(StateId a, StateId b) {
        return cache_.get(a, b,
                          [this](StateId x, StateId y) { return compute_transition(x, y); });
    }

    CachedTransition compute_transition(StateId a, StateId b) {
        return compute_cached_transition(protocol_, store_.index(), a, b,
                                         [this](const State& s) { return intern(s); });
    }

    // --- round dispatch ---------------------------------------------------

    /// Executes one round of at most `budget` steps on the path the current
    /// configuration calls for; returns the number executed (≥ 1 for
    /// budget ≥ 1).
    StepCount round(StepCount budget, bool stop_at_single_leader) {
        if (budget == 0) return 0;
        if (n_ < 2) {  // crash fault left a single survivor: no pairs exist
            steps_ += budget;
            return budget;
        }
        // Tick the shard streams once per non-trivial round regardless of
        // which path runs below — the stream-split contract keys shard rngs
        // on the round counter alone, never on data-dependent path choices.
        // Consumes no rng_ draws, so threads == 1 and SSA-path rounds keep
        // the sequential stream bit-for-bit.
        if (shard_ctx_) shard_ctx_->begin_round();
        store_.compact_live();
        const std::size_t d = store_.live_ids().size();
        const StepCount leap_len =
            std::min<StepCount>(budget, std::max<std::uint64_t>(1, n_ / leap_divisor));
        if (d <= channel_state_cap) {
            build_channels();
            if (total_nonnull_weight() == 0.0) {  // dead: every channel null
                steps_ += budget;
                return budget;
            }
            if (n_ >= leap_min_population && expected_firings(leap_len) >= ssa_event_threshold) {
                return leap_round(leap_len);
            }
            return enumerated_ssa_event(budget);
        }
        if (n_ >= leap_min_population) return leap_round(leap_len);
        return categorical_steps(std::min(budget, categorical_chunk),
                                 stop_at_single_leader);
    }

    /// The summed non-null channel weight on whichever scale the protocol
    /// uses (integer structural weights, or rate-scaled ones).
    [[nodiscard]] double total_nonnull_weight() const noexcept {
        if constexpr (RatedProtocol<P>) {
            return w_rated_;
        } else {
            return static_cast<double>(w_nonnull_);
        }
    }

    /// Expected non-null firings over a leap of `len` steps under the
    /// enumerated channel weights.
    [[nodiscard]] double expected_firings(StepCount len) const noexcept {
        const double w_total =
            static_cast<double>(n_) * (static_cast<double>(n_) - 1.0);
        return static_cast<double>(len) * total_nonnull_weight() / w_total;
    }

    // --- exact SSA, enumerated channels -----------------------------------

    /// Rebuilds the non-null channel list and its total weight from the live
    /// counts. O(d²) cache lookups; only entered while d ≤ channel_state_cap.
    void build_channels() {
        channels_.clear();
        w_nonnull_ = 0;
        w_rated_ = 0.0;
        const std::vector<std::uint64_t>& counts = store_.counts();
        for (const StateId a : store_.live_ids()) {
            const std::uint64_t ca = counts[a];
            for (const StateId b : store_.live_ids()) {
                const std::uint64_t weight = a == b ? ca * (ca - 1) : ca * counts[b];
                if (weight == 0) continue;
                const CachedTransition& tr = transition(a, b);
                if (tr.out_a == a && tr.out_b == b) continue;  // null reaction
                if constexpr (RatedProtocol<P>) {
                    const double rated =
                        static_cast<double>(weight) * static_cast<double>(tr.fire_weight);
                    if (rated <= 0.0) continue;  // rate-zero channel never fires
                    channels_.push_back(Channel{a, b, weight, rated});
                    w_rated_ += rated;
                } else {
                    channels_.push_back(Channel{a, b, weight, 0.0});
                    w_nonnull_ += weight;
                }
            }
        }
    }

    /// One exact SSA event: a geometric draw skips every null step up to the
    /// next non-null firing; if that firing lies beyond the budget the round
    /// consumes the budget as nulls (exact: geometric memorylessness). For
    /// rated protocols the skip probability and the categorical draw use the
    /// rate-scaled weights — thinned steps are nulls, skipped for free.
    StepCount enumerated_ssa_event(StepCount budget) {
        const double w_total =
            static_cast<double>(n_) * (static_cast<double>(n_) - 1.0);
        const double p = total_nonnull_weight() / w_total;
        const StepCount gap = geometric(rng_, p);
        if (gap > budget) {  // the next reaction lies beyond this round
            steps_ += budget;
            return budget;
        }
        steps_ += gap;
        const Channel* fired = nullptr;
        if constexpr (RatedProtocol<P>) {
            double r = uniform_unit(rng_) * w_rated_;
            for (const Channel& ch : channels_) {
                if (r < ch.rated_weight) {
                    fired = &ch;
                    break;
                }
                r -= ch.rated_weight;
            }
            // Floating-point rounding can walk the scan past the total;
            // the mass belongs to the last channel.
            if (fired == nullptr) fired = &channels_.back();
        } else {
            std::uint64_t r = uniform_below(rng_, w_nonnull_);
            for (const Channel& ch : channels_) {
                if (r < ch.weight) {
                    fired = &ch;
                    break;
                }
                r -= ch.weight;
            }
            if (fired == nullptr) [[unlikely]] {
                ensure(false, "SSA channel draw ran past the total weight");
            }
        }
        const StateId a = fired->a;
        const StateId b = fired->b;
        const CachedTransition tr = transition(a, b);  // copy: cache may grow
        apply_single(a, b, tr);
        ++exact_events_;
        return gap;
    }

    // --- exact SSA, per-step categorical (wide d at small n) ---------------

    /// Exact per-step form for configurations too wide to enumerate: the
    /// initiator is a categorical draw over the counts, the responder over
    /// the remaining n−1 agents. O(d) per step; cannot skip nulls. Rated
    /// protocols thin each non-null pick by one Bernoulli draw against the
    /// memoised firing probability.
    StepCount categorical_steps(StepCount chunk, bool stop_at_single_leader) {
        StepCount executed = 0;
        while (executed < chunk) {
            const StateId a = draw_categorical(uniform_below(rng_, n_), invalid_state_id);
            const StateId b = draw_categorical(uniform_below(rng_, n_ - 1), a);
            const CachedTransition tr = transition(a, b);  // copy: cache may grow
            ++steps_;
            ++executed;
            if (tr.out_a != a || tr.out_b != b) {
                if constexpr (RatedProtocol<P>) {
                    if (tr.fire_weight < 1.0F &&
                        uniform_unit(rng_) >= static_cast<double>(tr.fire_weight)) {
                        continue;  // thinned: the pair met, nothing happened
                    }
                }
                apply_single(a, b, tr);
                ++exact_events_;
                if (stop_at_single_leader && leader_count_ == 1) break;
            }
        }
        return executed;
    }

    /// Walks the live counts to locate the state owning offset `r`, with one
    /// agent of `exclude` removed from the mass (the already-picked
    /// initiator; pass invalid_state_id to draw over the full population).
    [[nodiscard]] StateId draw_categorical(std::uint64_t r, StateId exclude) const {
        const std::vector<std::uint64_t>& counts = store_.counts();
        for (const StateId id : store_.live_ids()) {
            const std::uint64_t c = counts[id] - (id == exclude ? 1 : 0);
            if (r < c) return id;
            r -= c;
        }
        ensure(false, "categorical state draw ran past the population");
        return 0;
    }

    /// Applies one firing of channel (a, b) through its already-fetched
    /// transition: counts, leader count, role tracking and exact
    /// stabilisation-step recording. Callers guarantee availability (the
    /// channel weight was positive).
    void apply_single(StateId a, StateId b, const CachedTransition& tr) {
        if (tally_enabled_) [[unlikely]] {
            ++tally_[(static_cast<std::uint64_t>(a) << 32U) | b];
        }
        std::vector<std::uint64_t>& counts = store_.counts();
        --counts[a];
        --counts[b];
        ++counts[tr.out_a];
        ++counts[tr.out_b];
        store_.make_live(tr.out_a);
        store_.make_live(tr.out_b);
        role_change_seen_ = role_change_seen_ || tr.role_changed;
        leader_count_ = static_cast<std::size_t>(
            static_cast<std::int64_t>(leader_count_) + tr.leader_delta);
        if (!first_single_leader_step_ && leader_count_ == 1) {
            first_single_leader_step_ = steps_;
        }
    }

    // --- τ-leaping ---------------------------------------------------------

    /// Advances `len` steps with propensities frozen at the current counts:
    /// multinomial initiator/responder multisets, a uniform pairing through
    /// the batch-pairing layer, and clamped per-cell application (plus a
    /// binomial thinning per cell for rated protocols, identical in
    /// distribution to the batched engine's thinning).
    StepCount leap_round(StepCount len) {
        const StepCount steps_before = steps_;
        sample_leap_multiset(len, initiators_);
        sample_leap_multiset(len, responders_);
        sample_batch_pairing(BatchMode::automatic, rng_, initiators_, responders_, len,
                             pairs_);

        std::vector<std::uint64_t>& counts = store_.counts();
        applied_mult_.clear();
        std::int64_t delta_total = 0;
        bool role_changed = false;
        std::uint64_t dropped = 0;
        // Rated cells shard their binomial thinning across the worker pool
        // when the cell count clears the threshold; the clamp-and-apply walk
        // below stays sequential in every mode — availability clamping reads
        // the running counts, which is inherently order-dependent.
        bool prethinned = false;
        if constexpr (RatedProtocol<P>) {
            if (shard_ctx_ &&
                pairs_.group_count() >= shard_ctx_->threads() * shard_min_groups) {
                prethin_cells_sharded(pairs_.group_count());
                prethinned = true;
            }
        }
        std::size_t group = 0;
        pairs_.for_each([&](StateId a, StateId b, std::uint64_t mult) {
            // Clamp to what the running counts can supply: with-replacement
            // sampling may over-draw a state past its count; the excess
            // pairs are dropped as nulls (counted, and rare by the leap
            // bound — states with counts ≫ n/leap_divisor never clamp).
            const std::uint64_t avail =
                a == b ? counts[a] / 2 : std::min(counts[a], counts[b]);
            const CachedTransition tr = transition(a, b);  // copy: cache may grow
            std::uint64_t m = 0;
            if (prethinned) {
                // Thinning ran before the clamp (on the shard streams);
                // clamp the post-thin demand. Thin-before-clamp vs
                // clamp-before-thin differs only at the τ-leaping
                // approximation level — both clamp rare over-draws — and is
                // covered by the cross-thread KS agreement harness.
                const std::uint64_t thinned = thinned_mult_[group];
                m = std::min(thinned, avail);
                dropped += thinned - m;
            } else {
                m = std::min(mult, avail);
                dropped += mult - m;
                if constexpr (RatedProtocol<P>) {
                    // Rate thinning: only m' ~ Binomial(m, rate/max_rate) of
                    // the scheduled pairs react; the rest met without
                    // reacting.
                    if (m > 0 && tr.fire_weight < 1.0F && (tr.out_a != a || tr.out_b != b)) {
                        m = binomial(rng_, m, static_cast<double>(tr.fire_weight));
                    }
                }
            }
            ++group;
            applied_mult_.push_back(static_cast<std::uint32_t>(m));
            if (m == 0) return;
            if (a == b) {
                counts[a] -= 2 * m;
            } else {
                counts[a] -= m;
                counts[b] -= m;
            }
            touch(tr.out_a, m);
            touch(tr.out_b, m);
            delta_total += static_cast<std::int64_t>(tr.leader_delta) *
                           static_cast<std::int64_t>(m);
            role_changed |= tr.role_changed;
        });
        steps_ += len;
        dropped_pairs_ += dropped;
        role_change_seen_ = role_change_seen_ || role_changed;
        const auto post = static_cast<std::size_t>(
            static_cast<std::int64_t>(leader_count_) + delta_total);
        if (!first_single_leader_step_ && post == 1 && leader_count_ != 1) {
            first_single_leader_step_ = steps_before + leap_crossing_offset();
        }
        leader_count_ = post;
        store_.merge_touched();
        ++leaps_;
        return len;
    }

    /// Draws a with-replacement multiset of `len` step slots over the live
    /// counts (multinomial conditional chain of binomial draws) into `out`.
    /// Sparse specialisation of `multinomial` (random.hpp): that primitive
    /// is the dense reference form whose distribution tests pin the chain
    /// math; this loop fuses sparse emission and the live-list walk a dense
    /// out-array cannot express. Mirror changes across both chains.
    void sample_leap_multiset(std::uint64_t len, StateMultiset& out) {
        out.clear();
        if (shard_ctx_ && len >= shard_ctx_->threads() &&
            store_.live_ids().size() >= shard_ctx_->threads() * shard_min_states) {
            sample_leap_multiset_sharded(len, out);
            return;
        }
        const std::vector<std::uint64_t>& counts = store_.counts();
        std::uint64_t pool = n_;
        std::uint64_t remaining = len;
        for (const StateId id : store_.live_ids()) {
            const std::uint64_t c = counts[id];
            if (c == 0) continue;
            if (remaining == 0) break;
            const std::uint64_t x =
                c == pool ? remaining : binomial(rng_, remaining, c, pool);
            pool -= c;
            if (x > 0) {
                out.emplace_back(id, x);
                remaining -= x;
            }
        }
        if (remaining != 0) [[unlikely]] {  // cheap check: no string temporary
            ensure(false, "multinomial chain under-drew the leap multiset");
        }
    }

    /// The sequential fallback engages below this many live states per shard
    /// (and below `shard_min_groups` cells per shard for rated pre-thinning):
    /// under that, the per-round bookkeeping costs more than the draws it
    /// parallelises. Mirrors the batched engine's thresholds (see the
    /// rationale there: the guarded per-item work is a ~10²-ns variate
    /// draw, and live-state profiles concentrate on a few dozen states).
    static constexpr std::size_t shard_min_states = 8;
    static constexpr std::size_t shard_min_groups = 8;

    /// Sharded form of the with-replacement chain, exact by the grouping
    /// property of the multinomial: the per-shard subtotals (how many of the
    /// len slots land in each shard's contiguous live-id slice) form a
    /// binomial chain over the slice count sums — drawn sequentially from
    /// the main rng_ — and conditioned on its subtotal each shard's
    /// within-slice chain is independent of every other shard's, so it runs
    /// on the shard's private stream. Concatenating the slices in shard
    /// order reproduces the sequential live_ids visit order with a different
    /// (but fixed per (seed, threads)) draw stream.
    void sample_leap_multiset_sharded(std::uint64_t len, StateMultiset& out) {
        const std::vector<StateId>& live_ids = store_.live_ids();
        const std::vector<std::uint64_t>& counts = store_.counts();
        const std::size_t shards = shard_ctx_->threads();

        std::uint64_t pool = n_;
        std::uint64_t remaining = len;
        for (std::size_t s = 0; s < shards; ++s) {
            const ShardRange r = shard_range(live_ids.size(), shards, s);
            std::uint64_t total = 0;
            for (std::size_t i = r.first; i < r.last; ++i) total += counts[live_ids[i]];
            std::uint64_t x = 0;
            if (remaining > 0 && total > 0) {
                x = total == pool ? remaining : binomial(rng_, remaining, total, pool);
            }
            shard_totals_[s] = total;
            shard_draws_[s] = x;
            pool -= total;
            remaining -= x;
        }
        ensure(remaining == 0, "sharded multinomial subtotal chain under-drew");

        shard_ctx_->run([&](std::size_t s) {
            StateMultiset& mine = shard_outs_[s];
            mine.clear();
            const ShardRange r = shard_range(live_ids.size(), shards, s);
            Rng& rng = shard_ctx_->rng(s);
            std::uint64_t pool_s = shard_totals_[s];
            std::uint64_t rem = shard_draws_[s];
            for (std::size_t i = r.first; i < r.last && rem > 0; ++i) {
                const StateId id = live_ids[i];
                const std::uint64_t c = counts[id];
                if (c == 0) continue;
                const std::uint64_t x = c == pool_s ? rem : binomial(rng, rem, c, pool_s);
                pool_s -= c;
                if (x > 0) {
                    mine.emplace_back(id, x);
                    rem -= x;
                }
            }
            ensure(rem == 0, "sharded multinomial slice chain under-drew");
        });

        for (std::size_t s = 0; s < shards; ++s) {
            out.insert(out.end(), shard_outs_[s].begin(), shard_outs_[s].end());
        }
    }

    /// Rated τ-leap pre-thinning, sharded: a sequential warm pass populates
    /// the transition cache for every cell, then each shard thins its
    /// contiguous cell slice Binomial(mult, fire_weight) on its private
    /// stream into `thinned_mult_` by group index. The clamp-and-apply walk
    /// stays sequential (see leap_round).
    void prethin_cells_sharded(std::size_t groups) {
        // A dense-matrix growth mid-pass drops previously warmed entries,
        // so re-warm once when the dimension moved.
        const StateId dim_before = cache_.dense_dimension();
        pairs_.for_each([&](StateId a, StateId b, std::uint64_t) { transition(a, b); });
        if (cache_.dense_dimension() != dim_before) {
            pairs_.for_each([&](StateId a, StateId b, std::uint64_t) { transition(a, b); });
        }
        thinned_mult_.assign(groups, 0);
        const std::size_t shards = shard_ctx_->threads();
        shard_ctx_->run([&](std::size_t s) {
            const ShardRange r = shard_range(groups, shards, s);
            Rng& rng = shard_ctx_->rng(s);
            pairs_.for_each_range(
                r.first, r.last,
                [&](std::size_t g, StateId a, StateId b, std::uint64_t mult) {
                    const CachedTransition* tr = cache_.find(a, b);
                    std::uint64_t m = mult;
                    if (tr->fire_weight < 1.0F && (tr->out_a != a || tr->out_b != b)) {
                        m = binomial(rng, mult, static_cast<double>(tr->fire_weight));
                    }
                    thinned_mult_[g] = m;
                });
        });
    }

    /// Locates the crossing interaction inside a leap that reached a single
    /// leader via the shared exchangeability replay (`locate_leader_crossing`,
    /// transition_cache.hpp): applied pairs contribute their leader deltas;
    /// dropped and rate-thinned pairs zeros. Called at most once per run.
    [[nodiscard]] std::uint64_t leap_crossing_offset() {
        scratch_deltas_.clear();
        std::size_t group = 0;
        pairs_.for_each([&](StateId a, StateId b, std::uint64_t mult) {
            const std::uint64_t m = applied_mult_[group++];
            scratch_deltas_.insert(scratch_deltas_.end(), m,
                                   transition(a, b).leader_delta);
            scratch_deltas_.insert(scratch_deltas_.end(), mult - m, 0);
        });
        return locate_leader_crossing(scratch_deltas_, rng_, leader_count_);
    }

    // --- pending-output bookkeeping ----------------------------------------

    /// Outputs produced within a leap accumulate in the store's touched
    /// multiset so they are never re-consumed by later cells of the same
    /// leap (they were not part of the frozen pre-leap counts).
    void touch(StateId id, std::uint64_t mult) { store_.touch(id, mult); }

    [[nodiscard]] RunResult make_result(bool converged) const noexcept {
        RunResult r;
        r.converged = converged;
        r.steps = steps_;
        r.parallel_time = to_parallel_time(steps_, n_);
        r.leader_count = leader_count_;
        r.stabilization_step = first_single_leader_step_;
        return r;
    }

    P protocol_;
    std::size_t n_;
    Rng rng_;
    Rng fault_rng_;  ///< fault-surgery stream; never touches the SSA stream
    InternedCountStore<P> store_;  ///< counts + live list + touched multiset
    TransitionCache cache_;
    std::vector<Channel> channels_;       ///< non-null channels (rebuilt per SSA event)
    std::uint64_t w_nonnull_ = 0;         ///< Σ weights of channels_ (unrated)
    double w_rated_ = 0.0;                ///< Σ rated weights of channels_ (rated)
    StateMultiset initiators_;
    StateMultiset responders_;
    BatchPairs pairs_;
    std::vector<std::uint32_t> applied_mult_;  ///< per-cell applied multiplicity
    std::vector<std::int8_t> scratch_deltas_;
    std::unique_ptr<ShardContext> shard_ctx_;  ///< null unless threads > 1
    std::vector<StateMultiset> shard_outs_;    ///< per-shard multiset slices
    std::vector<std::uint64_t> shard_totals_;  ///< per-shard slice count sums
    std::vector<std::uint64_t> shard_draws_;   ///< per-shard subtotal draws
    std::vector<std::uint64_t> thinned_mult_;  ///< per-cell pre-thinned demand (rated)
    StepCount steps_ = 0;
    std::size_t leader_count_ = 0;
    std::optional<StepCount> first_single_leader_step_;
    bool role_change_seen_ = false;
    std::uint64_t leaps_ = 0;
    std::uint64_t exact_events_ = 0;
    std::uint64_t dropped_pairs_ = 0;
    bool tally_enabled_ = false;
    std::unordered_map<std::uint64_t, std::uint64_t> tally_;  ///< packed id pair → fired
};

/// Convenience mirror of simulate_to_single_leader for the Gillespie engine.
template <typename P>
    requires InternableProtocol<P>
[[nodiscard]] RunResult gillespie_simulate_to_single_leader(P proto, std::size_t n,
                                                            std::uint64_t seed,
                                                            StepCount max_steps,
                                                            std::size_t threads = 1) {
    GillespieEngine<P> engine(std::move(proto), n, seed, threads);
    return engine.run_until_one_leader(max_steps);
}

}  // namespace ppsim
