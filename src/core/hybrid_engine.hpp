/// \file hybrid_engine.hpp
/// \brief The adaptive hybrid meta-engine: per phase of a run, picks the
/// cheapest execution mode — agent, batched-pairwise, batched-bulk or
/// gillespie — from observed state-count features and a measured per-machine
/// cost model (calibration.hpp), and hands the live configuration between
/// engines mid-run.
///
/// **Decision model.** No fixed engine wins everywhere: a wide early state
/// profile favours pairwise batching, the absorbed null-dominated tail
/// favours the gillespie engine's geometric null-skipping, and tiny
/// populations favour the agent engine's zero per-round overhead. The hybrid
/// engine reads two cheap features off the live census at each evaluation
/// point — the live-state count d and the null-channel mass z (the fraction
/// of ordered-pair weight whose transition is the identity, rate-thinned
/// weight for rated protocols; summed over the `null_mass_state_cap`
/// highest-count states, with every excluded pair counted as non-null, so
/// wide profiles under-estimate z — the conservative direction) — and
/// predicts each mode's cost by geometric interpolation between its two
/// measured anchors, each rescaled from the probe population to the live one:
///
///     anchor(n)         = anchor_ns · (n / n_probe)^b
///     predicted_ns(mode) = wide(n)^(1−z) · narrow(n)^z
///
/// The anchors and their power-law exponents b are measured once per
/// (protocol, machine, threads) by short probe runs at two population
/// buckets (`probe_calibration`) and cached on disk (calibration.hpp); the
/// exponents matter because per-interaction cost is strongly
/// population-dependent — the count engines amortise per-round work over
/// batches that grow with n while the agent engine's cost is flat, so
/// unscaled small-n anchors would systematically favour the agent engine at
/// exactly the populations where the count engines win. The derived
/// quantities the batched/gillespie engines gate their own paths on —
/// d_I·d_R pair-group counts and expected non-null firings per leap
/// L·(1−z) — are monotone functions of (d, z), which is why these two
/// features suffice as the interpolation coordinate.
///
/// **Hysteresis.** The engine re-evaluates at step thresholds spaced
/// geometrically (starting at max(n/4, 16384) steps, doubling up to 4n
/// while the decision is stable, resetting on a switch) and switches only
/// when the predicted win over the current mode is at least
/// `hybrid_hysteresis` (2×), so near-ties never thrash.
///
/// **Stream-split contract extension.** Each contiguous run segment k
/// (starting at k = 0) runs a fresh inner engine seeded
/// `derive_seed(root_seed, hybrid_segment_tag + k)` — the same SplitMix64
/// discipline as the fault/thinning/shard streams (shard.hpp), so no hybrid
/// stream ever collides with a fixed engine's streams and a segment's draws
/// are independent of how previous segments were produced. A switch hands
/// over the exact census, step counter and stabilisation step via
/// `adopt_census`; observers attached at the Simulation layer see one
/// continuous run. Evaluation happens at *step thresholds* the engine
/// enforces by clamping its own chunks, never at wall-clock times or chunk
/// boundaries chosen by callers — so observer cadences and `run_for` slicing
/// cannot perturb the switch points, and a hybrid run is seeded-reproducible
/// for a fixed calibration table (the reproducibility caveat: tables
/// measured on different machines may order modes differently; inject a
/// table via `HybridOptions` for cross-machine replay).
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "batched_engine.hpp"
#include "calibration.hpp"
#include "checkpoint_io.hpp"
#include "common.hpp"
#include "engine.hpp"
#include "gillespie_engine.hpp"
#include "protocol.hpp"
#include "random.hpp"

namespace ppsim {

/// PRNG stream tag of the hybrid segment split ("hybr"): segment k of a
/// hybrid run is seeded `derive_seed(root_seed, hybrid_segment_tag + k)`.
/// Distinct from the fault ("faul"), thinning ("thin") and shard ("shdr")
/// tags, so hybrid segment streams can never collide with them.
inline constexpr std::uint64_t hybrid_segment_tag = 0x68796272ULL;

/// Switch only when the predicted win over the current mode is at least
/// this factor — the anti-thrashing hysteresis.
inline constexpr double hybrid_hysteresis = 2.0;

/// The observed features of the current phase that enter the cost model.
struct PhaseFeatures {
    std::size_t live_states = 0;  ///< d: states with a non-zero count
    double null_mass = 0.0;       ///< z ∈ [0, 1]: ordered-pair weight on null channels
};

/// Predicted ns/interaction of one mode under null-channel mass `z` at
/// `scale` = n / probe_population: each anchor is rescaled by its measured
/// population power law, then the anchors are interpolated geometrically
/// (costs are ratio-scale quantities; interpolating their logs keeps a
/// 10×-spread anchor pair from being dominated by its large end).
[[nodiscard]] inline double predicted_mode_ns(const ModeCost& cost, double null_mass,
                                              double scale = 1.0) noexcept {
    const double wide =
        std::max(cost.wide_ns, 1e-3) * std::pow(scale, cost.wide_exponent);
    const double narrow =
        std::max(cost.narrow_ns, 1e-3) * std::pow(scale, cost.narrow_exponent);
    return std::pow(wide, 1.0 - null_mass) * std::pow(narrow, null_mass);
}

/// The pure mode decision: the predicted-cheapest mode under `features` at
/// population scale `scale` (n / probe_population; 1 compares raw anchors),
/// unless the win over `current` is below `hysteresis` (then `current`
/// stands). Deterministic: ties break toward the lowest mode index. Unit
/// tested directly — no engine, no clock.
[[nodiscard]] inline HybridMode choose_mode(const CalibrationTable& table,
                                            const PhaseFeatures& features,
                                            HybridMode current,
                                            double hysteresis = hybrid_hysteresis,
                                            double scale = 1.0) {
    HybridMode best = current;
    double best_ns = std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < hybrid_mode_count; ++m) {
        const double ns = predicted_mode_ns(table.costs[m], features.null_mass, scale);
        if (ns < best_ns) {
            best_ns = ns;
            best = static_cast<HybridMode>(m);
        }
    }
    if (best == current) return current;
    const double current_ns =
        predicted_mode_ns(table.costs[static_cast<std::size_t>(current)],
                          features.null_mass, scale);
    return current_ns >= hysteresis * best_ns ? best : current;
}

/// The probe population for a target population `n`: n rounded down to a
/// power of two, clamped to [4096, 32768]. Bucketing keeps the disk cache
/// small (one file per bucket, not per n) and bounds probe cost; runs far
/// above the bucket are covered by the measured per-anchor power-law
/// exponents (ModeCost), fitted between this bucket and the smallest one,
/// which extrapolate each mode's cost to the live population instead of
/// comparing raw small-n anchors there.
[[nodiscard]] inline std::size_t probe_population_for(std::size_t n) noexcept {
    const std::size_t clamped = std::clamp<std::size_t>(n, 4096, 32768);
    std::size_t p = 4096;
    while (p * 2 <= clamped) p *= 2;
    return p;
}

/// Clamp range of the measured population power-law exponents: fitted from
/// an 8× probe span and extrapolated up to ~512× beyond it, so runaway fits
/// (probe noise on a millisecond run) must not predict absurd advantages.
/// The true exponents sit in this range: ~0 for the agent engine, negative
/// for the count engines (per-round work amortised over batches that grow
/// with n).
inline constexpr double hybrid_exponent_min = -1.0;
inline constexpr double hybrid_exponent_max = 0.5;

namespace detail {

/// Wall-clock ns/interaction of `steps` further interactions on `engine`.
template <typename EngineT>
[[nodiscard]] double probe_ns_per_step(EngineT& engine, StepCount steps) {
    const auto start = std::chrono::steady_clock::now();
    (void)engine.run_for(steps);
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count();
    return std::max(ns / static_cast<double>(steps), 1e-3);
}

}  // namespace detail

namespace detail {

/// Measures the eight (mode × anchor) costs of `proto` at one probe
/// population: the wide anchor times a fresh engine from the initial
/// configuration; the narrow anchor times an engine that adopted the census
/// of a 32·n_p-step batched pre-run (well into the narrowing profile for
/// every protocol here, without ever waiting for convergence — probe cost is
/// O(n_p) regardless of the protocol's stabilisation time).
template <typename P>
[[nodiscard]] std::array<ModeCost, hybrid_mode_count> probe_anchors_at(
    const P& proto, std::size_t n_p, std::size_t threads) {
    using State = typename P::State;
    const auto probe_steps = static_cast<StepCount>(8 * n_p);
    constexpr std::uint64_t probe_seed = 0x70726f62ULL;  // "prob"

    std::array<ModeCost, hybrid_mode_count> costs{};
    const auto cost_slot = [&costs](HybridMode m) -> ModeCost& {
        return costs[static_cast<std::size_t>(m)];
    };

    // Wide anchors: every protocol here starts wide (all agents identical is
    // the *widest* channel profile in the null-mass sense — nearly every
    // pair reacts), and the first 8·n_p steps stay in the expanding phase.
    {
        Engine<P> e(proto, n_p, probe_seed);
        cost_slot(HybridMode::agent).wide_ns = probe_ns_per_step(e, probe_steps);
    }
    {
        BatchedEngine<P> e(proto, n_p, probe_seed, BatchMode::pairwise, threads);
        cost_slot(HybridMode::batched_pairwise).wide_ns =
            probe_ns_per_step(e, probe_steps);
    }
    {
        BatchedEngine<P> e(proto, n_p, probe_seed, BatchMode::bulk, threads);
        cost_slot(HybridMode::batched_bulk).wide_ns = probe_ns_per_step(e, probe_steps);
    }
    {
        GillespieEngine<P> e(proto, n_p, probe_seed, threads);
        cost_slot(HybridMode::gillespie).wide_ns = probe_ns_per_step(e, probe_steps);
    }

    // Narrow anchors: adopt the census of a 32·n_p-step pre-run — by then
    // every protocol here has collapsed most of its mass onto few states and
    // the null channels dominate, which is the profile the gillespie
    // engine's null-skipping is built for.
    std::vector<std::pair<State, std::uint64_t>> census;
    {
        BatchedEngine<P> pre(proto, n_p, probe_seed + 1, BatchMode::automatic, threads);
        (void)pre.run_for(static_cast<StepCount>(32 * n_p));
        pre.visit_counts([&census](const State& s, std::uint64_t c, Role) {
            census.emplace_back(s, c);
        });
    }
    {
        Engine<P> e(proto, n_p, probe_seed + 2);
        e.adopt_census(census, 0, std::nullopt);
        cost_slot(HybridMode::agent).narrow_ns = probe_ns_per_step(e, probe_steps);
    }
    {
        BatchedEngine<P> e(proto, n_p, probe_seed + 2, BatchMode::pairwise, threads);
        e.adopt_census(census, 0, std::nullopt);
        cost_slot(HybridMode::batched_pairwise).narrow_ns =
            probe_ns_per_step(e, probe_steps);
    }
    {
        BatchedEngine<P> e(proto, n_p, probe_seed + 2, BatchMode::bulk, threads);
        e.adopt_census(census, 0, std::nullopt);
        cost_slot(HybridMode::batched_bulk).narrow_ns =
            probe_ns_per_step(e, probe_steps);
    }
    {
        GillespieEngine<P> e(proto, n_p, probe_seed + 2, threads);
        e.adopt_census(census, 0, std::nullopt);
        cost_slot(HybridMode::gillespie).narrow_ns = probe_ns_per_step(e, probe_steps);
    }
    return costs;
}

}  // namespace detail

/// Measures the per-mode cost anchors for `proto` at the probe bucket of
/// `n`, plus each anchor's population power-law exponent fitted against a
/// second probe at the smallest bucket (4096): b = log(ns_hi/ns_lo) /
/// log(n_hi/n_lo), clamped to [hybrid_exponent_min, hybrid_exponent_max].
/// When the bucket *is* the smallest one the exponents stay 0 — there is no
/// span to fit and nothing to extrapolate (n is within 2× of the bucket).
/// Total cost: sixteen runs of 8·n_p interactions plus two pre-runs, some
/// tens of milliseconds — paid once per (protocol, machine, threads) and
/// cached on disk.
template <typename P>
    requires InternableProtocol<P>
[[nodiscard]] CalibrationTable probe_calibration(const P& proto, std::size_t n,
                                                 std::size_t threads) {
    constexpr std::size_t n_lo = 4096;
    const std::size_t n_p = probe_population_for(n);

    CalibrationTable table;
    table.probe_population = n_p;
    table.threads = threads;
    table.costs = detail::probe_anchors_at(proto, n_p, threads);
    if (n_p > n_lo) {
        const auto lo = detail::probe_anchors_at(proto, n_lo, threads);
        const double span = std::log(static_cast<double>(n_p) / n_lo);
        for (std::size_t m = 0; m < hybrid_mode_count; ++m) {
            const auto fit = [span](double hi_ns, double lo_ns) {
                return std::clamp(std::log(std::max(hi_ns, 1e-3) /
                                           std::max(lo_ns, 1e-3)) / span,
                                  hybrid_exponent_min, hybrid_exponent_max);
            };
            table.costs[m].wide_exponent = fit(table.costs[m].wide_ns, lo[m].wide_ns);
            table.costs[m].narrow_exponent =
                fit(table.costs[m].narrow_ns, lo[m].narrow_ns);
        }
    }
    return table;
}

/// Adaptive hybrid meta-engine. Drop-in alternative to the fixed engines
/// for the run/verify surface (run_until_one_leader, run_for,
/// verify_outputs_stable, RunResult, fault injection) — the active inner
/// engine does the stepping, this class does the choosing and the handoffs.
template <typename P>
    requires InternableProtocol<P>
class HybridEngine {
public:
    using State = typename P::State;
    using Census = std::vector<std::pair<State, std::uint64_t>>;

    /// Null-mass evaluation is O(cap²) protocol transitions: the pair sum
    /// runs over the `null_mass_state_cap` highest-count states and every
    /// pair touching an excluded state counts as non-null, so z is exact for
    /// d ≤ cap and a conservative under-estimate beyond it (the excluded
    /// tail carries little pair weight once mass has concentrated — which is
    /// precisely when z matters).
    static constexpr std::size_t null_mass_state_cap = 64;

    /// \param threads  forwarded to the count engines (1 = sequential,
    /// 0 = hardware concurrency); the agent mode ignores it.
    HybridEngine(P protocol, std::size_t n, std::uint64_t seed,
                 std::size_t threads = 1)
        : protocol_(std::move(protocol)), n_(n), root_seed_(seed) {
        require(n >= 2, "population must contain at least two agents");
        require(n <= (std::uint64_t{1} << 32U),
                "hybrid engine supports populations up to 2^32 agents");
        if (threads == 0) {
            threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
        }
        threads_ = threads;
        table_ = calibration_for(
            std::string(protocol_.name()), threads_, probe_population_for(n_),
            [this] { return probe_calibration(protocol_, n_, threads_); });
        Census initial;
        initial.emplace_back(protocol_.initial_state(), n_);
        // The initial pick is hysteresis-free (there is no incumbent).
        construct_engine(choose_mode(table_, features_of(initial),
                                     HybridMode::batched_bulk, /*hysteresis=*/1.0,
                                     population_scale()));
        eval_interval_ = initial_eval_interval();
        next_eval_step_ = eval_interval_;
    }

    // --- observation ------------------------------------------------------

    [[nodiscard]] std::size_t population_size() const noexcept { return n_; }
    [[nodiscard]] StepCount steps() const noexcept {
        return with_engine([](const auto& e) { return e.steps(); });
    }
    [[nodiscard]] double parallel_time() const noexcept {
        return to_parallel_time(steps(), n_);
    }
    [[nodiscard]] std::size_t leader_count() const noexcept {
        return with_engine([](const auto& e) { return e.leader_count(); });
    }
    [[nodiscard]] const P& protocol() const noexcept { return protocol_; }
    [[nodiscard]] std::optional<StepCount> stabilization_step() const noexcept {
        return with_engine([](const auto& e) { return e.stabilization_step(); });
    }
    [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

    /// The mode currently executing.
    [[nodiscard]] HybridMode mode() const noexcept { return mode_; }
    /// Mid-run mode switches performed so far.
    [[nodiscard]] std::size_t switches() const noexcept { return switches_; }
    /// The cost table driving the decisions.
    [[nodiscard]] const CalibrationTable& calibration_table() const noexcept {
        return table_;
    }

    /// Number of distinct states with a non-zero count. O(#states) on the
    /// count modes, O(n) in agent mode.
    [[nodiscard]] std::size_t live_state_count() const {
        if (mode_ == HybridMode::agent) return collect_census().size();
        return with_engine([](const auto& e) {
            if constexpr (requires { e.live_state_count(); }) {
                return e.live_state_count();
            } else {
                return std::size_t{0};  // unreachable: agent handled above
            }
        });
    }

    /// Sum of all counts — the population size, by conservation.
    [[nodiscard]] std::uint64_t total_count() const {
        std::uint64_t total = 0;
        visit_counts([&total](const State&, std::uint64_t c, Role) { total += c; });
        return total;
    }

    /// Visits every state with a non-zero count as (state, count, role),
    /// regardless of the active mode (agent mode pays an O(n) walk).
    template <typename Visitor>
    void visit_counts(Visitor&& visit) const {
        if (mode_ == HybridMode::agent) {
            for (const auto& [s, c] : collect_census()) {
                visit(s, c, protocol_.output(s));
            }
            return;
        }
        if (mode_ == HybridMode::gillespie) {
            gillespie_->visit_counts(visit);
        } else {
            batched_->visit_counts(visit);
        }
    }

    /// Recomputes the leader count from the configuration (tests / checks).
    std::size_t recount_leaders() {
        return with_engine([](auto& e) { return e.recount_leaders(); });
    }

    // --- execution --------------------------------------------------------

    /// Runs until exactly one leader remains or `max_steps` further steps
    /// have been executed, whichever comes first. Chunks are clamped at the
    /// engine's own evaluation thresholds, so mode decisions land at the
    /// identical steps no matter how callers slice the run.
    RunResult run_until_one_leader(StepCount max_steps) {
        StepCount executed = 0;
        while (leader_count() != 1 && executed < max_steps) {
            executed += slice(max_steps - executed, /*stop_at_single_leader=*/true);
        }
        return make_result(leader_count() == 1);
    }

    /// Runs exactly `count` steps (every inner engine clamps to its budget).
    RunResult run_for(StepCount count) {
        StepCount executed = 0;
        while (executed < count) {
            executed += slice(count - executed, /*stop_at_single_leader=*/false);
        }
        return make_result(leader_count() == 1);
    }

    /// Runs `count` additional steps and reports whether any agent's output
    /// changed. A certification suffix, not part of the adaptive trajectory:
    /// it runs entirely on the active mode, with no evaluations or switches.
    [[nodiscard]] bool verify_outputs_stable(StepCount count) {
        return with_engine([count](auto& e) { return e.verify_outputs_stable(count); });
    }

    // --- fault injection ---------------------------------------------------

    /// Forwards one crash/rejoin/reset fault to the active engine (whose
    /// surgery and single-leader re-anchoring are authoritative), then
    /// re-reads the population size — a crash or rejoin changes n, which
    /// feeds the evaluation cadence and any later engine handoff.
    void apply_fault(const FaultAction& action) {
        with_engine([&action](auto& e) { e.apply_fault(action); });
        n_ = with_engine([](const auto& e) { return e.population_size(); });
    }

    /// Advances the step counter through a rate-zero silence window.
    void advance_silent(StepCount count) noexcept {
        with_engine([count](auto& e) { e.advance_silent(count); });
    }

    // --- test hooks -------------------------------------------------------

    /// Pins the engine to `m` from now on: switches immediately (full census
    /// handoff) when `m` is not the active mode, and disables all further
    /// evaluations. The deterministic forced-switch harness for tests.
    void force_mode(HybridMode m) {
        forced_ = true;
        next_eval_step_ = std::numeric_limits<StepCount>::max();
        if (m != mode_) switch_to(m, collect_census());
    }

    /// Per-evaluation census sample size in agent mode: features come from
    /// the census of this many agents instead of all n, so an evaluation
    /// costs O(cap) there — random pairing keeps agent positions
    /// exchangeable, so a fixed prefix is a uniform multiset sample, and
    /// using a fixed one keeps the run deterministic (no extra PRNG draws).
    static constexpr std::size_t feature_sample_cap = 4096;

    /// The census of the live configuration, sorted by canonical state key
    /// (deterministic across modes). O(#states) on count modes, O(n) in
    /// agent mode. Always exact — this is what mode handoffs transfer.
    [[nodiscard]] Census collect_census() const {
        if (mode_ == HybridMode::agent) {
            return census_of_agents(agent_->population().states().size());
        }
        Census census;
        visit_counts([&census](const State& s, std::uint64_t c, Role) {
            census.emplace_back(s, c);
        });
        sort_census(census);
        return census;
    }

    /// The decision features of a census: live-state count, and the
    /// null-channel mass by direct protocol evaluation over the ordered
    /// pairs of the `null_mass_state_cap` highest-count states (rate-thinned
    /// weight for rated protocols). Pairs touching an excluded state count
    /// as non-null, so z is exact for d ≤ cap and an under-estimate beyond
    /// it — conservative, because low z keeps the decision on the wide
    /// anchors. The pair weight is normalised by the census's own total, so
    /// a sampled census (agent mode) yields its sample estimate of z.
    [[nodiscard]] PhaseFeatures features_of(const Census& census) const {
        PhaseFeatures f;
        f.live_states = census.size();
        std::uint64_t total = 0;
        for (const auto& [s, c] : census) total += c;
        if (census.empty() || total < 2) return f;
        const Census* considered = &census;
        Census top;
        if (census.size() > null_mass_state_cap) {
            top = census;
            // Deterministic subset: count descending, state key ascending on
            // ties (the census itself arrives key-sorted).
            std::partial_sort(top.begin(), top.begin() + null_mass_state_cap,
                              top.end(), [this](const auto& a, const auto& b) {
                                  if (a.second != b.second) return a.second > b.second;
                                  return state_key_of(protocol_, a.first) <
                                         state_key_of(protocol_, b.first);
                              });
            top.resize(null_mass_state_cap);
            considered = &top;
        }
        const double w_total =
            static_cast<double>(total) * (static_cast<double>(total) - 1.0);
        double included = 0.0;  // ordered-pair weight of the considered pairs
        double nonnull = 0.0;   // its non-null (rate-thinned) part
        for (const auto& [sa, ca] : *considered) {
            for (const auto& [sb, cb] : *considered) {
                const double w =
                    state_key_of(protocol_, sa) == state_key_of(protocol_, sb)
                        ? static_cast<double>(ca) * (static_cast<double>(ca) - 1.0)
                        : static_cast<double>(ca) * static_cast<double>(cb);
                if (w <= 0.0) continue;
                included += w;
                State x = sa;
                State y = sb;
                protocol_.interact(x, y);
                const bool is_null =
                    state_key_of(protocol_, x) == state_key_of(protocol_, sa) &&
                    state_key_of(protocol_, y) == state_key_of(protocol_, sb);
                if (is_null) continue;
                if constexpr (RatedProtocol<P>) {
                    const double rmax = max_rate_of(protocol_);
                    nonnull += rmax > 0.0
                                   ? w * pair_rate_of(protocol_, sa, sb) / rmax
                                   : 0.0;
                } else {
                    nonnull += w;
                }
            }
        }
        // Everything outside the considered pairs counts as non-null.
        f.null_mass = std::clamp((included - nonnull) / w_total, 0.0, 1.0);
        return f;
    }

    // --- checkpointing ------------------------------------------------------

    /// Serialises the meta-engine's adaptive state — the active mode, the
    /// segment index (stream split position), the evaluation cadence — plus
    /// the calibration table that drove every decision so far (a resumed run
    /// must keep deciding from the *same* table: re-probing on resume would
    /// fork the trajectory) and the active inner engine's full state.
    void save_state(CheckpointWriter& w) const {
        w.u64(n_);
        w.u8(static_cast<std::uint8_t>(mode_));
        w.u64(segment_);
        w.u64(switches_);
        w.u64(eval_interval_);
        w.u64(next_eval_step_);
        w.boolean(forced_);
        w.u64(table_.threads);
        w.u64(table_.probe_population);
        for (const ModeCost& cost : table_.costs) {
            w.f64(cost.wide_ns);
            w.f64(cost.narrow_ns);
            w.f64(cost.wide_exponent);
            w.f64(cost.narrow_exponent);
        }
        with_engine([&w](const auto& e) { e.save_state(w); });
    }

    /// Restores a `save_state` payload into an engine built with the same
    /// protocol, root seed and thread count. The checkpointed table replaces
    /// whatever the constructor probed (or read from the cache), and the
    /// active inner engine is rebuilt on its original segment stream before
    /// its own state is restored into it.
    void restore_state(CheckpointReader& r) {
        const std::uint64_t restored_n = r.u64();
        // Inner constructors demand two agents, but a crash fault may have
        // checkpointed a single survivor; construct at 2 and let the inner
        // restore re-apply the true population (it overwrites everything).
        n_ = std::max<std::size_t>(restored_n, 2);
        const std::uint8_t mode = r.u8();
        require(mode < hybrid_mode_count, "checkpoint names an unknown hybrid mode");
        segment_ = r.u64();
        switches_ = r.u64();
        eval_interval_ = r.u64();
        next_eval_step_ = r.u64();
        forced_ = r.boolean();
        table_.threads = r.u64();
        table_.probe_population = r.u64();
        for (ModeCost& cost : table_.costs) {
            cost.wide_ns = r.f64();
            cost.narrow_ns = r.f64();
            cost.wide_exponent = r.f64();
            cost.narrow_exponent = r.f64();
        }
        construct_engine(static_cast<HybridMode>(mode));
        with_engine([&r](auto& e) { e.restore_state(r); });
        n_ = restored_n;
    }

private:
    // --- census helpers ---------------------------------------------------

    void sort_census(Census& census) const {
        std::sort(census.begin(), census.end(),
                  [this](const auto& a, const auto& b) {
                      return state_key_of(protocol_, a.first) <
                             state_key_of(protocol_, b.first);
                  });
    }

    /// Census of the first `limit` agents of the agent engine's population
    /// (the whole population when limit ≥ n), key-sorted.
    [[nodiscard]] Census census_of_agents(std::size_t limit) const {
        Census census;
        std::unordered_map<std::uint64_t, std::size_t> slot_of;
        const auto& states = agent_->population().states();
        limit = std::min(limit, states.size());
        for (std::size_t i = 0; i < limit; ++i) {
            const std::uint64_t key = state_key_of(protocol_, states[i]);
            const auto [it, fresh] = slot_of.try_emplace(key, census.size());
            if (fresh) {
                census.emplace_back(states[i], 1);
            } else {
                ++census[it->second].second;
            }
        }
        sort_census(census);
        return census;
    }

    /// The census evaluations read features from: exact on the count modes
    /// (O(#states) there), a `feature_sample_cap`-agent sample in agent mode
    /// — so the per-evaluation cost never scales with n. Handoffs always use
    /// the exact `collect_census`.
    [[nodiscard]] Census feature_census() const {
        if (mode_ != HybridMode::agent) return collect_census();
        return census_of_agents(feature_sample_cap);
    }

    // --- mode dispatch ----------------------------------------------------

    template <typename F>
    decltype(auto) with_engine(F&& f) {
        switch (mode_) {
            case HybridMode::agent: return f(*agent_);
            case HybridMode::batched_pairwise:
            case HybridMode::batched_bulk: return f(*batched_);
            case HybridMode::gillespie: return f(*gillespie_);
        }
        return f(*gillespie_);  // unreachable
    }

    template <typename F>
    decltype(auto) with_engine(F&& f) const {
        switch (mode_) {
            case HybridMode::agent: return f(*agent_);
            case HybridMode::batched_pairwise:
            case HybridMode::batched_bulk: return f(*batched_);
            case HybridMode::gillespie: return f(*gillespie_);
        }
        return f(*gillespie_);  // unreachable
    }

    // --- run loop ---------------------------------------------------------

    /// One chunk: evaluate at a due threshold, then advance the active
    /// engine up to the next threshold (or the budget, whichever is
    /// nearer); returns the steps executed.
    StepCount slice(StepCount budget, bool stop_at_single_leader) {
        maybe_evaluate();
        const StepCount now = steps();
        const StepCount to_eval =
            next_eval_step_ > now ? next_eval_step_ - now : StepCount{1};
        const StepCount chunk = std::min(budget, to_eval);
        if (stop_at_single_leader) {
            with_engine([chunk](auto& e) { (void)e.run_until_one_leader(chunk); });
        } else {
            with_engine([chunk](auto& e) { (void)e.run_for(chunk); });
        }
        return steps() - now;
    }

    /// The evaluation interval restarts here after every switch (and at
    /// construction): big enough that the census walk (O(n) in agent mode)
    /// and the cap² feature pairs amortise to a few percent of the interval's
    /// own work, small enough to catch a phase change within about one
    /// parallel-time unit.
    [[nodiscard]] StepCount initial_eval_interval() const noexcept {
        return std::max<StepCount>(n_ / 4, 16384);
    }

    /// n / probe_population — the extrapolation coordinate of the cost
    /// model's power laws (1 when the table carries no probe population,
    /// e.g. a hand-built injected table).
    [[nodiscard]] double population_scale() const noexcept {
        return table_.probe_population > 0
                   ? static_cast<double>(n_) /
                         static_cast<double>(table_.probe_population)
                   : 1.0;
    }

    /// Re-decides the mode when a threshold has been reached: census →
    /// features → choose_mode (with hysteresis). A stable decision backs
    /// the cadence off geometrically (capped at 4n); a switch resets it.
    void maybe_evaluate() {
        if (forced_ || steps() < next_eval_step_) return;
        if (n_ < 2) {  // a crash fault left one survivor: nothing to choose
            next_eval_step_ = std::numeric_limits<StepCount>::max();
            return;
        }
        const HybridMode target = choose_mode(table_, features_of(feature_census()),
                                              mode_, hybrid_hysteresis,
                                              population_scale());
        if (target != mode_) {
            switch_to(target, collect_census());
            eval_interval_ = initial_eval_interval();
        } else {
            eval_interval_ = std::min<StepCount>(eval_interval_ * 2, 4 * n_);
        }
        next_eval_step_ = steps() + eval_interval_;
    }

    // --- engine handoff ---------------------------------------------------

    /// Replaces the active engine with a fresh `m`-mode engine on the next
    /// segment stream and hands it the census, step counter and
    /// stabilisation step — the mid-run switch.
    void switch_to(HybridMode m, const Census& census) {
        const StepCount now = steps();
        const std::optional<StepCount> stab = stabilization_step();
        ++segment_;
        construct_engine(m);
        with_engine([&](auto& e) { e.adopt_census(census, now, stab); });
        ++switches_;
    }

    /// Builds the inner engine for `m` on the current segment's stream (a
    /// fresh all-initial configuration at step 0; callers adopt a census
    /// into it when continuing a run).
    void construct_engine(HybridMode m) {
        const std::uint64_t seed = derive_seed(root_seed_, hybrid_segment_tag + segment_);
        agent_.reset();
        batched_.reset();
        gillespie_.reset();
        switch (m) {
            case HybridMode::agent:
                agent_ = std::make_unique<Engine<P>>(protocol_, n_, seed);
                break;
            case HybridMode::batched_pairwise:
                batched_ = std::make_unique<BatchedEngine<P>>(
                    protocol_, n_, seed, BatchMode::pairwise, threads_);
                break;
            case HybridMode::batched_bulk:
                batched_ = std::make_unique<BatchedEngine<P>>(
                    protocol_, n_, seed, BatchMode::bulk, threads_);
                break;
            case HybridMode::gillespie:
                gillespie_ =
                    std::make_unique<GillespieEngine<P>>(protocol_, n_, seed, threads_);
                break;
        }
        mode_ = m;
    }

    [[nodiscard]] RunResult make_result(bool converged) const noexcept {
        RunResult r;
        r.converged = converged;
        r.steps = steps();
        r.parallel_time = to_parallel_time(r.steps, n_);
        r.leader_count = leader_count();
        r.stabilization_step = stabilization_step();
        return r;
    }

    P protocol_;
    std::size_t n_;
    std::uint64_t root_seed_;
    std::size_t threads_ = 1;
    CalibrationTable table_;
    HybridMode mode_ = HybridMode::batched_bulk;
    std::unique_ptr<Engine<P>> agent_;            ///< active iff mode_ == agent
    std::unique_ptr<BatchedEngine<P>> batched_;   ///< active iff mode_ is batched_*
    std::unique_ptr<GillespieEngine<P>> gillespie_;  ///< active iff mode_ == gillespie
    std::uint64_t segment_ = 0;       ///< current segment index (stream split)
    std::size_t switches_ = 0;        ///< mid-run handoffs performed
    StepCount eval_interval_ = 0;     ///< current threshold spacing
    StepCount next_eval_step_ = 0;    ///< absolute step of the next evaluation
    bool forced_ = false;             ///< force_mode pinned the mode (tests)
};

}  // namespace ppsim
