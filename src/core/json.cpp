#include "json.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common.hpp"

namespace ppsim {

JsonValue JsonValue::array() {
    JsonValue v;
    v.data_ = Array{};
    return v;
}

JsonValue JsonValue::object() {
    JsonValue v;
    v.data_ = Object{};
    return v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
    if (is_null()) data_ = Array{};
    require(is_array(), "push_back on a non-array JSON value");
    std::get<Array>(data_).items.push_back(std::move(v));
    return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
    (*this)[key] = std::move(v);
    return *this;
}

JsonValue& JsonValue::operator[](const std::string& key) {
    if (is_null()) data_ = Object{};
    require(is_object(), "member access on a non-object JSON value");
    auto& members = std::get<Object>(data_).members;
    for (auto& [k, v] : members) {
        if (k == key) return v;
    }
    members.emplace_back(key, JsonValue());
    return members.back().second;
}

bool JsonValue::is_null() const noexcept {
    return std::holds_alternative<std::nullptr_t>(data_);
}
bool JsonValue::is_array() const noexcept { return std::holds_alternative<Array>(data_); }
bool JsonValue::is_object() const noexcept { return std::holds_alternative<Object>(data_); }

void JsonValue::escape_into(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

namespace {

void append_number(std::string& out, double d) {
    if (!std::isfinite(d)) {
        // JSON has no NaN/Inf; emit null, which downstream tooling treats as
        // "no value" (e.g. a run that never stabilised).
        out += "null";
        return;
    }
    if (d == std::floor(d) && std::abs(d) < 1e15) {
        out += std::to_string(static_cast<long long>(d));
        return;
    }
    std::ostringstream ss;
    ss.precision(12);
    ss << d;
    out += ss.str();
}

}  // namespace

void JsonValue::dump_impl(std::string& out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
                          ' ');
    const std::string pad_in(
        static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth + 1), ' ');
    if (std::holds_alternative<std::nullptr_t>(data_)) {
        out += "null";
    } else if (const bool* b = std::get_if<bool>(&data_)) {
        out += *b ? "true" : "false";
    } else if (const double* d = std::get_if<double>(&data_)) {
        append_number(out, *d);
    } else if (const std::string* s = std::get_if<std::string>(&data_)) {
        escape_into(out, *s);
    } else if (const Array* a = std::get_if<Array>(&data_)) {
        if (a->items.empty()) {
            out += "[]";
            return;
        }
        out += "[\n";
        for (std::size_t i = 0; i < a->items.size(); ++i) {
            out += pad_in;
            a->items[i].dump_impl(out, indent, depth + 1);
            if (i + 1 < a->items.size()) out += ',';
            out += '\n';
        }
        out += pad + "]";
    } else if (const Object* o = std::get_if<Object>(&data_)) {
        if (o->members.empty()) {
            out += "{}";
            return;
        }
        out += "{\n";
        for (std::size_t i = 0; i < o->members.size(); ++i) {
            out += pad_in;
            escape_into(out, o->members[i].first);
            out += ": ";
            o->members[i].second.dump_impl(out, indent, depth + 1);
            if (i + 1 < o->members.size()) out += ',';
            out += '\n';
        }
        out += pad + "}";
    }
}

std::string JsonValue::dump(int indent) const {
    std::string out;
    dump_impl(out, indent, 0);
    return out;
}

void write_json_file(const std::string& path, const JsonValue& value) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        require(out.good(), "cannot open " + tmp + " for writing");
        out << value.dump() << '\n';
    }
    std::filesystem::rename(tmp, path);
}

}  // namespace ppsim
