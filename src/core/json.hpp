/// \file json.hpp
/// \brief Minimal JSON document builder used to persist experiment artefacts.
///
/// Write-only by design: experiments emit machine-readable results alongside
/// the human-readable tables; nothing in the library parses JSON back, so we
/// keep a small, dependency-free value type rather than a full parser.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ppsim {

/// A JSON value: null, bool, number, string, array or object.
/// Objects preserve insertion order (experiment output stays diffable).
class JsonValue {
public:
    JsonValue() : data_(nullptr) {}
    JsonValue(std::nullptr_t) : data_(nullptr) {}
    JsonValue(bool b) : data_(b) {}
    JsonValue(double d) : data_(d) {}
    JsonValue(int i) : data_(static_cast<double>(i)) {}
    JsonValue(unsigned u) : data_(static_cast<double>(u)) {}
    JsonValue(std::int64_t i) : data_(static_cast<double>(i)) {}
    JsonValue(std::uint64_t u) : data_(static_cast<double>(u)) {}
    JsonValue(const char* s) : data_(std::string(s)) {}
    JsonValue(std::string s) : data_(std::move(s)) {}
    JsonValue(std::string_view s) : data_(std::string(s)) {}

    /// Creates an empty array value.
    [[nodiscard]] static JsonValue array();
    /// Creates an empty object value.
    [[nodiscard]] static JsonValue object();

    /// Appends to an array value (converts a null value into an array first).
    JsonValue& push_back(JsonValue v);

    /// Sets an object member (converts a null value into an object first).
    JsonValue& set(const std::string& key, JsonValue v);

    /// Member access; inserts a null member when absent (object context).
    JsonValue& operator[](const std::string& key);

    [[nodiscard]] bool is_null() const noexcept;
    [[nodiscard]] bool is_array() const noexcept;
    [[nodiscard]] bool is_object() const noexcept;

    /// Serialises with 2-space indentation.
    [[nodiscard]] std::string dump(int indent = 2) const;

private:
    struct Array {
        std::vector<JsonValue> items;
    };
    struct Object {
        std::vector<std::pair<std::string, JsonValue>> members;
    };

    void dump_impl(std::string& out, int indent, int depth) const;
    static void escape_into(std::string& out, const std::string& s);

    std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Writes `value` to `path` atomically (write temp file, then rename).
void write_json_file(const std::string& path, const JsonValue& value);

}  // namespace ppsim
