#include "log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace ppsim {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::info)};
std::once_flag g_env_once;
std::mutex g_write_mutex;

void apply_env_override() {
    const char* env = std::getenv("PPSIM_LOG");
    if (env == nullptr) return;
    const std::string value(env);
    if (value == "debug") g_level = static_cast<int>(LogLevel::debug);
    else if (value == "info") g_level = static_cast<int>(LogLevel::info);
    else if (value == "warn") g_level = static_cast<int>(LogLevel::warn);
    else if (value == "error") g_level = static_cast<int>(LogLevel::error);
    else if (value == "off") g_level = static_cast<int>(LogLevel::off);
}

double seconds_since_start() {
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point start = Clock::now();
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::debug: return "DEBUG";
        case LogLevel::info: return "INFO";
        case LogLevel::warn: return "WARN";
        case LogLevel::error: return "ERROR";
        case LogLevel::off: return "OFF";
    }
    return "?";
}

void set_log_level(LogLevel level) noexcept { g_level = static_cast<int>(level); }

LogLevel log_level() noexcept {
    std::call_once(g_env_once, apply_env_override);
    return static_cast<LogLevel>(g_level.load());
}

void log_message(LogLevel level, std::string_view message) {
    if (static_cast<int>(level) < static_cast<int>(log_level())) return;
    const std::lock_guard lock(g_write_mutex);
    std::fprintf(stderr, "[%8.3f] %-5s %.*s\n", seconds_since_start(),
                 std::string(to_string(level)).c_str(),
                 static_cast<int>(message.size()), message.data());
}

}  // namespace ppsim
