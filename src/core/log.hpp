/// \file log.hpp
/// \brief Levelled, thread-safe logging for the experiment harness.
///
/// Benches and examples narrate long-running sweeps through this logger;
/// tests run with the logger silenced. Deliberately minimal: message +
/// level + monotonic timestamp, no formatting DSL.
#pragma once

#include <string>
#include <string_view>

namespace ppsim {

/// Severity levels, ordered.
enum class LogLevel : int {
    debug = 0,
    info = 1,
    warn = 2,
    error = 3,
    off = 4,
};

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Global threshold: messages below it are dropped. Defaults to info; the
/// PPSIM_LOG environment variable (debug|info|warn|error|off) overrides it
/// at first use.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one log line to stderr (thread-safe, line-buffered).
void log_message(LogLevel level, std::string_view message);

inline void log_debug(std::string_view msg) { log_message(LogLevel::debug, msg); }
inline void log_info(std::string_view msg) { log_message(LogLevel::info, msg); }
inline void log_warn(std::string_view msg) { log_message(LogLevel::warn, msg); }
inline void log_error(std::string_view msg) { log_message(LogLevel::error, msg); }

}  // namespace ppsim
