/// \file metrics.hpp
/// \brief Lightweight measurement utilities: wall-clock stopwatch, decimated
/// time series, and named counters used by benches and experiments.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"

namespace ppsim {

/// Wall-clock stopwatch (steady clock).
class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    void restart() { start_ = Clock::now(); }

    [[nodiscard]] double elapsed_seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Records (step, value) observations, keeping memory bounded by halving the
/// sampling rate whenever the buffer fills (standard decimation). Used to
/// trace e.g. leader-count-over-time curves for the examples.
class TimeSeries {
public:
    explicit TimeSeries(std::size_t max_points = 4096)
        : max_points_(max_points < 2 ? 2 : max_points) {}

    /// Offers an observation; it is recorded iff the step passes the current
    /// decimation stride.
    void record(StepCount step, double value) {
        if (step % stride_ != 0) return;
        points_.push_back(Point{step, value});
        if (points_.size() >= max_points_) decimate();
    }

    struct Point {
        StepCount step;
        double value;
    };

    [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }
    [[nodiscard]] StepCount stride() const noexcept { return stride_; }

private:
    void decimate() {
        std::vector<Point> kept;
        kept.reserve(points_.size() / 2 + 1);
        for (std::size_t i = 0; i < points_.size(); i += 2) kept.push_back(points_[i]);
        points_ = std::move(kept);
        stride_ *= 2;
    }

    std::size_t max_points_;
    StepCount stride_ = 1;
    std::vector<Point> points_;
};

/// A bag of named monotonic counters; protocols with introspection hooks and
/// benches use this to attribute events (coin flips, epidemics, module
/// transitions) without hard-coding a schema.
class CounterSet {
public:
    void increment(const std::string& name, std::uint64_t by = 1) { counters_[name] += by; }

    [[nodiscard]] std::uint64_t value(const std::string& name) const {
        const auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const noexcept {
        return counters_;
    }

    void clear() { counters_.clear(); }

private:
    std::map<std::string, std::uint64_t> counters_;
};

}  // namespace ppsim
