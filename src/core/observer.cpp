#include "observer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>

namespace ppsim {

namespace {

/// Advances a deadline to the first stride multiple past `now`, saturating
/// at no_deadline near the StepCount ceiling (shared by every cadence
/// observer). Closed form, not a loop: an observer attached after a long
/// unobserved run may be an arbitrary number of strides behind.
[[nodiscard]] StepCount advance_deadline(StepCount next, StepCount now,
                                         StepCount stride) noexcept {
    if (next > now) return next;
    const StepCount behind = now - next;
    const StepCount catch_up = behind - behind % stride + stride;
    if (next > std::numeric_limits<StepCount>::max() - catch_up) {
        return SimulationObserver::no_deadline;
    }
    return next + catch_up;
}

// --- checkpoint serialisation helpers ---------------------------------------

void write_snapshot(CheckpointWriter& w, const ConfigurationSnapshot& snapshot) {
    w.u64(snapshot.step);
    w.u64(snapshot.counts.size());
    for (const StateCount& sc : snapshot.counts) {
        w.u64(sc.key);
        w.u64(sc.count);
        w.u8(static_cast<std::uint8_t>(sc.role));
    }
}

[[nodiscard]] ConfigurationSnapshot read_snapshot(CheckpointReader& r) {
    ConfigurationSnapshot snapshot;
    snapshot.step = r.u64();
    const std::uint64_t entries = r.u64();
    snapshot.counts.reserve(entries);
    for (std::uint64_t i = 0; i < entries; ++i) {
        StateCount sc;
        sc.key = r.u64();
        sc.count = r.u64();
        sc.role = r.u8() != 0 ? Role::leader : Role::follower;
        snapshot.counts.push_back(sc);
    }
    return snapshot;
}

}  // namespace

// --- TrajectoryRecorder -----------------------------------------------------

TrajectoryRecorder::TrajectoryRecorder(StepCount stride, bool record_live_states)
    : stride_(stride), record_live_states_(record_live_states) {
    require(stride >= 1, "trajectory stride must be at least one interaction");
}

TrajectoryRecorder TrajectoryRecorder::every_parallel_time(double units, std::size_t n,
                                                           bool record_live_states) {
    require(units > 0.0, "trajectory cadence must be positive");
    const double steps = units * static_cast<double>(n);
    return TrajectoryRecorder(steps < 1.0 ? 1 : static_cast<StepCount>(steps),
                              record_live_states);
}

void TrajectoryRecorder::record(const Simulation& sim) {
    const StepCount now = sim.steps();
    if (!points_.empty() && points_.back().step == now) return;
    points_.push_back(TrajectoryPoint{
        now, sim.parallel_time(), sim.leader_count(),
        record_live_states_ ? sim.live_state_count() : 0});
    next_ = advance_deadline(next_, now, stride_);
}

void TrajectoryRecorder::observe(const Simulation& sim) {
    if (points_.empty() || sim.steps() >= next_) record(sim);
}

void TrajectoryRecorder::finish(const Simulation& sim) {
    record(sim);  // always capture the final configuration, even off-stride
}

std::vector<TrajectoryPoint> TrajectoryRecorder::take_points() {
    std::vector<TrajectoryPoint> out = std::move(points_);
    points_.clear();
    next_ = 0;
    return out;
}

void TrajectoryRecorder::save_state(CheckpointWriter& w) const {
    // The recorded points carry over (the resumed process reports the whole
    // series), and preserving the tail sample keeps record()'s same-step
    // dedup working across the resume boundary — the run-start observation
    // after a resume must not duplicate the checkpoint-step sample.
    w.u64(next_);
    w.u64(points_.size());
    for (const TrajectoryPoint& p : points_) {
        w.u64(p.step);
        w.f64(p.parallel_time);
        w.u64(p.leader_count);
        w.u64(p.live_states);
    }
}

void TrajectoryRecorder::restore_state(CheckpointReader& r) {
    next_ = r.u64();
    const std::uint64_t count = r.u64();
    points_.clear();
    points_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TrajectoryPoint p;
        p.step = r.u64();
        p.parallel_time = r.f64();
        p.leader_count = r.u64();
        p.live_states = r.u64();
        points_.push_back(p);
    }
}

void TrajectoryRecorder::write_csv(std::ostream& out) const {
    write_trajectory_csv(out, points_);
}

void write_trajectory_csv(std::ostream& out,
                          const std::vector<TrajectoryPoint>& points) {
    out << "step,parallel_time,leader_count,live_states\n";
    for (const TrajectoryPoint& p : points) {
        out << p.step << ',' << p.parallel_time << ',' << p.leader_count << ','
            << p.live_states << '\n';
    }
}

void write_trajectory_csv(const std::string& path,
                          const std::vector<TrajectoryPoint>& points) {
    std::ofstream out(path);
    require(out.good(), "cannot open trajectory file for writing: " + path);
    write_trajectory_csv(out, points);
    out.flush();
    require(out.good(), "failed writing trajectory file: " + path);
}

// --- SnapshotRecorder -------------------------------------------------------

SnapshotRecorder::SnapshotRecorder(StepCount stride) : stride_(stride) {
    require(stride >= 1, "snapshot stride must be at least one interaction");
}

void SnapshotRecorder::record(const Simulation& sim) {
    if (!snapshots_.empty() && snapshots_.back().step == sim.steps()) return;
    snapshots_.push_back(sim.state_counts());
    next_ = advance_deadline(next_, sim.steps(), stride_);
}

void SnapshotRecorder::observe(const Simulation& sim) {
    if (snapshots_.empty() || sim.steps() >= next_) record(sim);
}

void SnapshotRecorder::finish(const Simulation& sim) { record(sim); }

void SnapshotRecorder::save_state(CheckpointWriter& w) const {
    w.u64(next_);
    w.u64(snapshots_.size());
    for (const ConfigurationSnapshot& s : snapshots_) write_snapshot(w, s);
}

void SnapshotRecorder::restore_state(CheckpointReader& r) {
    next_ = r.u64();
    const std::uint64_t count = r.u64();
    snapshots_.clear();
    snapshots_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) snapshots_.push_back(read_snapshot(r));
}

// --- ConvergenceObserver ----------------------------------------------------

ConvergenceObserver::ConvergenceObserver(std::vector<std::size_t> thresholds,
                                         StepCount stride)
    : thresholds_(std::move(thresholds)), stride_(stride) {
    require(stride >= 1, "convergence stride must be at least one interaction");
    std::sort(thresholds_.begin(), thresholds_.end(), std::greater<>());
    thresholds_.erase(std::unique(thresholds_.begin(), thresholds_.end()),
                      thresholds_.end());
    reached_.assign(thresholds_.size(), std::nullopt);
}

std::vector<std::size_t> ConvergenceObserver::halving_thresholds(std::size_t n) {
    std::vector<std::size_t> out;
    for (std::size_t t = n / 2; t > 1; t /= 2) out.push_back(t);
    out.push_back(1);
    return out;
}

void ConvergenceObserver::observe(const Simulation& sim) {
    const std::size_t leaders = sim.leader_count();
    for (std::size_t i = 0; i < thresholds_.size(); ++i) {
        if (!reached_[i] && leaders <= thresholds_[i]) reached_[i] = sim.steps();
    }
    if (sim.steps() >= next_) {
        // All milestones hit: stop asking for deadlines so runs with other
        // observers (or none due) aren't chunked on our account.
        const bool done = std::all_of(reached_.begin(), reached_.end(),
                                      [](const auto& r) { return r.has_value(); });
        next_ = done ? SimulationObserver::no_deadline
                     : advance_deadline(next_, sim.steps(), stride_);
    }
}

void ConvergenceObserver::save_state(CheckpointWriter& w) const {
    // Thresholds come from the constructor; only the milestones already hit
    // (and the cadence position) are run state.
    w.u64(next_);
    w.u64(reached_.size());
    for (const std::optional<StepCount>& step : reached_) w.opt_u64(step);
}

void ConvergenceObserver::restore_state(CheckpointReader& r) {
    next_ = r.u64();
    const std::uint64_t count = r.u64();
    require(count == reached_.size(),
            "checkpointed convergence observer tracked a different threshold set");
    for (std::optional<StepCount>& step : reached_) step = r.opt_u64();
}

std::optional<StepCount> ConvergenceObserver::first_step_at_or_below(
    std::size_t threshold) const {
    for (std::size_t i = 0; i < thresholds_.size(); ++i) {
        if (thresholds_[i] == threshold) return reached_[i];
    }
    return std::nullopt;
}

// --- DeadlineObserver -------------------------------------------------------

DeadlineObserver::DeadlineObserver(double model_time, std::size_t n)
    : DeadlineObserver(model_time_to_step(model_time, n)) {}

DeadlineObserver::DeadlineObserver(StepCount deadline_step) : deadline_(deadline_step) {}

DeadlineObserver DeadlineObserver::at_step(StepCount step) {
    return DeadlineObserver(step);
}

StepCount DeadlineObserver::next_due() const noexcept {
    return report_ ? no_deadline : deadline_;
}

void DeadlineObserver::record(const Simulation& sim, bool reached) {
    DeadlineReport report;
    report.step = sim.steps();
    report.parallel_time = sim.parallel_time();
    report.leader_count = sim.leader_count();
    report.live_states = sim.live_state_count();
    report.reached_deadline = reached;
    const std::optional<StepCount> stab = sim.stabilization_step();
    report.stabilized = stab.has_value() && *stab <= sim.steps();
    report_ = report;
}

void DeadlineObserver::observe(const Simulation& sim) {
    if (!report_ && sim.steps() >= deadline_) record(sim, /*reached=*/true);
}

void DeadlineObserver::finish(const Simulation& sim) {
    // The run ended (stabilised or exhausted its budget) before the
    // deadline: the end-of-run configuration is the deadline view for
    // absorbing protocols. reached_deadline = false flags the distinction.
    if (!report_) record(sim, /*reached=*/false);
}

void DeadlineObserver::save_state(CheckpointWriter& w) const {
    // A deadline fires exactly once per run: persisting the report keeps a
    // resumed run from firing again (and a resumed pre-deadline run from
    // losing the pending deadline — next_due() re-derives from report_).
    w.boolean(report_.has_value());
    if (report_) {
        w.u64(report_->step);
        w.f64(report_->parallel_time);
        w.u64(report_->leader_count);
        w.u64(report_->live_states);
        w.boolean(report_->reached_deadline);
        w.boolean(report_->stabilized);
    }
}

void DeadlineObserver::restore_state(CheckpointReader& r) {
    report_.reset();
    if (r.boolean()) {
        DeadlineReport report;
        report.step = r.u64();
        report.parallel_time = r.f64();
        report.leader_count = r.u64();
        report.live_states = r.u64();
        report.reached_deadline = r.boolean();
        report.stabilized = r.boolean();
        report_ = report;
    }
}

// --- TimedSnapshotRecorder --------------------------------------------------

TimedSnapshotRecorder::TimedSnapshotRecorder(std::vector<double> times, std::size_t n) {
    require(!times.empty(), "timed snapshot recorder needs at least one time point");
    std::sort(times.begin(), times.end());
    snapshots_.reserve(times.size());
    for (const double t : times) {
        TimedSnapshot entry;
        entry.requested_time = t;
        entry.target_step = model_time_to_step(t, n);
        snapshots_.push_back(std::move(entry));
    }
}

StepCount TimedSnapshotRecorder::next_due() const noexcept {
    return captured_ < snapshots_.size() ? snapshots_[captured_].target_step
                                         : no_deadline;
}

void TimedSnapshotRecorder::observe(const Simulation& sim) {
    while (captured_ < snapshots_.size() &&
           sim.steps() >= snapshots_[captured_].target_step) {
        TimedSnapshot& entry = snapshots_[captured_];
        // Consecutive points collapsing to the same step share one census.
        if (captured_ > 0 && snapshots_[captured_ - 1].reached &&
            snapshots_[captured_ - 1].snapshot.step == sim.steps()) {
            entry.snapshot = snapshots_[captured_ - 1].snapshot;
        } else {
            entry.snapshot = sim.state_counts();
        }
        entry.reached = true;
        ++captured_;
    }
}

void TimedSnapshotRecorder::finish(const Simulation& sim) {
    observe(sim);
    if (captured_ == snapshots_.size()) return;
    // Unreached points inherit the end-of-run configuration (the deadline
    // view for absorbing protocols), marked reached = false.
    const ConfigurationSnapshot final_census = sim.state_counts();
    while (captured_ < snapshots_.size()) {
        snapshots_[captured_].snapshot = final_census;
        snapshots_[captured_].reached = false;
        ++captured_;
    }
}

void TimedSnapshotRecorder::save_state(CheckpointWriter& w) const {
    // The time points (and their target steps) come from the constructor;
    // run state is which leading entries were captured and what they hold.
    w.u64(captured_);
    for (std::size_t i = 0; i < captured_; ++i) {
        w.boolean(snapshots_[i].reached);
        write_snapshot(w, snapshots_[i].snapshot);
    }
}

void TimedSnapshotRecorder::restore_state(CheckpointReader& r) {
    const std::uint64_t captured = r.u64();
    require(captured <= snapshots_.size(),
            "checkpointed timed-snapshot recorder captured more points than configured");
    captured_ = captured;
    for (std::size_t i = 0; i < captured_; ++i) {
        snapshots_[i].reached = r.boolean();
        snapshots_[i].snapshot = read_snapshot(r);
    }
}

void TimedSnapshotRecorder::write_csv(std::ostream& out) const {
    write_timed_snapshots_csv(out, snapshots_);
}

void write_timed_snapshots_csv(std::ostream& out,
                               const std::vector<TimedSnapshot>& snapshots) {
    out << "requested_time,step,state_key,count,role\n";
    for (const TimedSnapshot& entry : snapshots) {
        for (const StateCount& sc : entry.snapshot.counts) {
            out << entry.requested_time << ',' << entry.snapshot.step << ',' << sc.key
                << ',' << sc.count << ',' << to_string(sc.role) << '\n';
        }
    }
}

void write_timed_snapshots_csv(const std::string& path,
                               const std::vector<TimedSnapshot>& snapshots) {
    std::ofstream out(path);
    require(out.good(), "cannot open snapshot file for writing: " + path);
    write_timed_snapshots_csv(out, snapshots);
    out.flush();
    require(out.good(), "failed writing snapshot file: " + path);
}

// --- RecoveryObserver -------------------------------------------------------

RecoveryObserver::RecoveryObserver(std::size_t n0) : n0_(n0) {
    require(n0 >= 1, "recovery observer needs the initial population size");
}

void RecoveryObserver::observe(const Simulation& sim) {
    // Open a record for every fault applied since the last observation.
    // Silence faults freeze the configuration rather than perturbing it, so
    // they have no recovery to measure.
    while (tracked_ < sim.faults_applied()) {
        const Simulation::ScheduledFault& fault = sim.scheduled_fault(tracked_);
        if (fault.action.kind != FaultKind::silence) {
            RecoveryRecord record;
            record.fault_index = tracked_;
            record.fault_step = fault.step;
            record.fault_time = fault.time;
            records_.push_back(record);
        }
        ++tracked_;
    }
    // Resolve every open record the current stabilisation covers. The
    // engine's stabilisation step re-anchors on each fault, so a value at or
    // after a record's fault step is that fault's recovery point; faults that
    // overlapped (a second hit before the first recovered) resolve together.
    const std::optional<StepCount> stab = sim.stabilization_step();
    if (!stab) return;
    for (RecoveryRecord& record : records_) {
        if (!record.recovery_step && *stab >= record.fault_step) {
            record.recovery_step = *stab;
        }
    }
}

void RecoveryObserver::finish(const Simulation& sim) { observe(sim); }

void RecoveryObserver::save_state(CheckpointWriter& w) const {
    // tracked_ keeps a resumed run from re-opening records for faults that
    // fired before the checkpoint; the records carry the pending (not yet
    // recovered) fault state the resumed run must keep resolving.
    w.u64(tracked_);
    w.u64(records_.size());
    for (const RecoveryRecord& record : records_) {
        w.u64(record.fault_index);
        w.u64(record.fault_step);
        w.f64(record.fault_time);
        w.opt_u64(record.recovery_step);
    }
}

void RecoveryObserver::restore_state(CheckpointReader& r) {
    tracked_ = r.u64();
    const std::uint64_t count = r.u64();
    records_.clear();
    records_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        RecoveryRecord record;
        record.fault_index = r.u64();
        record.fault_step = r.u64();
        record.fault_time = r.f64();
        record.recovery_step = r.opt_u64();
        records_.push_back(record);
    }
}

}  // namespace ppsim
