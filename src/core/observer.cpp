#include "observer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>

namespace ppsim {

namespace {

/// Advances a deadline to the first stride multiple past `now`, saturating
/// at no_deadline near the StepCount ceiling (shared by every cadence
/// observer). Closed form, not a loop: an observer attached after a long
/// unobserved run may be an arbitrary number of strides behind.
[[nodiscard]] StepCount advance_deadline(StepCount next, StepCount now,
                                         StepCount stride) noexcept {
    if (next > now) return next;
    const StepCount behind = now - next;
    const StepCount catch_up = behind - behind % stride + stride;
    if (next > std::numeric_limits<StepCount>::max() - catch_up) {
        return SimulationObserver::no_deadline;
    }
    return next + catch_up;
}

}  // namespace

// --- TrajectoryRecorder -----------------------------------------------------

TrajectoryRecorder::TrajectoryRecorder(StepCount stride, bool record_live_states)
    : stride_(stride), record_live_states_(record_live_states) {
    require(stride >= 1, "trajectory stride must be at least one interaction");
}

TrajectoryRecorder TrajectoryRecorder::every_parallel_time(double units, std::size_t n,
                                                           bool record_live_states) {
    require(units > 0.0, "trajectory cadence must be positive");
    const double steps = units * static_cast<double>(n);
    return TrajectoryRecorder(steps < 1.0 ? 1 : static_cast<StepCount>(steps),
                              record_live_states);
}

void TrajectoryRecorder::record(const Simulation& sim) {
    const StepCount now = sim.steps();
    if (!points_.empty() && points_.back().step == now) return;
    points_.push_back(TrajectoryPoint{
        now, sim.parallel_time(), sim.leader_count(),
        record_live_states_ ? sim.live_state_count() : 0});
    next_ = advance_deadline(next_, now, stride_);
}

void TrajectoryRecorder::observe(const Simulation& sim) {
    if (points_.empty() || sim.steps() >= next_) record(sim);
}

void TrajectoryRecorder::finish(const Simulation& sim) {
    record(sim);  // always capture the final configuration, even off-stride
}

std::vector<TrajectoryPoint> TrajectoryRecorder::take_points() {
    std::vector<TrajectoryPoint> out = std::move(points_);
    points_.clear();
    next_ = 0;
    return out;
}

void TrajectoryRecorder::write_csv(std::ostream& out) const {
    write_trajectory_csv(out, points_);
}

void write_trajectory_csv(std::ostream& out,
                          const std::vector<TrajectoryPoint>& points) {
    out << "step,parallel_time,leader_count,live_states\n";
    for (const TrajectoryPoint& p : points) {
        out << p.step << ',' << p.parallel_time << ',' << p.leader_count << ','
            << p.live_states << '\n';
    }
}

void write_trajectory_csv(const std::string& path,
                          const std::vector<TrajectoryPoint>& points) {
    std::ofstream out(path);
    require(out.good(), "cannot open trajectory file for writing: " + path);
    write_trajectory_csv(out, points);
    out.flush();
    require(out.good(), "failed writing trajectory file: " + path);
}

// --- SnapshotRecorder -------------------------------------------------------

SnapshotRecorder::SnapshotRecorder(StepCount stride) : stride_(stride) {
    require(stride >= 1, "snapshot stride must be at least one interaction");
}

void SnapshotRecorder::record(const Simulation& sim) {
    if (!snapshots_.empty() && snapshots_.back().step == sim.steps()) return;
    snapshots_.push_back(sim.state_counts());
    next_ = advance_deadline(next_, sim.steps(), stride_);
}

void SnapshotRecorder::observe(const Simulation& sim) {
    if (snapshots_.empty() || sim.steps() >= next_) record(sim);
}

void SnapshotRecorder::finish(const Simulation& sim) { record(sim); }

// --- ConvergenceObserver ----------------------------------------------------

ConvergenceObserver::ConvergenceObserver(std::vector<std::size_t> thresholds,
                                         StepCount stride)
    : thresholds_(std::move(thresholds)), stride_(stride) {
    require(stride >= 1, "convergence stride must be at least one interaction");
    std::sort(thresholds_.begin(), thresholds_.end(), std::greater<>());
    thresholds_.erase(std::unique(thresholds_.begin(), thresholds_.end()),
                      thresholds_.end());
    reached_.assign(thresholds_.size(), std::nullopt);
}

std::vector<std::size_t> ConvergenceObserver::halving_thresholds(std::size_t n) {
    std::vector<std::size_t> out;
    for (std::size_t t = n / 2; t > 1; t /= 2) out.push_back(t);
    out.push_back(1);
    return out;
}

void ConvergenceObserver::observe(const Simulation& sim) {
    const std::size_t leaders = sim.leader_count();
    for (std::size_t i = 0; i < thresholds_.size(); ++i) {
        if (!reached_[i] && leaders <= thresholds_[i]) reached_[i] = sim.steps();
    }
    if (sim.steps() >= next_) {
        // All milestones hit: stop asking for deadlines so runs with other
        // observers (or none due) aren't chunked on our account.
        const bool done = std::all_of(reached_.begin(), reached_.end(),
                                      [](const auto& r) { return r.has_value(); });
        next_ = done ? SimulationObserver::no_deadline
                     : advance_deadline(next_, sim.steps(), stride_);
    }
}

std::optional<StepCount> ConvergenceObserver::first_step_at_or_below(
    std::size_t threshold) const {
    for (std::size_t i = 0; i < thresholds_.size(); ++i) {
        if (thresholds_[i] == threshold) return reached_[i];
    }
    return std::nullopt;
}

// --- DeadlineObserver -------------------------------------------------------

DeadlineObserver::DeadlineObserver(double model_time, std::size_t n)
    : DeadlineObserver(model_time_to_step(model_time, n)) {}

DeadlineObserver::DeadlineObserver(StepCount deadline_step) : deadline_(deadline_step) {}

DeadlineObserver DeadlineObserver::at_step(StepCount step) {
    return DeadlineObserver(step);
}

StepCount DeadlineObserver::next_due() const noexcept {
    return report_ ? no_deadline : deadline_;
}

void DeadlineObserver::record(const Simulation& sim, bool reached) {
    DeadlineReport report;
    report.step = sim.steps();
    report.parallel_time = sim.parallel_time();
    report.leader_count = sim.leader_count();
    report.live_states = sim.live_state_count();
    report.reached_deadline = reached;
    const std::optional<StepCount> stab = sim.stabilization_step();
    report.stabilized = stab.has_value() && *stab <= sim.steps();
    report_ = report;
}

void DeadlineObserver::observe(const Simulation& sim) {
    if (!report_ && sim.steps() >= deadline_) record(sim, /*reached=*/true);
}

void DeadlineObserver::finish(const Simulation& sim) {
    // The run ended (stabilised or exhausted its budget) before the
    // deadline: the end-of-run configuration is the deadline view for
    // absorbing protocols. reached_deadline = false flags the distinction.
    if (!report_) record(sim, /*reached=*/false);
}

// --- TimedSnapshotRecorder --------------------------------------------------

TimedSnapshotRecorder::TimedSnapshotRecorder(std::vector<double> times, std::size_t n) {
    require(!times.empty(), "timed snapshot recorder needs at least one time point");
    std::sort(times.begin(), times.end());
    snapshots_.reserve(times.size());
    for (const double t : times) {
        TimedSnapshot entry;
        entry.requested_time = t;
        entry.target_step = model_time_to_step(t, n);
        snapshots_.push_back(std::move(entry));
    }
}

StepCount TimedSnapshotRecorder::next_due() const noexcept {
    return captured_ < snapshots_.size() ? snapshots_[captured_].target_step
                                         : no_deadline;
}

void TimedSnapshotRecorder::observe(const Simulation& sim) {
    while (captured_ < snapshots_.size() &&
           sim.steps() >= snapshots_[captured_].target_step) {
        TimedSnapshot& entry = snapshots_[captured_];
        // Consecutive points collapsing to the same step share one census.
        if (captured_ > 0 && snapshots_[captured_ - 1].reached &&
            snapshots_[captured_ - 1].snapshot.step == sim.steps()) {
            entry.snapshot = snapshots_[captured_ - 1].snapshot;
        } else {
            entry.snapshot = sim.state_counts();
        }
        entry.reached = true;
        ++captured_;
    }
}

void TimedSnapshotRecorder::finish(const Simulation& sim) {
    observe(sim);
    if (captured_ == snapshots_.size()) return;
    // Unreached points inherit the end-of-run configuration (the deadline
    // view for absorbing protocols), marked reached = false.
    const ConfigurationSnapshot final_census = sim.state_counts();
    while (captured_ < snapshots_.size()) {
        snapshots_[captured_].snapshot = final_census;
        snapshots_[captured_].reached = false;
        ++captured_;
    }
}

void TimedSnapshotRecorder::write_csv(std::ostream& out) const {
    write_timed_snapshots_csv(out, snapshots_);
}

void write_timed_snapshots_csv(std::ostream& out,
                               const std::vector<TimedSnapshot>& snapshots) {
    out << "requested_time,step,state_key,count,role\n";
    for (const TimedSnapshot& entry : snapshots) {
        for (const StateCount& sc : entry.snapshot.counts) {
            out << entry.requested_time << ',' << entry.snapshot.step << ',' << sc.key
                << ',' << sc.count << ',' << to_string(sc.role) << '\n';
        }
    }
}

void write_timed_snapshots_csv(const std::string& path,
                               const std::vector<TimedSnapshot>& snapshots) {
    std::ofstream out(path);
    require(out.good(), "cannot open snapshot file for writing: " + path);
    write_timed_snapshots_csv(out, snapshots);
    out.flush();
    require(out.good(), "failed writing snapshot file: " + path);
}

// --- RecoveryObserver -------------------------------------------------------

RecoveryObserver::RecoveryObserver(std::size_t n0) : n0_(n0) {
    require(n0 >= 1, "recovery observer needs the initial population size");
}

void RecoveryObserver::observe(const Simulation& sim) {
    // Open a record for every fault applied since the last observation.
    // Silence faults freeze the configuration rather than perturbing it, so
    // they have no recovery to measure.
    while (tracked_ < sim.faults_applied()) {
        const Simulation::ScheduledFault& fault = sim.scheduled_fault(tracked_);
        if (fault.action.kind != FaultKind::silence) {
            RecoveryRecord record;
            record.fault_index = tracked_;
            record.fault_step = fault.step;
            record.fault_time = fault.time;
            records_.push_back(record);
        }
        ++tracked_;
    }
    // Resolve every open record the current stabilisation covers. The
    // engine's stabilisation step re-anchors on each fault, so a value at or
    // after a record's fault step is that fault's recovery point; faults that
    // overlapped (a second hit before the first recovered) resolve together.
    const std::optional<StepCount> stab = sim.stabilization_step();
    if (!stab) return;
    for (RecoveryRecord& record : records_) {
        if (!record.recovery_step && *stab >= record.fault_step) {
            record.recovery_step = *stab;
        }
    }
}

void RecoveryObserver::finish(const Simulation& sim) { observe(sim); }

}  // namespace ppsim
