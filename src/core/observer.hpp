/// \file observer.hpp
/// \brief Concrete simulation observers: leader-count/state-count trajectory
/// recording, periodic full-configuration snapshots, and convergence
/// milestone tracking. All of them observe at a step cadence the caller
/// picks, through the chunked run loop in simulation.hpp — never inside the
/// engines' per-interaction hot paths.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "simulation.hpp"

namespace ppsim {

/// One sample of a recorded trajectory.
struct TrajectoryPoint {
    StepCount step = 0;            ///< interactions executed at the sample
    double parallel_time = 0.0;    ///< step / n
    std::size_t leader_count = 0;  ///< leaders at the sample
    std::size_t live_states = 0;   ///< distinct occupied states (0 if not recorded)
};

/// Records a (step, leader count, live-state count) time series every
/// `stride` interactions, plus the initial and final configurations of each
/// run. On the batched engine a sample costs O(#states); recording the
/// live-state census on the agent engine costs O(n) per sample, so it can
/// be disabled for large-n agent runs.
class TrajectoryRecorder final : public SimulationObserver {
public:
    /// `stride` = distance between samples in interactions (≥ 1);
    /// `record_live_states` additionally tracks the distinct-state census.
    explicit TrajectoryRecorder(StepCount stride, bool record_live_states = true);

    /// Recorder sampling every `units` of parallel time for population `n`.
    [[nodiscard]] static TrajectoryRecorder every_parallel_time(
        double units, std::size_t n, bool record_live_states = true);

    [[nodiscard]] StepCount next_due() const noexcept override { return next_; }
    void observe(const Simulation& sim) override;
    void finish(const Simulation& sim) override;

    [[nodiscard]] const std::vector<TrajectoryPoint>& points() const noexcept {
        return points_;
    }
    [[nodiscard]] StepCount stride() const noexcept { return stride_; }

    /// Hands the recorded series out (recorder resets to empty).
    [[nodiscard]] std::vector<TrajectoryPoint> take_points();

    /// Writes the series as CSV: step,parallel_time,leader_count,live_states.
    /// (Delegates to the free write_trajectory_csv — one schema definition.)
    void write_csv(std::ostream& out) const;

private:
    void record(const Simulation& sim);

    StepCount stride_;
    StepCount next_ = 0;
    bool record_live_states_;
    std::vector<TrajectoryPoint> points_;
};

/// Writes a trajectory as CSV (step,parallel_time,leader_count,live_states)
/// — the single definition of the trajectory schema. The path overload
/// throws on I/O failure.
void write_trajectory_csv(std::ostream& out,
                          const std::vector<TrajectoryPoint>& points);
void write_trajectory_csv(const std::string& path,
                          const std::vector<TrajectoryPoint>& points);

/// Records a full configuration snapshot (state-count census) every
/// `stride` interactions. Each snapshot is O(#states) on the batched engine
/// and O(n) on the agent engine — prefer the batched engine at large n.
class SnapshotRecorder final : public SimulationObserver {
public:
    explicit SnapshotRecorder(StepCount stride);

    [[nodiscard]] StepCount next_due() const noexcept override { return next_; }
    void observe(const Simulation& sim) override;
    void finish(const Simulation& sim) override;

    [[nodiscard]] const std::vector<ConfigurationSnapshot>& snapshots() const noexcept {
        return snapshots_;
    }

private:
    void record(const Simulation& sim);

    StepCount stride_;
    StepCount next_ = 0;
    std::vector<ConfigurationSnapshot> snapshots_;
};

/// Watches the leader census fall and records the first observed step at
/// which it reached each of a set of descending thresholds (n/2, √n, …, 1).
/// Milestones are detected at `stride` granularity: the recorded step is
/// the first *observation* at or below the threshold, which overshoots the
/// true crossing by at most one stride.
class ConvergenceObserver final : public SimulationObserver {
public:
    ConvergenceObserver(std::vector<std::size_t> thresholds, StepCount stride);

    /// The default milestone ladder for population n:
    /// n/2, n/4, …, down to 2, then 1.
    [[nodiscard]] static std::vector<std::size_t> halving_thresholds(std::size_t n);

    [[nodiscard]] StepCount next_due() const noexcept override { return next_; }
    void observe(const Simulation& sim) override;

    /// First observed step with leader count ≤ `threshold`; unset when the
    /// run never got there (or the threshold was not configured).
    [[nodiscard]] std::optional<StepCount> first_step_at_or_below(
        std::size_t threshold) const;

    [[nodiscard]] const std::vector<std::size_t>& thresholds() const noexcept {
        return thresholds_;
    }

private:
    std::vector<std::size_t> thresholds_;            ///< sorted descending
    std::vector<std::optional<StepCount>> reached_;  ///< parallel to thresholds_
    StepCount stride_;
    StepCount next_ = 0;
};

}  // namespace ppsim
