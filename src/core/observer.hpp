/// \file observer.hpp
/// \brief Concrete simulation observers: leader-count/state-count trajectory
/// recording, periodic full-configuration snapshots, convergence milestone
/// tracking, and time-driven observation (a one-shot model-time deadline and
/// snapshots at a list of model-time points). All of them observe at step
/// boundaries the caller picks, through the chunked run loop in
/// simulation.hpp — never inside the engines' per-interaction hot paths.
///
/// **Model time.** The time-driven observers take their points in parallel
/// time (the paper's unit: steps / n) and convert them to absolute step
/// indices at construction — one unit of model time is n interactions.
/// Because the run layer slices the step budget exactly at observer
/// deadlines and every engine clamps its rounds to the requested chunk
/// (batches, leaps and geometric skips included), a time-driven observer
/// sees the configuration at *exactly* its deadline step, on every engine.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "simulation.hpp"

namespace ppsim {

/// One sample of a recorded trajectory.
struct TrajectoryPoint {
    StepCount step = 0;            ///< interactions executed at the sample
    double parallel_time = 0.0;    ///< step / n
    std::size_t leader_count = 0;  ///< leaders at the sample
    std::size_t live_states = 0;   ///< distinct occupied states (0 if not recorded)
};

/// Records a (step, leader count, live-state count) time series every
/// `stride` interactions, plus the initial and final configurations of each
/// run. On the batched engine a sample costs O(#states); recording the
/// live-state census on the agent engine costs O(n) per sample, so it can
/// be disabled for large-n agent runs.
class TrajectoryRecorder final : public SimulationObserver {
public:
    /// `stride` = distance between samples in interactions (≥ 1);
    /// `record_live_states` additionally tracks the distinct-state census.
    explicit TrajectoryRecorder(StepCount stride, bool record_live_states = true);

    /// Recorder sampling every `units` of parallel time for population `n`.
    [[nodiscard]] static TrajectoryRecorder every_parallel_time(
        double units, std::size_t n, bool record_live_states = true);

    [[nodiscard]] StepCount next_due() const noexcept override { return next_; }
    void observe(const Simulation& sim) override;
    void finish(const Simulation& sim) override;
    void save_state(CheckpointWriter& w) const override;
    void restore_state(CheckpointReader& r) override;

    [[nodiscard]] const std::vector<TrajectoryPoint>& points() const noexcept {
        return points_;
    }
    [[nodiscard]] StepCount stride() const noexcept { return stride_; }

    /// Hands the recorded series out (recorder resets to empty).
    [[nodiscard]] std::vector<TrajectoryPoint> take_points();

    /// Writes the series as CSV: step,parallel_time,leader_count,live_states.
    /// (Delegates to the free write_trajectory_csv — one schema definition.)
    void write_csv(std::ostream& out) const;

private:
    void record(const Simulation& sim);

    StepCount stride_;
    StepCount next_ = 0;
    bool record_live_states_;
    std::vector<TrajectoryPoint> points_;
};

/// Writes a trajectory as CSV (step,parallel_time,leader_count,live_states)
/// — the single definition of the trajectory schema. The path overload
/// throws on I/O failure.
void write_trajectory_csv(std::ostream& out,
                          const std::vector<TrajectoryPoint>& points);
void write_trajectory_csv(const std::string& path,
                          const std::vector<TrajectoryPoint>& points);

/// Records a full configuration snapshot (state-count census) every
/// `stride` interactions. Each snapshot is O(#states) on the batched engine
/// and O(n) on the agent engine — prefer the batched engine at large n.
class SnapshotRecorder final : public SimulationObserver {
public:
    explicit SnapshotRecorder(StepCount stride);

    [[nodiscard]] StepCount next_due() const noexcept override { return next_; }
    void observe(const Simulation& sim) override;
    void finish(const Simulation& sim) override;
    void save_state(CheckpointWriter& w) const override;
    void restore_state(CheckpointReader& r) override;

    [[nodiscard]] const std::vector<ConfigurationSnapshot>& snapshots() const noexcept {
        return snapshots_;
    }

private:
    void record(const Simulation& sim);

    StepCount stride_;
    StepCount next_ = 0;
    std::vector<ConfigurationSnapshot> snapshots_;
};

/// Watches the leader census fall and records the first observed step at
/// which it reached each of a set of descending thresholds (n/2, √n, …, 1).
/// Milestones are detected at `stride` granularity: the recorded step is
/// the first *observation* at or below the threshold, which overshoots the
/// true crossing by at most one stride.
class ConvergenceObserver final : public SimulationObserver {
public:
    ConvergenceObserver(std::vector<std::size_t> thresholds, StepCount stride);

    /// The default milestone ladder for population n:
    /// n/2, n/4, …, down to 2, then 1.
    [[nodiscard]] static std::vector<std::size_t> halving_thresholds(std::size_t n);

    [[nodiscard]] StepCount next_due() const noexcept override { return next_; }
    void observe(const Simulation& sim) override;
    void save_state(CheckpointWriter& w) const override;
    void restore_state(CheckpointReader& r) override;

    /// First observed step with leader count ≤ `threshold`; unset when the
    /// run never got there (or the threshold was not configured).
    [[nodiscard]] std::optional<StepCount> first_step_at_or_below(
        std::size_t threshold) const;

    [[nodiscard]] const std::vector<std::size_t>& thresholds() const noexcept {
        return thresholds_;
    }

private:
    std::vector<std::size_t> thresholds_;            ///< sorted descending
    std::vector<std::optional<StepCount>> reached_;  ///< parallel to thresholds_
    StepCount stride_;
    StepCount next_ = 0;
};

/// What a DeadlineObserver saw. Exactly one report is produced per run:
/// at the deadline step when the run got there, or at run end when the run
/// finished first (`reached_deadline` distinguishes the two — for absorbing
/// protocols a run that stabilised before the deadline holds its final
/// configuration through it, so the end-of-run census *is* the deadline
/// view).
struct DeadlineReport {
    StepCount step = 0;             ///< interactions executed at the report
    double parallel_time = 0.0;     ///< step / n
    std::size_t leader_count = 0;   ///< leaders at the report
    std::size_t live_states = 0;    ///< distinct occupied states
    bool reached_deadline = false;  ///< the run reached the deadline step
    bool stabilized = false;        ///< single leader at/before the report
};

/// One-shot observer answering "what did the population look like at model
/// time T?": fires exactly once, at the first run boundary at or past step
/// ⌈T·n⌉ (= exactly that step under the run layer's deadline slicing), and
/// records a DeadlineReport. A deadline of 0 reports the initial
/// configuration, before any interaction. If the run ends first
/// (stabilisation or budget), `finish` records the end-of-run state with
/// `reached_deadline = false`. The CLI flag `ppsim_sim --deadline` and
/// `SweepConfig::deadline_time` build on this observer.
class DeadlineObserver final : public SimulationObserver {
public:
    /// Deadline at model time `model_time` (parallel-time units, ≥ 0) for a
    /// population of n agents: the deadline step is ⌈model_time · n⌉.
    DeadlineObserver(double model_time, std::size_t n);

    /// Deadline at an absolute interaction index.
    [[nodiscard]] static DeadlineObserver at_step(StepCount step);

    [[nodiscard]] StepCount next_due() const noexcept override;
    void observe(const Simulation& sim) override;
    void finish(const Simulation& sim) override;
    void save_state(CheckpointWriter& w) const override;
    void restore_state(CheckpointReader& r) override;

    /// The absolute step index the deadline converts to.
    [[nodiscard]] StepCount deadline_step() const noexcept { return deadline_; }

    /// The report; unset until the deadline (or run end) was observed.
    [[nodiscard]] const std::optional<DeadlineReport>& report() const noexcept {
        return report_;
    }

private:
    explicit DeadlineObserver(StepCount deadline_step);

    void record(const Simulation& sim, bool reached);

    StepCount deadline_;
    std::optional<DeadlineReport> report_;
};

/// One captured timed snapshot: the model-time point asked for and the full
/// configuration census recorded for it.
struct TimedSnapshot {
    double requested_time = 0.0;  ///< model-time point (parallel-time units)
    StepCount target_step = 0;    ///< ⌈requested_time · n⌉
    bool reached = false;         ///< captured at its step (vs at run end)
    ConfigurationSnapshot snapshot;
};

/// Records a full configuration snapshot at each of a list of model-time
/// points (the time-driven sibling of the stride-based SnapshotRecorder).
/// Points are sorted ascending at construction; each is captured at exactly
/// its step under the run layer's deadline slicing. Points the run never
/// reaches (it stabilised or exhausted its budget first) are filled with the
/// end-of-run configuration and marked `reached = false` — the correct
/// deadline view for absorbing protocols, a documented approximation for
/// the loosely-stabilising baseline. Behind `ppsim_sim --snapshot-at`.
class TimedSnapshotRecorder final : public SimulationObserver {
public:
    /// \param times  model-time points (parallel-time units, each ≥ 0)
    /// \param n      population size (converts times to steps)
    TimedSnapshotRecorder(std::vector<double> times, std::size_t n);

    [[nodiscard]] StepCount next_due() const noexcept override;
    void observe(const Simulation& sim) override;
    void finish(const Simulation& sim) override;
    void save_state(CheckpointWriter& w) const override;
    void restore_state(CheckpointReader& r) override;

    /// Captured snapshots, one per requested point, in ascending time order.
    /// Entries past `captured_count()` are not yet recorded.
    [[nodiscard]] const std::vector<TimedSnapshot>& snapshots() const noexcept {
        return snapshots_;
    }

    /// Number of leading entries of `snapshots()` already captured.
    [[nodiscard]] std::size_t captured_count() const noexcept { return captured_; }

    /// Writes the captured snapshots in long CSV form:
    /// requested_time,step,state_key,count,role — one row per (point, state).
    void write_csv(std::ostream& out) const;

private:
    std::vector<TimedSnapshot> snapshots_;  ///< sorted by requested_time
    std::size_t captured_ = 0;              ///< entries recorded so far
};

/// Writes timed snapshots as CSV (the single definition of the schema:
/// requested_time,step,state_key,count,role). The path overload throws on
/// I/O failure.
void write_timed_snapshots_csv(std::ostream& out,
                               const std::vector<TimedSnapshot>& snapshots);
void write_timed_snapshots_csv(const std::string& path,
                               const std::vector<TimedSnapshot>& snapshots);

/// One fault's recovery record: when the fault fired and when (if ever) the
/// population was next stabilised on a single leader at or after it.
struct RecoveryRecord {
    std::size_t fault_index = 0;  ///< index into the simulation's fault plan
    StepCount fault_step = 0;     ///< absolute step the fault fired at
    double fault_time = 0.0;      ///< the plan's model time (units of n₀)
    std::optional<StepCount> recovery_step;  ///< first stabilisation ≥ fault_step

    /// Recovery span in parallel time (units of n₀); unset while unrecovered.
    [[nodiscard]] std::optional<double> recovery_time(std::size_t n0) const noexcept {
        if (!recovery_step) return std::nullopt;
        return to_parallel_time(*recovery_step - fault_step, n0);
    }
};

/// Measures time-to-re-stabilisation after each injected fault: one record
/// per non-silence fault, resolved when the engine next reports a
/// stabilisation step at or after the fault. Needs no deadline of its own —
/// the run layer already slices chunks at every fault step, so this observer
/// sees each fault the moment it applies. Overlapping faults (a second fault
/// before the first recovered) both resolve at the same later stabilisation.
/// Behind `SweepConfig::fault_plan` and `ppsim_sim --inject`.
class RecoveryObserver final : public SimulationObserver {
public:
    /// \param n0  initial population size (the model-time unit of the plan)
    explicit RecoveryObserver(std::size_t n0);

    [[nodiscard]] StepCount next_due() const noexcept override { return no_deadline; }
    void observe(const Simulation& sim) override;
    void finish(const Simulation& sim) override;
    void save_state(CheckpointWriter& w) const override;
    void restore_state(CheckpointReader& r) override;

    /// One record per applied non-silence fault, in firing order.
    [[nodiscard]] const std::vector<RecoveryRecord>& records() const noexcept {
        return records_;
    }

    /// The n₀ the observer was constructed with.
    [[nodiscard]] std::size_t initial_population() const noexcept { return n0_; }

private:
    std::size_t n0_;
    std::size_t tracked_ = 0;  ///< scheduled faults already turned into records
    std::vector<RecoveryRecord> records_;
};

}  // namespace ppsim
