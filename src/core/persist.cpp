#include "persist.hpp"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "calibration.hpp"  // cpu_signature()

namespace ppsim {

namespace {

constexpr std::uint32_t schedule_magic = 0x50505343;    // "PPSC"
constexpr std::uint32_t config_magic = 0x50504346;      // "PPCF"
constexpr std::uint32_t checkpoint_magic = 0x5050434B;  // "PPCK"
constexpr std::uint32_t format_version = 1;
constexpr std::uint32_t checkpoint_format_version = 1;

void write_u32(std::ofstream& out, std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_u64(std::ofstream& out, std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::ifstream& in) {
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    require(in.good(), "truncated file while reading header");
    return v;
}

std::uint64_t read_u64(std::ifstream& in) {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    require(in.good(), "truncated file while reading header");
    return v;
}

void write_string(std::ofstream& out, std::string_view s) {
    write_u64(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& in) {
    const std::uint64_t len = read_u64(in);
    require(len < 4096, "implausible string length");
    std::string s(len, '\0');
    in.read(s.data(), static_cast<std::streamsize>(len));
    require(in.good(), "truncated string payload");
    return s;
}

std::ofstream open_for_write(const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    require(out.good(), "cannot open " + path + " for writing");
    return out;
}

std::ifstream open_for_read(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    require(in.good(), "cannot open " + path + " for reading");
    return in;
}

}  // namespace

void save_schedule(const std::string& path, const RecordedSchedule& schedule) {
    std::ofstream out = open_for_write(path);
    write_u32(out, schedule_magic);
    write_u32(out, format_version);
    write_u64(out, schedule.size());
    for (const Interaction& ia : schedule.view()) {
        write_u32(out, ia.initiator);
        write_u32(out, ia.responder);
    }
    require(out.good(), "I/O error while writing " + path);
}

RecordedSchedule load_schedule(const std::string& path) {
    std::ifstream in = open_for_read(path);
    require(read_u32(in) == schedule_magic, path + " is not a ppsim schedule file");
    require(read_u32(in) == format_version, "unsupported schedule format version");
    const std::uint64_t count = read_u64(in);
    RecordedSchedule schedule;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint32_t a = read_u32(in);
        const std::uint32_t b = read_u32(in);
        schedule.append(a, b);
    }
    return schedule;
}

void save_configuration(const std::string& path, const ConfigurationDump& dump) {
    require(dump.states.size() == dump.agents * dump.state_size,
            "inconsistent configuration dump payload");
    std::ofstream out = open_for_write(path);
    write_u32(out, config_magic);
    write_u32(out, format_version);
    write_u64(out, dump.protocol_name.size());
    out.write(dump.protocol_name.data(),
              static_cast<std::streamsize>(dump.protocol_name.size()));
    write_u64(out, dump.state_size);
    write_u64(out, dump.agents);
    out.write(reinterpret_cast<const char*>(dump.states.data()),
              static_cast<std::streamsize>(dump.states.size()));
    require(out.good(), "I/O error while writing " + path);
}

ConfigurationDump load_configuration(const std::string& path) {
    std::ifstream in = open_for_read(path);
    require(read_u32(in) == config_magic, path + " is not a ppsim configuration file");
    require(read_u32(in) == format_version, "unsupported configuration format version");
    ConfigurationDump dump;
    const std::uint64_t name_len = read_u64(in);
    require(name_len < 4096, "implausible protocol name length");
    dump.protocol_name.resize(name_len);
    in.read(dump.protocol_name.data(), static_cast<std::streamsize>(name_len));
    dump.state_size = read_u64(in);
    dump.agents = read_u64(in);
    require(dump.state_size > 0 && dump.state_size <= 4096, "implausible state size");
    dump.states.resize(dump.agents * dump.state_size);
    in.read(reinterpret_cast<char*>(dump.states.data()),
            static_cast<std::streamsize>(dump.states.size()));
    require(in.good(), "truncated configuration payload");
    return dump;
}

std::uint64_t checkpoint_checksum(std::string_view payload) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
    for (const char c : payload) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;  // FNV prime
    }
    return h;
}

void save_checkpoint(const std::string& path, const CheckpointHeader& header,
                     const std::string& payload) {
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
    }
    // Temp-file-plus-rename: a crash mid-write (the very event checkpoints
    // exist for) or a concurrent reader can never observe a torn file.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<std::uint64_t>(::getpid()));
    {
        std::ofstream out = open_for_write(tmp);
        write_u32(out, checkpoint_magic);
        write_u32(out, checkpoint_format_version);
        write_string(out, library_version);
        write_string(out, cpu_signature());
        write_string(out, header.protocol);
        write_string(out, header.engine);
        write_string(out, header.batch_mode);
        write_u64(out, header.population);
        write_u64(out, header.seed);
        write_u64(out, header.threads);
        write_u64(out, header.step);
        write_u64(out, payload.size());
        out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        write_u64(out, checkpoint_checksum(payload));
        require(out.good(), "I/O error while writing " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        require(false, "cannot move checkpoint into place at " + path);
    }
}

CheckpointHeader load_checkpoint(const std::string& path, std::string& payload) {
    std::ifstream in = open_for_read(path);
    require(read_u32(in) == checkpoint_magic, path + " is not a ppsim checkpoint file");
    require(read_u32(in) == checkpoint_format_version,
            "unsupported checkpoint format version in " + path);
    require(read_string(in) == library_version,
            "checkpoint " + path + " was written by another library version");
    require(read_string(in) == cpu_signature(),
            "checkpoint " + path +
                " was written on another machine (CPU signature mismatch); "
                "bit-identical resume is only defined on the original machine");
    CheckpointHeader header;
    header.protocol = read_string(in);
    header.engine = read_string(in);
    header.batch_mode = read_string(in);
    header.population = read_u64(in);
    header.seed = read_u64(in);
    header.threads = read_u64(in);
    header.step = read_u64(in);
    const std::uint64_t payload_size = read_u64(in);
    payload.resize(payload_size);
    in.read(payload.data(), static_cast<std::streamsize>(payload_size));
    require(in.good() && static_cast<std::uint64_t>(in.gcount()) == payload_size,
            "truncated checkpoint payload in " + path);
    const std::uint64_t stored = read_u64(in);
    require(stored == checkpoint_checksum(payload),
            "checkpoint payload checksum mismatch in " + path +
                " (file corrupted); refusing to resume");
    return header;
}

}  // namespace ppsim
