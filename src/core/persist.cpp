#include "persist.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

namespace ppsim {

namespace {

constexpr std::uint32_t schedule_magic = 0x50505343;  // "PPSC"
constexpr std::uint32_t config_magic = 0x50504346;    // "PPCF"
constexpr std::uint32_t format_version = 1;

void write_u32(std::ofstream& out, std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_u64(std::ofstream& out, std::uint64_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::ifstream& in) {
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    require(in.good(), "truncated file while reading header");
    return v;
}

std::uint64_t read_u64(std::ifstream& in) {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof v);
    require(in.good(), "truncated file while reading header");
    return v;
}

std::ofstream open_for_write(const std::string& path) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    require(out.good(), "cannot open " + path + " for writing");
    return out;
}

std::ifstream open_for_read(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    require(in.good(), "cannot open " + path + " for reading");
    return in;
}

}  // namespace

void save_schedule(const std::string& path, const RecordedSchedule& schedule) {
    std::ofstream out = open_for_write(path);
    write_u32(out, schedule_magic);
    write_u32(out, format_version);
    write_u64(out, schedule.size());
    for (const Interaction& ia : schedule.view()) {
        write_u32(out, ia.initiator);
        write_u32(out, ia.responder);
    }
    require(out.good(), "I/O error while writing " + path);
}

RecordedSchedule load_schedule(const std::string& path) {
    std::ifstream in = open_for_read(path);
    require(read_u32(in) == schedule_magic, path + " is not a ppsim schedule file");
    require(read_u32(in) == format_version, "unsupported schedule format version");
    const std::uint64_t count = read_u64(in);
    RecordedSchedule schedule;
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint32_t a = read_u32(in);
        const std::uint32_t b = read_u32(in);
        schedule.append(a, b);
    }
    return schedule;
}

void save_configuration(const std::string& path, const ConfigurationDump& dump) {
    require(dump.states.size() == dump.agents * dump.state_size,
            "inconsistent configuration dump payload");
    std::ofstream out = open_for_write(path);
    write_u32(out, config_magic);
    write_u32(out, format_version);
    write_u64(out, dump.protocol_name.size());
    out.write(dump.protocol_name.data(),
              static_cast<std::streamsize>(dump.protocol_name.size()));
    write_u64(out, dump.state_size);
    write_u64(out, dump.agents);
    out.write(reinterpret_cast<const char*>(dump.states.data()),
              static_cast<std::streamsize>(dump.states.size()));
    require(out.good(), "I/O error while writing " + path);
}

ConfigurationDump load_configuration(const std::string& path) {
    std::ifstream in = open_for_read(path);
    require(read_u32(in) == config_magic, path + " is not a ppsim configuration file");
    require(read_u32(in) == format_version, "unsupported configuration format version");
    ConfigurationDump dump;
    const std::uint64_t name_len = read_u64(in);
    require(name_len < 4096, "implausible protocol name length");
    dump.protocol_name.resize(name_len);
    in.read(dump.protocol_name.data(), static_cast<std::streamsize>(name_len));
    dump.state_size = read_u64(in);
    dump.agents = read_u64(in);
    require(dump.state_size > 0 && dump.state_size <= 4096, "implausible state size");
    dump.states.resize(dump.agents * dump.state_size);
    in.read(reinterpret_cast<char*>(dump.states.data()),
            static_cast<std::streamsize>(dump.states.size()));
    require(in.good(), "truncated configuration payload");
    return dump;
}

}  // namespace ppsim
