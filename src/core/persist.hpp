/// \file persist.hpp
/// \brief Persistence of executions: schedules and configurations round-trip
/// to disk, so a run can be archived, shared and replayed exactly — the
/// "repro bundle" workflow for bug reports and paper artefacts.
///
/// Format: a small self-describing binary container (magic, version, typed
/// header, raw payload). Integers are little-endian fixed-width; states are
/// raw trivially-copyable bytes, so a bundle is portable across builds of
/// the same protocol on the same ABI (the protocol name and state size are
/// embedded and validated on load).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common.hpp"
#include "population.hpp"
#include "protocol.hpp"
#include "scheduler.hpp"

namespace ppsim {

/// Writes a recorded schedule to `path`. Throws on I/O failure.
void save_schedule(const std::string& path, const RecordedSchedule& schedule);

/// Reads a schedule previously written by save_schedule.
[[nodiscard]] RecordedSchedule load_schedule(const std::string& path);

/// A type-erased configuration dump: protocol identity + raw agent states.
struct ConfigurationDump {
    std::string protocol_name;
    std::size_t state_size = 0;
    std::size_t agents = 0;
    std::vector<std::byte> states;  ///< agents × state_size raw bytes
};

/// Captures the configuration of a population of trivially-copyable states.
template <typename State>
[[nodiscard]] ConfigurationDump dump_configuration(const Population<State>& population,
                                                   std::string protocol_name) {
    static_assert(std::is_trivially_copyable_v<State>);
    ConfigurationDump dump;
    dump.protocol_name = std::move(protocol_name);
    dump.state_size = sizeof(State);
    dump.agents = population.size();
    dump.states.resize(dump.agents * dump.state_size);
    std::memcpy(dump.states.data(), population.states().data(), dump.states.size());
    return dump;
}

/// Restores a previously dumped configuration into a population. The dump
/// must match the protocol name, state size and population size exactly.
template <typename State>
void restore_configuration(const ConfigurationDump& dump, Population<State>& population,
                           std::string_view protocol_name) {
    static_assert(std::is_trivially_copyable_v<State>);
    require(dump.protocol_name == protocol_name,
            "configuration dump belongs to protocol '" + dump.protocol_name + "'");
    require(dump.state_size == sizeof(State), "state size mismatch in dump");
    require(dump.agents == population.size(), "population size mismatch in dump");
    std::memcpy(population.states().data(), dump.states.data(), dump.states.size());
}

/// Writes a configuration dump to `path`.
void save_configuration(const std::string& path, const ConfigurationDump& dump);

/// Reads a configuration dump written by save_configuration.
[[nodiscard]] ConfigurationDump load_configuration(const std::string& path);

// --- checkpoints ("PPCK") ---------------------------------------------------

/// Identity of a checkpointed run: everything `--resume` needs to rebuild
/// the simulation through the registry before handing the payload to
/// `Simulation::restore_checkpoint`. Engine and batch mode are stored as
/// their table names (engine.hpp / batch_pairing.hpp) so this header stays
/// independent of the enum layouts.
struct CheckpointHeader {
    std::string protocol;          ///< registry name
    std::string engine;            ///< engine_table name ("agent", "hybrid", ...)
    std::string batch_mode;        ///< batch_mode_table name ("auto", ...)
    std::uint64_t population = 0;  ///< n the simulation was constructed with
    std::uint64_t seed = 0;        ///< root seed
    std::uint64_t threads = 1;     ///< count-engine worker threads
    std::uint64_t step = 0;        ///< step the checkpoint was taken at (informational)
};

/// FNV-1a 64-bit hash — the checkpoint payload checksum.
[[nodiscard]] std::uint64_t checkpoint_checksum(std::string_view payload) noexcept;

/// Writes a checkpoint container: validated header (magic "PPCK", format
/// version, library version, CPU signature) plus the length-prefixed,
/// checksummed opaque payload produced by `Simulation::save_checkpoint`.
/// The write is atomic (temp file + rename), so a crash mid-write or a
/// concurrent reader can never observe a torn checkpoint.
void save_checkpoint(const std::string& path, const CheckpointHeader& header,
                     const std::string& payload);

/// Reads a checkpoint written by `save_checkpoint`, returning the header
/// and filling `payload`. Strict by design — unlike the calibration cache
/// (stale = silently re-probe), a checkpoint the user asked to resume from
/// must either load exactly or fail with a clear error: wrong magic,
/// unsupported format version, another library version, another CPU
/// signature (thread scheduling and libm differences void the bit-identical
/// resume contract across machines), truncation, or a payload checksum
/// mismatch all throw InvalidArgument. No partial state escapes.
[[nodiscard]] CheckpointHeader load_checkpoint(const std::string& path,
                                               std::string& payload);

}  // namespace ppsim
