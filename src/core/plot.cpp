#include "plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common.hpp"

namespace ppsim {

void AsciiPlot::add_series(PlotSeries series) {
    require(!series.x.empty(), "plot series must contain at least one point");
    require(series.x.size() == series.y.size(),
            "plot series needs equally many x and y values");
    series_.push_back(std::move(series));
}

std::string AsciiPlot::render(std::size_t width, std::size_t height) const {
    require(width >= 20 && height >= 5, "plot canvas too small");
    require(!series_.empty(), "nothing to plot");

    const auto tx = [this](double x) { return log2_x_ ? std::log2(x) : x; };

    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -std::numeric_limits<double>::infinity();
    double min_y = std::numeric_limits<double>::infinity();
    double max_y = -std::numeric_limits<double>::infinity();
    for (const PlotSeries& s : series_) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            min_x = std::min(min_x, tx(s.x[i]));
            max_x = std::max(max_x, tx(s.x[i]));
            min_y = std::min(min_y, s.y[i]);
            max_y = std::max(max_y, s.y[i]);
        }
    }
    // Degenerate ranges still render: pad them symmetrically.
    if (min_x == max_x) {
        min_x -= 1.0;
        max_x += 1.0;
    }
    if (min_y == max_y) {
        min_y -= 1.0;
        max_y += 1.0;
    }
    // Anchor the y axis at zero when the data lives near it — scaling plots
    // read better with an absolute origin.
    if (min_y > 0.0 && min_y < 0.5 * max_y) min_y = 0.0;

    std::vector<std::string> canvas(height, std::string(width, ' '));
    const auto col_of = [&](double x) {
        const double frac = (tx(x) - min_x) / (max_x - min_x);
        return std::min(width - 1, static_cast<std::size_t>(frac *
                                                            static_cast<double>(width - 1)));
    };
    const auto row_of = [&](double y) {
        const double frac = (y - min_y) / (max_y - min_y);
        const auto from_bottom =
            std::min(height - 1,
                     static_cast<std::size_t>(frac * static_cast<double>(height - 1)));
        return height - 1 - from_bottom;
    };
    for (const PlotSeries& s : series_) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            canvas[row_of(s.y[i])][col_of(s.x[i])] = s.glyph;
        }
    }

    std::ostringstream out;
    if (!title_.empty()) out << title_ << "\n";
    char label[64];
    std::snprintf(label, sizeof label, "%10.4g", max_y);
    out << label << " +" << canvas.front() << "\n";
    for (std::size_t r = 1; r + 1 < height; ++r) {
        out << std::string(10, ' ') << " |" << canvas[r] << "\n";
    }
    std::snprintf(label, sizeof label, "%10.4g", min_y);
    out << label << " +" << canvas.back() << "\n";
    out << std::string(11, ' ') << '+' << std::string(width, '-') << "\n";
    std::snprintf(label, sizeof label, "%-.4g", log2_x_ ? std::exp2(min_x) : min_x);
    std::string axis_line = std::string(12, ' ') + label;
    std::snprintf(label, sizeof label, "%.4g", log2_x_ ? std::exp2(max_x) : max_x);
    const std::string right(label);
    const std::size_t pad = 12 + width > axis_line.size() + right.size()
                                ? 12 + width - axis_line.size() - right.size()
                                : 1;
    axis_line += std::string(pad, ' ') + right;
    out << axis_line << "\n";
    out << std::string(12, ' ') << x_label_ << (log2_x_ ? " (log2 axis)" : "")
        << "   [y: " << y_label_ << "]\n";
    for (const PlotSeries& s : series_) {
        out << std::string(12, ' ') << s.glyph << " = " << s.name << "\n";
    }
    return out.str();
}

}  // namespace ppsim
