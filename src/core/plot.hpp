/// \file plot.hpp
/// \brief Terminal plotting: renders (x, y) series as an ASCII chart so the
/// bench binaries can show the paper's "figures" inline, without external
/// plotting tooling.
#pragma once

#include <string>
#include <vector>

namespace ppsim {

/// One named data series of an AsciiPlot.
struct PlotSeries {
    std::string name;
    char glyph = '*';
    std::vector<double> x;
    std::vector<double> y;
};

/// A simple scatter/line chart rendered with ASCII characters.
///
///   AsciiPlot plot;
///   plot.set_x_label("log2(n)");
///   plot.add_series({"pll", 'p', xs, ys});
///   std::cout << plot.render(70, 20);
///
/// Axes auto-scale to the data; an optional log2 transform supports the
/// scaling plots of the reproduction (time vs log n). Overlapping points
/// render the glyph of the later-added series.
class AsciiPlot {
public:
    /// Adds a series; x and y must be equally long and non-empty.
    void add_series(PlotSeries series);

    void set_title(std::string title) { title_ = std::move(title); }
    void set_x_label(std::string label) { x_label_ = std::move(label); }
    void set_y_label(std::string label) { y_label_ = std::move(label); }

    /// Plot x on a log2 axis (useful when x spans octaves of n).
    void set_log2_x(bool enabled) { log2_x_ = enabled; }

    [[nodiscard]] std::size_t series_count() const noexcept { return series_.size(); }

    /// Renders a width×height character canvas with axes, tick labels and a
    /// legend line per series.
    [[nodiscard]] std::string render(std::size_t width = 72, std::size_t height = 20) const;

private:
    std::vector<PlotSeries> series_;
    std::string title_;
    std::string x_label_ = "x";
    std::string y_label_ = "y";
    bool log2_x_ = false;
};

}  // namespace ppsim
