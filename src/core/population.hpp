/// \file population.hpp
/// \brief Contiguous storage of agent states — the configuration C: V → Q.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common.hpp"

namespace ppsim {

/// A configuration of the population: one state per agent, stored
/// contiguously for cache-friendly access by the engine. `State` must be a
/// small trivially-copyable value (enforced at the protocol concept level).
template <typename State>
class Population {
public:
    /// Creates a population of `n` agents, all in `initial` — the paper's
    /// C_init where every agent is in state s_init.
    Population(std::size_t n, const State& initial)
        : states_(n, initial) {
        require(n >= 2, "population must contain at least two agents");
    }

    [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }

    [[nodiscard]] State& operator[](AgentId id) noexcept { return states_[id]; }
    [[nodiscard]] const State& operator[](AgentId id) const noexcept { return states_[id]; }

    [[nodiscard]] std::span<State> states() noexcept { return states_; }
    [[nodiscard]] std::span<const State> states() const noexcept { return states_; }

    /// Counts agents whose state satisfies `pred`.
    template <typename Pred>
    [[nodiscard]] std::size_t count_if(Pred pred) const {
        return static_cast<std::size_t>(
            std::count_if(states_.begin(), states_.end(), pred));
    }

    /// Resets every agent to `initial`.
    void reset(const State& initial) {
        std::fill(states_.begin(), states_.end(), initial);
    }

    /// Appends `k` agents in state `s` (fault injection: rejoin).
    void append(const State& s, std::size_t k) {
        states_.insert(states_.end(), k, s);
    }

    /// Removes agent `id` by swapping with the last agent and popping
    /// (fault injection: crash). Identities are not stable across removals
    /// — irrelevant under the uniform scheduler, which carries no
    /// per-agent state. May shrink the population below two; the engine
    /// guards its stepping paths for that degenerate case.
    void remove_swap(AgentId id) {
        states_[id] = states_.back();
        states_.pop_back();
    }

private:
    std::vector<State> states_;
};

}  // namespace ppsim
