/// \file protocol.hpp
/// \brief The protocol concept: what a population protocol looks like to the
/// simulation engine, plus a type-erased wrapper for runtime dispatch.
///
/// A protocol in the model is a tuple P(Q, s_init, T, Y, π_out). Here:
///  * `State`            is Q (a small trivially-copyable value),
///  * `initial_state()`  is s_init,
///  * `interact(a, b)`   is T applied to (initiator=a, responder=b) in place,
///  * `output(s)`        is π_out restricted to Y = {L, F}.
///
/// Transition functions are deterministic — every bit of randomness in the
/// model comes from the scheduler. Protocols that flip coins (PLL) do so by
/// reading their role (initiator vs responder) in the interaction, exactly as
/// the paper prescribes.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common.hpp"

namespace ppsim {

/// Compile-time interface for protocols usable with the templated engine.
template <typename P>
concept Protocol = requires(const P proto, typename P::State a, typename P::State b) {
    requires std::is_trivially_copyable_v<typename P::State>;
    { proto.initial_state() } -> std::same_as<typename P::State>;
    { proto.output(a) } -> std::same_as<Role>;
    { proto.interact(a, b) } -> std::same_as<void>;
    { proto.name() } -> std::convertible_to<std::string_view>;
};

/// Optional extension: protocols that can report an upper bound on the number
/// of distinct states an agent may ever be in (Lemma 3 style accounting).
template <typename P>
concept BoundedStateProtocol = Protocol<P> && requires(const P proto) {
    { proto.state_bound() } -> std::convertible_to<std::size_t>;
};

/// Optional extension: protocols whose ordered state pairs carry a relative
/// interaction rate — the reaction-rate generalisation of the uniform
/// scheduler. The **rate contract** (see docs/ARCHITECTURE.md):
///
///  * `rate(a, b)` is the Poisson-clock rate of an ordered agent pair in
///    states (initiator = a, responder = b), relative to the uniform model;
///  * rates depend only on the two states (never on time or identities) and
///    satisfy 0 ≤ rate(a, b) ≤ max_rate() for every reachable pair, with
///    max_rate() > 0;
///  * one *step* of the discrete chain is one tick of the uniform scheduler
///    at the maximum rate: a uniformly random ordered pair is drawn and its
///    transition fires with probability rate(a, b) / max_rate() — otherwise
///    the step is a null interaction (the pair met, nothing happened).
///
/// Every engine implements exactly this thinned chain, so step counts,
/// parallel time and stabilisation steps stay comparable across engines and
/// with unrated protocols (which are rate-1 everywhere: the thinning
/// probability is 1 and the model is the familiar uniform scheduler). The
/// Gillespie engine consumes rates directly as propensity weights
/// c_a·(c_b − [a = b])·rate(a, b); the agent and batched engines thin by
/// rejection against max_rate(). Cross-engine agreement is enforced by the
/// KS harness (tests/test_statistical.cpp).
template <typename P>
concept RatedProtocol = Protocol<P> &&
    requires(const P proto, typename P::State a, typename P::State b) {
        { proto.rate(a, b) } -> std::convertible_to<double>;
        { proto.max_rate() } -> std::convertible_to<double>;
    };

/// Rate of the ordered state pair (a, b) under `proto`; 1.0 for unrated
/// protocols. The one shared definition of the default.
template <Protocol P>
[[nodiscard]] constexpr double pair_rate_of(const P& proto, const typename P::State& a,
                                            const typename P::State& b) noexcept {
    if constexpr (RatedProtocol<P>) {
        return static_cast<double>(proto.rate(a, b));
    } else {
        (void)proto;
        (void)a;
        (void)b;
        return 1.0;
    }
}

/// The protocol's maximum pair rate; 1.0 for unrated protocols.
template <Protocol P>
[[nodiscard]] constexpr double max_rate_of(const P& proto) noexcept {
    if constexpr (RatedProtocol<P>) {
        return static_cast<double>(proto.max_rate());
    } else {
        (void)proto;
        return 1.0;
    }
}

/// Optional extension: protocols that can serialise a state into a canonical
/// 64-bit key, used by the reachable-state-space counter. The key must be
/// injective on reachable states.
template <typename P>
concept HashableStateProtocol = Protocol<P> &&
    requires(const P proto, typename P::State s) {
        { proto.state_key(s) } -> std::same_as<std::uint64_t>;
    };

/// Protocols whose states can be interned into dense ids (the requirement of
/// the count-based BatchedEngine): either the protocol supplies an injective
/// `state_key()`, or the state fits in 8 bytes so its raw bits are their own
/// key. Every protocol in the registry satisfies this.
template <typename P>
concept InternableProtocol =
    Protocol<P> && (HashableStateProtocol<P> || sizeof(typename P::State) <= 8);

/// Canonical 64-bit key of `s` under `proto`, injective on reachable states.
/// Single definition of the key logic, shared by the type-erased adapter and
/// the batched engine's state-interning layer.
template <Protocol P>
[[nodiscard]] std::uint64_t state_key_of(const P& proto,
                                         const typename P::State& s) noexcept {
    if constexpr (HashableStateProtocol<P>) {
        return proto.state_key(s);
    } else {
        // Fallback: states at most 8 bytes are their own key.
        static_assert(sizeof(typename P::State) <= 8,
                      "protocol must provide state_key() for states wider than 8 bytes");
        std::uint64_t key = 0;
        std::memcpy(&key, &s, sizeof(s));
        return key;
    }
}

/// Runtime (type-erased) view of a protocol over an opaque state buffer.
/// Used by the registry, the experiment driver and the examples, where the
/// protocol is chosen by name at runtime. The hot engine path stays templated.
class AnyProtocol {
public:
    virtual ~AnyProtocol() = default;

    /// Size in bytes of one agent state.
    [[nodiscard]] virtual std::size_t state_size() const noexcept = 0;

    /// Writes the initial state into `slot` (state_size() bytes).
    virtual void write_initial_state(std::byte* slot) const noexcept = 0;

    /// Applies the transition function to (initiator, responder) in place.
    virtual void interact(std::byte* initiator, std::byte* responder) const noexcept = 0;

    /// Output of the agent whose state is in `slot`.
    [[nodiscard]] virtual Role output(const std::byte* slot) const noexcept = 0;

    /// Canonical 64-bit key of the state (injective on reachable states).
    [[nodiscard]] virtual std::uint64_t state_key(const std::byte* slot) const noexcept = 0;

    /// Upper bound on distinct reachable states per agent, if the protocol
    /// declares one; 0 when unknown.
    [[nodiscard]] virtual std::size_t state_bound() const noexcept = 0;

    /// Interaction rate of the ordered state pair in (initiator, responder);
    /// 1.0 unless the protocol is rate-annotated (RatedProtocol).
    [[nodiscard]] virtual double pair_rate(const std::byte* initiator,
                                           const std::byte* responder) const noexcept = 0;

    /// Maximum pair rate (the rejection-thinning ceiling); 1.0 when unrated.
    [[nodiscard]] virtual double max_rate() const noexcept = 0;

    /// Protocol display name.
    [[nodiscard]] virtual std::string name() const = 0;
};

namespace detail {

/// Adapts a static Protocol to the AnyProtocol interface.
template <Protocol P>
class AnyProtocolAdapter final : public AnyProtocol {
public:
    explicit AnyProtocolAdapter(P proto) : proto_(std::move(proto)) {}

    [[nodiscard]] std::size_t state_size() const noexcept override {
        return sizeof(typename P::State);
    }

    void write_initial_state(std::byte* slot) const noexcept override {
        const auto s = proto_.initial_state();
        std::memcpy(slot, &s, sizeof(s));
    }

    void interact(std::byte* initiator, std::byte* responder) const noexcept override {
        typename P::State a;
        typename P::State b;
        std::memcpy(&a, initiator, sizeof(a));
        std::memcpy(&b, responder, sizeof(b));
        proto_.interact(a, b);
        std::memcpy(initiator, &a, sizeof(a));
        std::memcpy(responder, &b, sizeof(b));
    }

    [[nodiscard]] Role output(const std::byte* slot) const noexcept override {
        typename P::State s;
        std::memcpy(&s, slot, sizeof(s));
        return proto_.output(s);
    }

    [[nodiscard]] std::uint64_t state_key(const std::byte* slot) const noexcept override {
        typename P::State s;
        std::memcpy(&s, slot, sizeof(s));
        return state_key_of(proto_, s);
    }

    [[nodiscard]] std::size_t state_bound() const noexcept override {
        if constexpr (BoundedStateProtocol<P>) {
            return proto_.state_bound();
        } else {
            return 0;
        }
    }

    [[nodiscard]] double pair_rate(const std::byte* initiator,
                                   const std::byte* responder) const noexcept override {
        typename P::State a;
        typename P::State b;
        std::memcpy(&a, initiator, sizeof(a));
        std::memcpy(&b, responder, sizeof(b));
        return pair_rate_of(proto_, a, b);
    }

    [[nodiscard]] double max_rate() const noexcept override {
        return max_rate_of(proto_);
    }

    [[nodiscard]] std::string name() const override { return std::string(proto_.name()); }

private:
    P proto_;
};

}  // namespace detail

/// Wraps a statically-typed protocol into an AnyProtocol.
template <Protocol P>
[[nodiscard]] std::unique_ptr<AnyProtocol> erase_protocol(P proto) {
    return std::make_unique<detail::AnyProtocolAdapter<P>>(std::move(proto));
}

}  // namespace ppsim
