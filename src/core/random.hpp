/// \file random.hpp
/// \brief Pseudo-random number generation for the simulation engine.
///
/// The population-protocol model has a single source of randomness: the
/// uniformly random scheduler that picks an ordered pair of agents at every
/// step. All protocol transition functions are deterministic. A simulation's
/// statistical quality therefore rests entirely on the scheduler's PRNG.
///
/// We provide two generators:
///  * SplitMix64 — tiny, used for seeding and for cheap auxiliary streams;
///  * Xoshiro256pp (xoshiro256++) — the main generator: 256-bit state,
///    period 2^256 − 1, passes BigCrush, and supports `jump()` for creating
///    2^128-decorrelated parallel streams (one per worker thread).
///
/// Both satisfy the C++ UniformRandomBitGenerator concept so they compose
/// with <random> distributions, but hot paths use the bias-free bounded
/// sampling below (Lemire's method) instead of std::uniform_int_distribution,
/// whose implementation varies across standard libraries and would break
/// cross-platform reproducibility of seeded runs.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common.hpp"

namespace ppsim {

/// SplitMix64 generator (Steele, Lea, Flood 2014). Used to expand a single
/// 64-bit seed into larger seed material and as a cheap standalone stream.
class SplitMix64 {
public:
    using result_type = std::uint64_t;

    constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31U);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna 2019). The library's main generator.
class Xoshiro256pp {
public:
    using result_type = std::uint64_t;

    /// Seeds the four state words from a single 64-bit seed via SplitMix64,
    /// the seeding procedure recommended by the xoshiro authors.
    constexpr explicit Xoshiro256pp(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
        SplitMix64 sm(seed);
        for (auto& word : state_) word = sm();
        // An all-zero state is the one fixed point; SplitMix64 cannot emit
        // four zero words in a row, but guard anyway for safety.
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
    }

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17U;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Advances the state by 2^128 steps: calling jump() k times on copies of
    /// one generator yields k streams that never overlap in any feasible run.
    constexpr void jump() noexcept {
        constexpr std::array<std::uint64_t, 4> jump_poly = {
            0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
        std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
        for (std::uint64_t word : jump_poly) {
            for (unsigned bit = 0; bit < 64; ++bit) {
                if ((word & (1ULL << bit)) != 0) {
                    for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
                }
                (*this)();
            }
        }
        state_ = acc;
    }

    /// Returns a copy jumped `index + 1` times: stream #0, #1, ... for workers.
    [[nodiscard]] constexpr Xoshiro256pp split(unsigned index) const noexcept {
        Xoshiro256pp child = *this;
        for (unsigned i = 0; i <= index; ++i) child.jump();
        return child;
    }

    /// The raw 256-bit state, for checkpointing a stream position.
    [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state() const noexcept {
        return state_;
    }

    /// Restores a state captured by `state()`. An all-zero state is the
    /// generator's fixed point and can never be produced by it, so reject it.
    constexpr void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
        state_ = s;
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
    }

private:
    [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << static_cast<unsigned>(k)) | (x >> (64U - static_cast<unsigned>(k)));
    }

    std::array<std::uint64_t, 4> state_{};
};

/// The generator type used by the scheduler and all experiment drivers.
using Rng = Xoshiro256pp;

/// Unbiased sampling of an integer in [0, bound) by Lemire's multiply-shift
/// rejection method. Identical output on every platform for a given stream.
template <typename Generator>
[[nodiscard]] constexpr std::uint64_t uniform_below(Generator& gen, std::uint64_t bound) noexcept {
    // bound == 0 would be a caller bug; map it to 0 deterministically rather
    // than dividing by zero (callers validate in debug builds).
    if (bound == 0) return 0;
    while (true) {
        const std::uint64_t x = gen();
        const unsigned __int128 m =
            static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
        const auto low = static_cast<std::uint64_t>(m);
        if (low >= bound) return static_cast<std::uint64_t>(m >> 64U);
        // Rejection zone: only entered with probability < bound / 2^64.
        const std::uint64_t threshold = (0ULL - bound) % bound;
        if (low >= threshold) return static_cast<std::uint64_t>(m >> 64U);
    }
}

/// Samples an integer in the closed range [lo, hi].
template <typename Generator>
[[nodiscard]] constexpr std::uint64_t uniform_between(Generator& gen, std::uint64_t lo,
                                                      std::uint64_t hi) noexcept {
    return lo + uniform_below(gen, hi - lo + 1);
}

/// Samples a double uniformly in [0, 1) with 53 bits of precision.
template <typename Generator>
[[nodiscard]] constexpr double uniform_unit(Generator& gen) noexcept {
    return static_cast<double>(gen() >> 11U) * 0x1.0p-53;
}

/// Fair coin.
template <typename Generator>
[[nodiscard]] constexpr bool coin_flip(Generator& gen) noexcept {
    return (gen() >> 63U) != 0;
}

// --- samplers for the count-based batched engine ---------------------------

/// ln(x!) for integer x: table lookup below 1024, Stirling series above
/// (relative error < 1e-16 there). Hot in the batched engine's samplers,
/// where lgamma() itself would dominate the per-batch cost.
[[nodiscard]] inline double log_factorial(std::uint64_t x) noexcept {
    constexpr std::size_t table_size = 1024;
    static const std::array<double, table_size> table = [] {
        std::array<double, table_size> t{};
        double acc = 0.0;
        for (std::size_t i = 1; i < table_size; ++i) {
            acc += std::log(static_cast<double>(i));
            t[i] = acc;
        }
        return t;
    }();
    if (x < table_size) return table[x];
    const double xd = static_cast<double>(x);
    const double inv = 1.0 / xd;
    // ln x! = (x + ½)·ln x − x + ½·ln 2π + 1/(12x) − 1/(360x³) + …
    return (xd + 0.5) * std::log(xd) - xd + 0.91893853320467274178 +
           inv * (1.0 / 12.0 - inv * inv * (1.0 / 360.0));
}

namespace detail {

/// ln C(n, k) for integer arguments via the fast log-factorial.
[[nodiscard]] inline double log_choose(std::uint64_t n, std::uint64_t k) noexcept {
    return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

/// Standard deviation of the hypergeometric(total, successes, draws)
/// distribution — the dispatch criterion between the two samplers below.
[[nodiscard]] inline double hypergeometric_sd(std::uint64_t total, std::uint64_t successes,
                                              std::uint64_t draws) noexcept {
    const double N = static_cast<double>(total);
    const double p = static_cast<double>(successes) / N;
    const double k = static_cast<double>(draws);
    return std::sqrt(k * p * (1.0 - p) * (N - k) / (N - 1.0));
}

/// Inversion from the mode (zig-zag chop-down): expected work is
/// O(standard deviation). The right tool when the distribution is narrow —
/// a handful of pmf recurrence steps and one exp() — but its cost grows
/// with √(draws) in the wide regime.
template <typename Generator>
[[nodiscard]] std::uint64_t hypergeometric_inversion(Generator& gen, std::uint64_t total,
                                                     std::uint64_t successes,
                                                     std::uint64_t draws) {
    const std::uint64_t lo =
        draws + successes > total ? draws + successes - total : 0;
    const std::uint64_t hi = std::min(draws, successes);
    if (lo >= hi) return lo;

    const double N = static_cast<double>(total);
    const double K = static_cast<double>(successes);
    const double k = static_cast<double>(draws);

    auto mode = static_cast<std::uint64_t>(((k + 1.0) * (K + 1.0)) / (N + 2.0));
    mode = std::clamp(mode, lo, hi);

    const double log_pm = log_choose(successes, mode) +
                          log_choose(total - successes, draws - mode) -
                          log_choose(total, draws);
    const double pm = std::exp(log_pm);

    double u = uniform_unit(gen) - pm;
    if (u <= 0.0) return mode;

    // Walk outward from the mode, alternating sides, subtracting pmf mass
    // until the uniform draw is exhausted. Recurrences give p(x±1) from p(x).
    double p_up = pm;
    double p_dn = pm;
    std::uint64_t x_up = mode;
    std::uint64_t x_dn = mode;
    while (true) {
        bool stepped = false;
        if (x_up < hi) {
            const double x = static_cast<double>(x_up);
            p_up *= ((K - x) * (k - x)) / ((x + 1.0) * (N - K - k + x + 1.0));
            ++x_up;
            u -= p_up;
            if (u <= 0.0) return x_up;
            stepped = true;
        }
        if (x_dn > lo) {
            const double x = static_cast<double>(x_dn);
            p_dn *= (x * (N - K - k + x)) / ((K - x + 1.0) * (k - x + 1.0));
            --x_dn;
            u -= p_dn;
            if (u <= 0.0) return x_dn;
            stepped = true;
        }
        // Floating-point residue after consuming the whole support: the
        // remaining mass is below double precision; return the mode.
        if (!stepped) return mode;
    }
}

/// Ratio-of-uniforms rejection sampler (Stadlober's H2PE/HRUA* scheme, the
/// same algorithm behind NumPy's wide-regime hypergeometric): O(1) expected
/// PRNG draws and log-factorial evaluations *independent of the standard
/// deviation*, with an acceptance squeeze that skips the exact pmf
/// evaluation for most candidates. Used when the distribution is wide,
/// where inversion's O(sd) walk would dominate the batched engine's
/// per-batch cost; the two samplers draw from the identical distribution
/// (agreement is tested against the exact pmf for both).
template <typename Generator>
[[nodiscard]] std::uint64_t hypergeometric_hrua(Generator& gen, std::uint64_t total,
                                                std::uint64_t successes,
                                                std::uint64_t draws) {
    // Work on the smaller of each symmetric pair (successes vs failures,
    // draws vs non-draws); undo the reflections at the end.
    const std::uint64_t good = successes;
    const std::uint64_t bad = total - successes;
    const std::uint64_t min_gb = std::min(good, bad);
    const std::uint64_t max_gb = std::max(good, bad);
    const std::uint64_t m = std::min(draws, total - draws);

    constexpr double d1 = 1.7155277699214135;  // 2·sqrt(2/e)
    constexpr double d2 = 0.8989161620588988;  // 3 − 2·sqrt(3/e)

    const double popsize = static_cast<double>(total);
    const double md = static_cast<double>(m);
    const double d4 = static_cast<double>(min_gb) / popsize;
    const double d5 = 1.0 - d4;
    const double d6 = md * d4 + 0.5;
    const double d7 =
        std::sqrt((popsize - md) * md * d4 * d5 / (popsize - 1.0) + 0.5);
    const double d8 = d1 * d7 + d2;
    const auto mode = static_cast<std::uint64_t>(
        static_cast<double>(m + 1) * static_cast<double>(min_gb + 1) /
        (popsize + 2.0));
    const double d10 = log_factorial(mode) + log_factorial(min_gb - mode) +
                       log_factorial(m - mode) + log_factorial(max_gb - m + mode);
    const double d11 = std::min(static_cast<double>(std::min(m, min_gb) + 1),
                                std::floor(d6 + 16.0 * d7));

    std::uint64_t z = 0;
    while (true) {
        const double x = uniform_unit(gen);
        const double y = uniform_unit(gen);
        if (x == 0.0) continue;  // open interval: avoid the division blow-up
        const double w = d6 + d8 * (y - 0.5) / x;
        if (w < 0.0 || w >= d11) continue;  // outside the candidate window
        z = static_cast<std::uint64_t>(std::floor(w));
        const double t = d10 - (log_factorial(z) + log_factorial(min_gb - z) +
                                log_factorial(m - z) + log_factorial(max_gb - m + z));
        if (x * (4.0 - x) - 3.0 <= t) break;       // squeeze accept
        if (x * (x - t) >= 1.0) continue;          // squeeze reject
        if (2.0 * std::log(x) <= t) break;         // exact acceptance test
    }
    if (good > bad) z = m - z;
    if (m < draws) z = good - z;
    return z;
}

/// Inversion from the mode for the binomial distribution (same zig-zag
/// chop-down as hypergeometric_inversion): expected work O(standard
/// deviation), tiny constants. Routed to when the distribution is narrow.
template <typename Generator>
[[nodiscard]] std::uint64_t binomial_inversion(Generator& gen, std::uint64_t trials,
                                               double p) {
    const double n = static_cast<double>(trials);
    const double log_p = std::log(p);
    const double log_q = std::log1p(-p);

    auto mode = static_cast<std::uint64_t>((n + 1.0) * p);
    mode = std::min(mode, trials);

    const double log_pm = log_choose(trials, mode) + static_cast<double>(mode) * log_p +
                          static_cast<double>(trials - mode) * log_q;
    const double pm = std::exp(log_pm);

    double u = uniform_unit(gen) - pm;
    if (u <= 0.0) return mode;

    // Walk outward from the mode, alternating sides, subtracting pmf mass
    // until the uniform draw is exhausted. Recurrences give p(x±1) from p(x).
    const double odds = p / (1.0 - p);
    double p_up = pm;
    double p_dn = pm;
    std::uint64_t x_up = mode;
    std::uint64_t x_dn = mode;
    while (true) {
        bool stepped = false;
        if (x_up < trials) {
            const double x = static_cast<double>(x_up);
            p_up *= (n - x) / (x + 1.0) * odds;
            ++x_up;
            u -= p_up;
            if (u <= 0.0) return x_up;
            stepped = true;
        }
        if (x_dn > 0) {
            const double x = static_cast<double>(x_dn);
            p_dn *= x / ((n - x + 1.0) * odds);
            --x_dn;
            u -= p_dn;
            if (u <= 0.0) return x_dn;
            stepped = true;
        }
        // Floating-point residue after consuming the whole support: the
        // remaining mass is below double precision; return the mode.
        if (!stepped) return mode;
    }
}

/// Transformed-rejection binomial sampler (Hörmann's BTRS, the algorithm
/// behind NumPy's and TensorFlow's wide-regime binomial): O(1) expected PRNG
/// draws and log-factorial evaluations independent of the parameters, with a
/// box squeeze that accepts most candidates without evaluating the exact
/// pmf. Requires p ≤ 0.5 and trials·p ≥ 10 (callers reflect / route).
template <typename Generator>
[[nodiscard]] std::uint64_t binomial_btrs(Generator& gen, std::uint64_t trials, double p) {
    const double n = static_cast<double>(trials);
    const double q = 1.0 - p;
    const double spq = std::sqrt(n * p * q);

    const double b = 1.15 + 2.53 * spq;
    const double a = -0.0873 + 0.0248 * b + 0.01 * p;
    const double c = n * p + 0.5;
    const double vr = 0.92 - 4.2 / b;
    const double alpha = (2.83 + 5.1 / b) * spq;
    const double lpq = std::log(p / q);
    const auto mode = static_cast<std::uint64_t>((n + 1.0) * p);
    const double h = log_factorial(mode) + log_factorial(trials - mode);

    while (true) {
        double u = 0.0;
        double v = uniform_unit(gen);
        if (v <= 0.86 * vr) {
            // Inner box: accept without range check or pmf evaluation.
            u = v / vr - 0.43;
            const double k = std::floor((2.0 * a / (0.5 - std::abs(u)) + b) * u + c);
            if (k < 0.0 || k > n) continue;  // defensive: cannot trigger for np ≥ 10
            return static_cast<std::uint64_t>(k);
        }
        if (v >= vr) {
            u = uniform_unit(gen) - 0.5;
        } else {
            u = v / vr - 0.93;
            u = (u < 0.0 ? -0.5 : 0.5) - u;
            v = uniform_unit(gen) * vr;
        }
        const double us = 0.5 - std::abs(u);
        const double k = std::floor((2.0 * a / us + b) * u + c);
        if (k < 0.0 || k > n) continue;
        const auto ki = static_cast<std::uint64_t>(k);
        const double scaled = v * alpha / (a / (us * us) + b);
        const double log_accept = h - log_factorial(ki) - log_factorial(trials - ki) +
                                  (k - static_cast<double>(mode)) * lpq;
        if (std::log(scaled) <= log_accept) return ki;
    }
}

}  // namespace detail

/// Samples the binomial distribution: the number of successes among `trials`
/// independent draws that each succeed with probability `num`/`den`. The
/// probability is taken as an integer ratio so call sites built on counts
/// avoid any argument-rounding ambiguity (like the other samplers here, the
/// draw itself still evaluates libm functions, so seeded streams are
/// reproducible per libm — glibc covers every CI job — not across every
/// platform's last-ulp differences). Two regimes behind one interface, mirroring
/// `hypergeometric`: narrow distributions use inversion from the mode
/// (expected O(sd) work), wide ones Hörmann's BTRS transformed-rejection
/// sampler (expected O(1) work). Both are exact in distribution up to
/// double-precision rounding of the pmf.
template <typename Generator>
[[nodiscard]] std::uint64_t binomial(Generator& gen, std::uint64_t trials,
                                     std::uint64_t num, std::uint64_t den) {
    if (num > den) [[unlikely]] {  // cheap check: no string temporary per call
        require(false, "binomial: success probability exceeds one");
    }
    if (trials == 0 || num == 0) return 0;
    if (num == den) return trials;
    // Work on p ≤ ½ (reflect the failures otherwise), the precondition of
    // BTRS and the cheaper side for inversion. Overflow-safe form of
    // 2·num > den: num may use all 64 bits.
    const bool reflected = num > den - num;
    const double p = reflected ? static_cast<double>(den - num) / static_cast<double>(den)
                               : static_cast<double>(num) / static_cast<double>(den);
    const double mean = static_cast<double>(trials) * p;
    const std::uint64_t x = mean < 10.0 ? detail::binomial_inversion(gen, trials, p)
                                        : detail::binomial_btrs(gen, trials, p);
    return reflected ? trials - x : x;
}

/// Double-probability binomial overload for callers whose success
/// probability is not a count ratio — the engines' rate-thinning draws
/// (fired pairs among `trials` scheduled ones, each firing with probability
/// rate/max_rate). Same two regimes as the ratio overload above; p is taken
/// as given, so the caller owns its rounding.
template <typename Generator>
[[nodiscard]] std::uint64_t binomial(Generator& gen, std::uint64_t trials, double p) {
    if (trials == 0 || p <= 0.0) return 0;
    if (p >= 1.0) return trials;
    const bool reflected = p > 0.5;
    const double q = reflected ? 1.0 - p : p;
    const double mean = static_cast<double>(trials) * q;
    const std::uint64_t x = mean < 10.0 ? detail::binomial_inversion(gen, trials, q)
                                        : detail::binomial_btrs(gen, trials, q);
    return reflected ? trials - x : x;
}

/// Samples the geometric distribution: the number of Bernoulli(p) trials up
/// to and including the first success (support 1, 2, …), by inversion of
/// the survival function P(X > k) = (1−p)^k. One PRNG draw and two log
/// evaluations — the Gillespie engine's null-reaction skip, where it jumps
/// every null interaction up to the next real reaction at once. Exact up to
/// double precision of log/log1p, the trade every SSA implementation makes
/// for its waiting times. Saturates at 2^64−1 for astronomically long waits.
template <typename Generator>
[[nodiscard]] std::uint64_t geometric(Generator& gen, double p) {
    if (p >= 1.0) return 1;
    if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
    const double u = 1.0 - uniform_unit(gen);  // (0, 1]
    const double gap = std::floor(std::log(u) / std::log1p(-p));
    if (gap >= 9.2e18) return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(gap) + 1;
}

/// Samples a multinomial vector: `trials` independent draws land in colour i
/// with probability `counts[i]` / Σ counts, and `out[i]` receives the number
/// of colour-i draws. Factored as a conditional chain of scalar binomial
/// draws (colour i against the remaining colour mass), exactly like
/// `multivariate_hypergeometric` below — the with-replacement sibling. This
/// is the dense reference form: its distribution tests in test_random.cpp
/// pin the chain math, while the Gillespie engine's τ-leap path runs the
/// same chain as a sparse specialisation over its (state id, count) live
/// list (`GillespieEngine::sample_leap_multiset`) — changes to either
/// chain's fast paths should be mirrored in the other, exactly as for the
/// hypergeometric chain and `ContingencyTablePairing`. `counts` and `out`
/// may alias.
template <typename Generator>
void multinomial(Generator& gen, const std::uint64_t* counts, std::size_t m,
                 std::uint64_t trials, std::uint64_t* out) {
    std::uint64_t pool = 0;
    for (std::size_t i = 0; i < m; ++i) pool += counts[i];
    if (pool == 0 && trials > 0) [[unlikely]] {
        require(false, "multinomial: zero total mass with trials remaining");
    }
    for (std::size_t i = 0; i < m; ++i) {
        const std::uint64_t c = counts[i];
        if (trials == 0 || c == pool) {  // nothing left to draw, or forced
            out[i] = trials;
            trials = 0;
            pool -= c;
            continue;
        }
        const std::uint64_t x = binomial(gen, trials, c, pool);
        out[i] = x;
        pool -= c;
        trials -= x;
    }
    if (trials != 0) [[unlikely]] {  // cheap check: no string temporary per call
        ensure(false, "multinomial chain under-drew");
    }
}

/// Vector convenience overload: returns the per-colour draw counts.
template <typename Generator>
[[nodiscard]] std::vector<std::uint64_t> multinomial(
    Generator& gen, const std::vector<std::uint64_t>& counts, std::uint64_t trials) {
    std::vector<std::uint64_t> out(counts.size(), 0);
    multinomial(gen, counts.data(), counts.size(), trials, out.data());
    return out;
}

/// Samples the hypergeometric distribution: the number of successes among
/// `draws` draws without replacement from a population of `total` items of
/// which `successes` are successes. Two regimes behind one interface:
/// narrow distributions (sd ≤ 16) use inversion from the mode (expected
/// O(sd) work, tiny constants), wide ones use the H2PE-style
/// ratio-of-uniforms rejection sampler (expected O(1) work regardless of
/// the parameters). Both are exact in distribution up to double-precision
/// rounding of the pmf, the trade every production hypergeometric sampler
/// makes.
template <typename Generator>
[[nodiscard]] std::uint64_t hypergeometric(Generator& gen, std::uint64_t total,
                                           std::uint64_t successes, std::uint64_t draws) {
    const std::uint64_t lo =
        draws + successes > total ? draws + successes - total : 0;
    const std::uint64_t hi = std::min(draws, successes);
    if (lo >= hi) return lo;
    // Cheap pre-gate: sd ≤ √(draws·p·(1−p)) ≤ √draws / 2, and symmetrically
    // for the support width, so small parameters prove "narrow" without the
    // sqrt of the exact-sd test — the common case in multi-state batches.
    if (draws <= 1024 || hi - lo <= 64 ||
        detail::hypergeometric_sd(total, successes, draws) <= 16.0) {
        return detail::hypergeometric_inversion(gen, total, successes, draws);
    }
    return detail::hypergeometric_hrua(gen, total, successes, draws);
}

/// Samples a multivariate hypergeometric vector: `draws` items are drawn
/// without replacement from a population of `m` colours with `counts[i]`
/// items of colour i, and `out[i]` receives the number drawn of colour i.
/// The joint distribution is factored as a conditional chain of scalar
/// hypergeometric draws (colour i against the pool of colours i..m−1), so
/// the sampler is exact for any colour order and costs O(m) scalar draws.
/// Two exactness-preserving fast paths keep the chain cheap in the batched
/// engine's contingency-table use, where most rows want few items:
///  * when the remaining pool must be drawn entirely, every colour's
///    remainder is taken without touching the generator;
///  * when exactly one item remains wanted, it is picked by a single
///    categorical draw over the remaining colour masses.
/// Requires sum(counts) >= draws; `counts` and `out` may alias (the counts
/// are then replaced by the drawn amounts).
template <typename Generator>
void multivariate_hypergeometric(Generator& gen, const std::uint64_t* counts,
                                 std::size_t m, std::uint64_t draws,
                                 std::uint64_t* out) {
    std::uint64_t pool = 0;
    for (std::size_t i = 0; i < m; ++i) pool += counts[i];
    if (draws > pool) [[unlikely]] {  // cheap check: no string temporary per call
        require(false, "multivariate hypergeometric: draws exceed the population");
    }
    for (std::size_t i = 0; i < m; ++i) {
        const std::uint64_t c = counts[i];
        if (draws == 0) {
            out[i] = 0;
            continue;
        }
        if (draws == pool) {  // must take everything that is left
            out[i] = c;
            pool -= c;
            draws -= c;
            continue;
        }
        if (draws == 1) {
            // One categorical draw locates the colour of the last wanted
            // item; the remaining colours are zero-filled without touching
            // the generator again.
            std::uint64_t r = uniform_below(gen, pool);
            for (std::size_t j = i; j < m; ++j) {
                const std::uint64_t cj = counts[j];
                if (r < cj) {
                    out[j] = 1;
                    for (std::size_t k = j + 1; k < m; ++k) out[k] = 0;
                    return;
                }
                out[j] = 0;
                r -= cj;
            }
            ensure(false, "multivariate hypergeometric categorical draw overran");
        }
        const std::uint64_t x = hypergeometric(gen, pool, c, draws);
        out[i] = x;
        pool -= c;
        draws -= x;
    }
    if (draws != 0) [[unlikely]] {  // cheap check: no string temporary per call
        ensure(false, "multivariate hypergeometric chain under-drew");
    }
}

/// Vector convenience overload: returns the per-colour draw counts.
template <typename Generator>
[[nodiscard]] std::vector<std::uint64_t> multivariate_hypergeometric(
    Generator& gen, const std::vector<std::uint64_t>& counts, std::uint64_t draws) {
    std::vector<std::uint64_t> out(counts.size(), 0);
    multivariate_hypergeometric(gen, counts.data(), counts.size(), draws, out.data());
    return out;
}

/// Samples the length of the collision-free run at the start of a batch: the
/// number L of consecutive uniformly scheduled interactions that touch 2L
/// distinct agents before an interaction first re-uses an agent (the
/// birthday-problem run length, E[L] = Θ(√n)). The survival function is
///   P(L ≥ ℓ) = n! / ((n − 2ℓ)! · (n(n−1))^ℓ),
/// inverted by binary search on its logarithm. Always returns L ≥ 1 (the
/// first interaction cannot collide) and L ≤ ⌊n/2⌋. The per-population
/// constants are precomputed once so a sample costs ~log2(n) cheap
/// log-factorial evaluations.
class CollisionRunSampler {
public:
    explicit CollisionRunSampler(std::uint64_t n) {
        // Tabulate the survival function by its multiplicative recurrence
        //   S(ℓ+1) = S(ℓ) · (n−2ℓ)(n−2ℓ−1) / (n(n−1)),
        // truncated where S drops below any representable uniform draw
        // (u ≥ 2^−53 ≫ 10^−18). The table is Θ(√n) doubles and a sample is
        // one binary search over it — no lgamma on the hot path.
        const std::uint64_t max_run = n / 2;
        const double pairs = static_cast<double>(n) * (static_cast<double>(n) - 1.0);
        double s = 1.0;
        survival_.push_back(s);  // S(1) = 1: the first interaction cannot collide
        for (std::uint64_t l = 1; l < max_run && s > 1e-18; ++l) {
            const double fresh = static_cast<double>(n - 2 * l);
            s *= fresh * (fresh - 1.0) / pairs;
            survival_.push_back(s);
        }
    }

    template <typename Generator>
    [[nodiscard]] std::uint64_t sample(Generator& gen) const {
        // u ∈ (0, 1]; L = max{ℓ : S(ℓ) ≥ u}, found by binary search on the
        // decreasing table (survival_[i] = S(i + 1)).
        const double u = 1.0 - uniform_unit(gen);
        std::size_t lo = 0;
        std::size_t hi = survival_.size() - 1;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo + 1) / 2;
            if (survival_[mid] >= u) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        return lo + 1;
    }

private:
    std::vector<double> survival_;
};

/// One-shot convenience wrapper around CollisionRunSampler.
template <typename Generator>
[[nodiscard]] std::uint64_t sample_collision_free_run(Generator& gen, std::uint64_t n) {
    return CollisionRunSampler(n).sample(gen);
}

/// Uniform Fisher–Yates shuffle of a vector (bias-free via uniform_below).
template <typename T, typename Generator>
void shuffle_vector(std::vector<T>& items, Generator& gen) {
    for (std::size_t i = items.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(uniform_below(gen, i));
        std::swap(items[i - 1], items[j]);
    }
}

/// Derives a child seed from a root seed and a stream index. Used to give
/// every repetition of an experiment an independent, reproducible seed.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t root,
                                                  std::uint64_t stream) noexcept {
    SplitMix64 sm(root ^ (0x632be59bd9b4e019ULL * (stream + 1)));
    // Burn a few outputs so nearby stream indices decorrelate fully.
    sm();
    sm();
    return sm();
}

}  // namespace ppsim
