/// \file random.hpp
/// \brief Pseudo-random number generation for the simulation engine.
///
/// The population-protocol model has a single source of randomness: the
/// uniformly random scheduler that picks an ordered pair of agents at every
/// step. All protocol transition functions are deterministic. A simulation's
/// statistical quality therefore rests entirely on the scheduler's PRNG.
///
/// We provide two generators:
///  * SplitMix64 — tiny, used for seeding and for cheap auxiliary streams;
///  * Xoshiro256pp (xoshiro256++) — the main generator: 256-bit state,
///    period 2^256 − 1, passes BigCrush, and supports `jump()` for creating
///    2^128-decorrelated parallel streams (one per worker thread).
///
/// Both satisfy the C++ UniformRandomBitGenerator concept so they compose
/// with <random> distributions, but hot paths use the bias-free bounded
/// sampling below (Lemire's method) instead of std::uniform_int_distribution,
/// whose implementation varies across standard libraries and would break
/// cross-platform reproducibility of seeded runs.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common.hpp"

namespace ppsim {

/// SplitMix64 generator (Steele, Lea, Flood 2014). Used to expand a single
/// 64-bit seed into larger seed material and as a cheap standalone stream.
class SplitMix64 {
public:
    using result_type = std::uint64_t;

    constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31U);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna 2019). The library's main generator.
class Xoshiro256pp {
public:
    using result_type = std::uint64_t;

    /// Seeds the four state words from a single 64-bit seed via SplitMix64,
    /// the seeding procedure recommended by the xoshiro authors.
    constexpr explicit Xoshiro256pp(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
        SplitMix64 sm(seed);
        for (auto& word : state_) word = sm();
        // An all-zero state is the one fixed point; SplitMix64 cannot emit
        // four zero words in a row, but guard anyway for safety.
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
    }

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17U;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Advances the state by 2^128 steps: calling jump() k times on copies of
    /// one generator yields k streams that never overlap in any feasible run.
    constexpr void jump() noexcept {
        constexpr std::array<std::uint64_t, 4> jump_poly = {
            0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
        std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
        for (std::uint64_t word : jump_poly) {
            for (unsigned bit = 0; bit < 64; ++bit) {
                if ((word & (1ULL << bit)) != 0) {
                    for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
                }
                (*this)();
            }
        }
        state_ = acc;
    }

    /// Returns a copy jumped `index + 1` times: stream #0, #1, ... for workers.
    [[nodiscard]] constexpr Xoshiro256pp split(unsigned index) const noexcept {
        Xoshiro256pp child = *this;
        for (unsigned i = 0; i <= index; ++i) child.jump();
        return child;
    }

private:
    [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << static_cast<unsigned>(k)) | (x >> (64U - static_cast<unsigned>(k)));
    }

    std::array<std::uint64_t, 4> state_{};
};

/// The generator type used by the scheduler and all experiment drivers.
using Rng = Xoshiro256pp;

/// Unbiased sampling of an integer in [0, bound) by Lemire's multiply-shift
/// rejection method. Identical output on every platform for a given stream.
template <typename Generator>
[[nodiscard]] constexpr std::uint64_t uniform_below(Generator& gen, std::uint64_t bound) noexcept {
    // bound == 0 would be a caller bug; map it to 0 deterministically rather
    // than dividing by zero (callers validate in debug builds).
    if (bound == 0) return 0;
    while (true) {
        const std::uint64_t x = gen();
        const unsigned __int128 m =
            static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
        const auto low = static_cast<std::uint64_t>(m);
        if (low >= bound) return static_cast<std::uint64_t>(m >> 64U);
        // Rejection zone: only entered with probability < bound / 2^64.
        const std::uint64_t threshold = (0ULL - bound) % bound;
        if (low >= threshold) return static_cast<std::uint64_t>(m >> 64U);
    }
}

/// Samples an integer in the closed range [lo, hi].
template <typename Generator>
[[nodiscard]] constexpr std::uint64_t uniform_between(Generator& gen, std::uint64_t lo,
                                                      std::uint64_t hi) noexcept {
    return lo + uniform_below(gen, hi - lo + 1);
}

/// Samples a double uniformly in [0, 1) with 53 bits of precision.
template <typename Generator>
[[nodiscard]] constexpr double uniform_unit(Generator& gen) noexcept {
    return static_cast<double>(gen() >> 11U) * 0x1.0p-53;
}

/// Fair coin.
template <typename Generator>
[[nodiscard]] constexpr bool coin_flip(Generator& gen) noexcept {
    return (gen() >> 63U) != 0;
}

/// Derives a child seed from a root seed and a stream index. Used to give
/// every repetition of an experiment an independent, reproducible seed.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t root,
                                                  std::uint64_t stream) noexcept {
    SplitMix64 sm(root ^ (0x632be59bd9b4e019ULL * (stream + 1)));
    // Burn a few outputs so nearby stream indices decorrelate fully.
    sm();
    sm();
    return sm();
}

}  // namespace ppsim
