/// \file scheduler.hpp
/// \brief Interaction schedulers: the uniformly random scheduler of the
/// population-protocol model, plus deterministic replay schedules for tests.
///
/// In the model of Sudo et al. (PODC 2019), at each step the scheduler Γ
/// selects an ordered pair of distinct agents (u, v) uniformly at random:
/// u is the *initiator*, v the *responder*. The initiator/responder asymmetry
/// is load-bearing — PLL uses the role of an agent in an interaction as a
/// fair coin flip — so the scheduler must produce each of the n(n−1) ordered
/// pairs with equal probability.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common.hpp"
#include "random.hpp"

namespace ppsim {

/// One scheduled interaction: an ordered pair (initiator, responder).
struct Interaction {
    AgentId initiator = invalid_agent;
    AgentId responder = invalid_agent;

    friend constexpr bool operator==(const Interaction&, const Interaction&) = default;
};

/// The uniformly random scheduler Γ. Stateless apart from its PRNG stream;
/// next() draws an ordered pair of distinct agents uniformly at random.
class UniformScheduler {
public:
    /// \param n     population size (must be ≥ 2: an interaction needs two agents)
    /// \param seed  PRNG seed; equal seeds produce identical schedules
    UniformScheduler(std::size_t n, std::uint64_t seed)
        : n_(n), rng_(seed) {
        require(n >= 2, "population must contain at least two agents");
        // n(n−1) fits in 64 bits whenever n ≤ 2^32 (always true: agent ids
        // are 32-bit), enabling the single-draw fast path in next().
        if (n_ <= (std::uint64_t{1} << 32U)) {
            ordered_pairs_ = static_cast<std::uint64_t>(n_) * (n_ - 1);
        }
    }

    /// Draws the next interaction. Both orderings of each unordered pair are
    /// equally likely, as the model requires.
    [[nodiscard]] Interaction next() noexcept {
        if (ordered_pairs_ != 0) {
            // Fast path: one unbiased draw in [0, n(n−1)) indexes the ordered
            // pair directly — quotient picks the initiator, remainder the
            // responder's offset among the other n−1 agents.
            const std::uint64_t r = uniform_below(rng_, ordered_pairs_);
            const auto a = static_cast<AgentId>(r / (n_ - 1));
            auto b = static_cast<AgentId>(r % (n_ - 1));
            if (b >= a) ++b;
            return Interaction{a, b};
        }
        const auto a = static_cast<AgentId>(uniform_below(rng_, n_));
        // Sample the responder from the remaining n−1 agents without bias by
        // drawing in [0, n−1) and skipping over the initiator's index.
        auto b = static_cast<AgentId>(uniform_below(rng_, n_ - 1));
        if (b >= a) ++b;
        return Interaction{a, b};
    }

    [[nodiscard]] std::size_t population_size() const noexcept { return n_; }

    /// Re-targets the scheduler after the population changed size (fault
    /// injection: crash/rejoin). Accepts any n ≥ 1 — the engine guards its
    /// stepping paths so next() is never called while n < 2. The PRNG
    /// stream continues uninterrupted, which is what keeps seeded
    /// post-fault replay deterministic.
    void set_population_size(std::size_t n) {
        require(n >= 1, "population cannot be empty");
        n_ = n;
        ordered_pairs_ = 0;
        if (n_ >= 2 && n_ <= (std::uint64_t{1} << 32U)) {
            ordered_pairs_ = static_cast<std::uint64_t>(n_) * (n_ - 1);
        }
    }

    /// Access to the underlying generator, e.g. to fork auxiliary streams.
    [[nodiscard]] Rng& rng() noexcept { return rng_; }
    [[nodiscard]] const Rng& rng() const noexcept { return rng_; }

private:
    std::size_t n_;
    std::uint64_t ordered_pairs_ = 0;  ///< n(n−1) when it fits in 64 bits, else 0
    Rng rng_;
};

/// A deterministic schedule: a finite, replayable sequence of interactions.
/// Corresponds to the paper's lowercase γ = γ0, γ1, …; used by unit tests to
/// drive hand-constructed executions and by the engine's record/replay mode.
class RecordedSchedule {
public:
    RecordedSchedule() = default;

    explicit RecordedSchedule(std::vector<Interaction> interactions)
        : interactions_(std::move(interactions)) {}

    /// Appends one interaction to the schedule.
    void append(Interaction interaction) { interactions_.push_back(interaction); }

    /// Appends the ordered pair (initiator, responder).
    void append(AgentId initiator, AgentId responder) {
        interactions_.push_back(Interaction{initiator, responder});
    }

    [[nodiscard]] std::size_t size() const noexcept { return interactions_.size(); }
    [[nodiscard]] bool empty() const noexcept { return interactions_.empty(); }

    [[nodiscard]] const Interaction& operator[](std::size_t i) const noexcept {
        return interactions_[i];
    }

    [[nodiscard]] std::span<const Interaction> view() const noexcept {
        return interactions_;
    }

    /// Validates every pair against a population size; throws on out-of-range
    /// agent ids or self-interactions.
    void validate(std::size_t n) const {
        for (std::size_t i = 0; i < interactions_.size(); ++i) {
            const auto& [u, v] = interactions_[i];
            require(u < n && v < n,
                    "schedule step " + std::to_string(i) + " references agent out of range");
            require(u != v, "schedule step " + std::to_string(i) + " is a self-interaction");
        }
    }

private:
    std::vector<Interaction> interactions_;
};

/// Replays a RecordedSchedule as a scheduler. Exhausting the schedule is a
/// caller bug and throws, which keeps tests honest about schedule lengths.
class ReplayScheduler {
public:
    explicit ReplayScheduler(const RecordedSchedule& schedule)
        : schedule_(&schedule) {}

    [[nodiscard]] Interaction next() {
        ensure(cursor_ < schedule_->size(), "replay schedule exhausted");
        return (*schedule_)[cursor_++];
    }

    [[nodiscard]] std::size_t remaining() const noexcept {
        return schedule_->size() - cursor_;
    }

    [[nodiscard]] std::size_t position() const noexcept { return cursor_; }

private:
    const RecordedSchedule* schedule_;
    std::size_t cursor_ = 0;
};

/// A scheduler adaptor that records every interaction it forwards, so a
/// random run can later be replayed exactly (determinism tests, debugging).
template <typename Inner>
class RecordingScheduler {
public:
    explicit RecordingScheduler(Inner inner) : inner_(std::move(inner)) {}

    [[nodiscard]] Interaction next() {
        Interaction i = inner_.next();
        record_.append(i);
        return i;
    }

    [[nodiscard]] const RecordedSchedule& record() const noexcept { return record_; }

private:
    Inner inner_;
    RecordedSchedule record_;
};

}  // namespace ppsim
