/// \file shard.hpp
/// \brief Intra-run sharding support for the count engines: the per-round
/// PRNG stream-split contract, contiguous index partitioning, and per-shard
/// delta buffers merged deterministically in shard order.
///
/// ## The stream-split contract
///
/// An engine built with `threads > 1` owns a ShardContext. Each round it
/// calls `begin_round()`, which derives one fresh Rng per shard:
///
///     shard_rng(s) = Rng(derive_seed(derive_seed(derive_seed(seed,
///                        shard_stream_tag), round), s))
///
/// Every shard stream is therefore a pure function of (engine seed, round
/// counter, shard index) — independent of scheduling, of which OS thread
/// runs the shard, and of what any other shard draws. Replay with the same
/// seed and the same `threads` value is bit-identical; changing `threads`
/// changes the partition (and hence the stream) by design. The engines'
/// main `rng_` stream is never advanced by sharded work, and `threads == 1`
/// never constructs a ShardContext at all, so the sequential stream is
/// untouched.
///
/// ## Deterministic merge
///
/// Shards never write shared count words. Each writes its own ShardDelta;
/// after the parallel region the owning thread folds the deltas into the
/// InternedCountStore in ascending shard order, so the store's touched-id
/// ordering (which downstream draws depend on) is reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "random.hpp"
#include "state_index.hpp"
#include "thread_pool.hpp"

namespace ppsim {

/// PRNG stream tag of the shard split ("shdr"): distinct from the fault
/// stream tag so sharded and fault randomness can never collide.
inline constexpr std::uint64_t shard_stream_tag = 0x73686472ULL;

/// A contiguous half-open index range [first, last) owned by one shard.
struct ShardRange {
    std::size_t first = 0;
    std::size_t last = 0;

    [[nodiscard]] std::size_t size() const noexcept { return last - first; }
    [[nodiscard]] bool empty() const noexcept { return first == last; }
};

/// Balanced contiguous partition of [0, count) into `shards` ranges: the
/// first `count % shards` ranges get one extra element. Pure function of its
/// arguments, so the partition (and hence each shard's work set) is part of
/// the replay contract.
[[nodiscard]] inline ShardRange shard_range(std::size_t count, std::size_t shards,
                                            std::size_t s) noexcept {
    const std::size_t base = count / shards;
    const std::size_t rem = count % shards;
    const std::size_t first = s * base + (s < rem ? s : rem);
    return {first, first + base + (s < rem ? 1 : 0)};
}

/// Per-run parallel context owned by an engine constructed with threads > 1:
/// a private worker pool (threads − 1 workers; the engine's thread is the
/// extra runner) plus the per-round shard Rngs of the stream-split contract.
class ShardContext {
public:
    ShardContext(std::uint64_t seed, std::size_t threads)
        : root_(derive_seed(seed, shard_stream_tag)),
          threads_(threads),
          pool_(threads - 1) {
        ensure(threads >= 2, "ShardContext requires threads >= 2");
        rngs_.reserve(threads);
    }

    [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

    /// Advances the round counter and re-derives every shard stream. Called
    /// exactly once per engine round that may shard (after the engine's
    /// trivial-round guards), whether or not any loop in that round ends up
    /// above the sharding threshold — the round counter must tick uniformly
    /// or streams would depend on data-dependent fallback decisions.
    void begin_round() {
        const std::uint64_t round_root = derive_seed(root_, round_++);
        rngs_.clear();
        for (std::size_t s = 0; s < threads_; ++s) {
            rngs_.emplace_back(derive_seed(round_root, s));
        }
    }

    /// The shard's private stream for the current round.
    [[nodiscard]] Rng& rng(std::size_t shard) noexcept { return rngs_[shard]; }

    /// The round counter — the only persistent state of the context: every
    /// shard stream is re-derived from it by `begin_round()`, so a
    /// checkpoint needs nothing but this value.
    [[nodiscard]] std::uint64_t round() const noexcept { return round_; }

    /// Restores a round counter captured by `round()` (checkpoint resume).
    void set_round(std::uint64_t round) noexcept { round_ = round; }

    /// Runs fn(0..threads−1) across the pool; the calling thread participates.
    void run(const std::function<void(std::size_t)>& fn) { pool_.for_each(threads_, fn); }

private:
    std::uint64_t root_;
    std::size_t threads_;
    std::uint64_t round_ = 0;
    ThreadPool pool_;
    std::vector<Rng> rngs_;
};

/// One shard's buffered round output: touched multiplicities plus the
/// scalar tallies the engines accumulate per cell. Folded into the shared
/// store in shard order by the owning thread — shards never contend.
struct ShardDelta {
    std::vector<std::uint64_t> mult;      ///< per-state touched multiplicity
    std::vector<StateId> touched_ids;     ///< ids with mult[id] > 0, visit order
    std::int64_t leader_delta = 0;
    bool role_changed = false;
    std::uint64_t dropped = 0;            ///< gillespie leap availability drops
    std::uint64_t fired = 0;              ///< interactions this shard fired

    /// Grows the multiplicity array to cover `states` interned ids. Must be
    /// called before the parallel region (interning is single-threaded).
    void ensure_capacity(std::size_t states) {
        if (mult.size() < states) mult.resize(states, 0);
    }

    void touch(StateId id, std::uint64_t m) {
        if (mult[id] == 0) touched_ids.push_back(id);
        mult[id] += m;
    }

    /// Folds this delta into `store` and resets it for the next round.
    /// Templated on the store to keep this header engine-agnostic.
    template <typename Store>
    void merge_into(Store& store) {
        for (const StateId id : touched_ids) {
            store.touch(id, mult[id]);
            mult[id] = 0;
        }
        touched_ids.clear();
        leader_delta = 0;
        role_changed = false;
        dropped = 0;
        fired = 0;
    }

    /// Resets without merging (sequential-fallback rounds leave stale deltas).
    void reset() {
        for (const StateId id : touched_ids) mult[id] = 0;
        touched_ids.clear();
        leader_delta = 0;
        role_changed = false;
        dropped = 0;
        fired = 0;
    }
};

}  // namespace ppsim
