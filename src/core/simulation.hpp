/// \file simulation.hpp
/// \brief The type-erased run layer: one `Simulation` interface over every
/// back-end (the per-interaction `Engine<P>`, the count-based
/// `BatchedEngine<P>` and the reaction-rate `GillespieEngine<P>`), plus the
/// observer hook that lets trajectory recorders and convergence monitors
/// watch any run without entering the per-interaction hot loop.
///
/// Everything above the engines — the registry, the experiment driver, the
/// CLI, the benches — speaks this interface. The engines themselves stay
/// statically typed: an adapter holds the concrete engine by value and the
/// virtual dispatch sits at *chunk* granularity (one call per run, or one
/// per observer deadline), never per interaction, so registry-level runs
/// keep the templated engines' throughput.
///
/// Observer semantics: an observer declares the absolute step index at which
/// it next wants to look (`next_due`). The run layer slices the step budget
/// at the earliest deadline across observers, advances the engine with its
/// native specialised loop, and notifies every observer at the boundary. On
/// the batched engine a boundary merely clamps a batch, so the cadence cost
/// is O(#states) per observation — independent of n. With no observers
/// attached, run calls delegate straight to the engine's loop.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "batched_engine.hpp"
#include "checkpoint_io.hpp"
#include "common.hpp"
#include "engine.hpp"
#include "fault.hpp"
#include "gillespie_engine.hpp"
#include "hybrid_engine.hpp"
#include "persist.hpp"
#include "protocol.hpp"

namespace ppsim {

/// One state's share of a configuration snapshot, keyed by the protocol's
/// canonical 64-bit state key (`state_key_of` — injective on reachable
/// states, identical across engines for the same protocol).
struct StateCount {
    std::uint64_t key = 0;     ///< canonical state key
    std::uint64_t count = 0;   ///< agents currently in this state
    Role role = Role::follower;  ///< output of the state
};

/// A point-in-time census of the population by state. Obtaining one costs
/// O(#live states) on the batched engine and O(n) on the agent engine.
struct ConfigurationSnapshot {
    StepCount step = 0;              ///< interactions executed when taken
    std::vector<StateCount> counts;  ///< non-zero entries, sorted by key

    /// Total number of agents in the snapshot (= n, by conservation).
    [[nodiscard]] std::uint64_t total() const noexcept {
        std::uint64_t sum = 0;
        for (const StateCount& sc : counts) sum += sc.count;
        return sum;
    }

    /// Number of agents whose output is leader.
    [[nodiscard]] std::uint64_t leaders() const noexcept {
        std::uint64_t sum = 0;
        for (const StateCount& sc : counts) {
            if (sc.role == Role::leader) sum += sc.count;
        }
        return sum;
    }

    /// Count of the state with canonical key `key` (0 when absent).
    [[nodiscard]] std::uint64_t count_of(std::uint64_t key) const noexcept {
        for (const StateCount& sc : counts) {
            if (sc.key == key) return sc.count;
        }
        return 0;
    }
};

class Simulation;

/// Hook into a Simulation's run loop. Observers never see individual
/// interactions — they see the simulation at the step boundaries they ask
/// for, which is what keeps observation free on the engines' hot paths.
class SimulationObserver {
public:
    /// Sentinel deadline: "no scheduled observation" — the observer is then
    /// only notified at natural boundaries (run start and run end).
    static constexpr StepCount no_deadline = std::numeric_limits<StepCount>::max();

    virtual ~SimulationObserver() = default;

    /// Absolute step index at which this observer next wants `observe()`.
    /// The run layer will stop at (not after) this step. Return
    /// `no_deadline` for boundary-only observation.
    [[nodiscard]] virtual StepCount next_due() const noexcept = 0;

    /// Called at run start, at every reached deadline across all attached
    /// observers, and at run end. `sim.steps()` may be short of this
    /// observer's own deadline when another observer's came first.
    virtual void observe(const Simulation& sim) = 0;

    /// Called once at the end of each `run_until_one_leader` (predicate
    /// reached or budget exhausted), after the final `observe` — the hook
    /// for capturing the run's final configuration even off-stride. Plain
    /// `run_for`/`step` calls do not fire it: they may be composed into a
    /// larger caller-driven loop. Default: nothing extra.
    virtual void finish(const Simulation& sim) { (void)sim; }

    /// Serialises the observer's progress into a run checkpoint so a resumed
    /// run neither double-reports nor loses what was already observed (a
    /// deadline that fired must not fire again; recorded samples carry over).
    /// Paired with `restore_state`, which must read exactly what was written
    /// into a freshly constructed observer of the same type and
    /// configuration. The defaults persist nothing (stateless observers).
    virtual void save_state(CheckpointWriter& w) const { (void)w; }
    virtual void restore_state(CheckpointReader& r) { (void)r; }
};

/// Type-erased simulation run: the uniform execution and observation
/// surface over both engines. Instances are created per run (a simulation
/// owns its engine, which owns its population/counts and PRNG stream).
class Simulation {
public:
    virtual ~Simulation() = default;

    // --- observation ------------------------------------------------------

    [[nodiscard]] virtual std::size_t population_size() const noexcept = 0;
    [[nodiscard]] virtual StepCount steps() const noexcept = 0;
    [[nodiscard]] virtual std::size_t leader_count() const noexcept = 0;
    [[nodiscard]] virtual std::optional<StepCount> stabilization_step() const noexcept = 0;
    /// Which back-end this simulation runs on.
    [[nodiscard]] virtual EngineKind engine_kind() const noexcept = 0;
    /// The batch-pairing strategy this simulation was configured with.
    /// Meaningful on the batched engine; the agent engine has no batches and
    /// reports the `auto` default.
    [[nodiscard]] virtual BatchMode batch_mode() const noexcept {
        return BatchMode::automatic;
    }
    /// Display name of the protocol being simulated.
    [[nodiscard]] virtual std::string protocol_name() const = 0;
    /// Number of distinct states with at least one agent. O(#states) on the
    /// batched engine, O(n) on the agent engine.
    [[nodiscard]] virtual std::size_t live_state_count() const = 0;
    /// Census of the configuration by state. O(#states) on the batched
    /// engine, O(n) on the agent engine. NOTE: for the loosely-stabilising
    /// baseline the batched engine only reaches snapshot boundaries at batch
    /// granularity, so transient configurations inside a batch are not
    /// observable there (see README "Choosing an engine").
    [[nodiscard]] virtual ConfigurationSnapshot state_counts() const = 0;

    [[nodiscard]] double parallel_time() const noexcept {
        return to_parallel_time(steps(), population_size());
    }

    // --- execution --------------------------------------------------------

    /// Executes exactly one interaction (batched: a batch clamped to 1).
    RunResult step() { return run_for(1); }

    /// Runs exactly `count` further interactions. Observers see their
    /// cadence but no `finish` (a run_for may be one slice of a larger
    /// caller-driven loop).
    RunResult run_for(StepCount count) {
        if (observers_.empty() && !driving_needed()) return run_for_impl(count);
        return run_driven(count, /*stop_at_single_leader=*/false,
                          /*notify_finish=*/false);
    }

    /// Runs until exactly one leader remains or `max_steps` further
    /// interactions have been executed, whichever comes first. When a fault
    /// plan is attached, "one leader" only terminates the run once every
    /// scheduled fault has been applied: an election that stabilises before
    /// a pending crash/reset must survive the fault (and re-stabilise) to
    /// count, so the loop keeps running until the plan is exhausted or the
    /// budget is.
    RunResult run_until_one_leader(StepCount max_steps) {
        if (observers_.empty() && !driving_needed()) {
            return run_until_one_leader_impl(max_steps);
        }
        return run_driven(max_steps, /*stop_at_single_leader=*/true,
                          /*notify_finish=*/true);
    }

    // --- fault injection --------------------------------------------------

    /// One entry of an attached fault plan, resolved to an absolute step.
    struct ScheduledFault {
        StepCount step = 0;    ///< absolute step index at which the fault fires
        double time = 0.0;     ///< the plan's model time (units of n₀)
        FaultAction action;    ///< what happens
    };

    /// Attaches a fault plan. Must be called before the first interaction:
    /// fault times are model times in units of the *initial* population n₀
    /// (fault at time t fires at step ⌈t·n₀⌉), so the conversion is anchored
    /// at attach. Faults at the same time fire in plan order.
    void set_fault_plan(const FaultPlan& plan) {
        require(steps() == 0, "fault plan must be attached before the run starts");
        fault_n0_ = population_size();
        scheduled_faults_.clear();
        fault_cursor_ = 0;
        silence_until_ = 0;
        scheduled_faults_.reserve(plan.faults.size());
        for (const TimedFault& tf : plan.faults) {
            validate_fault_action(tf.action);
            scheduled_faults_.push_back(ScheduledFault{
                model_time_to_step(tf.time, fault_n0_), tf.time, tf.action});
        }
        std::stable_sort(scheduled_faults_.begin(), scheduled_faults_.end(),
                         [](const ScheduledFault& a, const ScheduledFault& b) {
                             return a.step < b.step;
                         });
    }

    /// Number of faults in the attached plan (0 when none).
    [[nodiscard]] std::size_t fault_count() const noexcept {
        return scheduled_faults_.size();
    }

    /// Number of scheduled faults already applied (monotone during a run;
    /// silence faults count as applied the moment their window opens).
    [[nodiscard]] std::size_t faults_applied() const noexcept { return fault_cursor_; }

    /// The i-th scheduled fault, in firing order.
    [[nodiscard]] const ScheduledFault& scheduled_fault(std::size_t i) const {
        require(i < scheduled_faults_.size(), "scheduled fault index out of range");
        return scheduled_faults_[i];
    }

    /// Initial population size recorded when the fault plan was attached
    /// (0 when no plan is attached) — the n₀ of the model-time contract.
    [[nodiscard]] std::size_t fault_initial_population() const noexcept {
        return fault_n0_;
    }

    /// Runs `count` additional interactions and reports whether every
    /// agent's output stayed put — the stability certificate. Observers are
    /// not consulted during verification (it is a certification suffix, not
    /// part of the trajectory).
    [[nodiscard]] bool verify_outputs_stable(StepCount count) {
        return verify_outputs_stable_impl(count);
    }

    // --- observers --------------------------------------------------------

    /// Attaches an observer for subsequent runs. The observer must stay
    /// alive across every later run/verify call on this simulation (or be
    /// removed with `clear_observers` first); it is never touched outside
    /// those calls, so destruction order relative to the simulation itself
    /// does not matter.
    void add_observer(SimulationObserver& observer) { observers_.push_back(&observer); }

    void clear_observers() noexcept { observers_.clear(); }

    [[nodiscard]] std::size_t observer_count() const noexcept { return observers_.size(); }

    // --- checkpointing ----------------------------------------------------

    /// Serialises the complete run state into `w`: a run-identity preamble
    /// (protocol / engine / batch-mode names, so restoring into a mismatched
    /// simulation fails loudly instead of reading garbage), the engine
    /// (configuration, every PRNG stream position, counters), the fault-plan
    /// progress and the state of every attached observer. Legal between run
    /// calls only — engines checkpoint at round boundaries.
    void save_checkpoint(CheckpointWriter& w) const {
        w.str(protocol_name());
        w.str(to_string(engine_kind()));
        w.str(to_string(batch_mode()));
        save_engine_state(w);
        w.u64(fault_n0_);
        w.u64(silence_until_);
        w.u64(fault_cursor_);
        w.u64(scheduled_faults_.size());
        for (const ScheduledFault& fault : scheduled_faults_) {
            w.u64(fault.step);
            w.f64(fault.time);
            w.u8(static_cast<std::uint8_t>(fault.action.kind));
            w.f64(fault.action.fraction);
            w.u64(fault.action.count);
            w.f64(fault.action.duration);
        }
        w.u64(observers_.size());
        for (const SimulationObserver* obs : observers_) {
            CheckpointWriter sub;
            obs->save_state(sub);
            w.str(sub.buffer());  // length-prefixed: a mismatch stays local
        }
    }

    /// Restores a `save_checkpoint` payload into a simulation constructed
    /// with the same protocol, engine, batch mode, seed and thread count,
    /// with the same observers attached in the same order. Deliberately
    /// bypasses `set_fault_plan`'s pre-run precondition: a resumed plan
    /// continues mid-flight, cursor and silence window included.
    void restore_checkpoint(CheckpointReader& r) {
        const std::string proto = r.str();
        require(proto == protocol_name(), "checkpoint was taken on protocol '" +
                                              proto + "', not '" + protocol_name() + "'");
        const std::string engine = r.str();
        require(engine == to_string(engine_kind()),
                "checkpoint was taken on the " + engine + " engine, not " +
                    std::string(to_string(engine_kind())));
        const std::string batch = r.str();
        require(batch == to_string(batch_mode()),
                "checkpoint was taken with batch mode " + batch + ", not " +
                    std::string(to_string(batch_mode())));
        restore_engine_state(r);
        fault_n0_ = r.u64();
        silence_until_ = r.u64();
        fault_cursor_ = r.u64();
        const std::uint64_t fault_count = r.u64();
        scheduled_faults_.clear();
        scheduled_faults_.reserve(fault_count);
        for (std::uint64_t i = 0; i < fault_count; ++i) {
            ScheduledFault fault;
            fault.step = r.u64();
            fault.time = r.f64();
            const std::uint8_t kind = r.u8();
            require(kind <= static_cast<std::uint8_t>(FaultKind::silence),
                    "checkpoint names an unknown fault kind");
            fault.action.kind = static_cast<FaultKind>(kind);
            fault.action.fraction = r.f64();
            fault.action.count = r.u64();
            fault.action.duration = r.f64();
            scheduled_faults_.push_back(fault);
        }
        require(fault_cursor_ <= scheduled_faults_.size(),
                "checkpoint fault cursor out of range");
        const std::uint64_t obs_count = r.u64();
        require(obs_count == observers_.size(),
                "checkpoint was taken with " + std::to_string(obs_count) +
                    " observers attached, not " + std::to_string(observers_.size()));
        for (SimulationObserver* obs : observers_) {
            CheckpointReader sub(r.str());
            obs->restore_state(sub);
            sub.expect_end();
        }
    }

    /// Writes the current run state as a PPCK checkpoint file (persist.hpp:
    /// validated header + checksummed payload, atomic tmp+rename write).
    void write_checkpoint(const std::string& path) const {
        CheckpointWriter w;
        save_checkpoint(w);
        CheckpointHeader header;
        header.protocol = protocol_name();
        header.engine = std::string(to_string(engine_kind()));
        header.batch_mode = std::string(to_string(batch_mode()));
        header.population = population_size();
        header.seed = run_seed_;
        header.threads = run_threads_;
        header.step = steps();
        ppsim::save_checkpoint(path, header, w.buffer());
    }

    /// Restores this simulation from a PPCK file written by
    /// `write_checkpoint`. Container validation (format version, library
    /// version, CPU signature, truncation, checksum) happens in
    /// `load_checkpoint`; run-identity cross-checks in `restore_checkpoint`;
    /// trailing payload bytes fail via `expect_end`. Attach the run's
    /// observers *before* calling this so their progress is restored too.
    void restore_checkpoint_file(const std::string& path) {
        std::string payload;
        (void)load_checkpoint(path, payload);
        CheckpointReader r(std::move(payload));
        restore_checkpoint(r);
        r.expect_end();
    }

    /// Enables periodic mid-run checkpointing: driven runs slice their
    /// chunks at every multiple of `every` steps and rewrite `path` there.
    /// The cadence is part of the replay contract exactly like `--threads`:
    /// pausing at a step moves where the count engines' rounds end, so the
    /// resume-equivalence reference run must checkpoint on the same cadence.
    void set_checkpoint(std::string path, StepCount every) {
        require(every >= 1, "checkpoint cadence must be at least one step");
        checkpoint_path_ = std::move(path);
        checkpoint_every_ = every;
    }

    /// Records the (seed, threads) the simulation was built with, for
    /// checkpoint headers. `make_simulation` sets it; adapters constructed
    /// directly default to (0, 1).
    void set_run_identity(std::uint64_t seed, std::size_t threads) noexcept {
        run_seed_ = seed;
        run_threads_ = threads;
    }
    [[nodiscard]] std::uint64_t run_seed() const noexcept { return run_seed_; }
    [[nodiscard]] std::size_t run_threads() const noexcept { return run_threads_; }

protected:
    virtual RunResult run_for_impl(StepCount count) = 0;
    virtual RunResult run_until_one_leader_impl(StepCount max_steps) = 0;
    virtual bool verify_outputs_stable_impl(StepCount count) = 0;
    /// Applies one non-silence fault action to the engine's configuration.
    virtual void apply_fault_impl(const FaultAction& action) = 0;
    /// Advances the step counter by `count` without any interactions
    /// (transient silence: model time passes, nothing happens).
    virtual void advance_silent_impl(StepCount count) = 0;
    /// Serialises the wrapped engine's full state (typed, engine-specific).
    virtual void save_engine_state(CheckpointWriter& w) const = 0;
    /// Restores what save_engine_state wrote into the wrapped engine.
    virtual void restore_engine_state(CheckpointReader& r) = 0;

private:
    /// Faults not yet fired from the attached plan.
    [[nodiscard]] bool faults_pending() const noexcept {
        return fault_cursor_ < scheduled_faults_.size();
    }

    /// True when the run loop must slice chunks itself (pending faults, an
    /// open silence window, or a periodic checkpoint cadence) instead of
    /// delegating to the engine's loop.
    [[nodiscard]] bool driving_needed() const noexcept {
        return faults_pending() || steps() < silence_until_ || checkpoint_every_ > 0;
    }

    /// The driven run loop: advance in chunks sliced at the earliest
    /// observer deadline and the next scheduled fault, notifying at every
    /// boundary and applying due faults exactly at their step. The engine's
    /// own specialised loop runs inside each chunk. Observers notified at a
    /// fault-step boundary see the *pre-fault* configuration first (the
    /// boundary notify), then the post-fault one (the notify inside
    /// apply_due_faults) — a deadline census at the fault step reports the
    /// world the instant before the fault.
    RunResult run_driven(StepCount budget, bool stop_at_single_leader,
                         bool notify_finish) {
        const StepCount start = steps();
        const StepCount end =
            budget > std::numeric_limits<StepCount>::max() - start
                ? std::numeric_limits<StepCount>::max()
                : start + budget;
        notify();
        apply_due_faults();  // time-0 faults fire before any interaction
        while (true) {
            const StepCount now = steps();
            if (stop_at_single_leader && leader_count() == 1 && !faults_pending()) break;
            if (now >= end) break;
            StepCount next = end;
            for (const SimulationObserver* obs : observers_) {
                next = std::min(next, std::max(obs->next_due(), now + 1));
            }
            if (faults_pending()) {
                next = std::min(next,
                                std::max(scheduled_faults_[fault_cursor_].step, now + 1));
            }
            if (now < silence_until_) next = std::min(next, silence_until_);
            if (checkpoint_every_ > 0) {
                // The next multiple of the cadence strictly past `now` (the
                // one at `now` was written after the previous chunk).
                next = std::min(next,
                                now + (checkpoint_every_ - now % checkpoint_every_));
            }
            const StepCount chunk = next - now;
            if (now < silence_until_) {
                advance_silent_impl(std::min(chunk, silence_until_ - now));
            } else if (stop_at_single_leader && !faults_pending()) {
                (void)run_until_one_leader_impl(chunk);
            } else {
                (void)run_for_impl(chunk);
            }
            notify();
            apply_due_faults();
            maybe_write_periodic_checkpoint();
        }
        if (notify_finish) {
            for (SimulationObserver* obs : observers_) obs->finish(*this);
        }
        return run_for_impl(0);  // assembles the RunResult for the current state
    }

    /// Fires every scheduled fault whose step has been reached. Silence
    /// opens (or extends) the no-interaction window; everything else mutates
    /// the configuration through the engine. Observers are notified after
    /// each applied fault so they can see each post-fault configuration.
    void apply_due_faults() {
        while (faults_pending() && scheduled_faults_[fault_cursor_].step <= steps()) {
            const ScheduledFault& fault = scheduled_faults_[fault_cursor_];
            ++fault_cursor_;
            if (fault.action.kind == FaultKind::silence) {
                const StepCount len = model_time_to_step(fault.action.duration, fault_n0_);
                const StepCount now = steps();
                const StepCount until =
                    len > std::numeric_limits<StepCount>::max() - now
                        ? std::numeric_limits<StepCount>::max()
                        : now + len;
                silence_until_ = std::max(silence_until_, until);
            } else {
                apply_fault_impl(fault.action);
            }
            notify();
        }
    }

    void notify() {
        for (SimulationObserver* obs : observers_) obs->observe(*this);
    }

    /// Writes the periodic checkpoint when the run sits exactly on a cadence
    /// multiple it has not written yet (an engine stopping early inside a
    /// chunk — single leader reached — lands off the multiple and is skipped).
    void maybe_write_periodic_checkpoint() {
        if (checkpoint_every_ == 0) return;
        const StepCount now = steps();
        if (now == 0 || now % checkpoint_every_ != 0 || now == last_checkpoint_step_) {
            return;
        }
        write_checkpoint(checkpoint_path_);
        last_checkpoint_step_ = now;
    }

    std::vector<SimulationObserver*> observers_;
    std::vector<ScheduledFault> scheduled_faults_;  ///< plan, sorted by step
    std::size_t fault_cursor_ = 0;   ///< next scheduled fault to fire
    StepCount silence_until_ = 0;    ///< absolute step where silence ends
    std::size_t fault_n0_ = 0;       ///< population at plan attach (time unit)
    std::string checkpoint_path_;    ///< periodic checkpoint target
    StepCount checkpoint_every_ = 0; ///< cadence in steps (0 = disabled)
    StepCount last_checkpoint_step_ = 0;  ///< last cadence multiple written
    std::uint64_t run_seed_ = 0;     ///< root seed, for checkpoint headers
    std::size_t run_threads_ = 1;    ///< configured threads, for headers
};

/// Runs `sim` to a single leader within `max_steps`, then (optionally)
/// certifies output stability over `verify_steps` extra interactions,
/// demoting `converged` if any output changed. The one shared definition of
/// "run an election" used by the registry, the sweeps and the CLI.
[[nodiscard]] inline RunResult run_to_single_leader(Simulation& sim, StepCount max_steps,
                                                    StepCount verify_steps = 0) {
    RunResult result = sim.run_until_one_leader(max_steps);
    if (verify_steps > 0 && result.converged) {
        if (!sim.verify_outputs_stable(verify_steps)) result.converged = false;
        result.steps = sim.steps();
        result.parallel_time = to_parallel_time(sim.steps(), sim.population_size());
        result.leader_count = sim.leader_count();
    }
    return result;
}

namespace detail {

/// Shared snapshot assembly: histogram (key → count/role) to sorted vector.
inline ConfigurationSnapshot finalize_snapshot(
    StepCount step, std::vector<StateCount>&& counts) {
    ConfigurationSnapshot snapshot;
    snapshot.step = step;
    snapshot.counts = std::move(counts);
    std::sort(snapshot.counts.begin(), snapshot.counts.end(),
              [](const StateCount& a, const StateCount& b) { return a.key < b.key; });
    return snapshot;
}

/// Simulation adapter over the per-interaction agent engine.
template <Protocol P>
class AgentSimulation final : public Simulation {
public:
    AgentSimulation(P proto, std::size_t n, std::uint64_t seed)
        : engine_(std::move(proto), n, seed) {}

    [[nodiscard]] std::size_t population_size() const noexcept override {
        return engine_.population_size();
    }
    [[nodiscard]] StepCount steps() const noexcept override { return engine_.steps(); }
    [[nodiscard]] std::size_t leader_count() const noexcept override {
        return engine_.leader_count();
    }
    [[nodiscard]] std::optional<StepCount> stabilization_step() const noexcept override {
        return engine_.stabilization_step();
    }
    [[nodiscard]] EngineKind engine_kind() const noexcept override {
        return EngineKind::agent;
    }
    [[nodiscard]] std::string protocol_name() const override {
        return std::string(engine_.protocol().name());
    }
    [[nodiscard]] std::size_t live_state_count() const override {
        std::unordered_set<std::uint64_t> keys;
        const P& proto = engine_.protocol();
        for (const auto& state : engine_.population().states()) {
            keys.insert(state_key_of(proto, state));
        }
        return keys.size();
    }
    [[nodiscard]] ConfigurationSnapshot state_counts() const override {
        std::unordered_map<std::uint64_t, StateCount> histogram;
        const P& proto = engine_.protocol();
        for (const auto& state : engine_.population().states()) {
            const std::uint64_t key = state_key_of(proto, state);
            StateCount& entry = histogram[key];
            if (entry.count == 0) {
                entry.key = key;
                entry.role = proto.output(state);
            }
            ++entry.count;
        }
        std::vector<StateCount> counts;
        counts.reserve(histogram.size());
        for (auto& [key, entry] : histogram) counts.push_back(entry);
        return finalize_snapshot(engine_.steps(), std::move(counts));
    }

    /// The wrapped engine, for typed access in tests and examples.
    [[nodiscard]] Engine<P>& engine() noexcept { return engine_; }

protected:
    RunResult run_for_impl(StepCount count) override { return engine_.run_for(count); }
    RunResult run_until_one_leader_impl(StepCount max_steps) override {
        return engine_.run_until_one_leader(max_steps);
    }
    bool verify_outputs_stable_impl(StepCount count) override {
        return engine_.verify_outputs_stable(count);
    }
    void apply_fault_impl(const FaultAction& action) override {
        engine_.apply_fault(action);
    }
    void advance_silent_impl(StepCount count) override {
        engine_.advance_silent(count);
    }
    void save_engine_state(CheckpointWriter& w) const override {
        engine_.save_state(w);
    }
    void restore_engine_state(CheckpointReader& r) override {
        engine_.restore_state(r);
    }

private:
    Engine<P> engine_;
};

/// Simulation adapter over a count-based engine (BatchedEngine<P> /
/// GillespieEngine<P>): the forwarding surface plus the visit_counts-based
/// snapshot assembly, shared so a change to the adapter surface lands once
/// for every count engine. `batch_mode()` is reported when the engine has
/// one (the batched engine's pairing strategy); engines without the notion
/// keep the base default.
template <typename P, typename EngineT, EngineKind kind_v>
    requires InternableProtocol<P>
class CountSimulation final : public Simulation {
public:
    template <typename... EngineArgs>
    explicit CountSimulation(P proto, std::size_t n, std::uint64_t seed,
                             EngineArgs&&... engine_args)
        : engine_(std::move(proto), n, seed, std::forward<EngineArgs>(engine_args)...) {}

    [[nodiscard]] std::size_t population_size() const noexcept override {
        return engine_.population_size();
    }
    [[nodiscard]] StepCount steps() const noexcept override { return engine_.steps(); }
    [[nodiscard]] std::size_t leader_count() const noexcept override {
        return engine_.leader_count();
    }
    [[nodiscard]] std::optional<StepCount> stabilization_step() const noexcept override {
        return engine_.stabilization_step();
    }
    [[nodiscard]] EngineKind engine_kind() const noexcept override { return kind_v; }
    [[nodiscard]] BatchMode batch_mode() const noexcept override {
        if constexpr (requires { engine_.batch_mode(); }) {
            return engine_.batch_mode();
        } else {
            return Simulation::batch_mode();
        }
    }
    [[nodiscard]] std::string protocol_name() const override {
        return std::string(engine_.protocol().name());
    }
    [[nodiscard]] std::size_t live_state_count() const override {
        return engine_.live_state_count();
    }
    [[nodiscard]] ConfigurationSnapshot state_counts() const override {
        std::vector<StateCount> counts;
        const P& proto = engine_.protocol();
        engine_.visit_counts([&](const auto& state, std::uint64_t count, Role role) {
            counts.push_back(StateCount{state_key_of(proto, state), count, role});
        });
        return finalize_snapshot(engine_.steps(), std::move(counts));
    }

    /// The wrapped engine, for typed access in tests and examples.
    [[nodiscard]] EngineT& engine() noexcept { return engine_; }

protected:
    RunResult run_for_impl(StepCount count) override { return engine_.run_for(count); }
    RunResult run_until_one_leader_impl(StepCount max_steps) override {
        return engine_.run_until_one_leader(max_steps);
    }
    bool verify_outputs_stable_impl(StepCount count) override {
        return engine_.verify_outputs_stable(count);
    }
    void apply_fault_impl(const FaultAction& action) override {
        engine_.apply_fault(action);
    }
    void advance_silent_impl(StepCount count) override {
        engine_.advance_silent(count);
    }
    void save_engine_state(CheckpointWriter& w) const override {
        engine_.save_state(w);
    }
    void restore_engine_state(CheckpointReader& r) override {
        engine_.restore_state(r);
    }

private:
    EngineT engine_;
};

/// Simulation adapter over the count-based batched engine.
template <typename P>
using BatchedSimulation = CountSimulation<P, BatchedEngine<P>, EngineKind::batched>;

/// Simulation adapter over the reaction-rate Gillespie engine.
template <typename P>
using GillespieSimulation = CountSimulation<P, GillespieEngine<P>, EngineKind::gillespie>;

/// Simulation adapter over the adaptive hybrid meta-engine.
template <typename P>
using HybridSimulation = CountSimulation<P, HybridEngine<P>, EngineKind::hybrid>;

}  // namespace detail

/// Builds a type-erased simulation from a protocol factory (size → protocol
/// instance) on the selected back-end. The single place the
/// agent/batched/gillespie choice is made for every type-erased consumer;
/// adding an engine means adding a row to `engine_table` and a case here.
/// `batch_mode` selects the batched engine's pairing strategy
/// (batch_pairing.hpp) and is ignored by the other engines (the gillespie
/// engine's τ-leap path always chooses its pairing per leap). `threads`
/// sets the count engines' intra-run worker count (1 = the sequential
/// engines, 0 = hardware concurrency; see shard.hpp for the stream-split
/// contract) and is ignored by the agent engine.
template <typename Factory>
[[nodiscard]] std::unique_ptr<Simulation> make_simulation(
    const Factory& factory, std::size_t n, std::uint64_t seed, EngineKind kind,
    BatchMode batch_mode = BatchMode::automatic, std::size_t threads = 1) {
    using P = std::decay_t<decltype(factory(std::size_t{2}))>;
    static_assert(Protocol<P>, "factory must produce a Protocol");
    // Record the run identity on whatever we hand out, so checkpoint headers
    // can name the seed and thread count the run was built with.
    const auto with_identity = [seed, threads](std::unique_ptr<Simulation> sim) {
        sim->set_run_identity(seed, threads);
        return sim;
    };
    if (kind == EngineKind::batched) {
        if constexpr (InternableProtocol<P>) {
            return with_identity(std::make_unique<detail::BatchedSimulation<P>>(
                factory(n), n, seed, batch_mode, threads));
        } else {
            throw InvalidArgument(
                "protocol has no injective state key: batched engine unavailable");
        }
    }
    if (kind == EngineKind::gillespie) {
        if constexpr (InternableProtocol<P>) {
            return with_identity(std::make_unique<detail::GillespieSimulation<P>>(
                factory(n), n, seed, threads));
        } else {
            throw InvalidArgument(
                "protocol has no injective state key: gillespie engine unavailable");
        }
    }
    if (kind == EngineKind::hybrid) {
        if constexpr (InternableProtocol<P>) {
            return with_identity(std::make_unique<detail::HybridSimulation<P>>(
                factory(n), n, seed, threads));
        } else {
            throw InvalidArgument(
                "protocol has no injective state key: hybrid engine unavailable");
        }
    }
    return with_identity(
        std::make_unique<detail::AgentSimulation<P>>(factory(n), n, seed));
}

}  // namespace ppsim
