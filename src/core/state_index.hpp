/// \file state_index.hpp
/// \brief State interning: maps protocol states to dense integer ids on
/// first sight, so count-based simulation works for *any* registered
/// protocol — including PLL's composite 16-byte state — without the engine
/// knowing the state layout.
///
/// Identity is the protocol's canonical 64-bit key (`state_key_of`), which
/// every protocol either provides explicitly (injective `state_key()`) or
/// inherits from its raw bits when the state fits in 8 bytes. Dense ids are
/// assigned in first-seen order, so for a fixed seed the id assignment — and
/// therefore the whole batched simulation — is deterministic.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "protocol.hpp"

namespace ppsim {

/// Dense id of an interned state. 32 bits bound the table at 2^32 distinct
/// states, far beyond any protocol in this library (PLL has O(log n)).
using StateId = std::uint32_t;

/// Sentinel for "no state id" — never assigned by interning (the index
/// refuses to grow that far). The transition cache's empty-slot marker and
/// the engines' exclusion sentinels are all this one constant.
inline constexpr StateId invalid_state_id = std::numeric_limits<StateId>::max();

/// Interning table for one protocol's states: key → dense id, plus the
/// per-id state value and cached output role (so the hot path never calls
/// the protocol's output map twice for the same state).
template <typename P>
    requires InternableProtocol<P>
class StateIndex {
public:
    using State = typename P::State;

    /// Returns the dense id of `s`, interning it on first sight.
    StateId intern(const P& proto, const State& s) {
        const std::uint64_t key = state_key_of(proto, s);
        const auto it = by_key_.find(key);
        if (it != by_key_.end()) return it->second;
        const auto id = static_cast<StateId>(states_.size());
        ensure(states_.size() < std::numeric_limits<StateId>::max(),
               "state index overflow: protocol produced 2^32 distinct states");
        states_.push_back(s);
        roles_.push_back(proto.output(s));
        by_key_.emplace(key, id);
        return id;
    }

    /// Number of states interned so far.
    [[nodiscard]] std::size_t size() const noexcept { return states_.size(); }

    /// Dense id of the state with canonical key `key`, if interned.
    [[nodiscard]] std::optional<StateId> find(std::uint64_t key) const {
        const auto it = by_key_.find(key);
        if (it == by_key_.end()) return std::nullopt;
        return it->second;
    }

    /// The state value behind a dense id.
    [[nodiscard]] const State& state(StateId id) const noexcept { return states_[id]; }

    /// Cached output role of a dense id.
    [[nodiscard]] Role role(StateId id) const noexcept { return roles_[id]; }

    /// True when the id's output is leader (hot-path shorthand).
    [[nodiscard]] bool is_leader(StateId id) const noexcept {
        return roles_[id] == Role::leader;
    }

private:
    std::vector<State> states_;
    std::vector<Role> roles_;
    std::unordered_map<std::uint64_t, StateId> by_key_;
};

}  // namespace ppsim
