#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common.hpp"

namespace ppsim {

// --- RunningStats -----------------------------------------------------------

void RunningStats::add(double x) noexcept {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
    return count_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ci_half_width(double level) const {
    // Normal-approximation z values for the levels the harness uses. The
    // sample counts in experiments (≥ 30) make the normal approximation fine.
    double z = 1.959964;
    if (level == 0.90) {
        z = 1.644854;
    } else if (level == 0.95) {
        z = 1.959964;
    } else if (level == 0.99) {
        z = 2.575829;
    } else {
        throw InvalidArgument("unsupported confidence level; use 0.90, 0.95 or 0.99");
    }
    return z * sem();
}

// --- SampleSet ---------------------------------------------------------------

void SampleSet::add(std::span<const double> xs) {
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
}

void SampleSet::ensure_sorted() const {
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double SampleSet::mean() const noexcept {
    if (samples_.empty()) return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double SampleSet::variance() const noexcept {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return acc / static_cast<double>(samples_.size() - 1);
}

double SampleSet::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSet::min() const noexcept {
    return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const noexcept {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::percentile(double p) const {
    require(!samples_.empty(), "percentile of an empty sample set");
    require(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
    ensure_sorted();
    if (samples_.size() == 1) return samples_.front();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
    require(bins >= 1, "histogram needs at least one bin");
    require(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) noexcept {
    const double span = hi_ - lo_;
    auto idx = static_cast<long long>((x - lo_) / span * static_cast<double>(counts_.size()));
    idx = std::clamp<long long>(idx, 0, static_cast<long long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double Histogram::bin_lower(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_upper(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
    std::ostringstream out;
    const std::uint64_t peak = counts_.empty()
        ? 0
        : *std::max_element(counts_.begin(), counts_.end());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double frac = peak == 0 ? 0.0
                                      : static_cast<double>(counts_[i]) /
                                            static_cast<double>(peak);
        const auto bar = static_cast<std::size_t>(frac * static_cast<double>(width));
        out << "[" << bin_lower(i) << ", " << bin_upper(i) << ") "
            << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return out.str();
}

// --- FrequencyTable ------------------------------------------------------------

std::size_t FrequencyTable::key_index(std::uint64_t key) {
    if (key >= counts_.size()) counts_.resize(key + 1, 0);
    return static_cast<std::size_t>(key);
}

std::uint64_t FrequencyTable::count(std::uint64_t key) const noexcept {
    return key < counts_.size() ? counts_[key] : 0;
}

double FrequencyTable::fraction(std::uint64_t key) const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(count(key)) / static_cast<double>(total_);
}

std::uint64_t FrequencyTable::max_key() const noexcept {
    for (std::size_t i = counts_.size(); i-- > 0;) {
        if (counts_[i] != 0) return i;
    }
    return 0;
}

// --- fits ----------------------------------------------------------------------

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
    require(x.size() == y.size(), "fit requires equally many x and y values");
    require(x.size() >= 2, "fit requires at least two points");
    const double n = static_cast<double>(x.size());
    double sx = 0.0;
    double sy = 0.0;
    double sxx = 0.0;
    double sxy = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
        syy += y[i] * y[i];
    }
    const double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (denom == 0.0) {
        fit.slope = 0.0;
        fit.intercept = sy / n;
        fit.r_squared = 0.0;
        return fit;
    }
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    const double ss_tot = syy - sy * sy / n;
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double e = y[i] - (fit.slope * x[i] + fit.intercept);
        ss_res += e * e;
    }
    fit.r_squared = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
    return fit;
}

LinearFit fit_log2(std::span<const double> x, std::span<const double> y) {
    std::vector<double> lx(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        require(x[i] > 0.0, "fit_log2 requires positive x values");
        lx[i] = std::log2(x[i]);
    }
    return fit_linear(lx, y);
}

LinearFit fit_power_law(std::span<const double> x, std::span<const double> y) {
    std::vector<double> lx(x.size());
    std::vector<double> ly(y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        require(x[i] > 0.0 && y[i] > 0.0, "fit_power_law requires positive values");
        lx[i] = std::log2(x[i]);
        ly[i] = std::log2(y[i]);
    }
    return fit_linear(lx, ly);
}

double ks_statistic(std::span<const double> a, std::span<const double> b) {
    require(!a.empty() && !b.empty(), "ks_statistic requires two non-empty samples");
    std::vector<double> sa(a.begin(), a.end());
    std::vector<double> sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    const double na = static_cast<double>(sa.size());
    const double nb = static_cast<double>(sb.size());
    std::size_t ia = 0;
    std::size_t ib = 0;
    double d = 0.0;
    // Merge walk over both sorted samples: after consuming every value ≤ x
    // the CDF gap at x is |ia/na − ib/nb|. Ties are consumed from both sides
    // before the gap is read, so tied observations never inflate D.
    while (ia < sa.size() && ib < sb.size()) {
        const double x = std::min(sa[ia], sb[ib]);
        while (ia < sa.size() && sa[ia] == x) ++ia;
        while (ib < sb.size() && sb[ib] == x) ++ib;
        d = std::max(d, std::abs(static_cast<double>(ia) / na -
                                 static_cast<double>(ib) / nb));
    }
    return d;
}

double ks_p_value(double statistic, std::size_t n1, std::size_t n2) {
    require(n1 > 0 && n2 > 0, "ks_p_value requires non-empty samples");
    const double ne = static_cast<double>(n1) * static_cast<double>(n2) /
                      static_cast<double>(n1 + n2);
    const double sqrt_ne = std::sqrt(ne);
    // Stephens' correction makes the asymptotic Kolmogorov distribution
    // accurate down to small effective sample sizes (Numerical Recipes
    // §14.3.3).
    const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * statistic;
    if (lambda < 1e-9) return 1.0;
    // Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²) — alternating, and
    // rapidly convergent except as λ → 0, where Q → 1. Following Numerical
    // Recipes' probks, non-convergence within the term budget is reported
    // as p = 1: it only happens for λ small enough that the distributions
    // are statistically indistinguishable at these sample sizes.
    double sum = 0.0;
    double sign = 1.0;
    const double l2 = -2.0 * lambda * lambda;
    for (int j = 1; j <= 100; ++j) {
        const double term = std::exp(l2 * static_cast<double>(j) * static_cast<double>(j));
        sum += sign * term;
        if (term < 1e-12 * std::abs(sum)) {
            return std::clamp(2.0 * sum, 0.0, 1.0);
        }
        sign = -sign;
    }
    return 1.0;  // series not converged: λ ≈ 0, no evidence of a difference
}

KsTestResult ks_two_sample(std::span<const double> a, std::span<const double> b) {
    KsTestResult result;
    result.statistic = ks_statistic(a, b);
    result.p_value = ks_p_value(result.statistic, a.size(), b.size());
    return result;
}

ProportionCi wilson_interval(std::uint64_t successes, std::uint64_t trials, double level) {
    require(trials > 0, "wilson_interval requires at least one trial");
    require(successes <= trials, "successes cannot exceed trials");
    double z = 1.959964;
    if (level == 0.90) {
        z = 1.644854;
    } else if (level == 0.99) {
        z = 2.575829;
    } else if (level != 0.95) {
        throw InvalidArgument("unsupported confidence level; use 0.90, 0.95 or 0.99");
    }
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double centre = (p + z2 / (2.0 * n)) / denom;
    const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    ProportionCi ci;
    ci.estimate = p;
    ci.lower = std::max(0.0, centre - margin);
    ci.upper = std::min(1.0, centre + margin);
    return ci;
}

}  // namespace ppsim
