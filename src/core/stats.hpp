/// \file stats.hpp
/// \brief Statistics toolkit: summaries, percentiles, histograms, confidence
/// intervals and least-squares scaling fits used by the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ppsim {

/// Streaming mean/variance accumulator (Welford's algorithm) — numerically
/// stable single-pass summary used by all experiment aggregations.
class RunningStats {
public:
    void add(double x) noexcept;

    /// Merges another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Unbiased sample variance; 0 when fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Standard error of the mean; 0 when fewer than two samples.
    [[nodiscard]] double sem() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

    /// Half-width of the normal-approximation confidence interval at the
    /// given level (supported levels: 0.90, 0.95, 0.99).
    [[nodiscard]] double ci_half_width(double level = 0.95) const;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Full-sample summary with percentiles (keeps all samples).
class SampleSet {
public:
    void add(double x) { samples_.push_back(x); }
    void add(std::span<const double> xs);

    [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
    [[nodiscard]] double mean() const noexcept;
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept;
    [[nodiscard]] double max() const noexcept;

    /// Linear-interpolated percentile, p in [0, 100].
    [[nodiscard]] double percentile(double p) const;
    [[nodiscard]] double median() const { return percentile(50.0); }

    [[nodiscard]] std::span<const double> samples() const noexcept { return samples_; }

private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
    void ensure_sorted() const;
};

/// Fixed-bin histogram over [lo, hi); samples outside the range land in
/// saturating edge bins so no observation is silently dropped.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;

    [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
    [[nodiscard]] std::uint64_t bin(std::size_t i) const noexcept { return counts_[i]; }
    [[nodiscard]] double bin_lower(std::size_t i) const noexcept;
    [[nodiscard]] double bin_upper(std::size_t i) const noexcept;
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

    /// Renders a compact ASCII bar chart (for bench/example output).
    [[nodiscard]] std::string render(std::size_t width = 50) const;

private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/// Integer-keyed frequency counter (e.g. "how many runs ended with i
/// surviving leaders"), used by the Lemma-7 survivor-distribution experiment.
class FrequencyTable {
public:
    void add(std::uint64_t key) { ++counts_[key_index(key)], ++total_; }

    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] std::uint64_t count(std::uint64_t key) const noexcept;
    [[nodiscard]] double fraction(std::uint64_t key) const noexcept;
    [[nodiscard]] std::uint64_t max_key() const noexcept;

private:
    std::size_t key_index(std::uint64_t key);
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/// Result of an ordinary least-squares fit y ≈ slope·x + intercept.
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;  ///< coefficient of determination
};

/// Ordinary least-squares fit over paired samples. Requires ≥ 2 points.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Fits y ≈ a·log2(x) + b. Returns {slope=a, intercept=b}. Used to test
/// Theorem 1's O(log n) scaling: a good fit with stable `a` across the top
/// octaves is the empirical signature of logarithmic growth.
[[nodiscard]] LinearFit fit_log2(std::span<const double> x, std::span<const double> y);

/// Fits y ≈ c·x^e via log-log regression (returns slope=e, intercept=log2 c).
/// Used to estimate growth exponents, e.g. the Ω(n) check on the O(1)-state
/// baseline for Table 2.
[[nodiscard]] LinearFit fit_power_law(std::span<const double> x, std::span<const double> y);

/// Result of a two-sample Kolmogorov–Smirnov test: the KS statistic (the
/// supremum distance between the two empirical CDFs) and the asymptotic
/// p-value of the null hypothesis that both samples come from the same
/// distribution. The cross-engine agreement harness
/// (tests/test_statistical.cpp) runs this over stabilisation-time samples.
struct KsTestResult {
    double statistic = 0.0;
    double p_value = 1.0;
};

/// Two-sample KS statistic sup_x |F_a(x) − F_b(x)|. Requires both samples
/// non-empty; the inputs need not be sorted (copies are sorted internally).
[[nodiscard]] double ks_statistic(std::span<const double> a, std::span<const double> b);

/// Asymptotic p-value of a two-sample KS statistic for sample sizes n1, n2
/// (Kolmogorov distribution with the Stephens small-sample correction, as in
/// Numerical Recipes). Accurate for n1, n2 ≳ 20 — the harness uses hundreds.
[[nodiscard]] double ks_p_value(double statistic, std::size_t n1, std::size_t n2);

/// Convenience: statistic + p-value in one call.
[[nodiscard]] KsTestResult ks_two_sample(std::span<const double> a,
                                         std::span<const double> b);

/// Two-sided binomial confidence interval (Wilson score) for a proportion.
struct ProportionCi {
    double estimate = 0.0;
    double lower = 0.0;
    double upper = 0.0;
};
[[nodiscard]] ProportionCi wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                           double level = 0.95);

}  // namespace ppsim
