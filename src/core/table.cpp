#include "table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common.hpp"

namespace ppsim {

void TextTable::add_column(std::string heading, Align align) {
    require(rows_.empty(), "declare all columns before adding rows");
    headings_.push_back(std::move(heading));
    aligns_.push_back(align);
}

void TextTable::add_row(std::vector<std::string> cells) {
    require(cells.size() == headings_.size(),
            "row has " + std::to_string(cells.size()) + " cells but table has " +
                std::to_string(headings_.size()) + " columns");
    rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::render(std::string_view title) const {
    std::vector<std::size_t> widths(headings_.size());
    for (std::size_t c = 0; c < headings_.size(); ++c) widths[c] = headings_[c].size();
    for (const Row& row : rows_) {
        if (row.separator) continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            widths[c] = std::max(widths[c], row.cells[c].size());
        }
    }

    const auto pad = [](const std::string& s, std::size_t w, Align a) {
        if (s.size() >= w) return s;
        const std::string fill(w - s.size(), ' ');
        return a == Align::left ? s + fill : fill + s;
    };

    std::ostringstream out;
    if (!title.empty()) out << title << '\n';

    const auto emit_rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            out << std::string(widths[c] + 2, '-');
            out << (c + 1 < widths.size() ? "+" : "\n");
        }
    };

    for (std::size_t c = 0; c < headings_.size(); ++c) {
        out << ' ' << pad(headings_[c], widths[c], Align::left) << ' ';
        out << (c + 1 < headings_.size() ? "|" : "\n");
    }
    emit_rule();
    for (const Row& row : rows_) {
        if (row.separator) {
            emit_rule();
            continue;
        }
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            out << ' ' << pad(row.cells[c], widths[c], aligns_[c]) << ' ';
            out << (c + 1 < row.cells.size() ? "|" : "\n");
        }
    }
    return out.str();
}

std::string format_double(double value, int digits) {
    if (std::isnan(value)) return "n/a";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return buf;
}

std::string format_probability(double value) {
    if (std::isnan(value)) return "n/a";
    if (value == 0.0) return "0";
    if (value >= 0.01) return format_double(value, 4);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2e", value);
    return buf;
}

std::string format_with_ci(double value, double half_width, int digits) {
    return format_double(value, digits) + " ± " + format_double(half_width, digits);
}

}  // namespace ppsim
