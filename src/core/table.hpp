/// \file table.hpp
/// \brief ASCII table renderer: the bench binaries print paper-style tables
/// (Table 1/2/3 reproductions) through this formatter.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ppsim {

/// Column alignment within a rendered table.
enum class Align { left, right };

/// A simple fixed-schema ASCII table. Columns are declared once; rows are
/// appended as vectors of pre-formatted cells. Rendering pads each column to
/// its widest cell and draws a header rule, e.g.
///
///   protocol    | states | time (par.)
///   ------------+--------+------------
///   angluin06   |      2 |      512.31
///   pll         |    904 |       14.02
class TextTable {
public:
    /// Declares a column. All columns must be declared before any row.
    void add_column(std::string heading, Align align = Align::right);

    /// Appends a row; must have exactly one cell per declared column.
    void add_row(std::vector<std::string> cells);

    /// Appends a horizontal separator row.
    void add_separator();

    [[nodiscard]] std::size_t column_count() const noexcept { return headings_.size(); }
    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Renders the table with an optional title line above it.
    [[nodiscard]] std::string render(std::string_view title = {}) const;

private:
    struct Row {
        bool separator = false;
        std::vector<std::string> cells;
    };
    std::vector<std::string> headings_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

/// Formats a double with `digits` places after the decimal point.
[[nodiscard]] std::string format_double(double value, int digits = 2);

/// Formats a double in scientific-ish compact form (e.g. for probabilities).
[[nodiscard]] std::string format_probability(double value);

/// Formats `value ± half_width`.
[[nodiscard]] std::string format_with_ci(double value, double half_width, int digits = 2);

}  // namespace ppsim
