#include "thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>

namespace ppsim {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        const std::lock_guard lock(mutex_);
        ensure(!stopping_, "submit on a stopping ThreadPool");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        // The documented submit contract: tasks must not throw. Catch-and-
        // terminate here makes the contract explicit and testable instead of
        // relying on the implicit std::thread terminate path.
        try {
            task();
        } catch (const std::exception& e) {
            std::fprintf(stderr, "ppsim: exception escaped a ThreadPool task: %s\n",
                         e.what());
            std::terminate();
        } catch (...) {
            std::fprintf(stderr, "ppsim: exception escaped a ThreadPool task\n");
            std::terminate();
        }
        {
            const std::lock_guard lock(mutex_);
            --in_flight_;
        }
        idle_.notify_all();
    }
}

namespace {

/// Shared state of one for_each call. Helpers submitted to the pool hold a
/// shared_ptr: a helper that only gets scheduled after the call returned
/// finds `next >= count` and exits without touching `fn` (which lives in
/// here, copied, precisely so a late helper never dereferences a dead frame).
struct ForEachControl {
    std::function<void(std::size_t)> fn;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable all_done;

    /// Claims and runs indices until none remain. Every claimed index is
    /// completed before the owning for_each returns (the caller waits on
    /// `done`), so `fn` is alive for the whole body.
    void run() {
        while (true) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            fn(i);
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
                { const std::lock_guard lock(mutex); }  // pair with the waiter
                all_done.notify_all();
            }
        }
    }
};

}  // namespace

void ThreadPool::for_each(std::size_t count, const std::function<void(std::size_t)>& fn,
                          std::size_t max_concurrency) {
    if (count == 0) return;
    std::size_t helpers = std::min(workers_.size(), count - 1);
    if (max_concurrency != 0) {
        helpers = std::min(helpers, max_concurrency - 1);
    }
    if (helpers == 0) {  // inline path: nothing to coordinate
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    auto ctl = std::make_shared<ForEachControl>();
    ctl->fn = fn;
    ctl->count = count;
    for (std::size_t h = 0; h < helpers; ++h) {
        submit([ctl] { ctl->run(); });
    }
    ctl->run();  // the caller participates — see the header's deadlock note
    std::unique_lock lock(ctl->mutex);
    ctl->all_done.wait(lock, [&] {
        return ctl->done.load(std::memory_order_acquire) == ctl->count;
    });
}

void ThreadPool::parallel_for(std::size_t count, std::size_t threads,
                              const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    threads = std::min(threads, count);
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> team;
    team.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        team.emplace_back([&] {
            while (true) {
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count) return;
                fn(i);
            }
        });
    }
    for (std::thread& member : team) member.join();
}

ThreadPool& shared_pool() {
    // hardware_concurrency − 1 workers (min 1): the for_each caller is the
    // extra runner, so concurrency tops out at the hardware thread count.
    static ThreadPool pool(std::max<std::size_t>(
        1, std::max<std::size_t>(1, std::thread::hardware_concurrency()) - 1));
    return pool;
}

}  // namespace ppsim
