#include "thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace ppsim {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        const std::lock_guard lock(mutex_);
        ensure(!stopping_, "submit on a stopping ThreadPool");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        task();
        {
            const std::lock_guard lock(mutex_);
            --in_flight_;
        }
        idle_.notify_all();
    }
}

void ThreadPool::parallel_for(std::size_t count, std::size_t threads,
                              const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    threads = std::min(threads, count);
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> team;
    team.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        team.emplace_back([&] {
            while (true) {
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count) return;
                fn(i);
            }
        });
    }
    for (std::thread& member : team) member.join();
}

}  // namespace ppsim
