/// \file thread_pool.hpp
/// \brief A small fixed-size thread pool shared by the parallelism layers:
/// independent simulation repetitions (one PRNG stream per task via
/// derive_seed) and the count engines' intra-run sharding (shard.hpp).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common.hpp"

namespace ppsim {

/// Fixed-size pool of worker threads executing queued tasks FIFO.
/// Destruction waits for all queued tasks to finish (no detached work).
class ThreadPool {
public:
    /// \param threads  worker count; 0 means hardware_concurrency (min 1).
    explicit ThreadPool(std::size_t threads = 0);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /// Enqueues a task. Tasks must not throw: an exception escaping a task is
    /// caught in the worker loop, reported to stderr, and terminates the
    /// program (tasks should capture and report their errors). Enforced
    /// explicitly — tests/test_thread_pool.cpp pins the contract.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has completed, including tasks
    /// submitted by other tasks while the wait is in progress.
    void wait_idle();

    [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

    /// Runs fn(0), fn(1), …, fn(count−1) across this pool's workers and
    /// returns when all have completed. The calling thread participates as a
    /// runner, so (a) concurrency is up to thread_count() + 1 and (b) calling
    /// for_each from inside a pool task cannot deadlock — a nested call whose
    /// helpers never get a free worker is drained entirely by its caller.
    ///
    /// `max_concurrency` caps the number of threads running `fn` (0 = no cap
    /// beyond the pool size; 1 = run everything inline on the caller). An
    /// exception escaping `fn` on a *worker* terminates (the submit
    /// contract); on the calling thread it propagates to the caller.
    void for_each(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t max_concurrency = 0);

    /// Runs `count` indexed tasks and waits for completion: fn(0), fn(1), …,
    /// fn(count−1), on a fresh thread team of exactly `threads` members
    /// (0 = hardware concurrency). Unlike `shared_pool().for_each`, this can
    /// exceed the hardware thread count when explicitly asked to — the tool
    /// for tests that require genuine concurrency. Library code paths should
    /// prefer the shared pool, which never oversubscribes.
    static void parallel_for(std::size_t count, std::size_t threads,
                             const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

/// The process-wide pool used by the sweep/estimator layers. Sized to
/// hardware_concurrency − 1 workers (min 1): for_each callers participate as
/// runners, so total concurrency tops out at the hardware thread count and
/// nested parallel layers (a sweep over repetitions whose engines shard
/// internally) cannot multiply thread teams — they share this one.
[[nodiscard]] ThreadPool& shared_pool();

}  // namespace ppsim
