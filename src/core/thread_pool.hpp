/// \file thread_pool.hpp
/// \brief A small fixed-size thread pool for running independent simulation
/// repetitions in parallel (one PRNG stream per task via derive_seed).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common.hpp"

namespace ppsim {

/// Fixed-size pool of worker threads executing queued tasks FIFO.
/// Destruction waits for all queued tasks to finish (no detached work).
class ThreadPool {
public:
    /// \param threads  worker count; 0 means hardware_concurrency (min 1).
    explicit ThreadPool(std::size_t threads = 0);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool();

    /// Enqueues a task. Tasks must not throw; exceptions escaping a task
    /// terminate the program (tasks should capture and report their errors).
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has completed.
    void wait_idle();

    [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

    /// Runs `count` indexed tasks across the pool and waits for completion:
    /// fn(0), fn(1), …, fn(count−1). The common pattern for seed sweeps.
    static void parallel_for(std::size_t count, std::size_t threads,
                             const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

}  // namespace ppsim
