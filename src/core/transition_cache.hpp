/// \file transition_cache.hpp
/// \brief Memoised transition table shared by the count-based engines
/// (BatchedEngine, GillespieEngine): ordered (initiator, responder) state-id
/// pairs → cached transition outputs, leader-count delta and role-change
/// flag.
///
/// Transitions between ids below the current dense dimension live in a flat
/// matrix (2–3 ns lookups; the hot sub-block is small and cache resident);
/// the dimension doubles with the interned state count up to `dense_cap`,
/// beyond which an open-addressing table takes over. The cache knows nothing
/// about protocols — callers supply a compute callback on miss, so the one
/// implementation serves every engine that works on interned state ids.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "random.hpp"
#include "state_index.hpp"

namespace ppsim {

// (CachedTransition and TransitionCache below; compute_cached_transition —
// the one shared definition of a cached transition's semantics — follows
// them.)

/// One memoised transition: output ids plus the leader-count delta and
/// whether any output symbol changed (verify_outputs_stable). out_a ==
/// invalid_state marks an empty slot. For rate-annotated protocols
/// (RatedProtocol, protocol.hpp) the entry also memoises the *firing
/// probability* rate(a, b) / max_rate() of the input pair, so the engines'
/// thinning draws never re-evaluate the protocol's rate function on a hot
/// path; unrated protocols keep the default 1 (never thinned).
struct CachedTransition {
    /// Sentinel id marking an empty cache slot (= the shared
    /// invalid_state_id from state_index.hpp).
    static constexpr StateId invalid_state = invalid_state_id;

    StateId out_a = invalid_state;
    StateId out_b = invalid_state;
    float fire_weight = 1.0F;  ///< rate(a, b) / max_rate(), clamped to [0, 1]
    std::int8_t leader_delta = 0;
    bool role_changed = false;
};

/// Memoised (initiator id, responder id) → CachedTransition table: dense
/// matrix for low ids, open-addressing hash map beyond.
class TransitionCache {
public:
    /// Ids below this cap use the dense matrix; beyond it (protocols with
    /// thousands of live states, e.g. PLL's timer×colour product) the
    /// overflow table takes over.
    static constexpr StateId dense_cap = 1024;

    /// Returns the cached transition for ordered pair (a, b), invoking
    /// `compute(a, b) -> CachedTransition` on first sight. The callback may
    /// re-enter the caller's interning (it never touches this cache).
    template <typename Compute>
    const CachedTransition& get(StateId a, StateId b, Compute&& compute) {
        if (a < dense_dim_ && b < dense_dim_) {
            CachedTransition& slot = dense_cache_[a * dense_dim_ + b];
            if (slot.out_a == CachedTransition::invalid_state) slot = compute(a, b);
            return slot;
        }
        if (a < dense_cap && b < dense_cap) {
            grow_dense(std::max(a, b));
            CachedTransition& slot = dense_cache_[a * dense_dim_ + b];
            if (slot.out_a == CachedTransition::invalid_state) slot = compute(a, b);
            return slot;
        }
        const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32U) | b;
        if (CachedTransition* hit = overflow_cache_.find(key)) return *hit;
        return *overflow_cache_.insert(key, compute(a, b));
    }

    /// Read-only lookup: the cached transition for ordered pair (a, b), or
    /// nullptr when absent (including when the dense matrix would need to
    /// grow to hold it). Never mutates, so it is safe to call concurrently
    /// from the engines' sharded read phase after a sequential warm pass has
    /// populated every pair the round will visit.
    [[nodiscard]] const CachedTransition* find(StateId a, StateId b) const noexcept {
        if (a < dense_dim_ && b < dense_dim_) {
            const CachedTransition& slot = dense_cache_[a * dense_dim_ + b];
            return slot.out_a == CachedTransition::invalid_state ? nullptr : &slot;
        }
        if (a < dense_cap && b < dense_cap) return nullptr;  // needs grow_dense
        const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32U) | b;
        return overflow_cache_.find(key);
    }

    /// Current dense-matrix dimension. A warm pass that sees this move has
    /// had earlier entries dropped by `grow_dense` and should re-warm.
    [[nodiscard]] StateId dense_dimension() const noexcept { return dense_dim_; }

private:
    /// Minimal open-addressing hash table for transitions between high ids.
    /// Linear probing over a power-of-two slot array: one cache line per hit
    /// in the common case, vs. two-plus for unordered_map.
    class FlatTransitionMap {
    public:
        [[nodiscard]] CachedTransition* find(std::uint64_t key) noexcept {
            if (slots_.empty()) return nullptr;
            for (std::size_t i = mix(key) & mask_;; i = (i + 1) & mask_) {
                Slot& slot = slots_[i];
                if (slot.value.out_a == CachedTransition::invalid_state) return nullptr;
                if (slot.key == key) return &slot.value;
            }
        }

        [[nodiscard]] const CachedTransition* find(std::uint64_t key) const noexcept {
            if (slots_.empty()) return nullptr;
            for (std::size_t i = mix(key) & mask_;; i = (i + 1) & mask_) {
                const Slot& slot = slots_[i];
                if (slot.value.out_a == CachedTransition::invalid_state) return nullptr;
                if (slot.key == key) return &slot.value;
            }
        }

        CachedTransition* insert(std::uint64_t key, const CachedTransition& value) {
            if (slots_.empty()) rehash(1024);
            if ((size_ + 1) * 10 > slots_.size() * 7) rehash(slots_.size() * 2);
            for (std::size_t i = mix(key) & mask_;; i = (i + 1) & mask_) {
                Slot& slot = slots_[i];
                if (slot.value.out_a == CachedTransition::invalid_state) {
                    slot.key = key;
                    slot.value = value;
                    ++size_;
                    return &slot.value;
                }
            }
        }

    private:
        struct Slot {
            std::uint64_t key = 0;
            CachedTransition value;  // out_a == invalid_state marks empty
        };

        [[nodiscard]] static std::uint64_t mix(std::uint64_t key) noexcept {
            key ^= key >> 33U;
            key *= 0xff51afd7ed558ccdULL;
            key ^= key >> 33U;
            return key;
        }

        void rehash(std::size_t capacity) {
            std::vector<Slot> old = std::move(slots_);
            slots_.assign(capacity, Slot{});
            mask_ = capacity - 1;
            size_ = 0;
            for (const Slot& slot : old) {
                if (slot.value.out_a != CachedTransition::invalid_state) {
                    insert(slot.key, slot.value);
                }
            }
        }

        std::vector<Slot> slots_;
        std::size_t mask_ = 0;
        std::size_t size_ = 0;
    };

    /// Doubles the dense matrix dimension to cover id `needed` (< dense_cap).
    /// Cached entries are dropped and lazily recomputed — growth happens a
    /// handful of times per engine lifetime.
    void grow_dense(StateId needed) {
        StateId dim = dense_dim_ == 0 ? 64 : dense_dim_;
        while (dim <= needed) dim *= 2;
        dense_dim_ = dim;
        dense_cache_.assign(static_cast<std::size_t>(dim) * dim, CachedTransition{});
    }

    StateId dense_dim_ = 0;
    std::vector<CachedTransition> dense_cache_;
    FlatTransitionMap overflow_cache_;
};

/// Evaluates one transition of `proto` on the states behind ids (a, b) and
/// assembles the CachedTransition — output ids, leader-count delta,
/// role-change flag. The one shared definition of these semantics for every
/// count-based engine, so a fix here reaches all of them. `intern_state`
/// is the engine's interning hook (state → dense id, typically resizing the
/// engine's per-id vectors on first sight); it runs for both outputs before
/// any role is read, because interning may reallocate the index.
template <typename P, typename InternFn>
    requires InternableProtocol<P>
[[nodiscard]] CachedTransition compute_cached_transition(const P& proto,
                                                         const StateIndex<P>& index,
                                                         StateId a, StateId b,
                                                         InternFn&& intern_state) {
    typename P::State sa = index.state(a);  // copies: interning may reallocate
    typename P::State sb = index.state(b);
    const Role role_a = index.role(a);
    const Role role_b = index.role(b);
    const int before = static_cast<int>(role_a == Role::leader) +
                       static_cast<int>(role_b == Role::leader);
    CachedTransition tr;
    if constexpr (RatedProtocol<P>) {
        const double weight = pair_rate_of(proto, sa, sb) / max_rate_of(proto);
        tr.fire_weight = static_cast<float>(std::clamp(weight, 0.0, 1.0));
    }
    proto.interact(sa, sb);
    tr.out_a = intern_state(sa);
    tr.out_b = intern_state(sb);
    const int after = static_cast<int>(index.is_leader(tr.out_a)) +
                      static_cast<int>(index.is_leader(tr.out_b));
    tr.leader_delta = static_cast<std::int8_t>(after - before);
    tr.role_changed = index.role(tr.out_a) != role_a || index.role(tr.out_b) != role_b;
    return tr;
}

/// Localises the exact stabilisation step inside a batch or leap that
/// crossed to a single leader: the round's interactions are exchangeable, so
/// conditioned on their multiset the order is a uniform permutation —
/// shuffle the per-interaction leader deltas and scan for the first prefix
/// reaching exactly one leader (1-based offset into the round). The one
/// shared definition of the replay for every count-based engine; callers
/// fill `deltas` with one entry per interaction of the round (the batched
/// engine expands cell multiplicities, the gillespie engine additionally
/// pads dropped pairs with zeros) and it is consumed in place. Called at
/// most once per run for the absorbing single-leader predicate.
template <typename Generator>
[[nodiscard]] inline std::uint64_t locate_leader_crossing(std::vector<std::int8_t>& deltas,
                                                          Generator& gen,
                                                          std::size_t leaders_before) {
    shuffle_vector(deltas, gen);
    std::int64_t running = static_cast<std::int64_t>(leaders_before);
    for (std::uint64_t i = 0; i < deltas.size(); ++i) {
        running += deltas[i];
        if (running == 1) return i + 1;
    }
    ensure(false, "leader-count crossing not found within the round");
    return deltas.size();
}

}  // namespace ppsim
