/// \file angluin.hpp
/// \brief The constant-space leader-election protocol of Angluin, Aspnes,
/// Diamadi, Fischer and Peralta (2006) — Table 1's first row.
///
/// Two states suffice: every agent starts as a leader; when two leaders
/// meet, the responder becomes a follower. Exactly one leader remains after
/// the last leader-leader meeting; the expected stabilisation time is
/// Θ(n) parallel time (the final two leaders need Θ(n²) expected steps to
/// meet), which is optimal for constant-space protocols by Doty &
/// Soloveichik (2018) — Table 2's first row.
///
/// PLL's BackUp module embeds this rule as its line-58 fallback.
#pragma once

#include <cstdint>
#include <string_view>

#include "../core/common.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// State: just the output variable.
struct AngluinState {
    bool leader = true;

    friend constexpr bool operator==(const AngluinState&, const AngluinState&) = default;
};

/// The [Ang+06] protocol: `L × L → L × F`, all other pairs unchanged.
class Angluin {
public:
    using State = AngluinState;

    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.leader ? Role::leader : Role::follower;
    }

    void interact(State& a0, State& a1) const noexcept {
        if (a0.leader && a1.leader) a1.leader = false;
    }

    [[nodiscard]] std::string_view name() const noexcept { return "angluin06"; }

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return s.leader ? 1 : 0;
    }

    [[nodiscard]] std::size_t state_bound() const noexcept { return 2; }
};

}  // namespace ppsim
