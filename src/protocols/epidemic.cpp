#include "epidemic.hpp"

#include <cmath>

namespace ppsim {

EpidemicProcess::EpidemicProcess(std::size_t n, std::vector<bool> members, AgentId root)
    : n_(n), members_(std::move(members)), infected_(n, false) {
    require(n >= 2, "epidemic needs at least two agents");
    require(members_.size() == n, "membership mask must cover the population");
    for (bool m : members_) members_count_ += m ? 1 : 0;
    require(members_count_ >= 1, "sub-population must be non-empty");
    require(root < n && members_[root], "root must belong to the sub-population");
    infected_[root] = true;
    infected_count_ = 1;
}

EpidemicProcess EpidemicProcess::prefix_subpopulation(std::size_t n, std::size_t n_prime) {
    require(n_prime >= 1 && n_prime <= n, "sub-population size out of range");
    std::vector<bool> members(n, false);
    for (std::size_t i = 0; i < n_prime; ++i) members[i] = true;
    return EpidemicProcess(n, std::move(members), 0);
}

bool EpidemicProcess::apply(const Interaction& interaction) noexcept {
    const AgentId u = interaction.initiator;
    const AgentId v = interaction.responder;
    // Infection spreads only inside V′, in either direction (the epidemic
    // definition intersects the interaction with V′ — one-way refers to
    // values, not roles).
    if (!members_[u] || !members_[v]) return false;
    if (infected_[u] == infected_[v]) return false;
    if (infected_[u]) {
        infected_[v] = true;
    } else {
        infected_[u] = true;
    }
    ++infected_count_;
    return true;
}

StepCount EpidemicProcess::run_to_completion(std::uint64_t seed, StepCount max_steps) {
    UniformScheduler scheduler(n_, seed);
    StepCount steps = 0;
    while (!complete() && steps < max_steps) {
        apply(scheduler.next());
        ++steps;
    }
    ensure(complete(), "epidemic did not complete within the step budget");
    return steps;
}

double EpidemicProcess::lemma2_failure_bound(StepCount steps) const noexcept {
    // steps = 2⌈n/n′⌉·t  ⇒  t = steps / (2⌈n/n′⌉); bound = n·e^{−t/n}.
    const double ratio =
        std::ceil(static_cast<double>(n_) / static_cast<double>(members_count_));
    const double t = static_cast<double>(steps) / (2.0 * ratio);
    return static_cast<double>(n_) * std::exp(-t / static_cast<double>(n_));
}

}  // namespace ppsim
