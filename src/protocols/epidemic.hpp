/// \file epidemic.hpp
/// \brief One-way epidemic: the paper's core analytical substrate (§2,
/// Lemma 2), both as a standalone measurable process and as a generic
/// max-propagation protocol component.
///
/// The epidemic function I_{V′,r,γ} starts with one infected agent r in a
/// sub-population V′ ⊆ V; an agent of V′ becomes infected by interacting
/// with an infected agent, and infection never clears. Lemma 2 bounds the
/// completion time: Pr[ I_{V′,r,Γ}(2⌈n/n′⌉t) ≠ V′ ] ≤ n·e^{−t/n}.
/// `bench_epidemic` measures completion times against this bound.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "../core/common.hpp"
#include "../core/random.hpp"
#include "../core/scheduler.hpp"

namespace ppsim {

/// Standalone one-way epidemic process over an explicit sub-population.
/// Not a Protocol: infection status is per-agent-identity (agent r is
/// special), which the anonymous protocol abstraction cannot express; the
/// process mirrors the paper's definition directly instead.
class EpidemicProcess {
public:
    /// \param n        total population size (the scheduler draws from all of V)
    /// \param members  membership mask of V′ (size n, true = in V′)
    /// \param root     the initially infected agent r ∈ V′
    EpidemicProcess(std::size_t n, std::vector<bool> members, AgentId root);

    /// Convenience: V′ = the first n′ agents, r = agent 0.
    [[nodiscard]] static EpidemicProcess prefix_subpopulation(std::size_t n, std::size_t n_prime);

    /// Feeds one interaction; returns true if it infected a new agent.
    bool apply(const Interaction& interaction) noexcept;

    [[nodiscard]] bool infected(AgentId v) const noexcept { return infected_[v]; }
    [[nodiscard]] std::size_t infected_count() const noexcept { return infected_count_; }
    [[nodiscard]] std::size_t subpopulation_size() const noexcept { return members_count_; }
    [[nodiscard]] bool complete() const noexcept { return infected_count_ == members_count_; }

    /// Runs under a uniformly random scheduler until every member of V′ is
    /// infected; returns the number of interactions consumed.
    [[nodiscard]] StepCount run_to_completion(std::uint64_t seed, StepCount max_steps);

    /// The Lemma-2 tail bound: Pr[not complete after 2⌈n/n′⌉·t steps] ≤ n·e^{−t/n}.
    /// Returns the bound evaluated at a given step count.
    [[nodiscard]] double lemma2_failure_bound(StepCount steps) const noexcept;

private:
    std::size_t n_;
    std::vector<bool> members_;
    std::vector<bool> infected_;
    std::size_t members_count_ = 0;
    std::size_t infected_count_ = 0;
};

/// Generic max-propagation component for protocol authors: the idiom "the
/// larger value wins and both agents carry it onwards" used by every module
/// of PLL. Kept as a free function so protocol code states intent directly.
template <typename T>
constexpr bool propagate_max(T& a, T& b) noexcept {
    if (a == b) return false;
    if (a < b) {
        a = b;
    } else {
        b = a;
    }
    return true;
}

}  // namespace ppsim
