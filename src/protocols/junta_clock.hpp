/// \file junta_clock.hpp
/// \brief Junta-driven phase clock — the *leaderless* synchronisation
/// substrate of the O(log log n)-state protocols in Table 1 ([GS18],
/// [GSU18]), provided as a validated mechanism demonstration.
///
/// Those protocols cannot wait for a leader (electing one is the whole
/// problem), so they first elect a *junta*: a small-but-not-unique set of
/// agents, found in O(log n) time with O(log log n) states, and let every
/// junta member drive a shared phase clock. We implement the standard
/// two-part construction:
///
///  1. **Junta race** — every agent counts heads (initiator-role coin)
///     until its first tail, capped at a threshold θ ≈ ⌈lg lg n⌉ + 2.
///     Agents that reach θ heads in a row join the junta. In expectation
///     n/2^θ = Θ(n/log n) agents qualify, and at least one does whp.
///  2. **Clock** — positions live on a ring of `period` Θ(log n) slots.
///     A junta member advances its own position when it responds in an
///     interaction; everyone (junta included) adopts positions that are
///     ahead within half a period. With Θ(n/log n) drivers the clock ticks
///     at a near-constant parallel rate and the population stays within
///     half a period whp, giving leaderless Θ(log n)-parallel-time rounds.
///
/// PLL's CountUp (Algorithm 2) solves the same problem with O(log n) states
/// and a simpler analysis; bench_sync measures both side by side.
///
/// Output mapping: junta members report Role::leader so the engine's
/// incremental census counts the junta.
#pragma once

#include <cstdint>
#include <string_view>

#include "../core/common.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// Agent state of the junta-driven clock.
struct JuntaClockState {
    std::uint16_t position = 0;  ///< ring position
    std::uint16_t rounds = 0;    ///< completed wraps (junta members only)
    std::uint8_t level = 0;      ///< heads so far in the junta race
    bool racing = true;          ///< still flipping?
    bool junta = false;          ///< qualified as a driver?

    friend constexpr bool operator==(const JuntaClockState&,
                                     const JuntaClockState&) = default;
};

/// Leaderless junta-driven phase clock.
class JuntaPhaseClock {
public:
    using State = JuntaClockState;

    /// \param threshold  consecutive heads required to join the junta
    /// \param period     ring size; Θ(log n) gives whp-regular rounds
    JuntaPhaseClock(unsigned threshold, unsigned period)
        : threshold_(threshold), period_(period) {
        require(threshold >= 1 && threshold <= 30, "junta threshold out of range");
        require(period >= 4, "clock period must be at least 4");
    }

    /// θ = ⌈lg lg n⌉ + 2 and period = 8·⌈lg n⌉ + 1. The period is kept odd
    /// so the cyclic "ahead" relation has no tie at exactly half a period —
    /// with many drivers a tie would let a stale position drag the front of
    /// the clock backwards.
    [[nodiscard]] static JuntaPhaseClock for_population(std::size_t n) {
        const unsigned lg = ceil_log2(n) < 2 ? 2 : ceil_log2(n);
        const unsigned lglg = ceil_log2(lg) < 1 ? 1 : ceil_log2(lg);
        return JuntaPhaseClock(lglg + 2, 8 * lg + 1);
    }

    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.junta ? Role::leader : Role::follower;
    }

    void interact(State& a0, State& a1) const noexcept {
        // Junta race: one coin per interaction per racing agent, by role.
        if (a0.racing) {
            ++a0.level;
            if (a0.level >= threshold_) {
                a0.junta = true;
                a0.racing = false;
            }
        }
        if (a1.racing) {
            a1.racing = false;  // tail: out of the race at its current level
        }

        // Clock: junta responders advance; everyone adopts ahead positions.
        if (a1.junta) advance(a1);
        if (is_ahead(a0.position, a1.position)) {
            a1.position = a0.position;
        } else if (is_ahead(a1.position, a0.position)) {
            a0.position = a1.position;
        }
    }

    [[nodiscard]] std::string_view name() const noexcept { return "junta_clock"; }

    [[nodiscard]] std::size_t state_bound() const noexcept {
        // level × racing × junta × position (rounds is observational).
        return (threshold_ + 1U) * 2U * 2U * period_;
    }

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return (static_cast<std::uint64_t>(s.rounds) << 32U) |
               (static_cast<std::uint64_t>(s.position) << 8U) |
               (static_cast<std::uint64_t>(s.level) << 2U) |
               (static_cast<std::uint64_t>(s.racing) << 1U) |
               static_cast<std::uint64_t>(s.junta);
    }

    [[nodiscard]] unsigned threshold() const noexcept { return threshold_; }
    [[nodiscard]] unsigned period() const noexcept { return period_; }

    /// Cyclic "ahead within half a period".
    [[nodiscard]] bool is_ahead(std::uint16_t a, std::uint16_t b) const noexcept {
        const unsigned delta = (a + period_ - b) % period_;
        return delta != 0 && delta <= period_ / 2;
    }

private:
    void advance(State& s) const noexcept {
        s.position = static_cast<std::uint16_t>((s.position + 1U) % period_);
        if (s.position == 0) ++s.rounds;
    }

    unsigned threshold_;
    unsigned period_;
};

}  // namespace ppsim
