/// \file loose.hpp
/// \brief Loosely-stabilising leader election (Sudo, Nakamura, Yamauchi,
/// Ooshita, Kakugawa, Masuzawa — TCS 2012), the paper's reference [Sud+12]
/// and the origin of its Lemma 2 epidemic bound.
///
/// Self-stabilising leader election (recovering from *arbitrary*
/// configurations, not just the clean initial one) is impossible in the PP
/// model without knowing n exactly; [Sud+12] relaxes the target: from any
/// configuration the population reaches a unique-leader configuration within
/// O(t_max·n) expected interactions and then *holds* it for Ω(e^{t_max})
/// expected interactions — "loose" stabilisation. The mechanism is a
/// heartbeat timeout:
///
///  * every agent carries timer ∈ {0,…,t_max};
///  * when two agents meet they both adopt max(timer_u, timer_v) − 1
///    (the larger-value epidemic, aged by one step);
///  * a leader resets its own timer to t_max at every interaction;
///  * an agent whose timer hits 0 suspects the leader died and becomes a
///    leader itself, resetting its timer;
///  * two leaders meeting reduce to one (responder drops).
///
/// With t_max = Θ(log n) the heartbeat epidemic outruns the timeout w.h.p.
/// (Lemma 2's race), so a unique leader persists; with no leader, timers
/// drain in O(t_max) parallel time and a new one appears. The protocol is
/// *not* stabilising in the strict sense the PODC-2019 paper targets — its
/// leader changes with tiny probability forever — which is precisely the
/// trade-off PLL's authors contrast against; tests exercise the recovery
/// behaviour from adversarial configurations that PLL never has to face.
#pragma once

#include <cstdint>
#include <string_view>

#include "../core/common.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// Agent state: output bit + heartbeat timer.
struct LooseState {
    std::uint16_t timer = 0;
    bool leader = false;

    friend constexpr bool operator==(const LooseState&, const LooseState&) = default;
};

/// Loosely-stabilising leader election with heartbeat timeout t_max.
class LooselyStabilizing {
public:
    using State = LooseState;

    explicit LooselyStabilizing(unsigned t_max) : t_max_(t_max) {
        require(t_max >= 2 && t_max < 65535, "t_max out of range");
    }

    /// t_max = 16·⌈lg n⌉ — comfortably above the epidemic horizon.
    [[nodiscard]] static LooselyStabilizing for_population(std::size_t n) {
        const unsigned lg = ceil_log2(n) < 2 ? 2 : ceil_log2(n);
        return LooselyStabilizing(16 * lg);
    }

    /// The *clean* initial state: non-leader with a drained timer, so the
    /// first timeout bootstraps a leader. Loose stabilisation is really
    /// about arbitrary states — tests seed those directly.
    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.leader ? Role::leader : Role::follower;
    }

    void interact(State& a0, State& a1) const noexcept {
        // Heartbeat epidemic, aged by one.
        const std::uint16_t shared = std::max(a0.timer, a1.timer);
        const auto aged = static_cast<std::uint16_t>(shared > 0 ? shared - 1 : 0);
        a0.timer = aged;
        a1.timer = aged;
        // Leaders re-arm the heartbeat.
        if (a0.leader) a0.timer = static_cast<std::uint16_t>(t_max_);
        if (a1.leader) a1.timer = static_cast<std::uint16_t>(t_max_);
        // Timeout: a drained follower suspects leader loss and steps up.
        if (!a0.leader && a0.timer == 0) {
            a0.leader = true;
            a0.timer = static_cast<std::uint16_t>(t_max_);
        }
        if (!a1.leader && a1.timer == 0) {
            a1.leader = true;
            a1.timer = static_cast<std::uint16_t>(t_max_);
        }
        // Fratricide keeps the leader count falling back towards one.
        if (a0.leader && a1.leader) a1.leader = false;
    }

    [[nodiscard]] std::string_view name() const noexcept { return "loose_sud12"; }

    [[nodiscard]] std::size_t state_bound() const noexcept {
        return (static_cast<std::size_t>(t_max_) + 1U) * 2U;
    }

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return (static_cast<std::uint64_t>(s.timer) << 1U) |
               static_cast<std::uint64_t>(s.leader);
    }

    [[nodiscard]] unsigned t_max() const noexcept { return t_max_; }

private:
    unsigned t_max_;
};

}  // namespace ppsim
