/// \file lottery.hpp
/// \brief The geometric-lottery protocol in the style of Alistarh, Aspnes,
/// Eisenstat, Gelashvili and Rivest (SODA 2017), as the PODC-2019 paper
/// describes it in §3.1.1 — the ancestor of PLL's QuickElimination module.
///
/// Every agent plays the geometric game: flip fair coins until the first
/// tail, record the number of heads as `level` (coin = the agent's role in
/// an interaction: initiator = head, responder = tail, the "simple
/// simulation" of §3.1.1). The maximum level spreads by one-way epidemic and
/// lower-level agents drop out. Ties at the maximum are resolved by the slow
/// constant-space rule (responder of a leader-leader meeting drops).
///
/// The protocol is deliberately *without* PLL's Tournament and BackUp
/// modules: with probability p_i ≤ 2^{1−i} exactly i ≥ 2 agents survive the
/// lottery, and those survivors then need Θ(n) parallel time to meet — so
/// the measured expected time is Θ(log n) + Θ(P(tie) · n). Benchmarks use it
/// to show precisely why PLL adds the two extra modules (and it stands in
/// for the lottery-family row of Table 1; the full [Ali+17] protocol layers
/// more rounds on the same mechanism to push the tie cost into
/// polylogarithmic territory).
///
/// States: level ∈ {0,…,lmax} × done × leader ⇒ O(log n) states for
/// lmax = Θ(log n) (level exceeds c·lg n with probability ≤ n^{−c}).
#pragma once

#include <cstdint>
#include <string_view>

#include "../core/common.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// Agent state of the lottery protocol.
struct LotteryState {
    std::uint16_t level = 0;  ///< heads before the first tail (epidemic max)
    bool done = false;        ///< observed the first tail?
    bool leader = true;

    friend constexpr bool operator==(const LotteryState&, const LotteryState&) = default;
};

/// Geometric lottery + max epidemic + slow tie-break.
class Lottery {
public:
    using State = LotteryState;

    /// \param lmax  level cap, Θ(log n); PLL uses 5m and so do we by default.
    explicit Lottery(unsigned lmax) : lmax_(lmax) {
        require(lmax >= 1, "lottery requires lmax >= 1");
    }

    [[nodiscard]] static Lottery for_population(std::size_t n) {
        const unsigned m = ceil_log2(n) < 2 ? 2 : ceil_log2(n);
        return Lottery(5 * m);
    }

    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.leader ? Role::leader : Role::follower;
    }

    void interact(State& a0, State& a1) const noexcept {
        // Coin flips by interaction role: the initiator sees a head, the
        // responder a tail. Both agents flip in the same interaction (the
        // §3.1.1 "simple simulation"; flips of the two parties are
        // anti-correlated across one step, which the whp analysis absorbs).
        if (!a0.done) {
            a0.level = a0.level + 1U >= lmax_ ? static_cast<std::uint16_t>(lmax_)
                                              : static_cast<std::uint16_t>(a0.level + 1U);
        }
        if (!a1.done) a1.done = true;

        // One-way epidemic of the maximum finished level; lower finished
        // agents leave the race.
        if (a0.done && a1.done && a0.level != a1.level) {
            State& smaller = a0.level < a1.level ? a0 : a1;
            const State& larger = a0.level < a1.level ? a1 : a0;
            smaller.level = larger.level;
            smaller.leader = false;
        }

        // Slow tie-break (the [Ang+06] rule) for survivors at equal level.
        if (a0.done && a1.done && a0.leader && a1.leader) a1.leader = false;
    }

    [[nodiscard]] std::string_view name() const noexcept { return "lottery"; }

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return (static_cast<std::uint64_t>(s.level) << 2U) |
               (static_cast<std::uint64_t>(s.done) << 1U) |
               static_cast<std::uint64_t>(s.leader);
    }

    [[nodiscard]] std::size_t state_bound() const noexcept {
        return (static_cast<std::size_t>(lmax_) + 1U) * 2U * 2U;
    }

    [[nodiscard]] unsigned lmax() const noexcept { return lmax_; }

private:
    unsigned lmax_;
};

}  // namespace ppsim
