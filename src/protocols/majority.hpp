/// \file majority.hpp
/// \brief Exact-majority population protocol — the second canonical problem
/// of the PP model, included to show the simulation substrate generalises
/// beyond leader election (and because the paper's Table-1 neighbours
/// [AAG18] study exactly this problem).
///
/// The four-state exact-majority protocol (Draief–Vojnović / Mertzios et
/// al.): agents start with opinion A or B in a *strong* state; strong
/// opposites annihilate to weak states, strong agents convert weak
/// opposites, and weak agents adopt any strong opinion they meet. With an
/// initial margin of one the output is still correct with probability 1 —
/// the protocol computes exact majority, in O(n log n) expected interactions
/// for constant relative margins.
///
/// Output mapping: the engine's Role output reports opinion A as `leader`
/// and opinion B as `follower`, so the incremental leader count doubles as
/// the live census of opinion-A supporters. Convergence for majority is
/// *consensus* (everyone outputs the same opinion), checked with
/// `majority_consensus_reached`.
#pragma once

#include <cstdint>
#include <string_view>

#include "../core/common.hpp"
#include "../core/engine.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// Opinion-state of the four-state exact-majority protocol.
enum class MajorityOpinion : std::uint8_t {
    strong_a = 0,
    strong_b = 1,
    weak_a = 2,
    weak_b = 3,
};

struct MajorityState {
    MajorityOpinion opinion = MajorityOpinion::strong_a;

    friend constexpr bool operator==(const MajorityState&, const MajorityState&) = default;
};

/// Four-state exact majority. The initial configuration is *not* uniform
/// (agents start with their input opinion), so populations are seeded via
/// `seed_inputs` rather than `initial_state()` alone.
class ExactMajority {
public:
    using State = MajorityState;

    /// Agents default to strong A; seed_inputs() overwrites with real inputs.
    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    /// Output: current opinion (A ⇒ leader, B ⇒ follower; see header note).
    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.opinion == MajorityOpinion::strong_a ||
                       s.opinion == MajorityOpinion::weak_a
                   ? Role::leader
                   : Role::follower;
    }

    void interact(State& a0, State& a1) const noexcept {
        const bool a0_strong = is_strong(a0);
        const bool a1_strong = is_strong(a1);
        const bool a0_a = is_a(a0);
        const bool a1_a = is_a(a1);
        if (a0_strong && a1_strong && a0_a != a1_a) {
            // Strong opposites annihilate into opposing weak states: the
            // pair's net contribution to the A−B margin stays zero.
            a0.opinion = a0_a ? MajorityOpinion::weak_a : MajorityOpinion::weak_b;
            a1.opinion = a1_a ? MajorityOpinion::weak_a : MajorityOpinion::weak_b;
        } else if (a0_strong && !a1_strong && a0_a != a1_a) {
            a1.opinion = a0_a ? MajorityOpinion::weak_a : MajorityOpinion::weak_b;
        } else if (a1_strong && !a0_strong && a0_a != a1_a) {
            a0.opinion = a1_a ? MajorityOpinion::weak_a : MajorityOpinion::weak_b;
        }
    }

    [[nodiscard]] std::string_view name() const noexcept { return "exact_majority"; }

    [[nodiscard]] std::size_t state_bound() const noexcept { return 4; }

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return static_cast<std::uint64_t>(s.opinion);
    }

    // --- helpers --------------------------------------------------------------

    [[nodiscard]] static bool is_strong(const State& s) noexcept {
        return s.opinion == MajorityOpinion::strong_a ||
               s.opinion == MajorityOpinion::strong_b;
    }
    [[nodiscard]] static bool is_a(const State& s) noexcept {
        return s.opinion == MajorityOpinion::strong_a ||
               s.opinion == MajorityOpinion::weak_a;
    }

    /// Seeds a population with `a_count` strong-A agents and the rest
    /// strong-B (inputs of the majority problem).
    static void seed_inputs(Population<State>& population, std::size_t a_count) {
        require(a_count <= population.size(), "more A inputs than agents");
        for (std::size_t i = 0; i < population.size(); ++i) {
            population[static_cast<AgentId>(i)].opinion =
                i < a_count ? MajorityOpinion::strong_a : MajorityOpinion::strong_b;
        }
    }
};

/// True when every agent currently outputs the same opinion.
template <typename EngineT>
[[nodiscard]] bool majority_consensus_reached(const EngineT& engine) {
    const std::size_t a_supporters = engine.leader_count();
    return a_supporters == 0 || a_supporters == engine.population_size();
}

}  // namespace ppsim
