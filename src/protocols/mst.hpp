/// \file mst.hpp
/// \brief A wide-nonce fast protocol in the style of Michail, Spirakis and
/// Theofilatos (SSS 2018) — the "O(n) states, O(log n) time" row of Table 1.
///
/// [MST18] achieves O(log n) expected parallel time by spending a
/// *polynomial* number of states. The essential mechanism is that with that
/// much state an agent can carry enough random bits that rank collisions at
/// the maximum stop mattering: draw a B-bit uniform nonce with
/// B = 3·⌈lg n⌉ + 3, propagate the maximum by one-way epidemic, keep the
/// maximal agents as leaders, and fall back to the constant-space rule for
/// the (probability O(1/n)) event of a tie at the maximum — contributing
/// O(1/n)·O(n) = O(1) to the expected time.
///
/// Documented deviation: the published protocol derives its state budget
/// from an approximate-counting component (agents first estimate n). All
/// protocols in this library are instantiated non-uniformly (PLL itself
/// takes m ≈ log2 n as input), so we hand the protocol ⌈lg n⌉ directly and
/// omit the counting sub-protocol; the states/time regime of the Table-1
/// row — polynomial states, O(log n) expected time — is preserved, which is
/// what the row comparison measures.
///
/// Coin flips use the §3.1.1 role simulation (initiator = 1, responder = 0);
/// an agent finishes after B flips (`index` counts them).
#pragma once

#include <cstdint>
#include <string_view>

#include "../core/common.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// Agent state: nonce under construction plus flip counter and output flag.
struct MstState {
    std::uint64_t nonce = 0;
    std::uint8_t index = 0;  ///< completed flips, 0…B
    bool leader = true;

    friend constexpr bool operator==(const MstState&, const MstState&) = default;
};

/// Wide-nonce maximum election ([MST18]-style).
class MstStyle {
public:
    using State = MstState;

    /// \param bits  nonce width B; for_population picks 3⌈lg n⌉ + 3.
    explicit MstStyle(unsigned bits) : bits_(bits) {
        require(bits >= 1 && bits <= 56, "nonce width must be within [1, 56] bits");
    }

    [[nodiscard]] static MstStyle for_population(std::size_t n) {
        const unsigned lg = ceil_log2(n) < 1 ? 1 : ceil_log2(n);
        const unsigned bits = 3 * lg + 3;
        return MstStyle(bits > 56 ? 56 : bits);
    }

    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.leader ? Role::leader : Role::follower;
    }

    void interact(State& a0, State& a1) const noexcept {
        // Build nonces: one bit per interaction per unfinished agent, by
        // role (initiator appends 1, responder appends 0).
        if (a0.index < bits_) {
            a0.nonce = (a0.nonce << 1U) | 1U;
            ++a0.index;
        }
        if (a1.index < bits_) {
            a1.nonce = a1.nonce << 1U;
            ++a1.index;
        }

        // One-way epidemic of the maximum finished nonce.
        if (a0.index == bits_ && a1.index == bits_ && a0.nonce != a1.nonce) {
            State& smaller = a0.nonce < a1.nonce ? a0 : a1;
            const State& larger = a0.nonce < a1.nonce ? a1 : a0;
            smaller.nonce = larger.nonce;
            smaller.leader = false;
        }

        // Constant-space fallback for maximum ties (probability O(1/n)).
        if (a0.index == bits_ && a1.index == bits_ && a0.leader && a1.leader) {
            a1.leader = false;
        }
    }

    [[nodiscard]] std::string_view name() const noexcept { return "mst18_style"; }

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return (s.nonce << 8U) | (static_cast<std::uint64_t>(s.index) << 1U) |
               static_cast<std::uint64_t>(s.leader);
    }

    [[nodiscard]] std::size_t state_bound() const noexcept {
        // nonce × flip-counter × output flag (a loose domain product; the
        // reachable count is far smaller and is what bench_table1 reports).
        return (std::size_t{1} << bits_) * (bits_ + 1U) * 2U;
    }

    [[nodiscard]] unsigned bits() const noexcept { return bits_; }

private:
    unsigned bits_;
};

}  // namespace ppsim
