/// \file phase_clock.hpp
/// \brief The leader-driven phase clock of Angluin, Aspnes and Eisenstat
/// (2008) — the constant-space synchronisation substrate that the
/// O(log log n)-state protocols cited in Table 1 ([GS18], [GSU18]) build on.
///
/// PLL deliberately avoids phase clocks: with O(log n) states available its
/// CountUp timer (Algorithm 2) is simpler. We still provide the clock as a
/// validated substrate: (a) it documents the design space PLL positions
/// itself against, and (b) downstream users composing their own protocols
/// need a leader-driven synchroniser once a leader exists.
///
/// Mechanism: every agent holds a phase position p ∈ {0,…,period−1}. When a
/// *marked* agent (the leader) is the responder of an interaction, it
/// advances its own position; an unmarked responder adopts the initiator's
/// position when the initiator is ahead (positions compared cyclically
/// within half a period). A full wrap of the leader's position is one
/// "round" and takes Θ(n log n) interactions w.h.p. for period ≥ c·log n —
/// measured by bench_sync alongside PLL's CountUp.
#pragma once

#include <cstdint>
#include <string_view>

#include "../core/common.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// Agent state of the phase clock.
struct PhaseClockState {
    std::uint16_t position = 0;
    std::uint16_t rounds = 0;  ///< completed wraps (observable progress)
    bool marked = false;       ///< the clock driver (a unique leader)

    friend constexpr bool operator==(const PhaseClockState&, const PhaseClockState&) = default;
};

/// Leader-driven phase clock. Not a leader-election protocol — output() maps
/// the marked driver to Role::leader so engines can host it, but its purpose
/// is the synchronised `rounds` counter. The driver is designated by seeding
/// one marked agent via `driver_state()` (population setup, not transition).
class LeaderPhaseClock {
public:
    using State = PhaseClockState;

    /// \param period  positions per round; Θ(log n) gives whp-regular rounds.
    explicit LeaderPhaseClock(unsigned period) : period_(period) {
        require(period >= 4, "phase clock period must be at least 4");
    }

    [[nodiscard]] static LeaderPhaseClock for_population(std::size_t n) {
        const unsigned lg = ceil_log2(n) < 2 ? 2 : ceil_log2(n);
        return LeaderPhaseClock(8 * lg);
    }

    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    /// State for the designated driver agent (set population[0] to this).
    [[nodiscard]] State driver_state() const noexcept {
        State s;
        s.marked = true;
        return s;
    }

    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.marked ? Role::leader : Role::follower;
    }

    void interact(State& a0, State& a1) const noexcept {
        if (a1.marked) {
            // The driver advances only when it is the responder: this paces
            // one driver step per ~n/2 interactions in expectation.
            advance(a1);
        } else if (is_ahead(a0.position, a1.position)) {
            a1.position = a0.position;
            // Followers inherit round parity through position wrap detection
            // handled by the driver only; rounds on followers lag by design.
        }
        if (!a0.marked && is_ahead(a1.position, a0.position)) {
            a0.position = a1.position;
        }
    }

    [[nodiscard]] std::string_view name() const noexcept { return "phase_clock"; }

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return (static_cast<std::uint64_t>(s.rounds) << 24U) |
               (static_cast<std::uint64_t>(s.position) << 1U) |
               static_cast<std::uint64_t>(s.marked);
    }

    [[nodiscard]] std::size_t state_bound() const noexcept {
        return static_cast<std::size_t>(period_) * 2U;  // position × marked
    }

    [[nodiscard]] unsigned period() const noexcept { return period_; }

    /// Cyclic "strictly ahead within half a period" comparison.
    [[nodiscard]] bool is_ahead(std::uint16_t a, std::uint16_t b) const noexcept {
        const unsigned delta = (a + period_ - b) % period_;
        return delta != 0 && delta <= period_ / 2;
    }

private:
    void advance(State& s) const noexcept {
        s.position = static_cast<std::uint16_t>((s.position + 1U) % period_);
        if (s.position == 0) ++s.rounds;
    }

    unsigned period_;
};

}  // namespace ppsim
