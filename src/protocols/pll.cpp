#include "pll.hpp"

#include <algorithm>
#include <cmath>

namespace ppsim {

double PllConfig::log2_exact(double x) noexcept { return std::log2(x); }

namespace {

/// min(x + 1, cap) on unsigned 16-bit values — the saturating increments of
/// lines 9, 36, 45 and 52 (see fidelity note 1 in pll.hpp).
[[nodiscard]] constexpr std::uint16_t saturating_increment(std::uint16_t x,
                                                           unsigned cap) noexcept {
    return x + 1U >= cap ? static_cast<std::uint16_t>(cap) : static_cast<std::uint16_t>(x + 1U);
}

[[nodiscard]] constexpr std::uint8_t next_color(std::uint8_t c) noexcept {
    return static_cast<std::uint8_t>((c + 1U) % 3U);
}

}  // namespace

// --- Algorithm 1: main routine ----------------------------------------------

void Pll::interact(State& a0, State& a1) const noexcept {
    // Lines 1–6: status assignment at an agent's first interaction.
    if (a0.status == PllStatus::x && a1.status == PllStatus::x) {
        // Line 2: the initiator becomes a leader candidate and starts the
        // QuickElimination lottery.
        a0.status = PllStatus::a;
        a0.level_q = 0;
        a0.done = false;
        a0.leader = true;
        // Line 3: the responder becomes a timer agent and a follower.
        a1.status = PllStatus::b;
        a1.count = 0;
        a1.leader = false;
    } else if (a0.status == PllStatus::x || a1.status == PllStatus::x) {
        // Lines 4–5: a latecomer meeting an already-assigned agent joins VA
        // as a follower that never plays the lottery (done = true).
        State& late = a0.status == PllStatus::x ? a0 : a1;
        late.status = PllStatus::a;
        late.level_q = 0;
        late.done = true;
        late.leader = false;
    }

    // Line 7: the tick flag is transient — always cleared before CountUp.
    a0.tick = false;
    a1.tick = false;

    // Line 8.
    count_up(a0, a1);

    // Line 9: a raised tick advances the epoch, saturating at 4.
    if (a0.tick && a0.epoch < 4) ++a0.epoch;
    if (a1.tick && a1.epoch < 4) ++a1.epoch;

    // Line 10: epochs synchronise to the pairwise maximum.
    const std::uint8_t epoch = std::max(a0.epoch, a1.epoch);
    a0.epoch = epoch;
    a1.epoch = epoch;

    // Lines 11–15: initialise the additional variables of a newly entered
    // group exactly once per epoch.
    if (a0.epoch > a0.init) initialize_epoch_variables(a0);
    if (a1.epoch > a1.init) initialize_epoch_variables(a1);

    // Lines 16–22: run the module of the (now common) epoch. Disabled
    // modules (ablation D4) leave their epochs idle.
    switch (epoch) {
        case 1:
            if (config_.enable_quick_elimination) quick_elimination(a0, a1);
            break;
        case 2:
        case 3:
            if (config_.enable_tournament) tournament(a0, a1);
            break;
        default: back_up(a0, a1); break;
    }
}

void Pll::initialize_epoch_variables(State& s) const noexcept {
    if (s.status == PllStatus::a) {
        if (s.epoch == 2 || s.epoch == 3) {
            // Line 12 with fidelity note 3 (pll.hpp): leaders start the
            // Φ-flip nonce draw; followers join the epidemic immediately
            // (index = Φ), mirroring QuickElimination's done = true.
            s.rand = 0;
            s.index = s.leader ? 0 : static_cast<std::uint8_t>(config_.phi());
            // levelQ/done belong to the abandoned V1 group; zero them so the
            // stored state is canonical (the paper calls them "undefined").
            s.level_q = 0;
            s.done = false;
        } else if (s.epoch == 4) {
            // Line 13.
            s.level_b = 0;
            s.rand = 0;
            s.index = 0;
            s.level_q = 0;
            s.done = false;
        }
    }
    // Line 14.
    s.init = s.epoch;
}

// --- Algorithm 2: CountUp -----------------------------------------------------

void Pll::count_up(State& a0, State& a1) const noexcept {
    const unsigned cmax = config_.cmax();

    // Lines 23–29: every timer agent advances its count; a wrap-around to 0
    // mints the next colour and raises the tick flag.
    const auto advance_timer = [&](State& s) {
        if (s.status != PllStatus::b) return;
        s.count = static_cast<std::uint16_t>((s.count + 1U) % cmax);
        if (s.count == 0) {
            s.color = next_color(s.color);
            s.tick = true;
        }
    };
    advance_timer(a0);
    advance_timer(a1);

    // Lines 30–34: the newer colour (one step ahead cyclically) spreads by
    // one-way epidemic; an adopting timer agent restarts its counter.
    // At most one of the two directions can apply (c and c+2 differ mod 3).
    const auto adopt_from = [&](State& behind, const State& ahead) {
        behind.color = ahead.color;
        behind.tick = true;
        if (behind.status == PllStatus::b) behind.count = 0;
    };
    if (a1.color == next_color(a0.color)) {
        adopt_from(a0, a1);
    } else if (a0.color == next_color(a1.color)) {
        adopt_from(a1, a0);
    }
}

// --- Algorithm 3: QuickElimination --------------------------------------------

void Pll::quick_elimination(State& a0, State& a1) const noexcept {
    const unsigned lmax = config_.lmax();

    // Lines 35–38: a leader that has not finished the lottery flips a coin
    // whenever it meets a follower: initiator = head (levelQ += 1),
    // responder = tail (done). Exactly one agent can satisfy the guard.
    if (a0.leader && !a1.leader && !a0.done && a0.status == PllStatus::a) {
        a0.level_q = saturating_increment(a0.level_q, lmax);  // line 36
    } else if (a1.leader && !a0.leader && !a1.done && a1.status == PllStatus::a) {
        a1.done = true;  // line 37
    }

    // Lines 39–42: one-way epidemic of the maximum levelQ across VA between
    // agents that finished the lottery; the smaller side leaves the race.
    if (a0.status == PllStatus::a && a1.status == PllStatus::a && a0.done && a1.done &&
        a0.level_q != a1.level_q) {
        State& smaller = a0.level_q < a1.level_q ? a0 : a1;
        const State& larger = a0.level_q < a1.level_q ? a1 : a0;
        smaller.leader = false;            // line 40
        smaller.level_q = larger.level_q;  // line 41
    }
}

// --- Algorithm 4: Tournament ----------------------------------------------------

void Pll::tournament(State& a0, State& a1) const noexcept {
    const auto phi = static_cast<std::uint8_t>(config_.phi());

    // Lines 43–46: a leader that still owes coin flips appends one nonce bit
    // per meeting with a follower: bit 0 as initiator, bit 1 as responder.
    if (a0.leader && !a1.leader && a0.index < phi) {
        a0.rand = static_cast<std::uint16_t>(2U * a0.rand + 0U);  // line 44 (i = 0)
        a0.index = static_cast<std::uint8_t>(
            saturating_increment(a0.index, phi));  // line 45
    } else if (a1.leader && !a0.leader && a1.index < phi) {
        a1.rand = static_cast<std::uint16_t>(2U * a1.rand + 1U);  // line 44 (i = 1)
        a1.index = static_cast<std::uint8_t>(saturating_increment(a1.index, phi));
    }

    // Lines 47–50: one-way epidemic of the maximum finished nonce across VA;
    // a finished leader holding a smaller nonce leaves the race.
    if (a0.status == PllStatus::a && a1.status == PllStatus::a && a0.index == phi &&
        a1.index == phi && a0.rand != a1.rand) {
        State& smaller = a0.rand < a1.rand ? a0 : a1;
        const State& larger = a0.rand < a1.rand ? a1 : a0;
        smaller.leader = false;        // line 48
        smaller.rand = larger.rand;    // line 49
    }
}

// --- Algorithm 5: BackUp ----------------------------------------------------------

void Pll::back_up(State& a0, State& a1) const noexcept {
    const unsigned lmax = config_.lmax();

    // Lines 51–53: a leader whose tick was raised in this very interaction
    // flips one coin against a follower; head = initiator = climb a level.
    if (a0.tick && a0.leader && !a1.leader) {
        a0.level_b = saturating_increment(a0.level_b, lmax);  // line 52
    }

    // Lines 54–57: one-way epidemic of the maximum levelB across VA; any VA
    // agent holding a smaller level adopts it and (if a leader) drops out.
    if (a0.status == PllStatus::a && a1.status == PllStatus::a &&
        a0.level_b != a1.level_b) {
        State& smaller = a0.level_b < a1.level_b ? a0 : a1;
        const State& larger = a0.level_b < a1.level_b ? a1 : a0;
        smaller.level_b = larger.level_b;  // line 55
        smaller.leader = false;            // line 56
    }

    // Line 58: two surviving leaders (necessarily equal levelB after lines
    // 54–57) resolve by the classic rule — the responder drops out.
    if (a0.leader && a1.leader) a1.leader = false;
}

// --- state accounting ------------------------------------------------------------

std::uint64_t Pll::state_key(const State& s) const noexcept {
    // Canonical states keep dead fields at zero, so packing the live group
    // payload plus the common variables is injective.
    std::uint64_t aux = 0;
    if (s.status == PllStatus::b) {
        aux = s.count;
    } else if (s.status == PllStatus::a) {
        switch (s.epoch) {
            case 1:
                aux = static_cast<std::uint64_t>(s.level_q) * 2U +
                      static_cast<std::uint64_t>(s.done);
                break;
            case 2:
            case 3:
                aux = static_cast<std::uint64_t>(s.rand) *
                          (static_cast<std::uint64_t>(config_.phi()) + 1U) +
                      s.index;
                break;
            default: aux = s.level_b; break;
        }
    }
    std::uint64_t key = static_cast<std::uint64_t>(s.status);
    key = key * 4U + (s.epoch - 1U);
    key = key * 4U + (s.init - 1U);
    key = key * 3U + s.color;
    key = key * 2U + static_cast<std::uint64_t>(s.leader);
    key = key * 2U + static_cast<std::uint64_t>(s.tick);
    key = key * (1ULL << 32U) + aux;
    return key;
}

std::size_t Pll::state_bound() const noexcept {
    // Lemma 3 accounting from the Table 3 domains. Common variables:
    // status × epoch × init × color × leader × tick — init ≤ epoch and the
    // X/A/B split constrain reachability, but for the O(log n) *bound* we
    // take the product of domain sizes per group, as the paper does.
    const std::size_t common = 4U * 4U * 3U * 2U * 2U;  // epoch·init·color·leader·tick
    const std::size_t group_x = 1;                      // no additional variables
    const std::size_t group_b = config_.cmax();
    const std::size_t group_a_v1 = (config_.lmax() + 1U) * 2U;
    const std::size_t group_a_v23 = (std::size_t{1} << config_.phi()) * (config_.phi() + 1U);
    const std::size_t group_a_v4 = config_.lmax() + 1U;
    return common * (group_x + group_b + group_a_v1 + group_a_v23 + group_a_v4);
}

}  // namespace ppsim
