/// \file pll.hpp
/// \brief PLL — the leader-election protocol of Sudo, Ooshita, Izumi,
/// Kakugawa and Masuzawa, "Logarithmic Expected-Time Leader Election in
/// Population Protocol Model" (PODC 2019), Algorithms 1–5.
///
/// PLL stabilises to exactly one leader in O(log n) expected parallel time
/// using O(log n) states per agent, given a knowledge parameter m with
/// m ≥ log2(n) and m = Θ(log n). The execution is a competition in three
/// modules run in sequence, paced by a timer-based synchroniser:
///
///  * CountUp()          — agents with status B run a count-up timer modulo
///                         cmax = 41m; wrapping advances a 3-colour phase
///                         that spreads by one-way epidemic and drives every
///                         agent's `epoch` 1 → 2 → 3 → 4.
///  * QuickElimination() — epoch 1. Every leader plays the geometric lottery
///                         (count heads until the first tail, head = "I am
///                         the initiator"); the maximum `levelQ` spreads by
///                         epidemic and non-maximal leaders drop out. For
///                         any i ≥ 2, exactly i leaders survive with
///                         probability ≤ 2^{1−i} (Lemma 7).
///  * Tournament()       — epochs 2 and 3. Every surviving leader draws a
///                         Φ = ⌈(2/3)·lg m⌉-bit uniform nonce from its coin
///                         flips; the maximum nonce spreads by epidemic and
///                         non-maximal leaders drop out. Two rounds reduce
///                         ≤ ⌈lg lg n⌉ survivors to one w.p. 1 − O(1/log n).
///  * BackUp()           — epoch 4. A slower, always-correct eliminator:
///                         leaders climb `levelB` by one fair coin per
///                         synchroniser tick, the maximum spreads by
///                         epidemic, and equal-level leaders resolve by the
///                         initiator-wins rule. Elects the unique leader in
///                         O(log² n) expected parallel time on its own.
///
/// ## Fidelity notes (pseudocode → code)
///
/// 1. The paper's lines 9/36/45/52 write `max(x+1, bound)` where the
///    surrounding prose says the value saturates at the bound; we implement
///    the evident intent `min(x+1, bound)`.
/// 2. Table 3 declares `index ∈ {0,…,Φ−1}` but line 45 caps at Φ and line 47
///    tests `index = Φ`; the domain is really {0,…,Φ}.
/// 3. Line 12 initialises `(rand, index) ← (0, 0)` for every agent of
///    VA ∩ (V2 ∪ V3). Taken literally, a follower's `index` would stay 0
///    forever (only leaders advance it, line 43), so line 47 — which
///    requires BOTH parties to have `index = Φ` — could never fire between
///    a follower and anyone, the nonce epidemic could not traverse the
///    follower sub-population, and Lemma 8's proof step "the maximum value
///    of nonces is propagated to the whole sub-population VA" (via Lemma 2)
///    would be impossible: with i ≤ ⌈lg lg n⌉ surviving leaders, direct
///    leader-to-leader contact needs Θ(n) parallel time, not O(log n).
///    We initialise followers with `index = Φ` (leaders with 0), which is
///    exactly the asymmetry QuickElimination already uses (`done = true`
///    for followers, `false` for leaders) and restores the epidemic while
///    preserving every invariant the proofs use: an unfinished leader
///    (index < Φ) still cannot be eliminated, and follower `rand` values
///    are still copies of *finished* leader nonces.
///
/// All other behaviour follows Algorithms 1–5 line by line; the
/// implementation cites line numbers in comments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "../core/common.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// Parameters of PLL derived from the knowledge parameter m (the paper's
/// only input: an integer with m ≥ log2(n) and m = Θ(log n)).
///
/// Besides m, the struct exposes the paper's hard-wired constants as
/// *ablation knobs* (DESIGN.md §4). Defaults reproduce the paper exactly;
/// bench_ablation sweeps them to show why the paper's choices are what they
/// are. Changing them preserves correctness (elections still succeed with
/// probability 1 — BackUp is parameter-agnostic) but moves the speed/space
/// trade-off.
struct PllConfig {
    /// The knowledge parameter m.
    unsigned m = 2;

    /// D1: timer period multiplier — the paper's cmax = 41·m.
    unsigned cmax_multiplier = 41;

    /// D3: level cap multiplier — the paper's lmax = 5·m.
    unsigned lmax_multiplier = 5;

    /// D2: overrides Φ when non-zero (the paper uses ⌈(2/3)·lg m⌉).
    unsigned phi_override = 0;

    /// D4: module composition — disabling a fast module leaves its epoch idle.
    bool enable_quick_elimination = true;
    bool enable_tournament = true;

    /// Constructs the paper's parameterisation for a given population size:
    /// m = max(2, ⌈log2 n⌉). (m must be ≥ 2 so that Φ ≥ 1.)
    [[nodiscard]] static PllConfig for_population(std::size_t n) {
        PllConfig cfg;
        cfg.m = ceil_log2(n) < 2 ? 2 : ceil_log2(n);
        return cfg;
    }

    /// lmax = 5m — cap of levelQ (QuickElimination) and levelB (BackUp).
    [[nodiscard]] unsigned lmax() const noexcept { return lmax_multiplier * m; }

    /// cmax = 41m — period of the B-agents' count-up timer.
    [[nodiscard]] unsigned cmax() const noexcept { return cmax_multiplier * m; }

    /// Φ = ⌈(2/3)·lg m⌉ — number of nonce bits drawn per Tournament epoch.
    [[nodiscard]] unsigned phi() const noexcept {
        if (phi_override != 0) return phi_override > 12 ? 12 : phi_override;
        // ceil((2/3)·lg m), evaluated in floating point — m ≤ 2^32 keeps
        // this exact in double precision.
        const double lg_m = log2_exact(m);
        const double raw = 2.0 * lg_m / 3.0;
        auto phi = static_cast<unsigned>(raw);
        if (static_cast<double>(phi) < raw) ++phi;
        return phi < 1 ? 1 : phi;
    }

    /// Validates the configuration against a population size: the paper
    /// requires m ≥ log2(n).
    void validate(std::size_t n) const {
        require(m >= 2, "PLL requires m >= 2");
        require(static_cast<double>(m) >= log2_exact(n),
                "PLL requires m >= log2(n); got m = " + std::to_string(m) +
                    " for n = " + std::to_string(n));
    }

private:
    [[nodiscard]] static double log2_exact(double x) noexcept;
};

/// Agent status (Table 3): X = initial, A = leader candidate, B = timer.
enum class PllStatus : std::uint8_t { x = 0, a = 1, b = 2 };

/// The full agent state of PLL (Table 3). Fields outside the agent's
/// current group are kept at zero (the paper leaves them "undefined"); this
/// canonical form makes raw states hashable for the Lemma-3 state count.
struct PllState {
    std::uint16_t count = 0;    ///< VB: count-up timer in {0,…,cmax−1}
    std::uint16_t level_q = 0;  ///< VA∩V1: lottery level in {0,…,lmax}
    std::uint16_t rand = 0;     ///< VA∩(V2∪V3): nonce in {0,…,2^Φ−1}
    std::uint16_t level_b = 0;  ///< VA∩V4: backup level in {0,…,lmax}
    std::uint8_t index = 0;     ///< VA∩(V2∪V3): completed flips in {0,…,Φ}
    PllStatus status = PllStatus::x;
    std::uint8_t epoch = 1;  ///< current epoch in {1,…,4}
    std::uint8_t init = 1;   ///< last epoch whose variables were initialised
    std::uint8_t color = 0;  ///< synchroniser colour in {0,1,2}
    bool done = false;       ///< VA∩V1: finished the lottery?
    bool leader = true;      ///< output variable: true ⇒ output L
    bool tick = false;       ///< transient new-colour flag (reset at line 7)

    friend constexpr bool operator==(const PllState&, const PllState&) = default;
};

/// PLL protocol (asymmetric version of the paper's main part).
class Pll {
public:
    using State = PllState;

    explicit Pll(PllConfig config) : config_(config) {
        require(config.m >= 2, "PLL requires m >= 2");
        require(config.cmax() >= 2 && config.cmax() < 65536,
                "timer period cmax out of the representable range");
        require(config.lmax() >= 1 && config.lmax() < 65535,
                "level cap lmax out of the representable range");
        require(config.phi() >= 1 && config.phi() <= 12,
                "nonce width phi out of the representable range");
    }

    /// Convenience: the paper's parameterisation for population size n.
    [[nodiscard]] static Pll for_population(std::size_t n) {
        return Pll(PllConfig::for_population(n));
    }

    [[nodiscard]] const PllConfig& config() const noexcept { return config_; }

    // --- Protocol concept ---------------------------------------------------

    /// s_init: status X, leader, epoch 1, colour 0 (Table 3, third column).
    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    /// π_out: L iff the `leader` variable is true.
    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.leader ? Role::leader : Role::follower;
    }

    /// T: Algorithm 1 (which invokes Algorithms 2–5) applied to the ordered
    /// pair (initiator a0, responder a1).
    void interact(State& a0, State& a1) const noexcept;

    [[nodiscard]] std::string_view name() const noexcept { return "pll"; }

    // --- state accounting (Lemma 3 / Table 3) -------------------------------

    /// Injective 64-bit key of a canonical state (dead fields zeroed).
    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept;

    /// Upper bound on the number of distinct reachable states per agent,
    /// from the Table 3 domains (the Lemma 3 count). Common variables
    /// contribute per-group combinations; `tick` is counted like Table 3
    /// does even though it is semantically transient.
    [[nodiscard]] std::size_t state_bound() const noexcept;

    // --- introspection helpers (benches & tests) ----------------------------

    [[nodiscard]] static bool is_leader(const State& s) noexcept { return s.leader; }
    [[nodiscard]] static PllStatus status_of(const State& s) noexcept { return s.status; }
    [[nodiscard]] static unsigned epoch_of(const State& s) noexcept { return s.epoch; }
    [[nodiscard]] static unsigned color_of(const State& s) noexcept { return s.color; }

    /// True when the agent belongs to group VA.
    [[nodiscard]] static bool in_va(const State& s) noexcept {
        return s.status == PllStatus::a;
    }
    /// True when the agent belongs to group VB.
    [[nodiscard]] static bool in_vb(const State& s) noexcept {
        return s.status == PllStatus::b;
    }

private:
    void count_up(State& a0, State& a1) const noexcept;                // Algorithm 2
    void quick_elimination(State& a0, State& a1) const noexcept;       // Algorithm 3
    void tournament(State& a0, State& a1) const noexcept;              // Algorithm 4
    void back_up(State& a0, State& a1) const noexcept;                 // Algorithm 5
    void initialize_epoch_variables(State& s) const noexcept;          // lines 11–15

    PllConfig config_;
};

static_assert(sizeof(PllState) <= 16, "PLL state should stay within 16 bytes");

}  // namespace ppsim
