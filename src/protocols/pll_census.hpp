/// \file pll_census.hpp
/// \brief Introspection over a PLL population: per-group censuses, level
/// distributions and a rendered snapshot — the debugging/teaching view of a
/// running election (used by the anatomy example and the sync estimators).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "../core/common.hpp"
#include "pll.hpp"

namespace ppsim {

/// A snapshot of the aggregate state of a PLL population.
struct PllCensus {
    std::size_t agents = 0;
    std::size_t leaders = 0;
    std::size_t unassigned = 0;                ///< |VX|
    std::size_t candidates = 0;                ///< |VA|
    std::size_t timers = 0;                    ///< |VB|
    std::array<std::size_t, 4> by_epoch{};     ///< epoch 1..4 populations
    std::array<std::size_t, 3> by_color{};     ///< colour 0..2 populations
    std::size_t lottery_playing = 0;           ///< VA∩V1 leaders with done=false
    std::uint16_t max_level_q = 0;             ///< max levelQ over VA∩V1
    std::uint16_t max_rand = 0;                ///< max finished nonce over VA∩(V2∪V3)
    std::uint16_t max_level_b = 0;             ///< max levelB over VA∩V4
    /// Lowest epoch any agent is still in — the population's lagging edge.
    unsigned min_epoch = 1;
    /// Highest epoch any agent reached — the population's leading edge.
    unsigned max_epoch = 1;
};

/// Computes the census of a PLL population (O(n)).
[[nodiscard]] inline PllCensus take_census(std::span<const PllState> states) {
    PllCensus census;
    census.agents = states.size();
    census.min_epoch = 4;
    census.max_epoch = 1;
    for (const PllState& s : states) {
        census.leaders += s.leader ? 1 : 0;
        switch (s.status) {
            case PllStatus::x: ++census.unassigned; break;
            case PllStatus::a: ++census.candidates; break;
            case PllStatus::b: ++census.timers; break;
        }
        ++census.by_epoch[s.epoch - 1U];
        ++census.by_color[s.color];
        census.min_epoch = std::min<unsigned>(census.min_epoch, s.epoch);
        census.max_epoch = std::max<unsigned>(census.max_epoch, s.epoch);
        if (s.status == PllStatus::a) {
            if (s.epoch == 1) {
                if (s.leader && !s.done) ++census.lottery_playing;
                census.max_level_q = std::max(census.max_level_q, s.level_q);
            } else if (s.epoch == 2 || s.epoch == 3) {
                census.max_rand = std::max(census.max_rand, s.rand);
            } else {
                census.max_level_b = std::max(census.max_level_b, s.level_b);
            }
        }
    }
    if (census.agents == 0) census.min_epoch = 1;
    return census;
}

/// One-line rendering for timeline traces:
/// "epoch 1..2 | L=17 | colors 312/200/0 | maxQ=6".
[[nodiscard]] inline std::string render_census_line(const PllCensus& c) {
    std::string out = "epoch " + std::to_string(c.min_epoch);
    if (c.max_epoch != c.min_epoch) out += ".." + std::to_string(c.max_epoch);
    out += " | leaders=" + std::to_string(c.leaders);
    out += " | colors " + std::to_string(c.by_color[0]) + "/" +
           std::to_string(c.by_color[1]) + "/" + std::to_string(c.by_color[2]);
    if (c.by_epoch[0] > 0) {
        out += " | maxQ=" + std::to_string(c.max_level_q) + " playing=" +
               std::to_string(c.lottery_playing);
    }
    if (c.by_epoch[1] + c.by_epoch[2] > 0) {
        out += " | maxRand=" + std::to_string(c.max_rand);
    }
    if (c.by_epoch[3] > 0) out += " | maxB=" + std::to_string(c.max_level_b);
    return out;
}

}  // namespace ppsim
