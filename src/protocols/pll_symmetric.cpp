#include "pll_symmetric.hpp"

#include <algorithm>

namespace ppsim {

namespace {

[[nodiscard]] constexpr std::uint16_t saturating_increment(std::uint16_t x,
                                                           unsigned cap) noexcept {
    return x + 1U >= cap ? static_cast<std::uint16_t>(cap) : static_cast<std::uint16_t>(x + 1U);
}

[[nodiscard]] constexpr std::uint8_t next_color(std::uint8_t c) noexcept {
    return static_cast<std::uint8_t>((c + 1U) % 3U);
}

/// Demotes a leader to follower: Section 4 assigns every fresh follower the
/// coin status J; the duel bit dies with leadership.
void demote_to_follower(SymPllState& s) noexcept {
    s.leader = false;
    s.coin = CoinStatus::j;
    s.duel = DuelBit::none;
}

/// Returns the leader of the pair when exactly one of the two agents is a
/// leader, nullptr otherwise. Purely state-based — no positional asymmetry.
[[nodiscard]] SymPllState* sole_leader(SymPllState& a0, SymPllState& a1) noexcept {
    if (a0.leader && !a1.leader) return &a0;
    if (a1.leader && !a0.leader) return &a1;
    return nullptr;
}

/// The follower partner of `leader` in the pair (a0, a1).
[[nodiscard]] SymPllState& partner_of(SymPllState* leader, SymPllState& a0,
                                      SymPllState& a1) noexcept {
    return leader == &a0 ? a1 : a0;
}

}  // namespace

void SymmetricPll::interact(State& a0, State& a1) const noexcept {
    assign_status(a0, a1);

    // Transient tick flags, as in the asymmetric protocol (line 7).
    a0.tick = false;
    a1.tick = false;

    count_up(a0, a1);

    // Epoch advance on tick + pairwise synchronisation (lines 9–10).
    if (a0.tick && a0.epoch < 4) ++a0.epoch;
    if (a1.tick && a1.epoch < 4) ++a1.epoch;
    const std::uint8_t epoch = std::max(a0.epoch, a1.epoch);
    a0.epoch = epoch;
    a1.epoch = epoch;
    if (a0.epoch > a0.init) initialize_group_variables(a0);
    if (a1.epoch > a1.init) initialize_group_variables(a1);

    // The fair-coin substrate runs on every follower-follower meeting,
    // independent of epochs. It commutes with the epidemics below (disjoint
    // fields), so its position in the interaction is immaterial.
    coin_substrate(a0, a1);

    switch (epoch) {
        case 1: quick_elimination(a0, a1); break;
        case 2:
        case 3: tournament(a0, a1); break;
        default: back_up(a0, a1); break;
    }
}

void SymmetricPll::assign_status(State& a0, State& a1) const noexcept {
    const bool u0 = a0.status == SymStatus::x || a0.status == SymStatus::y;
    const bool u1 = a1.status == SymStatus::x || a1.status == SymStatus::y;
    if (u0 && u1) {
        if (a0.status == SymStatus::x && a1.status == SymStatus::x) {
            // X×X → Y×Y
            a0.status = SymStatus::y;
            a1.status = SymStatus::y;
        } else if (a0.status == SymStatus::y && a1.status == SymStatus::y) {
            // Y×Y → X×X
            a0.status = SymStatus::x;
            a1.status = SymStatus::x;
        } else {
            // X×Y → A×B: the X-party becomes the leader candidate.
            State& cand = a0.status == SymStatus::x ? a0 : a1;
            State& timer = a0.status == SymStatus::x ? a1 : a0;
            cand.status = SymStatus::a;
            cand.leader = true;
            initialize_candidate_variables(cand, /*as_leader=*/true);
            timer.status = SymStatus::b;
            timer.count = 0;
            demote_to_follower(timer);
        }
    } else if (u0 != u1) {
        // Latecomer: an unassigned agent meeting an assigned one joins VA as
        // a follower that never plays (the asymmetric lines 4–5).
        State& late = u0 ? a0 : a1;
        late.status = SymStatus::a;
        demote_to_follower(late);
        initialize_candidate_variables(late, /*as_leader=*/false);
    }
}

void SymmetricPll::initialize_candidate_variables(State& s, bool as_leader) const noexcept {
    // Completion 2 (see header): an unassigned agent may already be past
    // epoch 1 (X↔Y oscillation keeps it unassigned through colour ticks),
    // so initialise the group of its *current* epoch.
    s.level_q = 0;
    s.done = false;
    s.rand = 0;
    s.index = 0;
    s.level_b = 0;
    s.duel = DuelBit::none;
    switch (s.epoch) {
        case 1: s.done = !as_leader; break;
        case 2:
        case 3: s.index = as_leader ? 0 : static_cast<std::uint8_t>(config_.phi()); break;
        default: break;  // epoch 4: levelB = 0 for everyone
    }
    s.init = s.epoch;
}

void SymmetricPll::initialize_group_variables(State& s) const noexcept {
    if (s.status == SymStatus::a) {
        if (s.epoch == 2 || s.epoch == 3) {
            s.rand = 0;
            s.index = s.leader ? 0 : static_cast<std::uint8_t>(config_.phi());
            s.level_q = 0;
            s.done = false;
        } else if (s.epoch == 4) {
            s.level_b = 0;
            s.rand = 0;
            s.index = 0;
            s.level_q = 0;
            s.done = false;
            s.duel = DuelBit::none;
        }
    }
    s.init = s.epoch;
}

void SymmetricPll::count_up(State& a0, State& a1) const noexcept {
    const unsigned cmax = config_.cmax();
    const auto advance_timer = [&](State& s) {
        if (s.status != SymStatus::b) return;
        s.count = static_cast<std::uint16_t>((s.count + 1U) % cmax);
        if (s.count == 0) {
            s.color = next_color(s.color);
            s.tick = true;
        }
    };
    advance_timer(a0);
    advance_timer(a1);

    const auto adopt_from = [&](State& behind, const State& ahead) {
        behind.color = ahead.color;
        behind.tick = true;
        if (behind.status == SymStatus::b) behind.count = 0;
    };
    if (a1.color == next_color(a0.color)) {
        adopt_from(a0, a1);
    } else if (a0.color == next_color(a1.color)) {
        adopt_from(a1, a0);
    }
}

void SymmetricPll::coin_substrate(State& a0, State& a1) const noexcept {
    if (a0.leader || a1.leader) return;
    // J×J → K×K, K×K → J×J, J×K → F0×F1. F0/F1 are minted in pairs and
    // never destroyed, so #F0 = #F1 in every reachable configuration — the
    // invariant that makes leader coin observations exactly fair.
    if (a0.coin == CoinStatus::j && a1.coin == CoinStatus::j) {
        a0.coin = CoinStatus::k;
        a1.coin = CoinStatus::k;
    } else if (a0.coin == CoinStatus::k && a1.coin == CoinStatus::k) {
        a0.coin = CoinStatus::j;
        a1.coin = CoinStatus::j;
    } else if ((a0.coin == CoinStatus::j && a1.coin == CoinStatus::k) ||
               (a0.coin == CoinStatus::k && a1.coin == CoinStatus::j)) {
        State& from_j = a0.coin == CoinStatus::j ? a0 : a1;
        State& from_k = a0.coin == CoinStatus::j ? a1 : a0;
        from_j.coin = CoinStatus::f0;
        from_k.coin = CoinStatus::f1;
    }
}

void SymmetricPll::quick_elimination(State& a0, State& a1) const noexcept {
    const unsigned lmax = config_.lmax();

    // Lottery flips via the coin substrate: F0 = head, F1 = tail, J/K = no
    // observation (the leader waits for a minted coin).
    if (State* leader = sole_leader(a0, a1); leader != nullptr && !leader->done) {
        const State& follower = partner_of(leader, a0, a1);
        if (follower.coin == CoinStatus::f0) {
            leader->level_q = saturating_increment(leader->level_q, lmax);
        } else if (follower.coin == CoinStatus::f1) {
            leader->done = true;
        }
    }

    // Epidemic of the maximum levelQ, exactly as in the asymmetric protocol
    // (state-based, hence already symmetric).
    if (a0.status == SymStatus::a && a1.status == SymStatus::a && a0.done && a1.done &&
        a0.level_q != a1.level_q) {
        State& smaller = a0.level_q < a1.level_q ? a0 : a1;
        const State& larger = a0.level_q < a1.level_q ? a1 : a0;
        smaller.level_q = larger.level_q;
        if (smaller.leader) demote_to_follower(smaller);
    }
}

void SymmetricPll::tournament(State& a0, State& a1) const noexcept {
    const auto phi = static_cast<std::uint8_t>(config_.phi());

    if (State* leader = sole_leader(a0, a1); leader != nullptr && leader->index < phi) {
        const State& follower = partner_of(leader, a0, a1);
        if (follower.coin == CoinStatus::f0) {
            leader->rand = static_cast<std::uint16_t>(2U * leader->rand);
            leader->index = static_cast<std::uint8_t>(saturating_increment(leader->index, phi));
        } else if (follower.coin == CoinStatus::f1) {
            leader->rand = static_cast<std::uint16_t>(2U * leader->rand + 1U);
            leader->index = static_cast<std::uint8_t>(saturating_increment(leader->index, phi));
        }
    }

    if (a0.status == SymStatus::a && a1.status == SymStatus::a && a0.index == phi &&
        a1.index == phi && a0.rand != a1.rand) {
        State& smaller = a0.rand < a1.rand ? a0 : a1;
        const State& larger = a0.rand < a1.rand ? a1 : a0;
        smaller.rand = larger.rand;
        if (smaller.leader) demote_to_follower(smaller);
    }
}

void SymmetricPll::back_up(State& a0, State& a1) const noexcept {
    const unsigned lmax = config_.lmax();

    if (State* leader = sole_leader(a0, a1); leader != nullptr) {
        const State& follower = partner_of(leader, a0, a1);
        // One coin per synchroniser tick: F0 = head = climb one level.
        if (leader->tick && follower.coin == CoinStatus::f0) {
            leader->level_b = saturating_increment(leader->level_b, lmax);
        }
        // Duel-bit refresh on every minted-coin meeting (completion 1).
        if (follower.coin == CoinStatus::f0) {
            leader->duel = DuelBit::zero;
        } else if (follower.coin == CoinStatus::f1) {
            leader->duel = DuelBit::one;
        }
    }

    // Epidemic of the maximum levelB across VA.
    if (a0.status == SymStatus::a && a1.status == SymStatus::a &&
        a0.level_b != a1.level_b) {
        State& smaller = a0.level_b < a1.level_b ? a0 : a1;
        const State& larger = a0.level_b < a1.level_b ? a1 : a0;
        smaller.level_b = larger.level_b;
        if (smaller.leader) demote_to_follower(smaller);
    }

    // Symmetric replacement of line 58: equal-level leaders with opposing
    // duel bits resolve — duel-0 survives, both bits reset. Equal states do
    // nothing, as the symmetry constraint requires.
    if (a0.leader && a1.leader && a0.level_b == a1.level_b &&
        a0.duel != DuelBit::none && a1.duel != DuelBit::none && a0.duel != a1.duel) {
        State& loser = a0.duel == DuelBit::one ? a0 : a1;
        State& winner = a0.duel == DuelBit::one ? a1 : a0;
        winner.duel = DuelBit::none;
        demote_to_follower(loser);
    }
}

std::uint64_t SymmetricPll::state_key(const State& s) const noexcept {
    std::uint64_t aux = 0;
    if (s.status == SymStatus::b) {
        aux = s.count;
    } else if (s.status == SymStatus::a) {
        switch (s.epoch) {
            case 1:
                aux = static_cast<std::uint64_t>(s.level_q) * 2U +
                      static_cast<std::uint64_t>(s.done);
                break;
            case 2:
            case 3:
                aux = static_cast<std::uint64_t>(s.rand) *
                          (static_cast<std::uint64_t>(config_.phi()) + 1U) +
                      s.index;
                break;
            default: aux = s.level_b; break;
        }
    }
    std::uint64_t key = static_cast<std::uint64_t>(s.status);
    key = key * 4U + (s.epoch - 1U);
    key = key * 4U + (s.init - 1U);
    key = key * 3U + s.color;
    key = key * 2U + static_cast<std::uint64_t>(s.leader);
    key = key * 2U + static_cast<std::uint64_t>(s.tick);
    key = key * 4U + static_cast<std::uint64_t>(s.coin);
    key = key * 3U + static_cast<std::uint64_t>(s.duel);
    key = key * (1ULL << 32U) + aux;
    return key;
}

std::size_t SymmetricPll::state_bound() const noexcept {
    // Product bound over domains, as in Pll::state_bound, with the extra
    // coin (4) and duel (3) factors of the symmetric substrate.
    const std::size_t common = 4U * 4U * 3U * 2U * 2U * 4U * 3U;
    const std::size_t group_xy = 2;
    const std::size_t group_b = config_.cmax();
    const std::size_t group_a_v1 = (config_.lmax() + 1U) * 2U;
    const std::size_t group_a_v23 = (std::size_t{1} << config_.phi()) * (config_.phi() + 1U);
    const std::size_t group_a_v4 = config_.lmax() + 1U;
    return common * (group_xy + group_b + group_a_v1 + group_a_v23 + group_a_v4);
}

}  // namespace ppsim
