/// \file pll_symmetric.hpp
/// \brief The symmetric variant of PLL (Section 4 of Sudo et al., PODC 2019).
///
/// A protocol is *symmetric* when the transition function cannot use the
/// initiator/responder distinction to tell two agents in the same state
/// apart: p = q ⇒ p' = q'. PLL's only asymmetric actions are (a) status
/// assignment and (b) coin flips; Section 4 sketches symmetric replacements:
///
///  * **Status assignment** — add a shadow status Y with the rules
///    `X×X → Y×Y`, `Y×Y → X×X`, `X×Y → A×B` (the X-party becomes the leader
///    candidate A, the Y-party the timer B), and any X/Y agent meeting an
///    A/B agent joins VA as a follower, as in the asymmetric protocol.
///  * **Coin flips** — every follower carries a coin status in
///    {J, K, F0, F1}; new followers start at J; follower-follower meetings
///    apply `J×J → K×K`, `K×K → J×J`, `J×K → F0×F1`. Since F0/F1 are minted
///    in pairs and never destroyed, #F0 = #F1 holds in every reachable
///    configuration, so a leader meeting a follower with coin F0 (head) or
///    F1 (tail) observes a *totally fair and independent* coin flip.
///    Meetings with J/K followers yield no flip.
///
/// ## Completions of the Section-4 sketch (documented deviations)
///
/// The paper describes the strategy in prose; three details must be filled
/// in to obtain a complete protocol. Each preserves the claimed asymptotics.
///
/// 1. **Line 58's tie-break is asymmetric** ("two leaders meet, the
///    responder drops out") and Section 4 does not replace it. We use the
///    coin substrate: a V4-leader refreshes a `duel` bit (0 on meeting an
///    F0-follower, 1 on F1). When two leaders with equal levelB meet and
///    their duel bits are both set and differ, the duel-0 leader survives
///    and both duel bits reset. Two leaders in *identical* states do
///    nothing (as symmetry demands) but diverge after their next coin.
///    Each leader-leader meeting with refreshed duels eliminates with
///    probability 1/2, so the BackUp fallback stays O(n) expected — the
///    same bound Lemma 10 gives the asymmetric rule.
/// 2. **Unassigned agents can outlive epoch 1**: X↔Y oscillation means an
///    agent may gain status only after its epoch advanced, so status
///    assignment initialises the variables of the agent's *current* epoch
///    group (levelQ/done, rand/index, or levelB), not unconditionally the
///    epoch-1 group.
/// 3. **n = 2 is unsolvable for symmetric protocols** from a uniform
///    initial configuration (X×X and Y×Y oscillate forever; with both
///    agents always in equal states no deterministic symmetric rule can
///    ever separate them). We require n ≥ 3, where an X×Y meeting occurs
///    with probability 1. This is a fundamental model limitation, not an
///    implementation one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "../core/common.hpp"
#include "../core/protocol.hpp"
#include "pll.hpp"

namespace ppsim {

/// Status for the symmetric variant: X/Y unassigned, A candidate, B timer.
enum class SymStatus : std::uint8_t { x = 0, y = 1, a = 2, b = 3 };

/// Follower coin status of the Section-4 fair-coin substrate.
enum class CoinStatus : std::uint8_t { j = 0, k = 1, f0 = 2, f1 = 3 };

/// Duel bit of a V4 leader (completion 1 above).
enum class DuelBit : std::uint8_t { none = 0, zero = 1, one = 2 };

/// Agent state of the symmetric PLL.
struct SymPllState {
    std::uint16_t count = 0;    ///< VB: count-up timer
    std::uint16_t level_q = 0;  ///< VA∩V1
    std::uint16_t rand = 0;     ///< VA∩(V2∪V3)
    std::uint16_t level_b = 0;  ///< VA∩V4
    std::uint8_t index = 0;     ///< VA∩(V2∪V3)
    SymStatus status = SymStatus::x;
    std::uint8_t epoch = 1;
    std::uint8_t init = 1;
    std::uint8_t color = 0;
    bool done = false;
    bool leader = true;
    bool tick = false;
    CoinStatus coin = CoinStatus::j;  ///< live for followers only
    DuelBit duel = DuelBit::none;     ///< live for V4 leaders only

    friend constexpr bool operator==(const SymPllState&, const SymPllState&) = default;
};

/// Symmetric PLL protocol. Same module structure and parameters as Pll;
/// the initiator/responder roles are never consulted — verified by the
/// symmetry property test (interact(p, q) mirrored equals swapped result).
class SymmetricPll {
public:
    using State = SymPllState;

    explicit SymmetricPll(PllConfig config) : config_(config) {
        require(config.m >= 2, "symmetric PLL requires m >= 2");
    }

    [[nodiscard]] static SymmetricPll for_population(std::size_t n) {
        require(n >= 3, "symmetric PLL requires n >= 3 (see header note 3)");
        return SymmetricPll(PllConfig::for_population(n));
    }

    [[nodiscard]] const PllConfig& config() const noexcept { return config_; }

    // --- Protocol concept ---------------------------------------------------

    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.leader ? Role::leader : Role::follower;
    }

    void interact(State& a0, State& a1) const noexcept;

    [[nodiscard]] std::string_view name() const noexcept { return "pll_symmetric"; }

    // --- state accounting ----------------------------------------------------

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept;
    [[nodiscard]] std::size_t state_bound() const noexcept;

    // --- introspection ---------------------------------------------------------

    [[nodiscard]] static bool is_leader(const State& s) noexcept { return s.leader; }
    [[nodiscard]] static bool is_follower(const State& s) noexcept { return !s.leader; }
    [[nodiscard]] static bool assigned(const State& s) noexcept {
        return s.status == SymStatus::a || s.status == SymStatus::b;
    }
    [[nodiscard]] static CoinStatus coin_of(const State& s) noexcept { return s.coin; }

private:
    void assign_status(State& a0, State& a1) const noexcept;
    void initialize_candidate_variables(State& s, bool as_leader) const noexcept;
    void initialize_group_variables(State& s) const noexcept;
    void count_up(State& a0, State& a1) const noexcept;
    void coin_substrate(State& a0, State& a1) const noexcept;
    void quick_elimination(State& a0, State& a1) const noexcept;
    void tournament(State& a0, State& a1) const noexcept;
    void back_up(State& a0, State& a1) const noexcept;

    PllConfig config_;
};

static_assert(sizeof(SymPllState) <= 24, "symmetric PLL state should stay within 24 bytes");

}  // namespace ppsim
