/// \file rated.hpp
/// \brief Rate-annotated protocols (RatedProtocol, core/protocol.hpp): the
/// registry's workloads for non-uniform interaction rates.
///
/// The uniform scheduler of the source paper gives every ordered pair the
/// same meeting rate. The rate annotation layer generalises this: each
/// ordered state pair (a, b) carries a relative Poisson-clock rate, and a
/// scheduled pair fires with probability rate(a, b) / max_rate() (see the
/// rate contract in protocol.hpp). Two workloads exercise it:
///
///  * `RatedEpidemic` — an SI-style spread of the defeated state with two
///    contact-activity classes. Contests happen between candidates (the
///    [Ang+06] pairwise rule, so the readout is a leader election); the
///    winner of a contest becomes a *fast* contactor (activity 2, the
///    super-spreader class) while defeated agents drop to the slow class.
///    Contact rates multiply: slow–slow pairs run at 1/4 of the maximum,
///    pairs with one fast agent at 1/2, fast–fast at full speed — so the
///    heterogeneity itself is produced by the process, exactly like the
///    high-activity cores of epidemic contact networks.
///
///  * `TwoRateElection` — the geometric-lottery election (lottery.hpp) with
///    two rate classes in the style of Gąsieniec–Stachowiak–Uznański's
///    clocked constructions (arXiv:1802.06867): agents still in the race
///    (leaders) are *hot* and interact eagerly; settled followers are *cold*
///    and idle at 1/9 of the maximum pair rate. The hot junta drives the
///    election at full speed while the bulk slows down — the rate-class
///    picture of a junta-driven phase clock, as a measurable workload.
///
/// Both protocols keep deterministic transitions (all randomness stays in
/// the scheduler + thinning, as the model prescribes) and an absorbing
/// single-leader predicate, so every engine, the KS harness and the golden
/// replay machinery treat them like any other registered protocol.
#pragma once

#include <cstdint>
#include <string_view>

#include "../core/common.hpp"
#include "../core/protocol.hpp"
#include "lottery.hpp"

namespace ppsim {

/// Agent state of the rated epidemic: still-contending candidate bit plus
/// the contact-activity class.
struct RatedEpidemicState {
    bool candidate = true;  ///< still uninfected/contending (output: leader)
    bool fast = false;      ///< high-activity contact class

    friend constexpr bool operator==(const RatedEpidemicState&,
                                     const RatedEpidemicState&) = default;
};

/// SI-style defeat epidemic with two contact-activity classes (see file
/// comment). Reachable states: candidate-slow (initial), candidate-fast
/// (won at least one contest), follower-slow (defeated).
class RatedEpidemic {
public:
    using State = RatedEpidemicState;

    /// Relative contact activity of the two classes (rates multiply).
    static constexpr double fast_activity = 2.0;
    static constexpr double slow_activity = 1.0;

    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.candidate ? Role::leader : Role::follower;
    }

    void interact(State& a0, State& a1) const noexcept {
        if (a0.candidate && a1.candidate) {
            a1.candidate = false;  // responder defeated (infected) …
            a1.fast = false;       // … and convalescent: back to slow contacts
            a0.fast = true;        // winner becomes a super-spreader
        }
    }

    /// Contact rate of an ordered pair: the product of the two activity
    /// classes — 1 (slow–slow) … 4 (fast–fast).
    [[nodiscard]] double rate(const State& a, const State& b) const noexcept {
        return activity(a) * activity(b);
    }

    [[nodiscard]] double max_rate() const noexcept {
        return fast_activity * fast_activity;
    }

    [[nodiscard]] std::string_view name() const noexcept { return "rated_epidemic"; }

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return (static_cast<std::uint64_t>(s.fast) << 1U) |
               static_cast<std::uint64_t>(s.candidate);
    }

    [[nodiscard]] std::size_t state_bound() const noexcept { return 3; }

private:
    [[nodiscard]] static double activity(const State& s) noexcept {
        return s.fast ? fast_activity : slow_activity;
    }
};

/// The geometric-lottery election with hot/cold rate classes (see file
/// comment): state, transitions and readout are exactly `Lottery`'s; only
/// the interaction rates differ. Composition keeps the two protocols'
/// chains comparable — `rated_election` under rate 1 everywhere would *be*
/// `lottery`.
class TwoRateElection {
public:
    using State = LotteryState;

    /// Relative meeting weight of an agent still in the race (leaders are
    /// hot); settled followers weigh 1. Pair rates multiply: cold–cold runs
    /// at 1/9 of hot–hot.
    static constexpr double hot_weight = 3.0;

    explicit TwoRateElection(unsigned lmax) : base_(lmax) {}

    [[nodiscard]] static TwoRateElection for_population(std::size_t n) {
        return TwoRateElection(Lottery::for_population(n).lmax());
    }

    [[nodiscard]] State initial_state() const noexcept { return base_.initial_state(); }

    [[nodiscard]] Role output(const State& s) const noexcept { return base_.output(s); }

    void interact(State& a0, State& a1) const noexcept { base_.interact(a0, a1); }

    [[nodiscard]] double rate(const State& a, const State& b) const noexcept {
        return weight(a) * weight(b);
    }

    [[nodiscard]] double max_rate() const noexcept { return hot_weight * hot_weight; }

    [[nodiscard]] std::string_view name() const noexcept { return "rated_election"; }

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return base_.state_key(s);
    }

    [[nodiscard]] std::size_t state_bound() const noexcept { return base_.state_bound(); }

    [[nodiscard]] unsigned lmax() const noexcept { return base_.lmax(); }

private:
    [[nodiscard]] double weight(const State& s) const noexcept {
        return s.leader ? hot_weight : 1.0;
    }

    Lottery base_;
};

}  // namespace ppsim
