#include "registry.hpp"

#include "angluin.hpp"
#include "loose.hpp"
#include "lottery.hpp"
#include "mst.hpp"
#include "pll.hpp"
#include "pll_symmetric.hpp"
#include "rated.hpp"

namespace ppsim {

namespace {

ProtocolRegistry build_default_registry() {
    ProtocolRegistry registry;
    registry.register_protocol(
        ProtocolInfo{"angluin06", "[Ang+06]", "O(1)", "O(n)"},
        [](std::size_t) { return Angluin{}; });
    registry.register_protocol(
        ProtocolInfo{"loose_sud12", "[Sud+12] (loosely stabilising)", "O(log n)",
                     "O(n) worst pair; holds w.h.p."},
        [](std::size_t n) { return LooselyStabilizing::for_population(n); });
    registry.register_protocol(
        ProtocolInfo{"lottery", "[Ali+17]-style (QE lottery only)", "O(log n)",
                     "O(log n) + P(tie)*O(n)"},
        [](std::size_t n) { return Lottery::for_population(n); });
    registry.register_protocol(
        ProtocolInfo{"mst18_style", "[MST18]-style (wide nonce)", "poly(n)", "O(log n)"},
        [](std::size_t n) { return MstStyle::for_population(n); });
    registry.register_protocol(
        ProtocolInfo{"pll", "this work [Sudo+19]", "O(log n)", "O(log n)"},
        [](std::size_t n) { return Pll::for_population(n); });
    registry.register_protocol(
        ProtocolInfo{"pll_symmetric", "this work, Section 4", "O(log n)", "O(log n)"},
        [](std::size_t n) { return SymmetricPll::for_population(n < 3 ? 3 : n); });
    // Rate-annotated workloads (rated.hpp): non-uniform interaction rates
    // honoured natively by the gillespie engine and by rejection thinning on
    // the agent/batched engines.
    registry.register_protocol(
        ProtocolInfo{"rated_epidemic", "this repo (two-class contact rates)", "3",
                     "O(n)"},
        [](std::size_t) { return RatedEpidemic{}; });
    registry.register_protocol(
        ProtocolInfo{"rated_election", "[GSU18]-style rate classes over the lottery",
                     "O(log n)", "O(log n) + P(tie)*O(n)"},
        [](std::size_t n) { return TwoRateElection::for_population(n); });
    return registry;
}

}  // namespace

const ProtocolRegistry& ProtocolRegistry::instance() {
    static const ProtocolRegistry registry = build_default_registry();
    return registry;
}

std::vector<std::string> ProtocolRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.info.name);
    return out;
}

bool ProtocolRegistry::contains(const std::string& name) const {
    for (const Entry& e : entries_) {
        if (e.info.name == name) return true;
    }
    return false;
}

const ProtocolRegistry::Entry& ProtocolRegistry::entry(const std::string& name) const {
    for (const Entry& e : entries_) {
        if (e.info.name == name) return e;
    }
    throw InvalidArgument("unknown protocol: " + name);
}

const ProtocolInfo& ProtocolRegistry::info(const std::string& name) const {
    return entry(name).info;
}

std::unique_ptr<Simulation> ProtocolRegistry::make_simulation(
    const std::string& name, std::size_t n, std::uint64_t seed, EngineKind engine,
    BatchMode batch_mode, std::size_t threads) const {
    return entry(name).simulate(n, seed, engine, batch_mode, threads);
}

std::unique_ptr<Simulation> ProtocolRegistry::make_simulation(
    const CheckpointHeader& header) const {
    // A crash fault can checkpoint a single survivor; engine constructors
    // demand two agents, and restore overwrites the population anyway.
    const auto n = static_cast<std::size_t>(std::max<std::uint64_t>(header.population, 2));
    return make_simulation(header.protocol, n, header.seed,
                           parse_engine_kind(header.engine),
                           parse_batch_mode(header.batch_mode),
                           static_cast<std::size_t>(header.threads));
}

std::unique_ptr<Simulation> ProtocolRegistry::resume_simulation(
    const std::string& path) const {
    std::string payload;
    const CheckpointHeader header = load_checkpoint(path, payload);
    auto sim = make_simulation(header);
    CheckpointReader reader(std::move(payload));
    sim->restore_checkpoint(reader);
    reader.expect_end();
    return sim;
}

RunResult ProtocolRegistry::run_election(const std::string& name, std::size_t n,
                                         std::uint64_t seed, StepCount max_steps,
                                         EngineKind engine, BatchMode batch_mode,
                                         const FaultPlan& faults,
                                         std::size_t threads) const {
    const auto sim = make_simulation(name, n, seed, engine, batch_mode, threads);
    if (!faults.empty()) sim->set_fault_plan(faults);
    return run_to_single_leader(*sim, max_steps);
}

RunResult ProtocolRegistry::run_election_verified(const std::string& name, std::size_t n,
                                                  std::uint64_t seed, StepCount max_steps,
                                                  StepCount verify_steps,
                                                  EngineKind engine, BatchMode batch_mode,
                                                  std::size_t threads) const {
    const auto sim = make_simulation(name, n, seed, engine, batch_mode, threads);
    return run_to_single_leader(*sim, max_steps, verify_steps);
}

RunResult ProtocolRegistry::run_for(const std::string& name, std::size_t n,
                                    std::uint64_t seed, StepCount steps,
                                    EngineKind engine, BatchMode batch_mode,
                                    std::size_t threads) const {
    const auto sim = make_simulation(name, n, seed, engine, batch_mode, threads);
    return sim->run_for(steps);
}

std::unique_ptr<AnyProtocol> ProtocolRegistry::make(const std::string& name,
                                                    std::size_t n) const {
    return entry(name).make(n);
}

std::vector<ProtocolInfo> unimplemented_table1_rows() {
    return {
        ProtocolInfo{"ag15", "[AG15]", "O(log^3 n)", "O(log^3 n)"},
        ProtocolInfo{"aaegr17", "[Ali+17] (full)", "O(log^2 n)",
                     "O(log^5.3 n loglog n)"},
        ProtocolInfo{"aag18", "[AAG18]", "O(log n)", "O(log^2 n)"},
        ProtocolInfo{"gs18", "[GS18]", "O(loglog n)", "O(log^2 n)"},
        ProtocolInfo{"gsu18", "[GSU18]", "O(loglog n)", "O(log n loglog n)"},
        ProtocolInfo{"mst18", "[MST18] (as published)", "O(n)", "O(log n)"},
    };
}

}  // namespace ppsim
