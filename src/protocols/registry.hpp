/// \file registry.hpp
/// \brief Runtime registry of the library's leader-election protocols:
/// name → factory + metadata, backing the examples, the experiment driver
/// and the Table-1 bench.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "../core/batched_engine.hpp"
#include "../core/engine.hpp"
#include "../core/protocol.hpp"

namespace ppsim {

/// Static facts about a protocol, used for the Table-1 comparison rows.
struct ProtocolInfo {
    std::string name;           ///< registry key, e.g. "pll"
    std::string citation;       ///< paper the row corresponds to
    std::string theory_states;  ///< asymptotic state count claimed there
    std::string theory_time;    ///< asymptotic expected stabilisation time
};

/// Registry of runnable protocols. Each entry can (a) run a full election on
/// the fast templated engine and (b) hand out a type-erased instance for
/// state-space analysis. Protocols are instantiated per population size
/// (they are non-uniform, exactly as in the paper: PLL receives m).
class ProtocolRegistry {
public:
    /// The process-wide registry with all built-in protocols registered.
    [[nodiscard]] static const ProtocolRegistry& instance();

    /// Registered protocol names, in registration order.
    [[nodiscard]] std::vector<std::string> names() const;

    [[nodiscard]] bool contains(const std::string& name) const;

    /// Metadata for a registered protocol; throws on unknown names.
    [[nodiscard]] const ProtocolInfo& info(const std::string& name) const;

    /// Runs a full election of `name` on n agents with the given seed.
    /// `max_steps` bounds the run; `engine` selects the back-end (the fast
    /// templated agent engine, or the count-based batched engine).
    [[nodiscard]] RunResult run_election(const std::string& name, std::size_t n,
                                         std::uint64_t seed, StepCount max_steps,
                                         EngineKind engine = EngineKind::agent) const;

    /// As run_election, but additionally verifies output stability over
    /// `verify_steps` extra interactions; sets `converged = false` if any
    /// output changed after the detected stabilisation point.
    [[nodiscard]] RunResult run_election_verified(const std::string& name, std::size_t n,
                                                  std::uint64_t seed, StepCount max_steps,
                                                  StepCount verify_steps,
                                                  EngineKind engine = EngineKind::agent) const;

    /// Runs exactly `steps` interactions regardless of convergence — the
    /// fixed-work entry point for throughput benchmarking (both engines
    /// clamp their final batch/step to the budget).
    [[nodiscard]] RunResult run_for(const std::string& name, std::size_t n,
                                    std::uint64_t seed, StepCount steps,
                                    EngineKind engine = EngineKind::agent) const;

    /// Type-erased instance for population size n (state-space counting).
    [[nodiscard]] std::unique_ptr<AnyProtocol> make(const std::string& name,
                                                    std::size_t n) const;

    /// Registers a custom protocol (used by the custom-protocol example).
    /// `factory` receives the population size.
    template <typename Factory>
    void register_protocol(ProtocolInfo info, Factory factory) {
        using P = decltype(factory(std::size_t{2}));
        static_assert(Protocol<P>, "factory must produce a Protocol");
        Entry entry;
        entry.info = std::move(info);
        entry.run = [factory](std::size_t n, std::uint64_t seed, StepCount max_steps,
                              StepCount verify_steps, EngineKind kind) {
            return dispatch_engine(factory, n, seed, kind, [&](auto& engine) {
                return finish_run(engine, n, max_steps, verify_steps);
            });
        };
        entry.run_for = [factory](std::size_t n, std::uint64_t seed, StepCount steps,
                                  EngineKind kind) {
            return dispatch_engine(factory, n, seed, kind,
                                   [&](auto& engine) { return engine.run_for(steps); });
        };
        entry.make = [factory](std::size_t n) { return erase_protocol(factory(n)); };
        entries_.push_back(std::move(entry));
    }

    ProtocolRegistry() = default;

private:
    struct Entry {
        ProtocolInfo info;
        std::function<RunResult(std::size_t, std::uint64_t, StepCount, StepCount, EngineKind)>
            run;
        std::function<RunResult(std::size_t, std::uint64_t, StepCount, EngineKind)> run_for;
        std::function<std::unique_ptr<AnyProtocol>(std::size_t)> make;
    };

    /// Constructs the selected engine for one run and applies `fn` to it —
    /// the single place the agent/batched choice is made for registry runs.
    template <typename Factory, typename Fn>
    static RunResult dispatch_engine(const Factory& factory, std::size_t n,
                                     std::uint64_t seed, EngineKind kind, Fn&& fn) {
        using P = decltype(factory(std::size_t{2}));
        if (kind == EngineKind::batched) {
            if constexpr (InternableProtocol<P>) {
                BatchedEngine<P> engine(factory(n), n, seed);
                return fn(engine);
            } else {
                throw InvalidArgument(
                    "protocol has no injective state key: batched engine unavailable");
            }
        }
        Engine<P> engine(factory(n), n, seed);
        return fn(engine);
    }

    /// Shared run-until-one-leader + optional stability verification for
    /// either engine (they expose the same execution surface).
    template <typename AnyEngine>
    static RunResult finish_run(AnyEngine& engine, std::size_t n, StepCount max_steps,
                                StepCount verify_steps) {
        RunResult result = engine.run_until_one_leader(max_steps);
        if (verify_steps > 0 && result.converged) {
            if (!engine.verify_outputs_stable(verify_steps)) result.converged = false;
            result.steps = engine.steps();
            result.parallel_time = to_parallel_time(engine.steps(), n);
            result.leader_count = engine.leader_count();
        }
        return result;
    }

    [[nodiscard]] const Entry& entry(const std::string& name) const;

    std::vector<Entry> entries_;
};

/// Table-1 rows for protocols whose full reproduction is out of scope (see
/// DESIGN.md): reported from the paper, marked unmeasured in the bench.
[[nodiscard]] std::vector<ProtocolInfo> unimplemented_table1_rows();

}  // namespace ppsim
