/// \file registry.hpp
/// \brief Runtime registry of the library's leader-election protocols:
/// name → factory + metadata, backing the examples, the experiment driver
/// and the Table-1 bench.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "../core/persist.hpp"
#include "../core/protocol.hpp"
#include "../core/simulation.hpp"

namespace ppsim {

/// Static facts about a protocol, used for the Table-1 comparison rows.
struct ProtocolInfo {
    std::string name;           ///< registry key, e.g. "pll"
    std::string citation;       ///< paper the row corresponds to
    std::string theory_states;  ///< asymptotic state count claimed there
    std::string theory_time;    ///< asymptotic expected stabilisation time
};

/// Registry of runnable protocols. Each entry can (a) hand out a
/// type-erased `Simulation` over either engine and (b) hand out a
/// type-erased protocol instance for state-space analysis. Protocols are
/// instantiated per population size (they are non-uniform, exactly as in
/// the paper: PLL receives m).
class ProtocolRegistry {
public:
    /// The process-wide registry with all built-in protocols registered.
    [[nodiscard]] static const ProtocolRegistry& instance();

    /// Registered protocol names, in registration order.
    [[nodiscard]] std::vector<std::string> names() const;

    [[nodiscard]] bool contains(const std::string& name) const;

    /// Metadata for a registered protocol; throws on unknown names.
    [[nodiscard]] const ProtocolInfo& info(const std::string& name) const;

    /// Builds a ready-to-run type-erased simulation of `name` on `n` agents
    /// with the given seed and back-end — the single factory every
    /// type-erased consumer (sweeps, CLI, benches) goes through. Attach
    /// observers (core/observer.hpp) before running to record trajectories.
    /// `batch_mode` selects the batched engine's pairing strategy
    /// (core/batch_pairing.hpp); the agent engine ignores it. `threads`
    /// sets the count engines' intra-run worker count (1 = sequential,
    /// 0 = hardware concurrency; core/shard.hpp documents the stream-split
    /// contract); the agent engine ignores it. `EngineKind::hybrid` builds
    /// the adaptive meta-engine (core/hybrid_engine.hpp), which reads the
    /// process-wide calibration options of core/calibration.hpp — no extra
    /// parameters here by design.
    [[nodiscard]] std::unique_ptr<Simulation> make_simulation(
        const std::string& name, std::size_t n, std::uint64_t seed,
        EngineKind engine = EngineKind::agent,
        BatchMode batch_mode = BatchMode::automatic, std::size_t threads = 1) const;

    /// Rebuilds the simulation a checkpoint header describes: protocol by
    /// registry name, engine and batch mode by their table names, seed and
    /// threads from the header. The construction half of `--resume` — attach
    /// the run's observers, then call `restore_checkpoint_file` on the
    /// result. Throws on protocols, engines or batch modes this registry
    /// does not know.
    [[nodiscard]] std::unique_ptr<Simulation> make_simulation(
        const CheckpointHeader& header) const;

    /// One-call resume for observer-less runs: loads the PPCK file at
    /// `path`, rebuilds the simulation its header describes and restores the
    /// full run state into it. Runs with observers must instead construct
    /// via `make_simulation(header)`, attach the observers, and then restore
    /// — observer state is part of the checkpoint.
    [[nodiscard]] std::unique_ptr<Simulation> resume_simulation(
        const std::string& path) const;

    /// Runs a full election of `name` on n agents with the given seed.
    /// `max_steps` bounds the run; `engine` selects the back-end (the fast
    /// templated agent engine, or the count-based batched engine). A
    /// non-empty `faults` plan (core/fault.hpp) is injected into the run:
    /// the election then only counts as stabilised once every scheduled
    /// fault has been applied and survived.
    [[nodiscard]] RunResult run_election(const std::string& name, std::size_t n,
                                         std::uint64_t seed, StepCount max_steps,
                                         EngineKind engine = EngineKind::agent,
                                         BatchMode batch_mode = BatchMode::automatic,
                                         const FaultPlan& faults = {},
                                         std::size_t threads = 1) const;

    /// As run_election, but additionally verifies output stability over
    /// `verify_steps` extra interactions; sets `converged = false` if any
    /// output changed after the detected stabilisation point.
    [[nodiscard]] RunResult run_election_verified(
        const std::string& name, std::size_t n, std::uint64_t seed, StepCount max_steps,
        StepCount verify_steps, EngineKind engine = EngineKind::agent,
        BatchMode batch_mode = BatchMode::automatic, std::size_t threads = 1) const;

    /// Runs exactly `steps` interactions regardless of convergence — the
    /// fixed-work entry point for throughput benchmarking (both engines
    /// clamp their final batch/step to the budget).
    [[nodiscard]] RunResult run_for(const std::string& name, std::size_t n,
                                    std::uint64_t seed, StepCount steps,
                                    EngineKind engine = EngineKind::agent,
                                    BatchMode batch_mode = BatchMode::automatic,
                                    std::size_t threads = 1) const;

    /// Type-erased instance for population size n (state-space counting).
    [[nodiscard]] std::unique_ptr<AnyProtocol> make(const std::string& name,
                                                    std::size_t n) const;

    /// Registers a custom protocol (used by the custom-protocol example).
    /// `factory` receives the population size.
    template <typename Factory>
    void register_protocol(ProtocolInfo info, Factory factory) {
        using P = decltype(factory(std::size_t{2}));
        static_assert(Protocol<P>, "factory must produce a Protocol");
        Entry entry;
        entry.info = std::move(info);
        entry.simulate = [factory](std::size_t n, std::uint64_t seed, EngineKind kind,
                                   BatchMode batch_mode, std::size_t threads) {
            return ppsim::make_simulation(factory, n, seed, kind, batch_mode, threads);
        };
        entry.make = [factory](std::size_t n) { return erase_protocol(factory(n)); };
        entries_.push_back(std::move(entry));
    }

    ProtocolRegistry() = default;

private:
    struct Entry {
        ProtocolInfo info;
        /// (n, seed, engine, batch mode, threads) → ready-to-run
        /// Simulation. All election and fixed-work runs are built on this
        /// one factory; the run/verify logic itself lives in
        /// core/simulation.hpp (run_to_single_leader).
        std::function<std::unique_ptr<Simulation>(std::size_t, std::uint64_t, EngineKind,
                                                  BatchMode, std::size_t)>
            simulate;
        std::function<std::unique_ptr<AnyProtocol>(std::size_t)> make;
    };

    [[nodiscard]] const Entry& entry(const std::string& name) const;

    std::vector<Entry> entries_;
};

/// Table-1 rows for protocols whose full reproduction is out of scope (see
/// DESIGN.md): reported from the paper, marked unmeasured in the bench.
[[nodiscard]] std::vector<ProtocolInfo> unimplemented_table1_rows();

}  // namespace ppsim
