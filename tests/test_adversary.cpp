// Robustness tests: protocol safety invariants under non-uniform
// (adversarial) schedulers. The paper's time bounds assume the uniformly
// random scheduler; the safety properties must survive any schedule.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/adversary.hpp"
#include "core/batched_engine.hpp"
#include "core/engine.hpp"
#include "core/gillespie_engine.hpp"
#include "protocols/angluin.hpp"
#include "protocols/lottery.hpp"
#include "protocols/pll.hpp"
#include "protocols/pll_symmetric.hpp"

namespace ppsim {
namespace {

TEST(RoundRobinScheduler, CoversAllAgentsEvenly) {
    const std::size_t n = 8;
    RoundRobinScheduler scheduler(n);
    std::vector<int> participation(n, 0);
    for (int i = 0; i < 8 * 4; ++i) {  // 8 full rounds of 4 pairs
        const Interaction ia = scheduler.next();
        ASSERT_NE(ia.initiator, ia.responder);
        ASSERT_LT(ia.initiator, n);
        ASSERT_LT(ia.responder, n);
        ++participation[ia.initiator];
        ++participation[ia.responder];
    }
    for (int count : participation) EXPECT_EQ(count, 8);
}

TEST(RoundRobinScheduler, OddPopulationPlaysFullTournamentWithByes) {
    // Odd n pads the circle with a phantom bye seat: 7 agents → 8 seats,
    // 7 rounds of 3 real pairs = all C(7,2) = 21 unordered pairs exactly
    // once, each agent sitting out exactly one round.
    const std::size_t n = 7;
    RoundRobinScheduler scheduler(n);
    std::vector<int> participation(n, 0);
    std::set<std::pair<AgentId, AgentId>> seen;
    for (int i = 0; i < 21; ++i) {
        const Interaction ia = scheduler.next();
        ASSERT_NE(ia.initiator, ia.responder);
        ASSERT_LT(ia.initiator, n);
        ASSERT_LT(ia.responder, n);
        const AgentId lo = std::min(ia.initiator, ia.responder);
        const AgentId hi = std::max(ia.initiator, ia.responder);
        EXPECT_TRUE(seen.insert({lo, hi}).second) << "pair repeated within tournament";
        ++participation[ia.initiator];
        ++participation[ia.responder];
    }
    EXPECT_EQ(seen.size(), 21U);
    for (int count : participation) EXPECT_EQ(count, 6);  // everyone meets everyone
    // The schedule keeps cycling: the next tournament repeats the coverage.
    for (int i = 0; i < 21; ++i) {
        const Interaction ia = scheduler.next();
        ASSERT_LT(ia.initiator, n);
        ASSERT_LT(ia.responder, n);
    }
}

TEST(RoundRobinScheduler, MinimalOddPopulation) {
    // n = 3 is the smallest odd case: 3 rounds of one real pair each cover
    // all three unordered pairs.
    RoundRobinScheduler scheduler(3);
    std::set<std::pair<AgentId, AgentId>> seen;
    for (int i = 0; i < 3; ++i) {
        const Interaction ia = scheduler.next();
        seen.insert({std::min(ia.initiator, ia.responder),
                     std::max(ia.initiator, ia.responder)});
    }
    EXPECT_EQ(seen.size(), 3U);
}

TEST(StarScheduler, AlwaysInvolvesTheHub) {
    StarScheduler scheduler(16, 7);
    for (int i = 0; i < 1000; ++i) {
        const Interaction ia = scheduler.next();
        EXPECT_TRUE(ia.initiator == 0 || ia.responder == 0);
        EXPECT_NE(ia.initiator, ia.responder);
    }
}

TEST(CliqueBiasedScheduler, RespectsBiasRoughly) {
    const std::size_t n = 64;
    const std::size_t clique = 8;
    CliqueBiasedScheduler scheduler(n, clique, 0.9, 11);
    int inside = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const Interaction ia = scheduler.next();
        ASSERT_NE(ia.initiator, ia.responder);
        if (ia.initiator < clique && ia.responder < clique) ++inside;
    }
    // 90% forced inside + a sliver of the uniform 10% also landing inside.
    EXPECT_GT(static_cast<double>(inside) / trials, 0.85);
    EXPECT_THROW(CliqueBiasedScheduler(8, 1, 0.5, 1), InvalidArgument);
    EXPECT_THROW(CliqueBiasedScheduler(8, 4, 1.5, 1), InvalidArgument);
}

/// Shared safety harness: drive PLL under a scheduler and re-check the
/// invariants the paper's proofs rely on.
template <typename SchedulerT>
void expect_pll_safety_under(SchedulerT& scheduler, std::size_t n, StepCount steps) {
    Engine<Pll> engine(Pll::for_population(n), n, 1);
    const Pll& pll = engine.protocol();
    std::vector<bool> was_follower(n, false);
    for (StepCount step = 0; step < steps; ++step) {
        const Interaction ia = scheduler.next();
        engine.apply(ia);
        for (const AgentId id : {ia.initiator, ia.responder}) {
            const PllState& s = engine.population()[id];
            ASSERT_LE(s.epoch, 4);
            ASSERT_LE(s.init, s.epoch);
            ASSERT_LE(s.level_q, pll.config().lmax());
            ASSERT_LE(s.level_b, pll.config().lmax());
            ASSERT_LT(s.rand, 1U << pll.config().phi());
            if (was_follower[id]) ASSERT_FALSE(s.leader);
            if (!s.leader) was_follower[id] = true;
        }
        ASSERT_GE(engine.leader_count(), 1U);
    }
}

TEST(AdversarialSafety, PllUnderRoundRobin) {
    RoundRobinScheduler scheduler(64);
    expect_pll_safety_under(scheduler, 64, 400'000);
}

TEST(AdversarialSafety, PllUnderStar) {
    StarScheduler scheduler(64, 21);
    expect_pll_safety_under(scheduler, 64, 400'000);
}

TEST(AdversarialSafety, PllUnderCliqueBias) {
    CliqueBiasedScheduler scheduler(64, 8, 0.95, 22);
    expect_pll_safety_under(scheduler, 64, 400'000);
}

TEST(AdversarialSafety, SymmetricCoinInvariantUnderStar) {
    // #F0 = #F1 is a *safety* property of the symmetric variant: it must
    // hold under arbitrary scheduling, not just uniform.
    const std::size_t n = 48;
    Engine<SymmetricPll> engine(SymmetricPll::for_population(n), n, 2);
    StarScheduler scheduler(n, 5);
    for (int burst = 0; burst < 200; ++burst) {
        for (int i = 0; i < 500; ++i) engine.apply(scheduler.next());
        std::int64_t balance = 0;
        for (const SymPllState& s : engine.population().states()) {
            if (s.leader) continue;
            if (s.coin == CoinStatus::f0) ++balance;
            if (s.coin == CoinStatus::f1) --balance;
        }
        ASSERT_EQ(balance, 0);
        ASSERT_GE(engine.leader_count(), 1U);
    }
}

TEST(AdversarialSafety, AngluinStabilisesUnderRoundRobin) {
    // Round-robin is a fair schedule, so even the constant-state protocol
    // must eventually reach one leader under it.
    const std::size_t n = 32;
    Engine<Angluin> engine(Angluin{}, n, 1);
    RoundRobinScheduler scheduler(n);
    StepCount steps = 0;
    while (engine.leader_count() > 1 && steps < 1'000'000) {
        engine.apply(scheduler.next());
        ++steps;
    }
    EXPECT_EQ(engine.leader_count(), 1U);
}

TEST(AdversarialSafety, PllUnderOddRoundRobin) {
    RoundRobinScheduler scheduler(63);
    expect_pll_safety_under(scheduler, 63, 400'000);
}

// --- Count-engine adversary suite -------------------------------------------
//
// The count engines have no scheduler to replace — they draw whole batches
// from the uniform pairing law. The adversarial analogue there is a *biased
// channel*: a rated wrapper multiplying the reaction rate of selected
// channels, so the engines' rate machinery (thinning on batched, channel
// propensities on gillespie) skews which pairs actually react — the
// rate-space counterpart of the star / clique-biased schedules above.
// Safety invariants must survive the skew on both count engines.

/// Rated wrapper biasing channels by whether they touch a leader: `hot`
/// times the base rate for leader channels when `favour_leaders` (a
/// star-like hub of attention on the contenders), for follower-only
/// channels otherwise (a periphery clique starving the race).
template <typename Base>
struct ChannelBiased {
    using State = typename Base::State;

    Base base;
    double hot = 16.0;
    bool favour_leaders = true;

    [[nodiscard]] std::string_view name() const noexcept { return "channel_biased"; }
    [[nodiscard]] State initial_state() const { return base.initial_state(); }
    void interact(State& a, State& b) const { base.interact(a, b); }
    [[nodiscard]] Role output(const State& s) const { return base.output(s); }
    [[nodiscard]] std::uint64_t state_key(const State& s) const {
        return state_key_of(base, s);
    }
    [[nodiscard]] double rate(const State& a, const State& b) const {
        const bool leaderish =
            base.output(a) == Role::leader || base.output(b) == Role::leader;
        return leaderish == favour_leaders ? hot : 1.0;
    }
    [[nodiscard]] double max_rate() const noexcept { return hot; }
};

/// Drives a count engine in n-interaction bursts and re-checks the safety
/// invariants after each burst: population conserved, the leader census
/// consistent with the counts, at least one leader, level domain respected.
template <typename EngineT>
void expect_lottery_safety_on_count_engine(EngineT& engine, std::size_t n,
                                           unsigned lmax) {
    for (int burst = 0; burst < 40; ++burst) {
        (void)engine.run_for(static_cast<StepCount>(n));
        ASSERT_EQ(engine.total_count(), n);
        std::uint64_t total = 0;
        std::uint64_t leaders = 0;
        engine.visit_counts([&](const LotteryState& s, std::uint64_t count, Role role) {
            total += count;
            if (role == Role::leader) leaders += count;
            ASSERT_LE(s.level, lmax);
        });
        ASSERT_EQ(total, n);
        ASSERT_EQ(leaders, engine.leader_count());
        ASSERT_GE(engine.leader_count(), 1U);
    }
}

TEST(AdversarialSafety, BatchedUnderLeaderHotChannels) {
    const std::size_t n = 512;
    const ChannelBiased<Lottery> proto{Lottery::for_population(n), 16.0, true};
    BatchedEngine<ChannelBiased<Lottery>> engine(proto, n, 31);
    expect_lottery_safety_on_count_engine(engine, n, proto.base.lmax());
}

TEST(AdversarialSafety, BatchedUnderLeaderColdChannels) {
    const std::size_t n = 512;
    const ChannelBiased<Lottery> proto{Lottery::for_population(n), 16.0, false};
    BatchedEngine<ChannelBiased<Lottery>> engine(proto, n, 32);
    expect_lottery_safety_on_count_engine(engine, n, proto.base.lmax());
}

TEST(AdversarialSafety, GillespieUnderLeaderHotChannels) {
    const std::size_t n = 512;
    const ChannelBiased<Lottery> proto{Lottery::for_population(n), 16.0, true};
    GillespieEngine<ChannelBiased<Lottery>> engine(proto, n, 33);
    expect_lottery_safety_on_count_engine(engine, n, proto.base.lmax());
}

TEST(AdversarialSafety, GillespieUnderLeaderColdChannels) {
    const std::size_t n = 512;
    const ChannelBiased<Lottery> proto{Lottery::for_population(n), 16.0, false};
    GillespieEngine<ChannelBiased<Lottery>> engine(proto, n, 34);
    expect_lottery_safety_on_count_engine(engine, n, proto.base.lmax());
}

TEST(AdversarialSafety, BiasedChannelsStillElectOnCountEngines) {
    // Rate bias skews *which* pairs meet, not fairness: every channel keeps
    // positive rate, so the election must still complete on both engines.
    const std::size_t n = 256;
    const ChannelBiased<Lottery> proto{Lottery::for_population(n), 16.0, false};
    BatchedEngine<ChannelBiased<Lottery>> batched(proto, n, 35);
    const RunResult via_batched =
        batched.run_until_one_leader(static_cast<StepCount>(n) * n * 200);
    EXPECT_TRUE(via_batched.converged);
    GillespieEngine<ChannelBiased<Lottery>> gillespie(proto, n, 36);
    const RunResult via_gillespie =
        gillespie.run_until_one_leader(static_cast<StepCount>(n) * n * 200);
    EXPECT_TRUE(via_gillespie.converged);
}

TEST(AdversarialSafety, ResumingUniformSchedulingStillElects) {
    // Failure-injection: an adversarial prefix (biased clique) followed by a
    // return to uniform scheduling. PLL must still elect exactly one leader
    // — this exercises recovery from arbitrary reachable configurations
    // (the probability-1 correctness of Lemma 9/10).
    const std::size_t n = 128;
    Engine<Pll> engine(Pll::for_population(n), n, 77);
    CliqueBiasedScheduler adversary(n, 16, 0.98, 5);
    drive(engine, adversary, 300'000);
    ASSERT_GE(engine.leader_count(), 1U);
    const RunResult result = engine.run_until_one_leader(80'000'000);
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(engine.verify_outputs_stable(20 * static_cast<StepCount>(n)));
}

}  // namespace
}  // namespace ppsim
