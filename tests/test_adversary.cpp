// Robustness tests: protocol safety invariants under non-uniform
// (adversarial) schedulers. The paper's time bounds assume the uniformly
// random scheduler; the safety properties must survive any schedule.
#include <gtest/gtest.h>

#include <set>

#include "core/adversary.hpp"
#include "core/engine.hpp"
#include "protocols/angluin.hpp"
#include "protocols/pll.hpp"
#include "protocols/pll_symmetric.hpp"

namespace ppsim {
namespace {

TEST(RoundRobinScheduler, CoversAllAgentsEvenly) {
    const std::size_t n = 8;
    RoundRobinScheduler scheduler(n);
    std::vector<int> participation(n, 0);
    for (int i = 0; i < 8 * 4; ++i) {  // 8 full rounds of 4 pairs
        const Interaction ia = scheduler.next();
        ASSERT_NE(ia.initiator, ia.responder);
        ASSERT_LT(ia.initiator, n);
        ASSERT_LT(ia.responder, n);
        ++participation[ia.initiator];
        ++participation[ia.responder];
    }
    for (int count : participation) EXPECT_EQ(count, 8);
}

TEST(StarScheduler, AlwaysInvolvesTheHub) {
    StarScheduler scheduler(16, 7);
    for (int i = 0; i < 1000; ++i) {
        const Interaction ia = scheduler.next();
        EXPECT_TRUE(ia.initiator == 0 || ia.responder == 0);
        EXPECT_NE(ia.initiator, ia.responder);
    }
}

TEST(CliqueBiasedScheduler, RespectsBiasRoughly) {
    const std::size_t n = 64;
    const std::size_t clique = 8;
    CliqueBiasedScheduler scheduler(n, clique, 0.9, 11);
    int inside = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const Interaction ia = scheduler.next();
        ASSERT_NE(ia.initiator, ia.responder);
        if (ia.initiator < clique && ia.responder < clique) ++inside;
    }
    // 90% forced inside + a sliver of the uniform 10% also landing inside.
    EXPECT_GT(static_cast<double>(inside) / trials, 0.85);
    EXPECT_THROW(CliqueBiasedScheduler(8, 1, 0.5, 1), InvalidArgument);
    EXPECT_THROW(CliqueBiasedScheduler(8, 4, 1.5, 1), InvalidArgument);
}

/// Shared safety harness: drive PLL under a scheduler and re-check the
/// invariants the paper's proofs rely on.
template <typename SchedulerT>
void expect_pll_safety_under(SchedulerT& scheduler, std::size_t n, StepCount steps) {
    Engine<Pll> engine(Pll::for_population(n), n, 1);
    const Pll& pll = engine.protocol();
    std::vector<bool> was_follower(n, false);
    for (StepCount step = 0; step < steps; ++step) {
        const Interaction ia = scheduler.next();
        engine.apply(ia);
        for (const AgentId id : {ia.initiator, ia.responder}) {
            const PllState& s = engine.population()[id];
            ASSERT_LE(s.epoch, 4);
            ASSERT_LE(s.init, s.epoch);
            ASSERT_LE(s.level_q, pll.config().lmax());
            ASSERT_LE(s.level_b, pll.config().lmax());
            ASSERT_LT(s.rand, 1U << pll.config().phi());
            if (was_follower[id]) ASSERT_FALSE(s.leader);
            if (!s.leader) was_follower[id] = true;
        }
        ASSERT_GE(engine.leader_count(), 1U);
    }
}

TEST(AdversarialSafety, PllUnderRoundRobin) {
    RoundRobinScheduler scheduler(64);
    expect_pll_safety_under(scheduler, 64, 400'000);
}

TEST(AdversarialSafety, PllUnderStar) {
    StarScheduler scheduler(64, 21);
    expect_pll_safety_under(scheduler, 64, 400'000);
}

TEST(AdversarialSafety, PllUnderCliqueBias) {
    CliqueBiasedScheduler scheduler(64, 8, 0.95, 22);
    expect_pll_safety_under(scheduler, 64, 400'000);
}

TEST(AdversarialSafety, SymmetricCoinInvariantUnderStar) {
    // #F0 = #F1 is a *safety* property of the symmetric variant: it must
    // hold under arbitrary scheduling, not just uniform.
    const std::size_t n = 48;
    Engine<SymmetricPll> engine(SymmetricPll::for_population(n), n, 2);
    StarScheduler scheduler(n, 5);
    for (int burst = 0; burst < 200; ++burst) {
        for (int i = 0; i < 500; ++i) engine.apply(scheduler.next());
        std::int64_t balance = 0;
        for (const SymPllState& s : engine.population().states()) {
            if (s.leader) continue;
            if (s.coin == CoinStatus::f0) ++balance;
            if (s.coin == CoinStatus::f1) --balance;
        }
        ASSERT_EQ(balance, 0);
        ASSERT_GE(engine.leader_count(), 1U);
    }
}

TEST(AdversarialSafety, AngluinStabilisesUnderRoundRobin) {
    // Round-robin is a fair schedule, so even the constant-state protocol
    // must eventually reach one leader under it.
    const std::size_t n = 32;
    Engine<Angluin> engine(Angluin{}, n, 1);
    RoundRobinScheduler scheduler(n);
    StepCount steps = 0;
    while (engine.leader_count() > 1 && steps < 1'000'000) {
        engine.apply(scheduler.next());
        ++steps;
    }
    EXPECT_EQ(engine.leader_count(), 1U);
}

TEST(AdversarialSafety, ResumingUniformSchedulingStillElects) {
    // Failure-injection: an adversarial prefix (biased clique) followed by a
    // return to uniform scheduling. PLL must still elect exactly one leader
    // — this exercises recovery from arbitrary reachable configurations
    // (the probability-1 correctness of Lemma 9/10).
    const std::size_t n = 128;
    Engine<Pll> engine(Pll::for_population(n), n, 77);
    CliqueBiasedScheduler adversary(n, 16, 0.98, 5);
    drive(engine, adversary, 300'000);
    ASSERT_GE(engine.leader_count(), 1U);
    const RunResult result = engine.run_until_one_leader(80'000'000);
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(engine.verify_outputs_stable(20 * static_cast<StepCount>(n)));
}

}  // namespace
}  // namespace ppsim
