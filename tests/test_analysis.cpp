// Tests for the analysis layer: experiment driver, state-space counter,
// estimators and report rendering.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/estimators.hpp"
#include "analysis/experiment.hpp"
#include "analysis/report.hpp"
#include "analysis/statespace.hpp"

namespace ppsim {
namespace {

TEST(StepBudget, ScalesAsDocumented) {
    EXPECT_EQ(StepBudget::n_log_n(1024, 1.0), 1024U * 10U);
    EXPECT_EQ(StepBudget::n_squared(100, 2.0), 20'000U);
}

TEST(Experiment, SweepProducesAggregatedPoints) {
    SweepConfig config;
    config.protocol = "pll";
    config.sizes = {32, 64};
    config.repetitions = 8;
    config.seed = 99;
    config.threads = 2;
    const SweepResult result = run_sweep(config);
    ASSERT_EQ(result.points.size(), 2U);
    for (const SweepPoint& p : result.points) {
        EXPECT_EQ(p.repetitions, 8U);
        EXPECT_EQ(p.failures + p.parallel_time.count(), 8U);
        EXPECT_GT(p.parallel_time.mean(), 0.0);
    }
    const LinearFit fit = result.fit_vs_log_n();
    EXPECT_TRUE(std::isfinite(fit.slope));
}

TEST(Experiment, SweepIsDeterministicForEqualSeeds) {
    SweepConfig config;
    config.protocol = "angluin06";
    config.sizes = {24};
    config.repetitions = 6;
    config.seed = 7;
    config.budget = [](std::size_t n) { return StepBudget::n_squared(n); };
    const SweepResult a = run_sweep(config);
    const SweepResult b = run_sweep(config);
    EXPECT_DOUBLE_EQ(a.points[0].parallel_time.mean(), b.points[0].parallel_time.mean());
}

TEST(Experiment, SweepValidatesConfig) {
    SweepConfig bad;
    bad.protocol = "unknown";
    bad.sizes = {16};
    EXPECT_THROW((void)run_sweep(bad), InvalidArgument);
    SweepConfig empty;
    empty.protocol = "pll";
    EXPECT_THROW((void)run_sweep(empty), InvalidArgument);
}

TEST(Experiment, TightBudgetReportsFailuresInsteadOfThrowing) {
    SweepConfig config;
    config.protocol = "angluin06";
    config.sizes = {128};
    config.repetitions = 4;
    config.budget = [](std::size_t) { return StepCount{10}; };  // far too small
    const SweepResult result = run_sweep(config);
    EXPECT_EQ(result.points[0].failures, 4U);
}

TEST(Experiment, RunRepeatedGivesPerRunResults) {
    const auto results = run_repeated("pll", 48, 5, 123, 10'000'000, 2);
    ASSERT_EQ(results.size(), 5U);
    for (const RunResult& r : results) {
        EXPECT_TRUE(r.converged);
        EXPECT_EQ(r.leader_count, 1U);
    }
    // Same root seed reproduces identical outcomes.
    const auto again = run_repeated("pll", 48, 5, 123, 10'000'000, 2);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(results[i].stabilization_step, again[i].stabilization_step);
    }
}

TEST(StateSpace, AngluinHasExactlyTwoStates) {
    const StateSpaceReport report = count_reachable_states("angluin06", 32, 2, 5);
    EXPECT_EQ(report.distinct_states, 2U);
    EXPECT_EQ(report.declared_bound, 2U);
    EXPECT_GT(report.steps_explored, 0U);
}

TEST(StateSpace, LotteryStaysWithinDeclaredBound) {
    const StateSpaceReport report = count_reachable_states("lottery", 128, 3, 6);
    EXPECT_GT(report.distinct_states, 4U);
    EXPECT_LE(report.distinct_states, report.declared_bound);
}

TEST(StateSpace, PllStaysWithinDeclaredBoundAndGrowsSlowly) {
    const StateSpaceReport small = count_reachable_states("pll", 64, 2, 7);
    EXPECT_GT(small.distinct_states, 10U);
    EXPECT_LE(small.distinct_states, small.declared_bound);
    const StateSpaceReport large = count_reachable_states("pll", 512, 2, 7);
    EXPECT_LE(large.distinct_states, large.declared_bound);
    // O(log n) states: ×8 the population must far less than ×8 the states.
    EXPECT_LT(static_cast<double>(large.distinct_states),
              4.0 * static_cast<double>(small.distinct_states));
}

TEST(Estimators, QuickEliminationObservationIsWellFormed) {
    const QuickElimObservation obs = observe_quick_elimination(128, 11);
    EXPECT_GE(obs.leaders, 1U);
    EXPECT_LE(obs.leaders, 128U);
}

TEST(Estimators, SurvivorDistributionMatchesLemma7Shape) {
    // Lemma 7: P(|VL| = i) ≤ 2^{1−i} + εᵢ. With 200 runs the empirical
    // fractions should respect a loosened version of the bound.
    const SurvivorDistribution dist = survivor_distribution(128, 200, 21, 4);
    EXPECT_EQ(dist.counts.total(), 200U);
    EXPECT_GE(dist.counts.count(1), 1U);  // a unique survivor happens often
    for (std::uint64_t i = 3; i <= dist.counts.max_key(); ++i) {
        const double bound = std::pow(2.0, 1.0 - static_cast<double>(i));
        EXPECT_LE(dist.counts.fraction(i), bound + 0.12)
            << "survivors = " << i << " too frequent";
    }
}

TEST(Estimators, SynchronizerReachesAllEpochs) {
    const std::size_t n = 128;
    const SyncObservation obs = observe_synchronizer(n, 13, 100'000'000);
    ASSERT_TRUE(obs.all_in_epoch[0].has_value());  // everyone reached epoch 2
    ASSERT_TRUE(obs.all_in_epoch[1].has_value());
    ASSERT_TRUE(obs.all_in_epoch[2].has_value());
    EXPECT_LT(*obs.all_in_epoch[0], *obs.all_in_epoch[1]);
    EXPECT_LT(*obs.all_in_epoch[1], *obs.all_in_epoch[2]);
    EXPECT_GT(obs.first_color_change, 0U);
    // P1 of Lemma 6: the first colour change must not be too early — use a
    // quarter of the ⌊21·n·ln n⌋ horizon as a loose floor.
    const double horizon = 21.0 * n * std::log(static_cast<double>(n));
    EXPECT_GT(static_cast<double>(obs.first_color_change), horizon / 4.0);
}

TEST(Estimators, SymmetricCoinsAreFairAndBalanced) {
    const CoinFairnessReport report = measure_symmetric_coins(256, 400'000, 17);
    ASSERT_GT(report.flips, 100U);
    EXPECT_TRUE(report.f0_f1_always_equal);
    EXPECT_NEAR(report.head_fraction, 0.5, 0.05);
    EXPECT_NEAR(report.lag1_correlation, 0.0, 0.08);
}

TEST(Report, RendersSweepTables) {
    SweepConfig config;
    config.protocol = "pll";
    config.sizes = {32};
    config.repetitions = 4;
    const SweepResult sweep = run_sweep(config);
    const std::string table = render_sweep_table(sweep, "PLL sweep");
    EXPECT_NE(table.find("PLL sweep"), std::string::npos);
    EXPECT_NE(table.find("32"), std::string::npos);
    const std::string comparison = render_comparison_table({sweep}, "cmp");
    EXPECT_NE(comparison.find("pll"), std::string::npos);
    const JsonValue json = sweep_to_json(sweep);
    EXPECT_NE(json.dump().find("\"protocol\": \"pll\""), std::string::npos);
}

TEST(Report, ReproScaleDefaultsToOne) {
    // The test environment does not set REPRO_SCALE.
    EXPECT_GE(repro_scale(), 1U);
}

}  // namespace
}  // namespace ppsim
