// Tests for the CLI argument parser (core/args.hpp) and the ASCII plot
// renderer (core/plot.hpp).
#include <gtest/gtest.h>

#include <array>

#include "core/args.hpp"
#include "core/plot.hpp"

namespace ppsim {
namespace {

ArgParser declared_parser() {
    ArgParser args;
    args.declare("n", "population size", "1024");
    args.declare("protocol", "protocol name", "pll");
    args.declare("verbose", "chatty output");
    args.declare("factor", "budget factor", "2.5");
    return args;
}

TEST(ArgParser, ParsesSpaceAndEqualsForms) {
    ArgParser args = declared_parser();
    const std::array<const char*, 5> argv{"prog", "--n", "256", "--protocol=lottery",
                                          "--verbose"};
    args.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(args.get_u64("n", 0), 256U);
    EXPECT_EQ(args.get_string("protocol", ""), "lottery");
    EXPECT_TRUE(args.get_bool("verbose", false));
    EXPECT_TRUE(args.has("n"));
    EXPECT_FALSE(args.has("factor"));
}

TEST(ArgParser, DefaultsApplyWhenAbsent) {
    ArgParser args = declared_parser();
    const std::array<const char*, 1> argv{"prog"};
    args.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(args.get_u64("n", 1024), 1024U);
    EXPECT_DOUBLE_EQ(args.get_double("factor", 2.5), 2.5);
    EXPECT_FALSE(args.get_bool("verbose", false));
}

TEST(ArgParser, RejectsUnknownAndMalformedFlags) {
    {
        ArgParser args = declared_parser();
        const std::array<const char*, 2> argv{"prog", "--bogus"};
        EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
                     InvalidArgument);
    }
    {
        ArgParser args = declared_parser();
        const std::array<const char*, 2> argv{"prog", "positional"};
        EXPECT_THROW(args.parse(static_cast<int>(argv.size()), argv.data()),
                     InvalidArgument);
    }
}

TEST(ArgParser, TypedAccessorsValidate) {
    ArgParser args = declared_parser();
    const std::array<const char*, 3> argv{"prog", "--n", "not_a_number"};
    args.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_THROW((void)args.get_u64("n", 0), InvalidArgument);
    EXPECT_THROW((void)args.get_double("n", 0.0), InvalidArgument);
}

TEST(ArgParser, UsageListsDeclaredFlags) {
    const ArgParser args = declared_parser();
    const std::string usage = args.usage("tool");
    EXPECT_NE(usage.find("--n"), std::string::npos);
    EXPECT_NE(usage.find("population size"), std::string::npos);
    EXPECT_NE(usage.find("default: 1024"), std::string::npos);
}

TEST(AsciiPlot, RendersSeriesGlyphs) {
    AsciiPlot plot;
    plot.set_title("test plot");
    plot.set_x_label("n");
    plot.set_y_label("time");
    plot.add_series({"up", 'u', {1, 2, 3, 4}, {1, 2, 3, 4}});
    plot.add_series({"down", 'd', {1, 2, 3, 4}, {4, 3, 2, 1}});
    const std::string out = plot.render(40, 10);
    EXPECT_NE(out.find("test plot"), std::string::npos);
    EXPECT_NE(out.find('u'), std::string::npos);
    EXPECT_NE(out.find('d'), std::string::npos);
    EXPECT_NE(out.find("u = up"), std::string::npos);
    EXPECT_NE(out.find("[y: time]"), std::string::npos);
}

TEST(AsciiPlot, Log2AxisAndDegenerateRanges) {
    AsciiPlot plot;
    plot.set_log2_x(true);
    plot.add_series({"flat", 'f', {64, 128, 256}, {5, 5, 5}});
    const std::string out = plot.render(30, 6);
    EXPECT_NE(out.find("(log2 axis)"), std::string::npos);
    EXPECT_NE(out.find('f'), std::string::npos);
}

TEST(AsciiPlot, ValidatesInput) {
    AsciiPlot plot;
    EXPECT_THROW(plot.add_series({"bad", 'b', {1, 2}, {1}}), InvalidArgument);
    EXPECT_THROW(plot.add_series({"empty", 'e', {}, {}}), InvalidArgument);
    EXPECT_THROW((void)plot.render(10, 2), InvalidArgument);
    plot.add_series({"ok", 'o', {1}, {1}});
    EXPECT_NO_THROW((void)plot.render(40, 10));
}

}  // namespace
}  // namespace ppsim
