// Property tests for the baseline protocols: per-agent monotonicity and
// absorbing-state invariants over long random executions (the counterparts
// of test_pll_properties.cpp for the simpler protocols).
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "core/stats.hpp"
#include "protocols/lottery.hpp"
#include "protocols/mst.hpp"

namespace ppsim {
namespace {

TEST(LotteryProperties, InvariantsHoldOverRandomExecutions) {
    const std::size_t n = 128;
    Engine<Lottery> engine(Lottery::for_population(n), n, 11);
    const unsigned lmax = engine.protocol().lmax();

    std::vector<bool> was_done(n, false);
    std::vector<bool> was_follower(n, false);
    std::vector<std::uint16_t> prev_level(n, 0);

    for (StepCount step = 0; step < 500'000; ++step) {
        const Interaction ia = engine.step();
        for (const AgentId id : {ia.initiator, ia.responder}) {
            const LotteryState& s = engine.population()[id];
            ASSERT_LE(s.level, lmax);
            // done is absorbing.
            if (was_done[id]) ASSERT_TRUE(s.done);
            was_done[id] = was_done[id] || s.done;
            // followers never regain leadership.
            if (was_follower[id]) ASSERT_FALSE(s.leader);
            was_follower[id] = was_follower[id] || !s.leader;
            // levels are monotone non-decreasing (flips and epidemic only
            // ever raise them).
            ASSERT_GE(s.level, prev_level[id]);
            prev_level[id] = s.level;
        }
        ASSERT_GE(engine.leader_count(), 1U);
    }
}

TEST(MstProperties, InvariantsHoldOverRandomExecutions) {
    const std::size_t n = 128;
    Engine<MstStyle> engine(MstStyle::for_population(n), n, 13);
    const unsigned bits = engine.protocol().bits();

    std::vector<bool> was_follower(n, false);
    std::vector<std::uint8_t> prev_index(n, 0);
    std::vector<std::uint64_t> prev_nonce(n, 0);

    for (StepCount step = 0; step < 500'000; ++step) {
        const Interaction ia = engine.step();
        for (const AgentId id : {ia.initiator, ia.responder}) {
            const MstState& s = engine.population()[id];
            ASSERT_LE(s.index, bits);
            ASSERT_LT(s.nonce, std::uint64_t{1} << (bits + 1));
            if (was_follower[id]) ASSERT_FALSE(s.leader);
            was_follower[id] = was_follower[id] || !s.leader;
            // The flip counter is monotone; once finished, the nonce can
            // only grow (epidemic max adoption).
            ASSERT_GE(s.index, prev_index[id]);
            if (prev_index[id] == bits) ASSERT_GE(s.nonce, prev_nonce[id]);
            prev_index[id] = s.index;
            prev_nonce[id] = s.nonce;
        }
        ASSERT_GE(engine.leader_count(), 1U);
    }
}

TEST(MstProperties, FinishedMaxHolderIsNeverEliminated) {
    const std::size_t n = 64;
    Engine<MstStyle> engine(MstStyle::for_population(n), n, 17);
    for (StepCount step = 0; step < 300'000; ++step) {
        engine.step();
        if (step % 128 != 0) continue;
        // Among finished agents, some leader must hold the global max nonce
        // (the absorbing argument for the wide-nonce protocol).
        std::uint64_t max_nonce = 0;
        bool any_finished = false;
        for (const MstState& s : engine.population().states()) {
            if (s.index == engine.protocol().bits()) {
                any_finished = true;
                max_nonce = std::max(max_nonce, s.nonce);
            }
        }
        if (!any_finished) continue;
        bool leader_at_max = false;
        for (const MstState& s : engine.population().states()) {
            if (s.leader && s.index == engine.protocol().bits() &&
                s.nonce == max_nonce) {
                leader_at_max = true;
            }
        }
        // Unfinished leaders may still exist early; once anyone finished,
        // the max-holding finished agent that is still a leader must exist
        // unless *all* leaders are still drawing.
        bool all_leaders_drawing = true;
        for (const MstState& s : engine.population().states()) {
            if (s.leader && s.index == engine.protocol().bits()) {
                all_leaders_drawing = false;
            }
        }
        if (!all_leaders_drawing) {
            ASSERT_TRUE(leader_at_max) << "finished max nonce held by no leader";
        }
    }
}

TEST(SampleSetSpanAdd, MergesBatches) {
    SampleSet s;
    const std::vector<double> batch{3.0, 1.0, 2.0};
    s.add(std::span<const double>(batch));
    s.add(4.0);
    EXPECT_EQ(s.count(), 4U);
    EXPECT_DOUBLE_EQ(s.median(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

}  // namespace
}  // namespace ppsim
