// Tests for the Table-1 baseline protocols: Angluin06, the geometric
// lottery, and the MST18-style wide-nonce protocol.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "protocols/angluin.hpp"
#include "protocols/lottery.hpp"
#include "protocols/mst.hpp"

namespace ppsim {
namespace {

// --- Angluin06 -----------------------------------------------------------------

TEST(Angluin, TransitionRule) {
    const Angluin proto;
    AngluinState l0;
    AngluinState l1;
    proto.interact(l0, l1);
    EXPECT_TRUE(l0.leader);   // L×L → L×F
    EXPECT_FALSE(l1.leader);
    AngluinState f = l1;
    proto.interact(f, l0);  // F×L unchanged
    EXPECT_FALSE(f.leader);
    EXPECT_TRUE(l0.leader);
    AngluinState f2;
    f2.leader = false;
    proto.interact(f, f2);  // F×F unchanged
    EXPECT_FALSE(f.leader);
    EXPECT_FALSE(f2.leader);
}

TEST(Angluin, LeaderCountIsNonIncreasingAndPositive) {
    Engine<Angluin> engine(Angluin{}, 100, 5);
    std::size_t prev = engine.leader_count();
    for (int i = 0; i < 50'000; ++i) {
        engine.step();
        const std::size_t now = engine.leader_count();
        ASSERT_LE(now, prev);
        ASSERT_GE(now, 1U);
        prev = now;
    }
}

class AngluinElection : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AngluinElection, Elects) {
    const std::size_t n = GetParam();
    Engine<Angluin> engine(Angluin{}, n, 7 + n);
    const auto budget = static_cast<StepCount>(60.0 * n * n);
    const RunResult result = engine.run_until_one_leader(budget);
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(engine.verify_outputs_stable(10 * static_cast<StepCount>(n)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AngluinElection, ::testing::Values(2, 3, 10, 64, 256));

TEST(Angluin, StateAccounting) {
    const Angluin proto;
    EXPECT_EQ(proto.state_bound(), 2U);
    AngluinState l;
    AngluinState f;
    f.leader = false;
    EXPECT_NE(proto.state_key(l), proto.state_key(f));
}

// --- the geometric lottery ---------------------------------------------------------

TEST(Lottery, CoinsByRole) {
    const Lottery proto(10);
    LotteryState a;
    LotteryState b;
    proto.interact(a, b);
    // Initiator sees a head (level 1, still playing); responder sees its
    // first tail (done at level 0).
    EXPECT_EQ(a.level, 1);
    EXPECT_FALSE(a.done);
    EXPECT_TRUE(b.done);
    EXPECT_EQ(b.level, 0);
}

TEST(Lottery, EpidemicEliminatesLowerFinished) {
    const Lottery proto(10);
    LotteryState low;
    low.done = true;
    low.level = 1;
    LotteryState high;
    high.done = true;
    high.level = 4;
    proto.interact(low, high);
    EXPECT_FALSE(low.leader);
    EXPECT_EQ(low.level, 4);
    EXPECT_TRUE(high.leader);
}

TEST(Lottery, UnfinishedAgentIsProtected) {
    const Lottery proto(10);
    LotteryState playing;  // not done
    playing.level = 2;
    LotteryState high;
    high.done = true;
    high.level = 9;
    proto.interact(high, playing);
    // playing responds ⇒ tail finishes it at level 2 < 9 ⇒ now eliminated
    // in the same interaction, exactly like PLL's final-flip exposure.
    EXPECT_TRUE(playing.done);
    EXPECT_FALSE(playing.leader);
    // But as initiator (head), it stays unfinished and protected:
    LotteryState playing2;
    playing2.level = 2;
    LotteryState high2;
    high2.done = true;
    high2.level = 9;
    proto.interact(playing2, high2);
    EXPECT_FALSE(playing2.done);
    EXPECT_TRUE(playing2.leader);
    EXPECT_EQ(playing2.level, 3);
}

TEST(Lottery, TieBreakDropsResponder) {
    const Lottery proto(10);
    LotteryState u;
    u.done = true;
    u.level = 5;
    LotteryState v;
    v.done = true;
    v.level = 5;
    proto.interact(u, v);
    EXPECT_TRUE(u.leader);
    EXPECT_FALSE(v.leader);
}

TEST(Lottery, LevelSaturates) {
    const Lottery proto(4);
    LotteryState a;
    a.level = 4;
    LotteryState b;
    b.done = true;
    b.level = 4;
    proto.interact(a, b);
    EXPECT_EQ(a.level, 4);
}

class LotteryElection : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LotteryElection, Elects) {
    const std::size_t n = GetParam();
    Engine<Lottery> engine(Lottery::for_population(n), n, 11 + n);
    // Ties push the expected time towards O(n); budget accordingly.
    const auto budget = static_cast<StepCount>(80.0 * n * n + 1000);
    const RunResult result = engine.run_until_one_leader(budget);
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(engine.verify_outputs_stable(10 * static_cast<StepCount>(n)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LotteryElection, ::testing::Values(2, 3, 16, 128, 512));

TEST(Lottery, StateBoundIsLogarithmic) {
    const Lottery proto = Lottery::for_population(1024);
    // lmax = 5·⌈lg 1024⌉ = 50 ⇒ 51 levels × done × leader.
    EXPECT_EQ(proto.lmax(), 50U);
    EXPECT_EQ(proto.state_bound(), 51U * 4U);
}

// --- MST18-style ----------------------------------------------------------------------

TEST(MstStyle, NonceBitsByRole) {
    const MstStyle proto(4);
    MstState a;
    MstState b;
    proto.interact(a, b);
    EXPECT_EQ(a.nonce, 0b1U);  // initiator appends 1
    EXPECT_EQ(b.nonce, 0b0U);  // responder appends 0
    EXPECT_EQ(a.index, 1);
    proto.interact(b, a);
    EXPECT_EQ(a.nonce, 0b10U);
    EXPECT_EQ(b.nonce, 0b01U);
}

TEST(MstStyle, EpidemicAfterCompletionOnly) {
    const MstStyle proto(2);
    MstState done_low;
    done_low.index = 2;
    done_low.nonce = 1;
    MstState done_high;
    done_high.index = 2;
    done_high.nonce = 3;
    MstState fresh;
    // fresh (index 0) vs done: no comparison yet — but the flip happens.
    proto.interact(fresh, done_high);
    EXPECT_TRUE(fresh.leader);
    EXPECT_EQ(fresh.index, 1);
    // done vs done: lower side eliminated.
    proto.interact(done_low, done_high);
    EXPECT_FALSE(done_low.leader);
    EXPECT_EQ(done_low.nonce, 3U);
}

TEST(MstStyle, TieBreakDropsResponder) {
    const MstStyle proto(2);
    MstState u;
    u.index = 2;
    u.nonce = 3;
    MstState v;
    v.index = 2;
    v.nonce = 3;
    proto.interact(u, v);
    EXPECT_TRUE(u.leader);
    EXPECT_FALSE(v.leader);
}

TEST(MstStyle, WidthValidation) {
    EXPECT_THROW(MstStyle(0), InvalidArgument);
    EXPECT_THROW(MstStyle(57), InvalidArgument);
    // 3·20 + 3 = 63 exceeds the 56-bit cap.
    EXPECT_EQ(MstStyle::for_population(1U << 20U).bits(), 56U);
}

class MstElection : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MstElection, Elects) {
    const std::size_t n = GetParam();
    Engine<MstStyle> engine(MstStyle::for_population(n), n, 13 + n);
    const double lg = std::max(1.0, std::log2(static_cast<double>(n)));
    const auto budget = static_cast<StepCount>(500.0 * n * lg + 60.0 * n * n);
    const RunResult result = engine.run_until_one_leader(budget);
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(engine.verify_outputs_stable(10 * static_cast<StepCount>(n)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MstElection, ::testing::Values(2, 3, 16, 128, 1024));

}  // namespace
}  // namespace ppsim
