// Agreement and invariant tests for the count-based batched engine
// (src/core/batched_engine.hpp) and its samplers (src/core/random.hpp):
//
//  * the hypergeometric sampler matches the exact pmf;
//  * the collision-free run-length sampler matches brute-force simulation;
//  * BatchedEngine conserves agent counts, keeps its incremental leader
//    count consistent, and is deterministic under a fixed seed;
//  * the distribution of stabilisation times agrees with the agent-based
//    Engine (mean/variance tolerance at small n — the two engines sample
//    the same process through entirely different code paths);
//  * the registry runs elections on either engine by name.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/batch_pairing.hpp"
#include "core/batched_engine.hpp"
#include "core/engine.hpp"
#include "core/random.hpp"
#include "core/state_index.hpp"
#include "core/stats.hpp"
#include "protocols/angluin.hpp"
#include "protocols/lottery.hpp"
#include "protocols/pll.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

static_assert(InternableProtocol<Angluin>);
static_assert(InternableProtocol<Lottery>);
static_assert(InternableProtocol<Pll>);

TEST(Samplers, HypergeometricMatchesExactPmf) {
    Rng rng(123);
    const std::uint64_t total = 40;
    const std::uint64_t successes = 15;
    const std::uint64_t draws = 12;
    std::map<std::uint64_t, int> freq;
    const int reps = 400000;
    for (int i = 0; i < reps; ++i) ++freq[hypergeometric(rng, total, successes, draws)];
    for (const auto& [value, count] : freq) {
        const double exact =
            std::exp(detail::log_choose(successes, value) +
                     detail::log_choose(total - successes, draws - value) -
                     detail::log_choose(total, draws));
        const double empirical = static_cast<double>(count) / reps;
        // 5σ binomial tolerance around the exact pmf.
        const double sigma = std::sqrt(exact * (1.0 - exact) / reps);
        EXPECT_NEAR(empirical, exact, 5.0 * sigma + 1e-4) << "x = " << value;
    }
}

TEST(Samplers, HypergeometricRespectsSupport) {
    Rng rng(7);
    // draws + successes > total forces a minimum number of successes.
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t x = hypergeometric(rng, 10, 8, 7);
        EXPECT_GE(x, 5U);  // lo = 7 + 8 − 10
        EXPECT_LE(x, 7U);
    }
    EXPECT_EQ(hypergeometric(rng, 5, 5, 3), 3U);  // all successes
    EXPECT_EQ(hypergeometric(rng, 5, 0, 3), 0U);  // no successes
    EXPECT_EQ(hypergeometric(rng, 5, 3, 0), 0U);  // no draws
}

TEST(Samplers, CollisionRunMatchesBruteForce) {
    const std::size_t n = 10;
    const int reps = 300000;
    Rng rng(99);
    std::map<std::uint64_t, int> sampled;
    for (int i = 0; i < reps; ++i) ++sampled[sample_collision_free_run(rng, n)];

    UniformScheduler scheduler(n, 4242);
    std::map<std::uint64_t, int> brute;
    for (int i = 0; i < reps; ++i) {
        std::vector<bool> touched(n, false);
        std::uint64_t length = 0;
        while (true) {
            const Interaction ia = scheduler.next();
            if (touched[ia.initiator] || touched[ia.responder]) break;
            touched[ia.initiator] = true;
            touched[ia.responder] = true;
            ++length;
        }
        ++brute[length];
    }
    for (std::uint64_t l = 1; l <= n / 2; ++l) {
        const double p_sampled = static_cast<double>(sampled[l]) / reps;
        const double p_brute = static_cast<double>(brute[l]) / reps;
        EXPECT_NEAR(p_sampled, p_brute, 0.01) << "L = " << l;
    }
}

TEST(StateIndex, InternsByCanonicalKey) {
    StateIndex<Lottery> index;
    const Lottery proto(8);
    LotteryState a;  // level 0, not done, leader
    LotteryState b;
    b.level = 3;
    const StateId ia = index.intern(proto, a);
    const StateId ib = index.intern(proto, b);
    EXPECT_NE(ia, ib);
    EXPECT_EQ(index.intern(proto, a), ia);  // idempotent
    EXPECT_EQ(index.size(), 2U);
    EXPECT_EQ(index.role(ia), Role::leader);
    EXPECT_EQ(index.state(ib).level, 3);
}

TEST(BatchedEngine, StartsLikeAgentEngine) {
    BatchedEngine<Angluin> engine(Angluin{}, 10, 1);
    EXPECT_EQ(engine.leader_count(), 10U);
    EXPECT_EQ(engine.steps(), 0U);
    EXPECT_EQ(engine.population_size(), 10U);
    EXPECT_EQ(engine.total_count(), 10U);
    EXPECT_THROW(BatchedEngine<Angluin>(Angluin{}, 1, 1), InvalidArgument);
}

TEST(BatchedEngine, ConservesCountsAndLeaderTally) {
    const std::size_t n = 500;
    BatchedEngine<Lottery> engine(Lottery::for_population(n), n, 42);
    for (int chunk = 0; chunk < 50; ++chunk) {
        (void)engine.run_for(100);
        ASSERT_EQ(engine.total_count(), n) << "count conservation violated";
        const std::size_t incremental = engine.leader_count();
        ASSERT_EQ(engine.recount_leaders(), incremental)
            << "incremental leader tally diverged from recount";
    }
}

TEST(BatchedEngine, SeededRunsAreDeterministic) {
    const std::size_t n = 256;
    BatchedEngine<Pll> a(Pll::for_population(n), n, 77);
    BatchedEngine<Pll> b(Pll::for_population(n), n, 77);
    const RunResult ra = a.run_until_one_leader(1'000'000);
    const RunResult rb = b.run_until_one_leader(1'000'000);
    EXPECT_EQ(ra.converged, rb.converged);
    EXPECT_EQ(ra.steps, rb.steps);
    EXPECT_EQ(ra.leader_count, rb.leader_count);
    EXPECT_EQ(ra.stabilization_step, rb.stabilization_step);
    EXPECT_EQ(a.total_count(), b.total_count());
    EXPECT_EQ(a.live_state_count(), b.live_state_count());
}

TEST(BatchedEngine, ElectsExactlyOneLeader) {
    for (const std::size_t n : {4UL, 16UL, 64UL, 256UL}) {
        BatchedEngine<Angluin> engine(Angluin{}, n, n);
        const RunResult r = engine.run_until_one_leader(50'000'000);
        EXPECT_TRUE(r.converged) << "n = " << n;
        EXPECT_EQ(r.leader_count, 1U) << "n = " << n;
        ASSERT_TRUE(r.stabilization_step.has_value());
        EXPECT_LE(*r.stabilization_step, r.steps);
        EXPECT_EQ(engine.count_of(AngluinState{true}), 1U);
        EXPECT_EQ(engine.count_of(AngluinState{false}), n - 1);
    }
}

TEST(BatchedEngine, VerifyOutputsStableAfterConvergence) {
    const std::size_t n = 64;
    BatchedEngine<Angluin> engine(Angluin{}, n, 5);
    const RunResult r = engine.run_until_one_leader(50'000'000);
    ASSERT_TRUE(r.converged);
    // Angluin's single-leader configuration is absorbing: long suffixes
    // must not change any output.
    EXPECT_TRUE(engine.verify_outputs_stable(20'000));
}

TEST(BatchedEngine, VerifyDetectsOngoingChanges) {
    const std::size_t n = 512;
    BatchedEngine<Angluin> engine(Angluin{}, n, 5);
    // From the all-leaders initial configuration the outputs churn heavily.
    EXPECT_FALSE(engine.verify_outputs_stable(5'000));
}

// The acceptance test of the batched engine: stabilisation parallel-time
// distribution agrees with the agent-based engine, under each pairing
// strategy. Both means and variances must match within a generous multiple
// of the standard error — the engines share no simulation code beyond the
// protocol itself, so agreement here pins the whole batching pipeline (run
// lengths, hypergeometric chains, pairing, collision handling, crossing
// detection) per BatchMode.
template <typename P>
void expect_distribution_agreement(P proto, std::size_t n, int reps, StepCount budget,
                                   BatchMode batch_mode = BatchMode::automatic) {
    RunningStats agent_stats;
    RunningStats batched_stats;
    for (int i = 0; i < reps; ++i) {
        Engine<P> agent(proto, n, derive_seed(1000, static_cast<std::uint64_t>(i)));
        const RunResult ra = agent.run_until_one_leader(budget);
        ASSERT_TRUE(ra.converged && ra.stabilization_step);
        agent_stats.add(ra.stabilization_parallel_time(n));

        BatchedEngine<P> batched(proto, n,
                                 derive_seed(2000, static_cast<std::uint64_t>(i)),
                                 batch_mode);
        const RunResult rb = batched.run_until_one_leader(budget);
        ASSERT_TRUE(rb.converged && rb.stabilization_step);
        batched_stats.add(rb.stabilization_parallel_time(n));
    }
    const double se = std::sqrt(agent_stats.variance() / reps +
                                batched_stats.variance() / reps);
    EXPECT_NEAR(agent_stats.mean(), batched_stats.mean(), 5.0 * se)
        << "agent mean " << agent_stats.mean() << " vs batched ("
        << to_string(batch_mode) << ") mean " << batched_stats.mean();
    // Variances agree loosely (ratio test; stabilisation times are skewed).
    const double var_ratio = (agent_stats.variance() + 1e-9) /
                             (batched_stats.variance() + 1e-9);
    EXPECT_GT(var_ratio, 0.5) << to_string(batch_mode);
    EXPECT_LT(var_ratio, 2.0) << to_string(batch_mode);
}

TEST(BatchedEngineAgreement, AngluinStabilizationTimes) {
    expect_distribution_agreement(Angluin{}, 64, 400, 10'000'000);
}

TEST(BatchedEngineAgreement, LotteryStabilizationTimes) {
    expect_distribution_agreement(Lottery::for_population(128), 128, 300,
                                  10'000'000);
}

TEST(BatchedEngineAgreement, PllStabilizationTimes) {
    expect_distribution_agreement(Pll::for_population(64), 64, 200, 10'000'000);
}

// Forced pairing strategies agree with the agent engine too — the pairwise
// and bulk samplers draw the same uniform bijection through entirely
// different code paths (Fisher–Yates vs contingency-table chains).
TEST(BatchedEngineAgreement, AngluinForcedModesStabilizationTimes) {
    expect_distribution_agreement(Angluin{}, 64, 300, 10'000'000, BatchMode::pairwise);
    expect_distribution_agreement(Angluin{}, 64, 300, 10'000'000, BatchMode::bulk);
}

TEST(BatchedEngineAgreement, LotteryForcedModesStabilizationTimes) {
    expect_distribution_agreement(Lottery::for_population(128), 128, 250, 10'000'000,
                                  BatchMode::pairwise);
    expect_distribution_agreement(Lottery::for_population(128), 128, 250, 10'000'000,
                                  BatchMode::bulk);
}

TEST(BatchedEngineAgreement, PllForcedModesStabilizationTimes) {
    expect_distribution_agreement(Pll::for_population(64), 64, 150, 10'000'000,
                                  BatchMode::pairwise);
    expect_distribution_agreement(Pll::for_population(64), 64, 150, 10'000'000,
                                  BatchMode::bulk);
}

TEST(BatchedEngineModes, SeededRunsAreDeterministicPerMode) {
    const std::size_t n = 256;
    for (const BatchModeDescriptor& d : batch_mode_table) {
        BatchedEngine<Pll> a(Pll::for_population(n), n, 77, d.mode);
        BatchedEngine<Pll> b(Pll::for_population(n), n, 77, d.mode);
        EXPECT_EQ(a.batch_mode(), d.mode);
        const RunResult ra = a.run_until_one_leader(1'000'000);
        const RunResult rb = b.run_until_one_leader(1'000'000);
        EXPECT_EQ(ra.steps, rb.steps) << d.name;
        EXPECT_EQ(ra.stabilization_step, rb.stabilization_step) << d.name;
        EXPECT_EQ(a.live_state_count(), b.live_state_count()) << d.name;
    }
}

TEST(BatchedEngineModes, BulkPairingConservesCountsAndLeaderTally) {
    // Forced contingency-table pairing on a multi-state protocol: counts
    // and the incremental leader tally must survive heavy batching.
    const std::size_t n = 2048;
    BatchedEngine<Lottery> engine(Lottery::for_population(n), n, 42, BatchMode::bulk);
    for (int chunk = 0; chunk < 40; ++chunk) {
        (void)engine.run_for(500);
        ASSERT_EQ(engine.total_count(), n) << "count conservation violated";
        const std::size_t incremental = engine.leader_count();
        ASSERT_EQ(engine.recount_leaders(), incremental)
            << "incremental leader tally diverged from recount";
    }
}

TEST(BatchedEngineModes, EveryModeElectsOneLeaderForAllRegisteredProtocols) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const std::string& name : registry.names()) {
        for (const BatchModeDescriptor& d : batch_mode_table) {
            const RunResult r = registry.run_election(name, 64, 3, 50'000'000,
                                                      EngineKind::batched, d.mode);
            EXPECT_TRUE(r.converged) << name << "/" << d.name;
            EXPECT_EQ(r.leader_count, 1U) << name << "/" << d.name;
            ASSERT_TRUE(r.stabilization_step.has_value()) << name << "/" << d.name;
            EXPECT_LE(*r.stabilization_step, r.steps) << name << "/" << d.name;
        }
    }
}

TEST(BatchModeParsing, RoundTripsAndRejects) {
    for (const BatchModeDescriptor& d : batch_mode_table) {
        EXPECT_EQ(to_string(d.mode), d.name);
        EXPECT_EQ(parse_batch_mode(d.name), d.mode);
        EXPECT_NE(batch_mode_list().find(d.name), std::string::npos);
        EXPECT_FALSE(d.summary.empty());
    }
    EXPECT_EQ(parse_batch_mode("auto"), BatchMode::automatic);
    EXPECT_EQ(parse_batch_mode("pairwise"), BatchMode::pairwise);
    EXPECT_EQ(parse_batch_mode("bulk"), BatchMode::bulk);
    EXPECT_THROW((void)parse_batch_mode("warp-drive"), InvalidArgument);
}

TEST(BatchPairingStrategies, BothProduceExactBijectionsOfTheMultisets) {
    // Feed both strategies the same multisets: every produced pairing must
    // be a bijection — initiator side visited in multiset order, responder
    // side a permutation of the responder multiset.
    Rng rng(9);
    const StateMultiset initiators = {{0, 5}, {1, 3}, {2, 8}};
    const StateMultiset responders_template = {{0, 10}, {3, 4}, {4, 2}};
    const std::uint64_t fresh = 16;
    for (const BatchMode mode : {BatchMode::pairwise, BatchMode::bulk}) {
        for (int rep = 0; rep < 200; ++rep) {
            StateMultiset responders = responders_template;
            BatchPairs pairs;
            sample_batch_pairing(mode, rng, initiators, responders, fresh, pairs);
            EXPECT_EQ(pairs.pair_total(), fresh) << to_string(mode);
            std::map<StateId, std::uint64_t> a_hist;
            std::map<StateId, std::uint64_t> b_hist;
            pairs.for_each([&](StateId a, StateId b, std::uint64_t mult) {
                a_hist[a] += mult;
                b_hist[b] += mult;
            });
            for (const auto& [state, count] : initiators) {
                EXPECT_EQ(a_hist[state], count) << to_string(mode);
            }
            for (const auto& [state, count] : responders_template) {
                EXPECT_EQ(b_hist[state], count) << to_string(mode);
            }
        }
    }
}

TEST(BatchPairingStrategies, ContingencyCellsMatchShuffleCellsInDistribution) {
    // The two strategies sample the same uniform bijection: the expected
    // count of any (a, b) cell is |a|·|b| / fresh. Check each cell's mean
    // over many repetitions within 5σ for both strategies.
    const StateMultiset initiators = {{0, 6}, {1, 10}};
    const StateMultiset responders_template = {{2, 8}, {3, 8}};
    const std::uint64_t fresh = 16;
    const int reps = 60000;
    for (const BatchMode mode : {BatchMode::pairwise, BatchMode::bulk}) {
        Rng rng(1234);  // same stream for both strategies
        std::map<std::pair<StateId, StateId>, double> sums;
        BatchPairs pairs;
        for (int rep = 0; rep < reps; ++rep) {
            StateMultiset responders = responders_template;
            sample_batch_pairing(mode, rng, initiators, responders, fresh, pairs);
            pairs.for_each([&](StateId a, StateId b, std::uint64_t mult) {
                sums[{a, b}] += static_cast<double>(mult);
            });
        }
        for (const auto& [state_a, count_a] : initiators) {
            for (const auto& [state_b, count_b] : responders_template) {
                const double expected = static_cast<double>(count_a) *
                                        static_cast<double>(count_b) /
                                        static_cast<double>(fresh);
                const double mean = sums[{state_a, state_b}] / reps;
                // Cell counts are hypergeometric-like with sd < sqrt(mean);
                // 5σ of the empirical mean over `reps` repetitions.
                const double tolerance =
                    5.0 * std::sqrt(expected) / std::sqrt(static_cast<double>(reps));
                EXPECT_NEAR(mean, expected, tolerance)
                    << to_string(mode) << " cell (" << state_a << "," << state_b << ")";
            }
        }
    }
}

TEST(BatchedEngineRegistry, RunsElectionsOnEitherEngine) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const std::string& name : registry.names()) {
        const RunResult r =
            registry.run_election(name, 64, 3, 50'000'000, EngineKind::batched);
        EXPECT_TRUE(r.converged) << name;
        EXPECT_EQ(r.leader_count, 1U) << name;
    }
}

TEST(BatchedEngineRegistry, VerifiedBatchedRunsConfirmStability) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const RunResult r = registry.run_election_verified("pll", 128, 9, 50'000'000,
                                                      10'000, EngineKind::batched);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.leader_count, 1U);
}

TEST(BatchedEngineRegistry, RunForExecutesFixedWork) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const RunResult agent = registry.run_for("angluin06", 64, 3, 10'000);
    EXPECT_EQ(agent.steps, 10'000U);
    // The batched engine clamps its final collision-free run to the budget,
    // so the step count is exact there too.
    const RunResult batched =
        registry.run_for("angluin06", 64, 3, 10'000, EngineKind::batched);
    EXPECT_EQ(batched.steps, 10'000U);
}

TEST(EngineKindParsing, RoundTripsAndRejects) {
    EXPECT_EQ(parse_engine_kind("agent"), EngineKind::agent);
    EXPECT_EQ(parse_engine_kind("batched"), EngineKind::batched);
    EXPECT_EQ(to_string(EngineKind::batched), "batched");
    EXPECT_EQ(to_string(EngineKind::agent), "agent");
    EXPECT_THROW((void)parse_engine_kind("warp-drive"), InvalidArgument);
}

}  // namespace
}  // namespace ppsim
