// Tests for the PLL census introspection and for record/replay determinism
// across protocols (the reproducibility contract of the whole harness).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/scheduler.hpp"
#include "protocols/lottery.hpp"
#include "protocols/pll.hpp"
#include "protocols/pll_census.hpp"
#include "protocols/pll_symmetric.hpp"

namespace ppsim {
namespace {

TEST(PllCensus, InitialPopulationCensus) {
    Engine<Pll> engine(Pll::for_population(100), 100, 1);
    const PllCensus census = take_census(engine.population().states());
    EXPECT_EQ(census.agents, 100U);
    EXPECT_EQ(census.leaders, 100U);
    EXPECT_EQ(census.unassigned, 100U);
    EXPECT_EQ(census.candidates, 0U);
    EXPECT_EQ(census.timers, 0U);
    EXPECT_EQ(census.by_epoch[0], 100U);
    EXPECT_EQ(census.min_epoch, 1U);
    EXPECT_EQ(census.max_epoch, 1U);
}

TEST(PllCensus, TracksAssignmentAndLeaders) {
    Engine<Pll> engine(Pll::for_population(100), 100, 2);
    engine.run_for(5'000);
    const PllCensus census = take_census(engine.population().states());
    EXPECT_EQ(census.agents, 100U);
    EXPECT_EQ(census.unassigned + census.candidates + census.timers, 100U);
    EXPECT_EQ(census.leaders, engine.leader_count());
    EXPECT_GE(census.timers, 1U);
    // Epoch buckets partition the population.
    EXPECT_EQ(census.by_epoch[0] + census.by_epoch[1] + census.by_epoch[2] +
                  census.by_epoch[3],
              100U);
    EXPECT_EQ(census.by_color[0] + census.by_color[1] + census.by_color[2], 100U);
}

TEST(PllCensus, RenderedLineMentionsKeyFields) {
    Engine<Pll> engine(Pll::for_population(64), 64, 3);
    engine.run_for(1'000);
    const std::string line = render_census_line(take_census(engine.population().states()));
    EXPECT_NE(line.find("epoch"), std::string::npos);
    EXPECT_NE(line.find("leaders="), std::string::npos);
    EXPECT_NE(line.find("colors"), std::string::npos);
}

/// Record a run of one protocol, replay it on a fresh engine, and require
/// identical final configurations — byte-for-byte reproducibility.
template <Protocol P>
void expect_record_replay_identity(P proto, std::size_t n, StepCount steps) {
    Engine<P> original(proto, n, 123);
    RecordingScheduler<UniformScheduler> recorder(UniformScheduler(n, 123));
    // Drive the original engine through the recorder so the schedule is
    // captured exactly as consumed.
    Engine<P> driven(proto, n, 999);  // internal scheduler unused below
    for (StepCount i = 0; i < steps; ++i) driven.apply(recorder.next());

    Engine<P> replayed(proto, n, 777);  // different seed: must not matter
    replayed.apply(recorder.record());

    ASSERT_EQ(driven.steps(), replayed.steps());
    EXPECT_EQ(driven.leader_count(), replayed.leader_count());
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(driven.population()[static_cast<AgentId>(i)],
                  replayed.population()[static_cast<AgentId>(i)])
            << "agent " << i << " diverged under replay";
    }
}

TEST(Determinism, PllRecordReplay) {
    expect_record_replay_identity(Pll::for_population(64), 64, 50'000);
}

TEST(Determinism, SymmetricPllRecordReplay) {
    expect_record_replay_identity(SymmetricPll::for_population(64), 64, 50'000);
}

TEST(Determinism, LotteryRecordReplay) {
    expect_record_replay_identity(Lottery::for_population(64), 64, 20'000);
}

TEST(Determinism, EngineInternalSchedulerMatchesStandaloneScheduler) {
    // Engine(seed) must consume the same interaction stream as a standalone
    // UniformScheduler(seed): seeds alone define executions.
    const std::size_t n = 32;
    Engine<Pll> engine(Pll::for_population(n), n, 42);
    Engine<Pll> manual(Pll::for_population(n), n, 0xDEAD);
    UniformScheduler scheduler(n, 42);
    for (int i = 0; i < 20'000; ++i) {
        engine.step();
        manual.apply(scheduler.next());
    }
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(engine.population()[static_cast<AgentId>(i)],
                  manual.population()[static_cast<AgentId>(i)]);
    }
}

}  // namespace
}  // namespace ppsim
