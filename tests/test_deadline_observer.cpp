// Boundary tests for the time-driven observers (src/core/observer.hpp):
// DeadlineObserver (one-shot model-time census) and TimedSnapshotRecorder
// (full censuses at a list of model-time points), across all three engines.
//
// The load-bearing property is *exact* deadline placement: the run layer
// slices the step budget at observer deadlines and every engine clamps its
// rounds (batches, leaps, geometric skips) to the requested chunk, so a
// deadline at step k observes the configuration after exactly k
// interactions — on the agent, batched and gillespie back-ends alike. The
// boundary cases pinned here: a deadline before the first interaction
// (model time 0), a deadline landing exactly on a step inside a run, and a
// deadline past stabilisation (the run ends first; finish() reports the
// absorbing final configuration with reached_deadline = false).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

const std::vector<EngineKind> kEngines = {EngineKind::agent, EngineKind::batched,
                                          EngineKind::gillespie};

TEST(DeadlineObserver, DeadlineBeforeFirstEventReportsInitialConfiguration) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 128;
    for (const EngineKind engine : kEngines) {
        const auto sim = registry.make_simulation("angluin06", n, 7, engine);
        DeadlineObserver deadline(/*model_time=*/0.0, n);
        EXPECT_EQ(deadline.deadline_step(), 0U);
        sim->add_observer(deadline);
        const RunResult r = sim->run_until_one_leader(1'000'000);
        ASSERT_TRUE(r.converged) << to_string(engine);
        ASSERT_TRUE(deadline.report().has_value()) << to_string(engine);
        const DeadlineReport& report = *deadline.report();
        EXPECT_EQ(report.step, 0U) << to_string(engine);
        EXPECT_EQ(report.leader_count, n) << to_string(engine);  // all start leaders
        EXPECT_EQ(report.live_states, 1U) << to_string(engine);
        EXPECT_TRUE(report.reached_deadline) << to_string(engine);
        EXPECT_FALSE(report.stabilized) << to_string(engine);
        EXPECT_EQ(deadline.next_due(), SimulationObserver::no_deadline);
    }
}

TEST(DeadlineObserver, LandsExactlyOnItsStepOnEveryEngine) {
    // Mid-run deadline: the report's step must equal the deadline step
    // exactly — batches, leaps and geometric null-skips all clamp to it.
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 256;
    const StepCount target = 1000;
    for (const EngineKind engine : kEngines) {
        const auto sim = registry.make_simulation("lottery", n, 11, engine);
        DeadlineObserver deadline = DeadlineObserver::at_step(target);
        sim->add_observer(deadline);
        (void)sim->run_for(5000);
        ASSERT_TRUE(deadline.report().has_value()) << to_string(engine);
        const DeadlineReport& report = *deadline.report();
        EXPECT_EQ(report.step, target) << to_string(engine);
        EXPECT_TRUE(report.reached_deadline) << to_string(engine);
    }
}

TEST(DeadlineObserver, ModelTimeConvertsByCeilingTimesPopulation) {
    DeadlineObserver half(0.5, 1000);
    EXPECT_EQ(half.deadline_step(), 500U);
    DeadlineObserver frac(0.0015, 1000);
    EXPECT_EQ(frac.deadline_step(), 2U);  // ⌈1.5⌉
}

TEST(DeadlineObserver, DeadlinePastStabilizationReportsFinalAbsorbingState) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 64;
    for (const EngineKind engine : kEngines) {
        const auto sim = registry.make_simulation("angluin06", n, 3, engine);
        // Far beyond the Θ(n) stabilisation time: the run ends first.
        DeadlineObserver deadline(/*model_time=*/1e6, n);
        sim->add_observer(deadline);
        const RunResult r = sim->run_until_one_leader(50'000'000);
        ASSERT_TRUE(r.converged) << to_string(engine);
        ASSERT_TRUE(deadline.report().has_value()) << to_string(engine);
        const DeadlineReport& report = *deadline.report();
        EXPECT_FALSE(report.reached_deadline) << to_string(engine);
        EXPECT_TRUE(report.stabilized) << to_string(engine);
        EXPECT_EQ(report.leader_count, 1U) << to_string(engine);
        EXPECT_LT(report.step, deadline.deadline_step()) << to_string(engine);
    }
}

TEST(DeadlineObserver, RatedProtocolCensusAgreesAcrossEnginesInExpectation) {
    // The thinned chain slows rated_epidemic by up to 4× relative to its
    // unrated skeleton, so at a fixed model time the surviving-candidate
    // census is a rate-sensitive quantity: the engine means must agree
    // (rejection thinning on agent/batched, propensity weights on
    // gillespie) and sit well above the unrated angluin06 census.
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 512;
    const int reps = 24;
    const double time = 2.0;
    std::vector<double> means;
    for (const EngineKind engine : kEngines) {
        double total = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
            const auto sim = registry.make_simulation(
                "rated_epidemic", n, derive_seed(900 + rep, static_cast<std::uint64_t>(engine)),
                engine);
            DeadlineObserver deadline(time, n);
            sim->add_observer(deadline);
            (void)sim->run_until_one_leader(50'000'000);
            ASSERT_TRUE(deadline.report().has_value());
            total += static_cast<double>(deadline.report()->leader_count);
        }
        means.push_back(total / reps);
    }
    for (std::size_t i = 1; i < means.size(); ++i) {
        EXPECT_NEAR(means[i], means[0], 0.15 * means[0])
            << to_string(kEngines[i]) << " vs " << to_string(kEngines[0]);
    }
    // Unrated angluin06 at the same model time has decayed far further
    // (the rated chain idles ~3/4 of its early steps).
    double unrated_total = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const auto sim =
            registry.make_simulation("angluin06", n, derive_seed(901, rep),
                                     EngineKind::agent);
        DeadlineObserver deadline(time, n);
        sim->add_observer(deadline);
        (void)sim->run_until_one_leader(50'000'000);
        unrated_total += static_cast<double>(deadline.report()->leader_count);
    }
    EXPECT_GT(means[0], 1.5 * (unrated_total / reps));
}

TEST(TimedSnapshotRecorder, CapturesEachPointAtItsExactStep) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 256;
    for (const EngineKind engine : kEngines) {
        const auto sim = registry.make_simulation("lottery", n, 5, engine);
        TimedSnapshotRecorder recorder({0.0, 0.5, 2.0}, n);
        sim->add_observer(recorder);
        (void)sim->run_for(static_cast<StepCount>(n) * 4);
        ASSERT_EQ(recorder.captured_count(), 3U) << to_string(engine);
        const std::vector<TimedSnapshot>& snaps = recorder.snapshots();
        EXPECT_EQ(snaps[0].snapshot.step, 0U) << to_string(engine);
        EXPECT_EQ(snaps[1].snapshot.step, n / 2) << to_string(engine);
        EXPECT_EQ(snaps[2].snapshot.step, 2 * n) << to_string(engine);
        for (const TimedSnapshot& entry : snaps) {
            EXPECT_TRUE(entry.reached) << to_string(engine);
            EXPECT_EQ(entry.snapshot.total(), n) << to_string(engine);
        }
    }
}

TEST(TimedSnapshotRecorder, FillsUnreachedPointsAtRunEnd) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 64;
    const auto sim = registry.make_simulation("angluin06", n, 13, EngineKind::batched);
    TimedSnapshotRecorder recorder({0.5, 1e7}, n);
    sim->add_observer(recorder);
    const RunResult r = sim->run_until_one_leader(50'000'000);
    ASSERT_TRUE(r.converged);
    ASSERT_EQ(recorder.captured_count(), 2U);
    EXPECT_TRUE(recorder.snapshots()[0].reached);
    EXPECT_FALSE(recorder.snapshots()[1].reached);  // run stabilised first
    EXPECT_EQ(recorder.snapshots()[1].snapshot.leaders(), 1U);
    EXPECT_EQ(recorder.snapshots()[1].snapshot.total(), n);
}

TEST(TimedSnapshotRecorder, DuplicatePointsShareOneCensus) {
    const std::size_t n = 128;
    const auto sim = ProtocolRegistry::instance().make_simulation(
        "angluin06", n, 17, EngineKind::gillespie);
    TimedSnapshotRecorder recorder({1.0, 1.0}, n);
    sim->add_observer(recorder);
    (void)sim->run_for(static_cast<StepCount>(n) * 2);
    ASSERT_EQ(recorder.captured_count(), 2U);
    EXPECT_EQ(recorder.snapshots()[0].snapshot.step, recorder.snapshots()[1].snapshot.step);
    EXPECT_EQ(recorder.snapshots()[0].snapshot.counts.size(),
              recorder.snapshots()[1].snapshot.counts.size());
}

TEST(TimedSnapshotRecorder, WritesLongFormCsv) {
    const std::size_t n = 64;
    const auto sim = ProtocolRegistry::instance().make_simulation(
        "angluin06", n, 19, EngineKind::batched);
    TimedSnapshotRecorder recorder({0.0}, n);
    sim->add_observer(recorder);
    (void)sim->run_for(4);
    std::ostringstream out;
    recorder.write_csv(out);
    const std::string csv = out.str();
    EXPECT_NE(csv.find("requested_time,step,state_key,count,role"), std::string::npos);
    EXPECT_NE(csv.find("0,0,1,64,leader"), std::string::npos);  // all-leader census
}

TEST(RunSweep, AggregatesDeadlineCensusAcrossRepetitions) {
    SweepConfig config;
    config.protocol = "rated_election";
    config.sizes = {128};
    config.repetitions = 6;
    config.seed = 0xDEAD;
    config.engine = EngineKind::gillespie;
    config.deadline_time = 1.0;
    const SweepResult sweep = run_sweep(config);
    ASSERT_EQ(sweep.points.size(), 1U);
    const SweepPoint& point = sweep.points.front();
    EXPECT_EQ(point.deadline_leaders.count(), 6U);
    EXPECT_GE(point.deadline_leaders.mean(), 1.0);
    EXPECT_LE(point.deadline_stabilized, point.repetitions);
}

}  // namespace
}  // namespace ppsim
