// Unit and integration tests for the simulation engine (src/core/engine.hpp)
// using the two-state Angluin protocol as the simplest host.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "core/population.hpp"
#include "core/thread_pool.hpp"
#include "protocols/angluin.hpp"

namespace ppsim {
namespace {

TEST(Population, ConstructsAndResets) {
    Population<int> pop(4, 7);
    EXPECT_EQ(pop.size(), 4U);
    EXPECT_EQ(pop[2], 7);
    pop[2] = 9;
    EXPECT_EQ(pop.count_if([](int x) { return x == 9; }), 1U);
    pop.reset(1);
    EXPECT_EQ(pop.count_if([](int x) { return x == 1; }), 4U);
    EXPECT_THROW(Population<int>(1, 0), InvalidArgument);
}

TEST(Engine, StartsWithAllLeaders) {
    Engine<Angluin> engine(Angluin{}, 10, 1);
    EXPECT_EQ(engine.leader_count(), 10U);
    EXPECT_EQ(engine.steps(), 0U);
    EXPECT_EQ(engine.population_size(), 10U);
}

TEST(Engine, AppliesSpecificInteractions) {
    Engine<Angluin> engine(Angluin{}, 4, 1);
    engine.apply(Interaction{0, 1});  // L×L → L×F
    EXPECT_EQ(engine.leader_count(), 3U);
    EXPECT_EQ(engine.role_of(0), Role::leader);
    EXPECT_EQ(engine.role_of(1), Role::follower);
    engine.apply(Interaction{1, 2});  // F×L → unchanged
    EXPECT_EQ(engine.leader_count(), 3U);
    EXPECT_EQ(engine.steps(), 2U);
}

TEST(Engine, IncrementalLeaderCountMatchesRecount) {
    Engine<Angluin> engine(Angluin{}, 50, 3);
    for (int i = 0; i < 2000; ++i) {
        engine.step();
        if (i % 100 == 0) {
            const std::size_t incremental = engine.leader_count();
            EXPECT_EQ(incremental, engine.recount_leaders());
        }
    }
}

TEST(Engine, AppliesRecordedSchedule) {
    RecordedSchedule schedule;
    schedule.append(0, 1);
    schedule.append(0, 2);
    schedule.append(0, 3);
    Engine<Angluin> engine(Angluin{}, 4, 1);
    engine.apply(schedule);
    EXPECT_EQ(engine.leader_count(), 1U);
    EXPECT_EQ(engine.steps(), 3U);
    EXPECT_EQ(*engine.stabilization_step(), 3U);
}

TEST(Engine, RunUntilOneLeaderConverges) {
    Engine<Angluin> engine(Angluin{}, 64, 7);
    const RunResult result = engine.run_until_one_leader(1'000'000);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.leader_count, 1U);
    ASSERT_TRUE(result.stabilization_step.has_value());
    EXPECT_GT(*result.stabilization_step, 0U);
    EXPECT_DOUBLE_EQ(result.parallel_time, static_cast<double>(result.steps) / 64.0);
}

TEST(Engine, RunUntilHonoursBudget) {
    Engine<Angluin> engine(Angluin{}, 256, 7);
    const RunResult result = engine.run_until_one_leader(10);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.steps, 10U);
    EXPECT_GT(result.leader_count, 1U);
}

TEST(Engine, RunUntilCustomPredicate) {
    Engine<Angluin> engine(Angluin{}, 64, 9);
    const RunResult result = engine.run_until(
        1'000'000, [](const Engine<Angluin>& e) { return e.leader_count() <= 32; });
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.leader_count, 32U);
}

TEST(Engine, StabilityVerificationHoldsAfterConvergence) {
    Engine<Angluin> engine(Angluin{}, 32, 11);
    ASSERT_TRUE(engine.run_until_one_leader(1'000'000).converged);
    EXPECT_TRUE(engine.verify_outputs_stable(50'000));
    EXPECT_EQ(engine.leader_count(), 1U);
}

TEST(Engine, EqualSeedsGiveIdenticalExecutions) {
    Engine<Angluin> a(Angluin{}, 128, 42);
    Engine<Angluin> b(Angluin{}, 128, 42);
    const RunResult ra = a.run_until_one_leader(10'000'000);
    const RunResult rb = b.run_until_one_leader(10'000'000);
    EXPECT_EQ(ra.steps, rb.steps);
    EXPECT_EQ(ra.stabilization_step, rb.stabilization_step);
}

TEST(Engine, DistinctSeedsDiverge) {
    const RunResult ra = simulate_to_single_leader(Angluin{}, 128, 1, 10'000'000);
    const RunResult rb = simulate_to_single_leader(Angluin{}, 128, 2, 10'000'000);
    EXPECT_TRUE(ra.converged);
    EXPECT_TRUE(rb.converged);
    EXPECT_NE(ra.stabilization_step, rb.stabilization_step);  // astronomically unlikely
}

TEST(Engine, StabilizationParallelTimeIsNanWithoutConvergence) {
    Engine<Angluin> engine(Angluin{}, 256, 5);
    const RunResult result = engine.run_until_one_leader(5);
    EXPECT_TRUE(std::isnan(result.stabilization_parallel_time(256)));
}

TEST(Metrics, TimeSeriesDecimatesUnderBudget) {
    TimeSeries series(16);
    for (StepCount s = 0; s < 10'000; ++s) series.record(s, static_cast<double>(s));
    EXPECT_LE(series.points().size(), 16U);
    EXPECT_GT(series.stride(), 1U);
    // Recorded points must be a subsequence of the offered observations.
    for (const auto& p : series.points()) {
        EXPECT_DOUBLE_EQ(p.value, static_cast<double>(p.step));
    }
}

TEST(Metrics, CounterSetAccumulates) {
    CounterSet counters;
    counters.increment("flips");
    counters.increment("flips", 4);
    EXPECT_EQ(counters.value("flips"), 5U);
    EXPECT_EQ(counters.value("absent"), 0U);
    counters.clear();
    EXPECT_EQ(counters.value("flips"), 0U);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
    std::vector<std::atomic<int>> hits(500);
    ThreadPool::parallel_for(500, 4, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.thread_count(), 3U);
    std::atomic<int> done{0};
    for (int i = 0; i < 20; ++i) pool.submit([&] { ++done; });
    pool.wait_idle();
    EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace ppsim
