// Tests for the one-way epidemic process (§2 / Lemma 2 substrate) and the
// generic max-propagation helper.
#include <gtest/gtest.h>

#include <cmath>

#include "protocols/epidemic.hpp"

namespace ppsim {
namespace {

TEST(Epidemic, StartsWithOnlyTheRootInfected) {
    const auto proc = EpidemicProcess::prefix_subpopulation(10, 5);
    EXPECT_EQ(proc.infected_count(), 1U);
    EXPECT_TRUE(proc.infected(0));
    EXPECT_FALSE(proc.infected(1));
    EXPECT_EQ(proc.subpopulation_size(), 5U);
    EXPECT_FALSE(proc.complete());
}

TEST(Epidemic, ValidatesConstruction) {
    EXPECT_THROW(EpidemicProcess::prefix_subpopulation(10, 0), InvalidArgument);
    EXPECT_THROW(EpidemicProcess::prefix_subpopulation(10, 11), InvalidArgument);
    std::vector<bool> members(4, false);
    members[1] = true;
    // Root outside the sub-population:
    EXPECT_THROW(EpidemicProcess(4, members, 0), InvalidArgument);
    EXPECT_NO_THROW(EpidemicProcess(4, members, 1));
}

TEST(Epidemic, SpreadsInBothInteractionDirections) {
    auto proc = EpidemicProcess::prefix_subpopulation(6, 6);
    // Infected responder infects the initiator…
    EXPECT_TRUE(proc.apply(Interaction{3, 0}));
    EXPECT_TRUE(proc.infected(3));
    // …and an infected initiator infects the responder.
    EXPECT_TRUE(proc.apply(Interaction{3, 4}));
    EXPECT_TRUE(proc.infected(4));
    EXPECT_EQ(proc.infected_count(), 3U);
}

TEST(Epidemic, IgnoresInteractionsOutsideTheSubpopulation) {
    auto proc = EpidemicProcess::prefix_subpopulation(8, 4);  // members 0..3
    EXPECT_FALSE(proc.apply(Interaction{0, 5}));  // 5 ∉ V′: no infection
    EXPECT_FALSE(proc.infected(5));
    EXPECT_FALSE(proc.apply(Interaction{6, 7}));
    EXPECT_EQ(proc.infected_count(), 1U);
}

TEST(Epidemic, InfectionIsMonotone) {
    auto proc = EpidemicProcess::prefix_subpopulation(5, 5);
    proc.apply(Interaction{0, 1});
    // Re-interacting infected agents changes nothing.
    EXPECT_FALSE(proc.apply(Interaction{0, 1}));
    EXPECT_FALSE(proc.apply(Interaction{1, 0}));
    EXPECT_EQ(proc.infected_count(), 2U);
}

TEST(Epidemic, RunsToCompletionInTheWholePopulation) {
    auto proc = EpidemicProcess::prefix_subpopulation(64, 64);
    const StepCount steps = proc.run_to_completion(9, 10'000'000);
    EXPECT_TRUE(proc.complete());
    EXPECT_GE(steps, 63U);  // at least n−1 infecting interactions needed
}

TEST(Epidemic, RunsToCompletionInASubpopulation) {
    auto proc = EpidemicProcess::prefix_subpopulation(64, 16);
    const StepCount steps = proc.run_to_completion(10, 50'000'000);
    EXPECT_TRUE(proc.complete());
    EXPECT_GE(steps, 15U);
}

TEST(Epidemic, CompletionTimeRespectsLemma2Shape) {
    // Empirical check of Lemma 2 at a fixed confidence point: with
    // t = n·ln(2n), the bound gives failure ≤ 1/2; the observed completion
    // should beat 2⌈n/n′⌉·t comfortably on most seeds. We assert the
    // average over seeds stays below the bound's step horizon.
    const std::size_t n = 256;
    for (const std::size_t n_prime : {256UL, 128UL, 64UL}) {
        const double t = static_cast<double>(n) * std::log(2.0 * n);
        const double horizon = 2.0 * std::ceil(static_cast<double>(n) / n_prime) * t;
        double total = 0.0;
        const int reps = 10;
        for (int rep = 0; rep < reps; ++rep) {
            auto proc = EpidemicProcess::prefix_subpopulation(n, n_prime);
            total += static_cast<double>(
                proc.run_to_completion(100 + rep, static_cast<StepCount>(horizon * 50)));
        }
        EXPECT_LT(total / reps, horizon) << "n' = " << n_prime;
    }
}

TEST(Epidemic, FailureBoundEvaluates) {
    const auto proc = EpidemicProcess::prefix_subpopulation(100, 50);
    const double loose = proc.lemma2_failure_bound(10);
    const double tight = proc.lemma2_failure_bound(10'000'000);
    EXPECT_GT(loose, tight);
    EXPECT_GE(tight, 0.0);
}

TEST(PropagateMax, PropagatesAndReportsChange) {
    int a = 3;
    int b = 7;
    EXPECT_TRUE(propagate_max(a, b));
    EXPECT_EQ(a, 7);
    EXPECT_EQ(b, 7);
    EXPECT_FALSE(propagate_max(a, b));
    int c = 9;
    int d = 2;
    EXPECT_TRUE(propagate_max(c, d));
    EXPECT_EQ(d, 9);
}

}  // namespace
}  // namespace ppsim
