// Fault-injection tests: spec parsing, exact count surgery on every engine,
// boundary cases (t=0, post-stabilisation faults, crash to n=1), silence
// windows, seeded determinism of post-fault streams, recovery measurement,
// and golden-seed pins of whole chaos scenarios per engine.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "core/batched_engine.hpp"
#include "core/engine.hpp"
#include "core/fault.hpp"
#include "core/gillespie_engine.hpp"
#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "protocols/lottery.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

constexpr std::array<EngineKind, 3> kEngines = {EngineKind::agent, EngineKind::batched,
                                                EngineKind::gillespie};

std::unique_ptr<Simulation> make_lottery(std::size_t n, std::uint64_t seed,
                                         EngineKind kind) {
    return ProtocolRegistry::instance().make_simulation("lottery", n, seed, kind);
}

// --- spec parsing -----------------------------------------------------------

TEST(FaultSpec, ParsesEveryActionForm) {
    const TimedFault crash_frac = parse_fault_spec("t=5:crash=0.3");
    EXPECT_DOUBLE_EQ(crash_frac.time, 5.0);
    EXPECT_EQ(crash_frac.action.kind, FaultKind::crash);
    EXPECT_DOUBLE_EQ(crash_frac.action.fraction, 0.3);
    EXPECT_EQ(crash_frac.action.count, 0U);

    const TimedFault crash_count = parse_fault_spec("t=2:crash=10");
    EXPECT_EQ(crash_count.action.count, 10U);
    EXPECT_DOUBLE_EQ(crash_count.action.fraction, 0.0);

    const TimedFault rejoin = parse_fault_spec("t=0:rejoin=4");
    EXPECT_DOUBLE_EQ(rejoin.time, 0.0);
    EXPECT_EQ(rejoin.action.kind, FaultKind::rejoin);
    EXPECT_EQ(rejoin.action.count, 4U);

    const TimedFault reset = parse_fault_spec("t=1.5:reset=0.25");
    EXPECT_EQ(reset.action.kind, FaultKind::reset);
    EXPECT_DOUBLE_EQ(reset.action.fraction, 0.25);

    const TimedFault silence = parse_fault_spec("t=3:silence=0.75");
    EXPECT_EQ(silence.action.kind, FaultKind::silence);
    EXPECT_DOUBLE_EQ(silence.action.duration, 0.75);
    // An integer silence value is a duration, not a count.
    EXPECT_DOUBLE_EQ(parse_fault_spec("t=3:silence=2").action.duration, 2.0);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
    EXPECT_THROW((void)parse_fault_spec("bogus"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=1"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("time=1:crash=0.5"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=1:crash"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=1:crash="), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=1:explode=0.5"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=-1:crash=0.5"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=x:crash=0.5"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=1:crash=zero"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=1:crash=0"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=1:crash=1.5"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=1:rejoin=0.5"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=1:rejoin=0"), InvalidArgument);
    EXPECT_THROW((void)parse_fault_spec("t=1:silence=0"), InvalidArgument);
}

TEST(FaultSpec, ResolvesCountsAgainstThePopulation) {
    EXPECT_EQ(resolve_fault_count(FaultAction::crash_count(7), 100), 7U);
    EXPECT_EQ(resolve_fault_count(FaultAction::crash_fraction(0.5), 100), 50U);
    EXPECT_EQ(resolve_fault_count(FaultAction::reset_fraction(0.3), 10), 3U);
    // A scheduled fault always does something: tiny fractions floor at one.
    EXPECT_EQ(resolve_fault_count(FaultAction::crash_fraction(0.001), 100), 1U);
}

// --- count surgery ----------------------------------------------------------

/// Census invariants after surgery, via the type-erased snapshot: totals
/// conserve the expected population and the leader census matches the
/// engine's incremental count.
void expect_census_consistent(Simulation& sim, std::uint64_t expected_total) {
    const ConfigurationSnapshot census = sim.state_counts();
    EXPECT_EQ(census.total(), expected_total);
    EXPECT_EQ(census.leaders(), sim.leader_count());
    EXPECT_EQ(sim.population_size(), expected_total);
}

TEST(FaultSurgery, CrashRejoinResetConserveCountsOnEveryEngine) {
    const std::size_t n = 100;
    for (const EngineKind kind : kEngines) {
        SCOPED_TRACE(to_string(kind));
        const auto sim = make_lottery(n, 905, kind);
        FaultPlan plan;
        plan.add(0.5, FaultAction::crash_fraction(0.3));  // 100 → 70
        plan.add(1.0, FaultAction::rejoin_count(25));     // 70 → 95
        plan.add(1.5, FaultAction::reset_fraction(0.1));  // 95 agents, 10 reset
        sim->set_fault_plan(plan);
        ASSERT_EQ(sim->fault_count(), 3U);

        (void)sim->run_for(n / 2);  // past t=0.5
        EXPECT_EQ(sim->faults_applied(), 1U);
        expect_census_consistent(*sim, 70);

        (void)sim->run_for(n);  // past t=1.0 and t=1.5
        EXPECT_EQ(sim->faults_applied(), 3U);
        expect_census_consistent(*sim, 95);
    }
}

TEST(FaultSurgery, RejoinReopensTheRace) {
    // Lottery's initial state is a fresh contender: after stabilising on one
    // leader, a rejoin wave must raise the leader count again.
    const std::size_t n = 64;
    for (const EngineKind kind : kEngines) {
        SCOPED_TRACE(to_string(kind));
        const auto sim = make_lottery(n, 906, kind);
        const RunResult settled =
            sim->run_until_one_leader(StepBudget::n_squared(n, 50.0));
        ASSERT_TRUE(settled.converged);
        // Engine-level rejoin, mid-run: the Simulation plan path is covered
        // above; this pins the action semantics themselves.
        FaultPlan plan;  // (not attachable mid-run — assert that contract too)
        plan.add(0.0, FaultAction::rejoin_count(8));
        EXPECT_THROW(sim->set_fault_plan(plan), InvalidArgument);
    }
    for (const EngineKind kind : kEngines) {
        SCOPED_TRACE(to_string(kind));
        const auto sim = make_lottery(n, 906, kind);
        FaultPlan plan;
        plan.add(30.0, FaultAction::rejoin_count(8));  // far past stabilisation
        sim->set_fault_plan(plan);
        (void)sim->run_for(30 * n);
        EXPECT_EQ(sim->faults_applied(), 1U);
        EXPECT_EQ(sim->population_size(), n + 8);
        EXPECT_GE(sim->leader_count(), 1U);
        expect_census_consistent(*sim, n + 8);
    }
}

// --- boundary cases ---------------------------------------------------------

TEST(FaultBoundary, TimeZeroFaultAppliesBeforeTheFirstInteraction) {
    const std::size_t n = 90;
    for (const EngineKind kind : kEngines) {
        SCOPED_TRACE(to_string(kind));
        const auto sim = make_lottery(n, 907, kind);
        FaultPlan plan;
        plan.add(0.0, FaultAction::crash_count(10));
        sim->set_fault_plan(plan);
        (void)sim->run_for(0);  // zero budget still fires due faults
        EXPECT_EQ(sim->faults_applied(), 1U);
        EXPECT_EQ(sim->steps(), 0U);
        expect_census_consistent(*sim, n - 10);
    }
}

TEST(FaultBoundary, FaultAfterStabilizationForcesReelection) {
    const std::size_t n = 64;
    const double fault_time = 50.0;  // well past lottery's typical ~12
    for (const EngineKind kind : kEngines) {
        SCOPED_TRACE(to_string(kind));
        const auto sim = make_lottery(n, 908, kind);
        FaultPlan plan;
        plan.add(fault_time, FaultAction::reset_fraction(0.5));
        sim->set_fault_plan(plan);
        const RunResult run =
            sim->run_until_one_leader(StepBudget::n_squared(n, 50.0));
        // The run may not stop at the pre-fault stabilisation: the fault
        // must fire, and the election settle again afterwards.
        ASSERT_TRUE(run.converged);
        EXPECT_EQ(sim->faults_applied(), 1U);
        ASSERT_TRUE(sim->stabilization_step().has_value());
        EXPECT_GE(*sim->stabilization_step(),
                  model_time_to_step(fault_time, n));
        EXPECT_EQ(sim->leader_count(), 1U);
    }
}

TEST(FaultBoundary, CrashToSingleSurvivorIsSafe) {
    const std::size_t n = 32;
    for (const EngineKind kind : kEngines) {
        SCOPED_TRACE(to_string(kind));
        const auto sim = make_lottery(n, 909, kind);
        FaultPlan plan;
        plan.add(1.0, FaultAction::crash_fraction(1.0));  // clamps to n−1 victims
        sim->set_fault_plan(plan);
        const StepCount budget = 6 * static_cast<StepCount>(n);
        (void)sim->run_for(budget);
        EXPECT_EQ(sim->population_size(), 1U);
        EXPECT_EQ(sim->steps(), budget);  // steps keep ticking below n = 2
        const ConfigurationSnapshot census = sim->state_counts();
        EXPECT_EQ(census.total(), 1U);
        EXPECT_LE(sim->leader_count(), 1U);
    }
}

TEST(FaultBoundary, SilenceFreezesTheConfigurationWhileTimePasses) {
    const std::size_t n = 100;
    for (const EngineKind kind : kEngines) {
        SCOPED_TRACE(to_string(kind));
        const auto sim = make_lottery(n, 910, kind);
        FaultPlan plan;
        plan.add(1.0, FaultAction::transient_silence(1.0));
        sim->set_fault_plan(plan);
        (void)sim->run_for(n);  // exactly to the silence window
        EXPECT_EQ(sim->faults_applied(), 1U);
        const ConfigurationSnapshot at_start = sim->state_counts();
        (void)sim->run_for(n / 2);  // inside the window: nothing may react
        EXPECT_EQ(sim->steps(), n + n / 2);
        const ConfigurationSnapshot frozen = sim->state_counts();
        ASSERT_EQ(frozen.counts.size(), at_start.counts.size());
        for (std::size_t i = 0; i < frozen.counts.size(); ++i) {
            EXPECT_EQ(frozen.counts[i].key, at_start.counts[i].key);
            EXPECT_EQ(frozen.counts[i].count, at_start.counts[i].count);
        }
        (void)sim->run_for(n);  // leaves the window and reacts again
        EXPECT_EQ(sim->steps(), 2 * n + n / 2);
    }
}

// --- determinism ------------------------------------------------------------

ConfigurationSnapshot run_with_plan(std::size_t n, std::uint64_t seed,
                                    EngineKind kind, const FaultPlan& plan,
                                    StepCount budget, RunResult& out) {
    const auto sim = make_lottery(n, seed, kind);
    sim->set_fault_plan(plan);
    out = sim->run_until_one_leader(budget);
    return sim->state_counts();
}

TEST(FaultDeterminism, SameSeedAndPlanReplayIdentically) {
    const std::size_t n = 128;
    FaultPlan plan;
    plan.add(2.0, FaultAction::crash_fraction(0.3));
    plan.add(5.0, FaultAction::rejoin_count(38));
    plan.add(8.0, FaultAction::reset_fraction(0.15));
    const StepCount budget = StepBudget::n_squared(n, 50.0);
    for (const EngineKind kind : kEngines) {
        SCOPED_TRACE(to_string(kind));
        RunResult first_run;
        RunResult second_run;
        const ConfigurationSnapshot a = run_with_plan(n, 911, kind, plan, budget,
                                                      first_run);
        const ConfigurationSnapshot b = run_with_plan(n, 911, kind, plan, budget,
                                                      second_run);
        EXPECT_EQ(first_run.steps, second_run.steps);
        EXPECT_EQ(first_run.converged, second_run.converged);
        ASSERT_EQ(a.counts.size(), b.counts.size());
        for (std::size_t i = 0; i < a.counts.size(); ++i) {
            EXPECT_EQ(a.counts[i].key, b.counts[i].key);
            EXPECT_EQ(a.counts[i].count, b.counts[i].count);
        }
    }
}

TEST(FaultDeterminism, AgentEngineFaultRunIsSliceInvariant) {
    // The agent engine advances one interaction at a time, so chunking the
    // run differently must not change the post-fault stream. (The count
    // engines legitimately resample per requested round, so slice
    // invariance is an agent-engine property.)
    const std::size_t n = 96;
    FaultPlan plan;
    plan.add(1.0, FaultAction::crash_fraction(0.25));
    plan.add(3.0, FaultAction::rejoin_count(12));
    const StepCount total = 8 * static_cast<StepCount>(n);

    const auto one_shot = make_lottery(n, 912, EngineKind::agent);
    one_shot->set_fault_plan(plan);
    (void)one_shot->run_for(total);

    const auto sliced = make_lottery(n, 912, EngineKind::agent);
    sliced->set_fault_plan(plan);
    for (StepCount done = 0; done < total; done += 37) {
        (void)sliced->run_for(std::min<StepCount>(37, total - done));
    }
    EXPECT_EQ(one_shot->steps(), sliced->steps());
    const ConfigurationSnapshot a = one_shot->state_counts();
    const ConfigurationSnapshot b = sliced->state_counts();
    ASSERT_EQ(a.counts.size(), b.counts.size());
    for (std::size_t i = 0; i < a.counts.size(); ++i) {
        EXPECT_EQ(a.counts[i].key, b.counts[i].key);
        EXPECT_EQ(a.counts[i].count, b.counts[i].count);
    }
}

// --- recovery measurement ---------------------------------------------------

TEST(RecoveryObserver, MeasuresTimeToRestabilization) {
    const std::size_t n = 64;
    const auto sim = make_lottery(n, 913, EngineKind::agent);
    FaultPlan plan;
    plan.add(2.0, FaultAction::crash_fraction(0.3));
    plan.add(40.0, FaultAction::reset_fraction(0.25));
    plan.add(41.0, FaultAction::transient_silence(0.5));  // no recovery record
    sim->set_fault_plan(plan);
    RecoveryObserver recovery(n);
    sim->add_observer(recovery);
    const RunResult run = sim->run_until_one_leader(StepBudget::n_squared(n, 80.0));
    ASSERT_TRUE(run.converged);
    ASSERT_EQ(recovery.records().size(), 2U);  // silence excluded
    for (const RecoveryRecord& record : recovery.records()) {
        ASSERT_TRUE(record.recovery_step.has_value());
        EXPECT_GE(*record.recovery_step, record.fault_step);
        const auto span = record.recovery_time(n);
        ASSERT_TRUE(span.has_value());
        EXPECT_GE(*span, 0.0);
    }
    EXPECT_DOUBLE_EQ(recovery.records()[0].fault_time, 2.0);
    EXPECT_DOUBLE_EQ(recovery.records()[1].fault_time, 40.0);
    EXPECT_EQ(recovery.records()[0].fault_step, model_time_to_step(2.0, n));
}

TEST(RecoveryObserver, UnrecoveredFaultStaysOpenOnBudgetExhaustion) {
    const std::size_t n = 64;
    const auto sim = make_lottery(n, 914, EngineKind::agent);
    FaultPlan plan;
    plan.add(0.5, FaultAction::crash_fraction(0.2));
    sim->set_fault_plan(plan);
    RecoveryObserver recovery(n);
    sim->add_observer(recovery);
    // A budget too small to re-stabilise: the record must stay open.
    const RunResult run = sim->run_until_one_leader(n);
    EXPECT_FALSE(run.converged);
    ASSERT_EQ(recovery.records().size(), 1U);
    EXPECT_FALSE(recovery.records()[0].recovery_step.has_value());
}

TEST(RecoverySweep, AggregatesRecoveryAcrossRepetitions) {
    SweepConfig config;
    config.protocol = "lottery";
    config.sizes = {64};
    config.repetitions = 4;
    config.seed = 915;
    config.engine = EngineKind::batched;
    config.budget = [](std::size_t n) { return StepBudget::n_squared(n, 50.0); };
    config.fault_plan.add(2.0, FaultAction::crash_fraction(0.3));
    config.fault_plan.add(5.0, FaultAction::rejoin_count(19));
    const SweepResult sweep = run_sweep(config);
    ASSERT_EQ(sweep.points.size(), 1U);
    const SweepPoint& point = sweep.points[0];
    EXPECT_EQ(point.recovery_rows.size(), 2U * config.repetitions);
    EXPECT_EQ(point.recovery_events + point.unrecovered_faults,
              point.recovery_rows.size());
    for (std::size_t i = 1; i < point.recovery_rows.size(); ++i) {
        const RecoveryRow& prev = point.recovery_rows[i - 1];
        const RecoveryRow& row = point.recovery_rows[i];
        EXPECT_TRUE(prev.rep < row.rep ||
                    (prev.rep == row.rep && prev.fault_index < row.fault_index));
    }
}

// --- golden-seed pins -------------------------------------------------------

// Exact stabilisation steps of the registered chaos scenarios, one cell per
// (scenario, engine), all at n = 128 / seed = 2019 / budget 50n². These pin
// the full fault pipeline — plan resolution, step anchoring, count surgery,
// fault-stream draws — on every engine: any change to fault semantics shows
// up as a changed constant and must be updated deliberately (same policy as
// test_golden_seeds.cpp; values assume glibc libm).
struct FaultGoldenCell {
    const char* scenario;
    EngineKind engine;
    StepCount stabilization_step;
};

constexpr std::array<FaultGoldenCell, 6> kFaultGoldenCells = {{
    {"churn_election", EngineKind::agent, 1752},
    {"churn_election", EngineKind::batched, 1973},
    {"churn_election", EngineKind::gillespie, 2070},
    {"reset_epidemic", EngineKind::agent, 11584},
    {"reset_epidemic", EngineKind::batched, 23477},
    {"reset_epidemic", EngineKind::gillespie, 7594},
}};

TEST(FaultGoldenSeeds, ScenarioStreamsAreBitStable) {
    const std::size_t n = 128;
    for (const FaultGoldenCell& cell : kFaultGoldenCells) {
        SCOPED_TRACE(std::string(cell.scenario) + "/" +
                     std::string(to_string(cell.engine)));
        const ChaosScenario& scenario = find_chaos_scenario(cell.scenario);
        const auto sim = ProtocolRegistry::instance().make_simulation(
            scenario.protocol, n, 2019, cell.engine);
        sim->set_fault_plan(scenario.make_plan(n));
        const RunResult run =
            sim->run_until_one_leader(StepBudget::n_squared(n, 50.0));
        ASSERT_TRUE(run.converged);
        ASSERT_TRUE(sim->stabilization_step().has_value());
        EXPECT_EQ(*sim->stabilization_step(), cell.stabilization_step);
    }
}

}  // namespace
}  // namespace ppsim
