// Invariant and integration tests for the reaction-rate Gillespie engine
// (src/core/gillespie_engine.hpp):
//
//  * agent-count conservation and incremental-leader-count consistency
//    across both execution paths (exact SSA below the leap threshold,
//    τ-leaping above it);
//  * seeded determinism of full runs;
//  * exactness guarantee at small n (the engine must never leap there — the
//    property the KS harness in test_statistical.cpp relies on);
//  * the run/verify surface (run_for step exactness, verify_outputs_stable);
//  * the engine-table row, registry dispatch and Simulation adapter
//    (snapshots, observers) for the third back-end.
//
// Distributional agreement with the other engines lives in
// test_statistical.cpp; golden seeded replays in test_golden_seeds.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/gillespie_engine.hpp"
#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "protocols/angluin.hpp"
#include "protocols/lottery.hpp"
#include "protocols/pll.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

static_assert(InternableProtocol<Angluin>);
static_assert(InternableProtocol<Lottery>);
static_assert(InternableProtocol<Pll>);

TEST(EngineTable, GillespieRowRoundTrips) {
    EXPECT_EQ(parse_engine_kind("gillespie"), EngineKind::gillespie);
    EXPECT_EQ(to_string(EngineKind::gillespie), "gillespie");
    EXPECT_NE(engine_kind_list().find("gillespie"), std::string::npos);
}

TEST(GillespieEngine, ConservesAgentsAndLeaderCountInExactRegime) {
    const std::size_t n = 256;  // below leap_min_population: exact SSA paths
    GillespieEngine<Lottery> engine(Lottery::for_population(n), n, 7);
    ASSERT_LT(n, GillespieEngine<Lottery>::leap_min_population);
    for (int i = 0; i < 20; ++i) {
        (void)engine.run_for(500);
        EXPECT_EQ(engine.total_count(), n);
        const std::size_t incremental = engine.leader_count();
        EXPECT_EQ(engine.recount_leaders(), incremental);
    }
    EXPECT_EQ(engine.leaps_taken(), 0U) << "engine leaped below its population floor";
}

TEST(GillespieEngine, ConservesAgentsAndLeaderCountInLeapRegime) {
    const std::size_t n = 8192;
    GillespieEngine<Pll> engine(Pll::for_population(n), n, 11);
    for (int i = 0; i < 10; ++i) {
        (void)engine.run_for(4096);
        EXPECT_EQ(engine.total_count(), n);
        const std::size_t incremental = engine.leader_count();
        EXPECT_EQ(engine.recount_leaders(), incremental);
    }
    EXPECT_GT(engine.leaps_taken(), 0U) << "leap path never engaged at n = 8192";
}

TEST(GillespieEngine, RunForExecutesExactlyTheRequestedSteps) {
    for (const std::size_t n : {std::size_t{128}, std::size_t{16384}}) {
        GillespieEngine<Angluin> engine(Angluin{}, n, 3);
        (void)engine.run_for(1);
        EXPECT_EQ(engine.steps(), 1U);
        (void)engine.run_for(9999);
        EXPECT_EQ(engine.steps(), 10000U);
        (void)engine.run_for(0);
        EXPECT_EQ(engine.steps(), 10000U);
    }
}

TEST(GillespieEngine, IsDeterministicForEqualSeeds) {
    for (const std::size_t n : {std::size_t{512}, std::size_t{8192}}) {
        GillespieEngine<Lottery> a(Lottery::for_population(n), n, 99);
        GillespieEngine<Lottery> b(Lottery::for_population(n), n, 99);
        const RunResult ra = a.run_until_one_leader(static_cast<StepCount>(n) * n);
        const RunResult rb = b.run_until_one_leader(static_cast<StepCount>(n) * n);
        EXPECT_EQ(ra.steps, rb.steps);
        EXPECT_EQ(ra.leader_count, rb.leader_count);
        EXPECT_EQ(ra.stabilization_step, rb.stabilization_step);
        EXPECT_EQ(a.count_of(a.protocol().initial_state()),
                  b.count_of(b.protocol().initial_state()));
    }
}

TEST(GillespieEngine, StabilizationStepIsRecordedAndPlausible) {
    const std::size_t n = 1024;
    GillespieEngine<Lottery> engine(Lottery::for_population(n), n, 5);
    const RunResult r = engine.run_until_one_leader(static_cast<StepCount>(n) * n);
    ASSERT_TRUE(r.converged);
    ASSERT_TRUE(r.stabilization_step.has_value());
    EXPECT_GE(*r.stabilization_step, 1U);
    EXPECT_LE(*r.stabilization_step, r.steps);
    EXPECT_EQ(engine.leader_count(), 1U);
}

TEST(GillespieEngine, NullSkippingJumpsDeadTailsInOneRound) {
    // angluin06 with a single leader is fully absorbed: every channel is
    // null, so run_for must consume any budget in O(1) rounds rather than
    // stepping through it.
    const std::size_t n = 512;
    GillespieEngine<Angluin> engine(Angluin{}, n, 21);
    const RunResult r = engine.run_until_one_leader(static_cast<StepCount>(n) * n * 60);
    ASSERT_TRUE(r.converged);
    const StepCount before = engine.steps();
    (void)engine.run_for(1'000'000'000ULL);  // a billion dead steps, instantly
    EXPECT_EQ(engine.steps(), before + 1'000'000'000ULL);
    EXPECT_EQ(engine.leader_count(), 1U);
}

TEST(GillespieEngine, VerifyOutputsStableAfterConvergence) {
    const std::size_t n = 512;
    GillespieEngine<Lottery> engine(Lottery::for_population(n), n, 13);
    const RunResult r = engine.run_until_one_leader(static_cast<StepCount>(n) * n);
    ASSERT_TRUE(r.converged);
    EXPECT_TRUE(engine.verify_outputs_stable(static_cast<StepCount>(n) * 64));
    EXPECT_EQ(engine.leader_count(), 1U);
}

TEST(GillespieEngine, VisitCountsEnumeratesTheWholePopulation) {
    const std::size_t n = 2048;
    GillespieEngine<Pll> engine(Pll::for_population(n), n, 17);
    (void)engine.run_for(static_cast<StepCount>(n) * 4);
    std::uint64_t total = 0;
    std::uint64_t leaders = 0;
    engine.visit_counts([&](const auto&, std::uint64_t count, Role role) {
        total += count;
        if (role == Role::leader) leaders += count;
    });
    EXPECT_EQ(total, n);
    EXPECT_EQ(leaders, engine.leader_count());
    EXPECT_EQ(engine.live_state_count(), static_cast<std::size_t>([&] {
                  std::size_t states = 0;
                  engine.visit_counts([&](const auto&, std::uint64_t, Role) { ++states; });
                  return states;
              }()));
}

// --- registry / Simulation adapter integration ------------------------------

TEST(GillespieSimulation, EveryRegisteredProtocolElectsOneLeader) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const std::string& name : registry.names()) {
        const std::size_t n = 512;
        const RunResult r = registry.run_election(
            name, n, 2019, static_cast<StepCount>(n) * n * 60, EngineKind::gillespie);
        EXPECT_TRUE(r.converged) << name << " did not elect a leader on gillespie";
        EXPECT_EQ(r.leader_count, 1U) << name;
    }
}

TEST(GillespieSimulation, ReportsItsKindAndSnapshotAgreesWithEngineCounts) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 1024;
    const auto sim = registry.make_simulation("pll", n, 7, EngineKind::gillespie);
    EXPECT_EQ(sim->engine_kind(), EngineKind::gillespie);
    EXPECT_EQ(sim->batch_mode(), BatchMode::automatic);
    (void)sim->run_for(static_cast<StepCount>(n) * 2);
    const ConfigurationSnapshot snapshot = sim->state_counts();
    EXPECT_EQ(snapshot.total(), n);
    EXPECT_EQ(snapshot.leaders(), sim->leader_count());
    EXPECT_EQ(snapshot.counts.size(), sim->live_state_count());
    EXPECT_EQ(snapshot.step, sim->steps());
    for (std::size_t i = 1; i < snapshot.counts.size(); ++i) {
        EXPECT_LT(snapshot.counts[i - 1].key, snapshot.counts[i].key);  // sorted census
    }
}

TEST(GillespieSimulation, SnapshotKeysMatchTheAgentEngineAtRunStart) {
    // Same protocol, both engines at step 0: identical censuses (one state,
    // canonical key equal across engines).
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 256;
    const auto agent = registry.make_simulation("lottery", n, 3, EngineKind::agent);
    const auto gillespie = registry.make_simulation("lottery", n, 3, EngineKind::gillespie);
    const ConfigurationSnapshot sa = agent->state_counts();
    const ConfigurationSnapshot sg = gillespie->state_counts();
    ASSERT_EQ(sa.counts.size(), sg.counts.size());
    for (std::size_t i = 0; i < sa.counts.size(); ++i) {
        EXPECT_EQ(sa.counts[i].key, sg.counts[i].key);
        EXPECT_EQ(sa.counts[i].count, sg.counts[i].count);
    }
}

TEST(GillespieSimulation, ObserversSeeMonotoneCadencedTrajectories) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 8192;  // leap regime: deadlines must clamp leaps
    const auto sim = registry.make_simulation("pll", n, 11, EngineKind::gillespie);
    TrajectoryRecorder recorder(/*stride=*/n / 4, /*record_live_states=*/true);
    sim->add_observer(recorder);
    const RunResult r = sim->run_until_one_leader(static_cast<StepCount>(n) * 400);
    ASSERT_TRUE(r.converged);
    const std::vector<TrajectoryPoint>& points = recorder.points();
    ASSERT_GE(points.size(), 2U);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].step, points[i - 1].step);
    }
    EXPECT_EQ(points.back().leader_count, 1U);
    EXPECT_GE(points.front().leader_count, points.back().leader_count);
}

TEST(GillespieSimulation, RunToSingleLeaderWithVerificationCertifies) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 512;
    const RunResult r = registry.run_election_verified(
        "lottery", n, 77, static_cast<StepCount>(n) * n, static_cast<StepCount>(n) * 32,
        EngineKind::gillespie);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.leader_count, 1U);
}

}  // namespace
}  // namespace ppsim
