// Invariant and integration tests for the reaction-rate Gillespie engine
// (src/core/gillespie_engine.hpp):
//
//  * agent-count conservation and incremental-leader-count consistency
//    across both execution paths (exact SSA below the leap threshold,
//    τ-leaping above it);
//  * seeded determinism of full runs;
//  * exactness guarantee at small n (the engine must never leap there — the
//    property the KS harness in test_statistical.cpp relies on);
//  * the run/verify surface (run_for step exactness, verify_outputs_stable);
//  * the engine-table row, registry dispatch and Simulation adapter
//    (snapshots, observers) for the third back-end.
//
// Distributional agreement with the other engines lives in
// test_statistical.cpp; golden seeded replays in test_golden_seeds.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/gillespie_engine.hpp"
#include "core/observer.hpp"
#include "core/simulation.hpp"
#include "protocols/angluin.hpp"
#include "protocols/lottery.hpp"
#include "protocols/pll.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

static_assert(InternableProtocol<Angluin>);
static_assert(InternableProtocol<Lottery>);
static_assert(InternableProtocol<Pll>);

TEST(EngineTable, GillespieRowRoundTrips) {
    EXPECT_EQ(parse_engine_kind("gillespie"), EngineKind::gillespie);
    EXPECT_EQ(to_string(EngineKind::gillespie), "gillespie");
    EXPECT_NE(engine_kind_list().find("gillespie"), std::string::npos);
}

TEST(GillespieEngine, ConservesAgentsAndLeaderCountInExactRegime) {
    const std::size_t n = 256;  // below leap_min_population: exact SSA paths
    GillespieEngine<Lottery> engine(Lottery::for_population(n), n, 7);
    ASSERT_LT(n, GillespieEngine<Lottery>::leap_min_population);
    for (int i = 0; i < 20; ++i) {
        (void)engine.run_for(500);
        EXPECT_EQ(engine.total_count(), n);
        const std::size_t incremental = engine.leader_count();
        EXPECT_EQ(engine.recount_leaders(), incremental);
    }
    EXPECT_EQ(engine.leaps_taken(), 0U) << "engine leaped below its population floor";
}

TEST(GillespieEngine, ConservesAgentsAndLeaderCountInLeapRegime) {
    const std::size_t n = 8192;
    GillespieEngine<Pll> engine(Pll::for_population(n), n, 11);
    for (int i = 0; i < 10; ++i) {
        (void)engine.run_for(4096);
        EXPECT_EQ(engine.total_count(), n);
        const std::size_t incremental = engine.leader_count();
        EXPECT_EQ(engine.recount_leaders(), incremental);
    }
    EXPECT_GT(engine.leaps_taken(), 0U) << "leap path never engaged at n = 8192";
}

TEST(GillespieEngine, RunForExecutesExactlyTheRequestedSteps) {
    for (const std::size_t n : {std::size_t{128}, std::size_t{16384}}) {
        GillespieEngine<Angluin> engine(Angluin{}, n, 3);
        (void)engine.run_for(1);
        EXPECT_EQ(engine.steps(), 1U);
        (void)engine.run_for(9999);
        EXPECT_EQ(engine.steps(), 10000U);
        (void)engine.run_for(0);
        EXPECT_EQ(engine.steps(), 10000U);
    }
}

TEST(GillespieEngine, IsDeterministicForEqualSeeds) {
    for (const std::size_t n : {std::size_t{512}, std::size_t{8192}}) {
        GillespieEngine<Lottery> a(Lottery::for_population(n), n, 99);
        GillespieEngine<Lottery> b(Lottery::for_population(n), n, 99);
        const RunResult ra = a.run_until_one_leader(static_cast<StepCount>(n) * n);
        const RunResult rb = b.run_until_one_leader(static_cast<StepCount>(n) * n);
        EXPECT_EQ(ra.steps, rb.steps);
        EXPECT_EQ(ra.leader_count, rb.leader_count);
        EXPECT_EQ(ra.stabilization_step, rb.stabilization_step);
        EXPECT_EQ(a.count_of(a.protocol().initial_state()),
                  b.count_of(b.protocol().initial_state()));
    }
}

TEST(GillespieEngine, StabilizationStepIsRecordedAndPlausible) {
    const std::size_t n = 1024;
    GillespieEngine<Lottery> engine(Lottery::for_population(n), n, 5);
    const RunResult r = engine.run_until_one_leader(static_cast<StepCount>(n) * n);
    ASSERT_TRUE(r.converged);
    ASSERT_TRUE(r.stabilization_step.has_value());
    EXPECT_GE(*r.stabilization_step, 1U);
    EXPECT_LE(*r.stabilization_step, r.steps);
    EXPECT_EQ(engine.leader_count(), 1U);
}

TEST(GillespieEngine, NullSkippingJumpsDeadTailsInOneRound) {
    // angluin06 with a single leader is fully absorbed: every channel is
    // null, so run_for must consume any budget in O(1) rounds rather than
    // stepping through it.
    const std::size_t n = 512;
    GillespieEngine<Angluin> engine(Angluin{}, n, 21);
    const RunResult r = engine.run_until_one_leader(static_cast<StepCount>(n) * n * 60);
    ASSERT_TRUE(r.converged);
    const StepCount before = engine.steps();
    (void)engine.run_for(1'000'000'000ULL);  // a billion dead steps, instantly
    EXPECT_EQ(engine.steps(), before + 1'000'000'000ULL);
    EXPECT_EQ(engine.leader_count(), 1U);
}

TEST(GillespieEngine, VerifyOutputsStableAfterConvergence) {
    const std::size_t n = 512;
    GillespieEngine<Lottery> engine(Lottery::for_population(n), n, 13);
    const RunResult r = engine.run_until_one_leader(static_cast<StepCount>(n) * n);
    ASSERT_TRUE(r.converged);
    EXPECT_TRUE(engine.verify_outputs_stable(static_cast<StepCount>(n) * 64));
    EXPECT_EQ(engine.leader_count(), 1U);
}

TEST(GillespieEngine, VisitCountsEnumeratesTheWholePopulation) {
    const std::size_t n = 2048;
    GillespieEngine<Pll> engine(Pll::for_population(n), n, 17);
    (void)engine.run_for(static_cast<StepCount>(n) * 4);
    std::uint64_t total = 0;
    std::uint64_t leaders = 0;
    engine.visit_counts([&](const auto&, std::uint64_t count, Role role) {
        total += count;
        if (role == Role::leader) leaders += count;
    });
    EXPECT_EQ(total, n);
    EXPECT_EQ(leaders, engine.leader_count());
    EXPECT_EQ(engine.live_state_count(), static_cast<std::size_t>([&] {
                  std::size_t states = 0;
                  engine.visit_counts([&](const auto&, std::uint64_t, Role) { ++states; });
                  return states;
              }()));
}

// --- registry / Simulation adapter integration ------------------------------

TEST(GillespieSimulation, EveryRegisteredProtocolElectsOneLeader) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const std::string& name : registry.names()) {
        const std::size_t n = 512;
        const RunResult r = registry.run_election(
            name, n, 2019, static_cast<StepCount>(n) * n * 60, EngineKind::gillespie);
        EXPECT_TRUE(r.converged) << name << " did not elect a leader on gillespie";
        EXPECT_EQ(r.leader_count, 1U) << name;
    }
}

TEST(GillespieSimulation, ReportsItsKindAndSnapshotAgreesWithEngineCounts) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 1024;
    const auto sim = registry.make_simulation("pll", n, 7, EngineKind::gillespie);
    EXPECT_EQ(sim->engine_kind(), EngineKind::gillespie);
    EXPECT_EQ(sim->batch_mode(), BatchMode::automatic);
    (void)sim->run_for(static_cast<StepCount>(n) * 2);
    const ConfigurationSnapshot snapshot = sim->state_counts();
    EXPECT_EQ(snapshot.total(), n);
    EXPECT_EQ(snapshot.leaders(), sim->leader_count());
    EXPECT_EQ(snapshot.counts.size(), sim->live_state_count());
    EXPECT_EQ(snapshot.step, sim->steps());
    for (std::size_t i = 1; i < snapshot.counts.size(); ++i) {
        EXPECT_LT(snapshot.counts[i - 1].key, snapshot.counts[i].key);  // sorted census
    }
}

TEST(GillespieSimulation, SnapshotKeysMatchTheAgentEngineAtRunStart) {
    // Same protocol, both engines at step 0: identical censuses (one state,
    // canonical key equal across engines).
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 256;
    const auto agent = registry.make_simulation("lottery", n, 3, EngineKind::agent);
    const auto gillespie = registry.make_simulation("lottery", n, 3, EngineKind::gillespie);
    const ConfigurationSnapshot sa = agent->state_counts();
    const ConfigurationSnapshot sg = gillespie->state_counts();
    ASSERT_EQ(sa.counts.size(), sg.counts.size());
    for (std::size_t i = 0; i < sa.counts.size(); ++i) {
        EXPECT_EQ(sa.counts[i].key, sg.counts[i].key);
        EXPECT_EQ(sa.counts[i].count, sg.counts[i].count);
    }
}

TEST(GillespieSimulation, ObserversSeeMonotoneCadencedTrajectories) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 8192;  // leap regime: deadlines must clamp leaps
    const auto sim = registry.make_simulation("pll", n, 11, EngineKind::gillespie);
    TrajectoryRecorder recorder(/*stride=*/n / 4, /*record_live_states=*/true);
    sim->add_observer(recorder);
    const RunResult r = sim->run_until_one_leader(static_cast<StepCount>(n) * 400);
    ASSERT_TRUE(r.converged);
    const std::vector<TrajectoryPoint>& points = recorder.points();
    ASSERT_GE(points.size(), 2U);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].step, points[i - 1].step);
    }
    EXPECT_EQ(points.back().leader_count, 1U);
    EXPECT_GE(points.front().leader_count, points.back().leader_count);
}

TEST(GillespieSimulation, RunToSingleLeaderWithVerificationCertifies) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = 512;
    const RunResult r = registry.run_election_verified(
        "lottery", n, 77, static_cast<StepCount>(n) * n, static_cast<StepCount>(n) * 32,
        EngineKind::gillespie);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.leader_count, 1U);
}

// --- sampler marginals: per-channel firing frequencies ∝ propensities -------

/// Fixed-point race protocol for the sampler-marginal chi-square tests.
/// A deterministic bootstrap drains the uniform initial state U: U×U mints
/// an (A, B) pair, so with odd n the configuration settles at the invariant
/// counts {U: 1, A: (n−1)/2, B: (n−1)/2} — from then on the only non-null
/// channels are four count-preserving swaps, so the channel propensities
/// are constant forever and the per-channel firing frequencies must be
/// exactly multinomial with weights c_a·(c_b − [a = b])·rate(a, b):
///
///   (A,B)→(B,A)  rate 1      (B,A)→(A,B)  rate 2
///   (U,A)→(A,U)  rate 4      (B,U)→(U,B)  rate 8
///
/// With `uniform_rates` every rate is 1 and the expected frequencies reduce
/// to the structural weights — the rate-free control.
struct RaceState {
    std::uint8_t kind = 0;  ///< 0 = U, 1 = A, 2 = B

    friend constexpr bool operator==(const RaceState&, const RaceState&) = default;
};

class RateRace {
public:
    using State = RaceState;

    explicit RateRace(bool uniform_rates = false) : uniform_(uniform_rates) {}

    [[nodiscard]] State initial_state() const noexcept { return State{}; }

    [[nodiscard]] Role output(const State& s) const noexcept {
        return s.kind == 0 ? Role::leader : Role::follower;  // keeps U countable
    }

    void interact(State& a0, State& a1) const noexcept {
        if (a0.kind == 0 && a1.kind == 0) {  // bootstrap: mint an (A, B) pair
            a0.kind = 1;
            a1.kind = 2;
        } else if ((a0.kind == 1 && a1.kind == 2) || (a0.kind == 2 && a1.kind == 1) ||
                   (a0.kind == 0 && a1.kind == 1) || (a0.kind == 2 && a1.kind == 0)) {
            std::swap(a0.kind, a1.kind);  // count-preserving swap channels
        }
    }

    [[nodiscard]] double rate(const State& a, const State& b) const noexcept {
        if (uniform_) return 1.0;
        if (a.kind == 1 && b.kind == 2) return 1.0;
        if (a.kind == 2 && b.kind == 1) return 2.0;
        if (a.kind == 0 && b.kind == 1) return 4.0;
        if (a.kind == 2 && b.kind == 0) return 8.0;
        return 1.0;  // null channels: the rate never matters
    }

    [[nodiscard]] double max_rate() const noexcept { return 8.0; }

    [[nodiscard]] std::string_view name() const noexcept { return "rate_race"; }

    [[nodiscard]] std::uint64_t state_key(const State& s) const noexcept {
        return s.kind;
    }

    [[nodiscard]] std::size_t state_bound() const noexcept { return 3; }

private:
    bool uniform_;
};

static_assert(RatedProtocol<RateRace>);
static_assert(!RatedProtocol<Angluin>);

/// Runs the race to its invariant configuration, tallies `target_events`
/// exact-SSA firings, and returns the chi-square statistic of the observed
/// per-channel frequencies against the expected propensity proportions.
double race_chi_square(bool uniform_rates, std::uint64_t seed,
                       std::uint64_t target_events) {
    const std::size_t n = 9;  // odd: settles at U=1, A=4, B=4
    GillespieEngine<RateRace> engine(RateRace{uniform_rates}, n, seed);
    // Warm up to the invariant configuration (U drained to one agent).
    while (engine.count_of(RaceState{0}) != 1) {
        (void)engine.run_for(64);
    }
    engine.enable_channel_tally();
    const std::uint64_t warm_events = engine.exact_events();
    while (engine.exact_events() < warm_events + target_events) {
        (void)engine.run_for(4096);
    }
    // Expected proportions: weight c_a·(c_b − [a = b])·rate over the four
    // swap channels at counts U=1, A=4, B=4. Keys: U=0, A=1, B=2.
    struct Expected {
        std::uint64_t key_a;
        std::uint64_t key_b;
        double weight;
    };
    const double r1 = uniform_rates ? 1.0 : 1.0;
    const double r2 = uniform_rates ? 1.0 : 2.0;
    const double r3 = uniform_rates ? 1.0 : 4.0;
    const double r4 = uniform_rates ? 1.0 : 8.0;
    const std::vector<Expected> expected = {
        {1, 2, 4.0 * 4.0 * r1},  // (A,B)
        {2, 1, 4.0 * 4.0 * r2},  // (B,A)
        {0, 1, 1.0 * 4.0 * r3},  // (U,A)
        {2, 0, 4.0 * 1.0 * r4},  // (B,U)
    };
    double total_weight = 0.0;
    for (const Expected& e : expected) total_weight += e.weight;

    const std::vector<ChannelFiredCount> tally = engine.channel_tally();
    std::uint64_t observed_total = 0;
    for (const ChannelFiredCount& row : tally) observed_total += row.fired;
    EXPECT_GE(observed_total, target_events);

    double chi_square = 0.0;
    std::size_t matched = 0;
    for (const Expected& e : expected) {
        std::uint64_t fired = 0;
        for (const ChannelFiredCount& row : tally) {
            if (row.initiator_key == e.key_a && row.responder_key == e.key_b) {
                fired = row.fired;
                ++matched;
            }
        }
        const double exp_count =
            static_cast<double>(observed_total) * e.weight / total_weight;
        const double diff = static_cast<double>(fired) - exp_count;
        chi_square += diff * diff / exp_count;
    }
    EXPECT_EQ(matched, expected.size()) << "a race channel never fired";
    EXPECT_EQ(tally.size(), expected.size())
        << "the invariant configuration fired an unexpected channel";
    return chi_square;
}

/// Critical value of chi-square with 3 degrees of freedom at α = 0.001.
/// Seeds are fixed, so these are regression bars (like the KS harness): the
/// committed seeds pass with wide margin, and a mis-weighted channel draw
/// (e.g. rates ignored, or applied squared) drives the statistic into the
/// thousands at these sample sizes.
constexpr double chi_square_3df_crit = 16.27;

TEST(GillespieRates, ChannelFiringFrequenciesMatchRateWeightedPropensities) {
    EXPECT_LT(race_chi_square(/*uniform_rates=*/false, 2019, 40000),
              chi_square_3df_crit);
    EXPECT_LT(race_chi_square(/*uniform_rates=*/false, 7, 40000),
              chi_square_3df_crit);
}

TEST(GillespieRates, UniformRatesReduceToStructuralWeights) {
    EXPECT_LT(race_chi_square(/*uniform_rates=*/true, 2019, 40000),
              chi_square_3df_crit);
}

TEST(GillespieRates, RateZeroChannelsNeverFire) {
    // A rate can be zero: the channel is then excluded from the propensity
    // sum and must never fire. Freeze the race's (A,B) channel.
    class FrozenRace : public RateRace {
    public:
        using RateRace::RateRace;
        [[nodiscard]] double rate(const RaceState& a, const RaceState& b) const noexcept {
            if (a.kind == 1 && b.kind == 2) return 0.0;
            return RateRace::rate(a, b);
        }
    };
    static_assert(RatedProtocol<FrozenRace>);
    GillespieEngine<FrozenRace> engine(FrozenRace{}, 9, 11);
    while (engine.count_of(RaceState{0}) != 1) {
        (void)engine.run_for(64);
    }
    engine.enable_channel_tally();
    (void)engine.run_for(200000);
    for (const ChannelFiredCount& row : engine.channel_tally()) {
        EXPECT_FALSE(row.initiator_key == 1 && row.responder_key == 2)
            << "rate-zero channel fired " << row.fired << " times";
    }
}

}  // namespace
}  // namespace ppsim
