// Golden-seed regression tests: exact stabilisation step counts pinned for
// one fixed seed per (protocol × engine × batch-mode) cell at a small n.
//
// Each engine's seeded replay semantics — which PRNG draws happen in which
// order — is part of its reproducibility contract: BENCH_engine.json rows,
// the KS harness seeds and every documented example depend on it. A change
// to a sampler's draw order, a pairing strategy's column sort, the leap
// dispatch thresholds or the scheduler's fast path silently shifts every
// seeded run; these pins make that shift loud instead. An *intentional*
// semantics change (a new sampler regime, a retuned threshold) is expected
// to update these constants — the point is that it happens knowingly, in
// the same commit, rather than as an invisible side effect.
//
// The step counts are NOT distributional claims (the statistical-agreement
// harness in test_statistical.cpp owns those); engines legitimately differ
// per seed, which is why each cell pins its own value.
//
// Platform assumption: the batched and gillespie cells consume PRNG draws
// through samplers whose accept/reject decisions evaluate libm functions
// (log/log1p/exp in the hypergeometric, binomial and geometric samplers),
// so the pinned values assume one libm — glibc, the libm of every CI job
// (gcc and clang both link it on ubuntu, and the sanitizer job reproduces
// the same values). A different libm (musl, Apple) may flip a last-ulp
// accept/reject and shift the draw stream; on such a platform, regenerate
// the table rather than treating a mismatch as an engine bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/batch_pairing.hpp"
#include "core/calibration.hpp"
#include "core/engine.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

/// Restores the ambient hybrid options on scope exit (process-global state).
class ScopedHybridOptions {
public:
    ScopedHybridOptions() : saved_(hybrid_options()) {}
    ~ScopedHybridOptions() { set_hybrid_options(saved_); }

private:
    HybridOptions saved_;
};

/// The fixed calibration table of the hybrid golden cells. Hybrid mode
/// decisions come from a measured per-machine cost model, so a pinned
/// hybrid replay is only defined for a pinned table: this one makes
/// batched-bulk the wide-phase winner and gillespie the null-dominated-tail
/// winner (with agent never competitive), deterministically on every
/// machine. Changing these constants changes the decisions and therefore
/// the pins below — update both together.
CalibrationTable golden_hybrid_table() {
    CalibrationTable table;
    const auto set = [&table](HybridMode m, double wide, double narrow) {
        ModeCost& cost = table.costs[static_cast<std::size_t>(m)];
        cost.wide_ns = wide;
        cost.narrow_ns = narrow;
        cost.wide_exponent = 0.0;
        cost.narrow_exponent = 0.0;
    };
    set(HybridMode::agent, 40.0, 40.0);
    set(HybridMode::batched_pairwise, 10.0, 30.0);
    set(HybridMode::batched_bulk, 8.0, 25.0);
    set(HybridMode::gillespie, 30.0, 2.0);
    table.probe_population = 0;  // raw anchors: no population rescaling
    table.threads = 1;
    return table;
}

struct GoldenRun {
    const char* protocol;
    EngineKind engine;
    BatchMode batch_mode;
    std::uint64_t stabilization_step;
};

// All cells: n = 128, seed = 2019, budget = 50·n² (every run converges).
constexpr GoldenRun golden_runs[] = {
    {"angluin06", EngineKind::agent, BatchMode::automatic, 22269ULL},
    {"angluin06", EngineKind::batched, BatchMode::automatic, 54877ULL},
    {"angluin06", EngineKind::batched, BatchMode::pairwise, 12299ULL},
    {"angluin06", EngineKind::batched, BatchMode::bulk, 51111ULL},
    {"angluin06", EngineKind::gillespie, BatchMode::automatic, 15103ULL},
    {"lottery", EngineKind::agent, BatchMode::automatic, 1138ULL},
    {"lottery", EngineKind::batched, BatchMode::automatic, 1234ULL},
    {"lottery", EngineKind::batched, BatchMode::pairwise, 1388ULL},
    {"lottery", EngineKind::batched, BatchMode::bulk, 1174ULL},
    {"lottery", EngineKind::gillespie, BatchMode::automatic, 830ULL},
    {"pll", EngineKind::agent, BatchMode::automatic, 770ULL},
    {"pll", EngineKind::batched, BatchMode::automatic, 15654ULL},
    {"pll", EngineKind::batched, BatchMode::pairwise, 797ULL},
    {"pll", EngineKind::batched, BatchMode::bulk, 1250ULL},
    {"pll", EngineKind::gillespie, BatchMode::automatic, 16354ULL},
    {"pll_symmetric", EngineKind::agent, BatchMode::automatic, 33708ULL},
    {"pll_symmetric", EngineKind::batched, BatchMode::automatic, 16602ULL},
    {"pll_symmetric", EngineKind::gillespie, BatchMode::automatic, 32938ULL},
    {"mst18_style", EngineKind::agent, BatchMode::automatic, 2611ULL},
    {"mst18_style", EngineKind::gillespie, BatchMode::automatic, 2347ULL},
    // Hybrid cells replay under golden_hybrid_table() — segment 0 runs on
    // the hybrid segment stream (derive_seed(seed, hybrid_segment_tag)), so
    // these values differ from the fixed-engine cells by design.
    {"angluin06", EngineKind::hybrid, BatchMode::automatic, 22026ULL},
    {"lottery", EngineKind::hybrid, BatchMode::automatic, 971ULL},
    {"pll", EngineKind::hybrid, BatchMode::automatic, 910ULL},
    {"pll_symmetric", EngineKind::hybrid, BatchMode::automatic, 670ULL},
};

class GoldenSeedReplay : public ::testing::TestWithParam<GoldenRun> {};

TEST_P(GoldenSeedReplay, StabilizationStepIsPinned) {
    const GoldenRun& run = GetParam();
    ScopedHybridOptions guard;
    if (run.engine == EngineKind::hybrid) {
        HybridOptions options;
        options.injected = golden_hybrid_table();
        set_hybrid_options(options);
    }
    const std::size_t n = 128;
    const RunResult result = ProtocolRegistry::instance().run_election(
        run.protocol, n, /*seed=*/2019, /*max_steps=*/static_cast<StepCount>(n) * n * 50,
        run.engine, run.batch_mode);
    ASSERT_TRUE(result.converged) << "golden run no longer converges";
    ASSERT_TRUE(result.stabilization_step.has_value());
    EXPECT_EQ(*result.stabilization_step, run.stabilization_step)
        << "seeded replay semantics changed for " << run.protocol << " on "
        << to_string(run.engine) << "/" << to_string(run.batch_mode)
        << " — if the change is intentional, update this table in the same commit";
}

std::string golden_name(const ::testing::TestParamInfo<GoldenRun>& info) {
    return std::string(info.param.protocol) + "_" +
           std::string(to_string(info.param.engine)) + "_" +
           std::string(to_string(info.param.batch_mode));
}

INSTANTIATE_TEST_SUITE_P(Cells, GoldenSeedReplay, ::testing::ValuesIn(golden_runs),
                         golden_name);

}  // namespace
}  // namespace ppsim
