// Tests for the adaptive hybrid meta-engine (core/hybrid_engine.hpp): the
// pure mode decision (argmin + hysteresis + tie-break), the probe-population
// bucketing, the census-handoff primitive on every inner engine, the
// forced-switch harness (count conservation, seeded determinism, observer
// continuity across a mid-run switch), adaptive switching under an injected
// cost table, KS agreement of hybrid vs gillespie stabilisation-time
// distributions in the leap regime, and a generous-slack throughput
// assertion (suite HybridBenchAssertion — wall-clock sensitive, so it is
// deliberately kept out of the sanitizer CI regexes).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "core/calibration.hpp"
#include "core/hybrid_engine.hpp"
#include "core/observer.hpp"
#include "core/random.hpp"
#include "core/simulation.hpp"
#include "core/stats.hpp"
#include "protocols/angluin.hpp"
#include "protocols/pll.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

/// Restores the ambient hybrid options on scope exit (every test in this
/// binary shares one process).
class ScopedHybridOptions {
public:
    ScopedHybridOptions() : saved_(hybrid_options()) {}
    ~ScopedHybridOptions() { set_hybrid_options(saved_); }

private:
    HybridOptions saved_;
};

/// A calibration table with explicit per-mode anchors, in HybridMode order:
/// {agent, batched_pairwise, batched_bulk, gillespie}.
CalibrationTable table_of(std::array<double, hybrid_mode_count> wide,
                          std::array<double, hybrid_mode_count> narrow) {
    CalibrationTable table;
    for (std::size_t m = 0; m < hybrid_mode_count; ++m) {
        table.costs[m].wide_ns = wide[m];
        table.costs[m].narrow_ns = narrow[m];
    }
    table.probe_population = 4096;
    table.threads = 1;
    return table;
}

/// Installs `table` as the injected ambient calibration, so every hybrid
/// engine built in the scope takes machine-independent decisions.
void inject(const CalibrationTable& table) {
    HybridOptions options;
    options.injected = table;
    set_hybrid_options(options);
}

// --- the pure decision model ------------------------------------------------

TEST(HybridEngine, ChooseModePicksTheCheapestAnchor) {
    // Wide profile (z = 0): only wide_ns matters; narrow profile (z = 1):
    // only narrow_ns matters.
    const CalibrationTable table =
        table_of({50.0, 10.0, 20.0, 400.0}, {50.0, 100.0, 100.0, 2.0});
    PhaseFeatures wide;
    wide.null_mass = 0.0;
    EXPECT_EQ(choose_mode(table, wide, HybridMode::agent),
              HybridMode::batched_pairwise);
    PhaseFeatures narrow;
    narrow.null_mass = 1.0;
    EXPECT_EQ(choose_mode(table, narrow, HybridMode::agent), HybridMode::gillespie);
}

TEST(HybridEngine, ChooseModeInterpolatesGeometrically) {
    // At z = 0.5 the predicted cost is the geometric mean of the anchors:
    // √(400·2) ≈ 28.3 beats √(10·100) ≈ 31.6, so gillespie wins at the
    // midpoint even though it loses badly at the wide end.
    const CalibrationTable table =
        table_of({1000.0, 10.0, 1000.0, 400.0}, {1000.0, 100.0, 1000.0, 2.0});
    PhaseFeatures mid;
    mid.null_mass = 0.5;
    EXPECT_EQ(choose_mode(table, mid, HybridMode::gillespie, /*hysteresis=*/1.0),
              HybridMode::gillespie);
}

TEST(HybridEngine, ChooseModeHysteresisKeepsNearTies) {
    // batched_bulk is 1.5× the best — below the 2× hysteresis bar, so the
    // incumbent stands; at 2.5× it must move.
    const CalibrationTable near_tie =
        table_of({15.0, 10.0, 15.0, 100.0}, {15.0, 10.0, 15.0, 100.0});
    PhaseFeatures f;
    EXPECT_EQ(choose_mode(near_tie, f, HybridMode::batched_bulk),
              HybridMode::batched_bulk);
    const CalibrationTable clear_win =
        table_of({25.0, 10.0, 25.0, 100.0}, {25.0, 10.0, 25.0, 100.0});
    EXPECT_EQ(choose_mode(clear_win, f, HybridMode::batched_bulk),
              HybridMode::batched_pairwise);
}

TEST(HybridEngine, ChooseModeTieBreaksTowardLowestIndex) {
    // agent and gillespie are exactly tied and both far cheaper than the
    // incumbent: the decision must be deterministic — lowest mode index.
    const CalibrationTable table =
        table_of({10.0, 100.0, 100.0, 10.0}, {10.0, 100.0, 100.0, 10.0});
    PhaseFeatures f;
    EXPECT_EQ(choose_mode(table, f, HybridMode::batched_bulk), HybridMode::agent);
}

TEST(HybridEngine, ChooseModeExtrapolatesWithPopulationScale) {
    // agent is the cheapest raw anchor, but its cost is flat in n while
    // batched_pairwise amortises (exponent −0.5): at 256× the probe
    // population the extrapolated batched cost 80·256^−0.5 = 5 beats
    // agent's 20 by the 2× hysteresis bar, so the decision flips — and at
    // scale 1 the raw anchors still stand.
    CalibrationTable table =
        table_of({20.0, 80.0, 500.0, 500.0}, {20.0, 80.0, 500.0, 500.0});
    table.costs[1].wide_exponent = -0.5;
    table.costs[1].narrow_exponent = -0.5;
    PhaseFeatures f;
    EXPECT_EQ(choose_mode(table, f, HybridMode::agent), HybridMode::agent);
    EXPECT_EQ(choose_mode(table, f, HybridMode::agent, hybrid_hysteresis,
                          /*scale=*/256.0),
              HybridMode::batched_pairwise);
    EXPECT_DOUBLE_EQ(predicted_mode_ns(table.costs[1], 0.0, 256.0), 5.0);
}

TEST(HybridEngine, ProbePopulationBuckets) {
    EXPECT_EQ(probe_population_for(2), 4096U);
    EXPECT_EQ(probe_population_for(4096), 4096U);
    EXPECT_EQ(probe_population_for(5000), 4096U);
    EXPECT_EQ(probe_population_for(8192), 8192U);
    EXPECT_EQ(probe_population_for(9000), 8192U);
    EXPECT_EQ(probe_population_for(32768), 32768U);
    EXPECT_EQ(probe_population_for(std::size_t{1} << 20U), 32768U);
}

// --- the census-handoff primitive -------------------------------------------

/// The handoff source: a batched pll run that has narrowed a little.
std::vector<std::pair<PllState, std::uint64_t>> pll_census_after(
    std::size_t n, StepCount steps) {
    BatchedEngine<Pll> source(Pll::for_population(n), n, 99);
    (void)source.run_for(steps);
    std::vector<std::pair<PllState, std::uint64_t>> census;
    source.visit_counts([&census](const PllState& s, std::uint64_t c, Role) {
        census.emplace_back(s, c);
    });
    return census;
}

template <typename EngineT>
void expect_adoption_holds(EngineT& engine, std::size_t n,
                           const std::vector<std::pair<PllState, std::uint64_t>>& census,
                           std::uint64_t expected_leaders) {
    engine.adopt_census(census, /*steps=*/12345, /*stabilization_step=*/std::nullopt);
    EXPECT_EQ(engine.steps(), 12345U);
    EXPECT_EQ(engine.recount_leaders(), expected_leaders);
    EXPECT_EQ(engine.population_size(), n);
    // The adopted configuration keeps evolving: a short continuation must
    // conserve the population.
    (void)engine.run_for(1000);
    if constexpr (requires { engine.visit_counts([](auto&&...) {}); }) {
        std::uint64_t total = 0;
        engine.visit_counts(
            [&total](const PllState&, std::uint64_t c, Role) { total += c; });
        EXPECT_EQ(total, n);
    } else {
        EXPECT_EQ(engine.population_size(), n);  // agent engine: a state vector
    }
}

TEST(HybridEngine, AdoptCensusConservesOnEveryEngine) {
    const std::size_t n = 512;
    const auto census = pll_census_after(n, static_cast<StepCount>(8 * n));
    std::uint64_t total = 0;
    std::uint64_t leaders = 0;
    const Pll proto = Pll::for_population(n);
    for (const auto& [state, count] : census) {
        total += count;
        if (proto.output(state) == Role::leader) leaders += count;
    }
    ASSERT_EQ(total, n);

    Engine<Pll> agent(proto, n, 1);
    expect_adoption_holds(agent, n, census, leaders);
    BatchedEngine<Pll> batched(proto, n, 1, BatchMode::automatic, 1);
    expect_adoption_holds(batched, n, census, leaders);
    GillespieEngine<Pll> gillespie(proto, n, 1, 1);
    expect_adoption_holds(gillespie, n, census, leaders);
}

TEST(HybridEngine, AdoptCensusRejectsNonConservingCensus) {
    const std::size_t n = 64;
    const Pll proto = Pll::for_population(n);
    std::vector<std::pair<PllState, std::uint64_t>> short_census;
    short_census.emplace_back(proto.initial_state(), n - 1);
    Engine<Pll> agent(proto, n, 1);
    EXPECT_THROW(agent.adopt_census(short_census, 0, std::nullopt), InvalidArgument);
    BatchedEngine<Pll> batched(proto, n, 1, BatchMode::automatic, 1);
    EXPECT_THROW(batched.adopt_census(short_census, 0, std::nullopt), InvalidArgument);
    GillespieEngine<Pll> gillespie(proto, n, 1, 1);
    EXPECT_THROW(gillespie.adopt_census(short_census, 0, std::nullopt),
                 InvalidArgument);
}

// --- forced mid-run switching -----------------------------------------------

TEST(HybridEngine, ForcedSwitchConservesCountsThroughEveryMode) {
    ScopedHybridOptions restore;
    // Pin the initial pick to batched_bulk so the walk below visits every
    // other mode via a real census handoff.
    inject(table_of({100.0, 100.0, 1.0, 100.0}, {100.0, 100.0, 1.0, 100.0}));

    const std::size_t n = 512;
    HybridEngine<Pll> engine(Pll::for_population(n), n, 2026);
    ASSERT_EQ(engine.mode(), HybridMode::batched_bulk);

    const std::array<HybridMode, 3> walk = {
        HybridMode::agent, HybridMode::gillespie, HybridMode::batched_pairwise};
    StepCount last_steps = 0;
    std::size_t expected_switches = 0;
    for (const HybridMode m : walk) {
        (void)engine.run_for(static_cast<StepCount>(4 * n));
        engine.force_mode(m);
        ++expected_switches;
        EXPECT_EQ(engine.mode(), m);
        EXPECT_EQ(engine.switches(), expected_switches);
        // The handoff transfers the configuration and the clock exactly.
        EXPECT_EQ(engine.total_count(), n);
        EXPECT_GT(engine.steps(), last_steps);
        last_steps = engine.steps();
        EXPECT_EQ(engine.recount_leaders(), engine.leader_count());
    }
    // The multi-segment run still elects a single leader.
    const RunResult result =
        engine.run_until_one_leader(static_cast<StepCount>(n) * n * 50);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(engine.leader_count(), 1U);
    EXPECT_EQ(engine.total_count(), n);
}

TEST(HybridEngine, ForcedSwitchScheduleIsSeededDeterministic) {
    ScopedHybridOptions restore;
    inject(table_of({100.0, 1.0, 100.0, 100.0}, {100.0, 1.0, 100.0, 100.0}));

    const std::size_t n = 256;
    const auto run_schedule = [n] {
        HybridEngine<Pll> engine(Pll::for_population(n), n, 77);
        (void)engine.run_for(static_cast<StepCount>(3 * n));
        engine.force_mode(HybridMode::gillespie);
        (void)engine.run_for(static_cast<StepCount>(3 * n));
        engine.force_mode(HybridMode::agent);
        (void)engine.run_for(static_cast<StepCount>(3 * n));
        return engine.collect_census();
    };
    const auto a = run_schedule();
    const auto b = run_schedule();
    ASSERT_EQ(a.size(), b.size());
    const Pll proto = Pll::for_population(n);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(state_key_of(proto, a[i].first), state_key_of(proto, b[i].first));
        EXPECT_EQ(a[i].second, b[i].second);
    }
}

TEST(HybridEngine, DeadlineObserverFiresExactlyOnceAcrossForcedSwitch) {
    ScopedHybridOptions restore;
    inject(table_of({100.0, 100.0, 1.0, 100.0}, {100.0, 100.0, 1.0, 100.0}));

    const std::size_t n = 256;
    detail::HybridSimulation<Pll> sim(Pll::for_population(n), n, 5, /*threads=*/1);
    DeadlineObserver deadline(/*model_time=*/4.0, n);
    sim.add_observer(deadline);

    // Run to model time 2, switch modes, run past the deadline: the observer
    // must see one continuous run and fire exactly once, at exactly step 4n.
    (void)sim.run_for(static_cast<StepCount>(2 * n));
    ASSERT_FALSE(deadline.report().has_value());
    sim.engine().force_mode(HybridMode::gillespie);
    (void)sim.run_for(static_cast<StepCount>(6 * n));
    ASSERT_TRUE(deadline.report().has_value());
    EXPECT_TRUE(deadline.report()->reached_deadline);
    EXPECT_EQ(deadline.report()->step, static_cast<StepCount>(4 * n));
    EXPECT_EQ(sim.steps(), static_cast<StepCount>(8 * n));
    EXPECT_GE(sim.engine().switches(), 1U);
}

// --- adaptive switching under an injected cost table ------------------------

TEST(HybridEngine, SwitchesFromWideToNarrowModeAsTheRunAbsorbs) {
    ScopedHybridOptions restore;
    // Wide anchor: batched_bulk is cheapest, so the all-initial (z ≈ 0)
    // profile starts there. Narrow anchor: gillespie is 20× cheaper, far
    // past the 2× hysteresis — so once angluin06's tail turns null-dominated
    // (two/three live states, most pairs inert), the engine must hand over.
    inject(table_of({100.0, 50.0, 10.0, 200.0}, {100.0, 50.0, 40.0, 2.0}));

    const std::size_t n = 4096;
    HybridEngine<Angluin> engine(Angluin{}, n, 9);
    ASSERT_EQ(engine.mode(), HybridMode::batched_bulk);
    const RunResult result =
        engine.run_until_one_leader(static_cast<StepCount>(n) * n * 50);
    ASSERT_TRUE(result.converged);
    EXPECT_GE(engine.switches(), 1U);
    EXPECT_EQ(engine.mode(), HybridMode::gillespie);
    EXPECT_EQ(engine.total_count(), n);
    EXPECT_EQ(engine.leader_count(), 1U);
}

// --- distributional agreement in the leap regime ----------------------------

/// Stabilisation times (parallel-time units) of seeded elections, mirroring
/// test_statistical.cpp's harness.
std::vector<double> stabilization_times(const std::string& protocol, std::size_t n,
                                        EngineKind engine, int reps,
                                        std::uint64_t seed_root, StepCount budget) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        const RunResult r = registry.run_election(protocol, n, derive_seed(seed_root, i),
                                                  budget, engine);
        if (!r.converged || !r.stabilization_step) {
            ADD_FAILURE() << protocol << " rep " << i << " on " << to_string(engine)
                          << " missed the budget";
            return {};
        }
        out.push_back(r.stabilization_parallel_time(n));
    }
    return out;
}

constexpr double ks_alpha = 0.001;

void expect_hybrid_agreement(const std::string& protocol, std::size_t n, int reps,
                             StepCount budget, std::uint64_t root_hybrid,
                             std::uint64_t root_gillespie) {
    std::vector<double> a = stabilization_times(protocol, n, EngineKind::hybrid, reps,
                                                root_hybrid, budget);
    std::vector<double> b = stabilization_times(protocol, n, EngineKind::gillespie,
                                                reps, root_gillespie, budget);
    if (a.empty() || b.empty()) return;  // helper already failed the test
    const KsTestResult ks = ks_two_sample(a, b);
    EXPECT_GE(ks.p_value, ks_alpha)
        << protocol << " @ n=" << n << ": hybrid vs gillespie disagree (D="
        << ks.statistic << ", p=" << ks.p_value << ")";
}

TEST(HybridStatisticalAgreement, PllHybridMatchesGillespieAt8192) {
    ScopedHybridOptions restore;
    // Injected table so the decisions are machine-independent and the
    // p-values deterministic: pll's profile never turns null-dominated, so
    // the hybrid run stays on its wide pick (batched pairwise) — the
    // agreement bounds the batched-vs-τ-leap gap through the hybrid stack.
    inject(table_of({100.0, 10.0, 50.0, 200.0}, {100.0, 40.0, 50.0, 2.0}));
    const std::size_t n = 8192;
    expect_hybrid_agreement("pll", n, 120, static_cast<StepCount>(n) * n * 4, 401,
                            402);
}

TEST(HybridStatisticalAgreement, RatedEpidemicHybridMatchesGillespieAt8192) {
    ScopedHybridOptions restore;
    // rated_epidemic narrows to three null-dominated states early, so with
    // this table every hybrid run genuinely switches mid-run (bulk →
    // gillespie): the agreement also covers the adopt_census handoff and the
    // per-segment stream split statistically.
    inject(table_of({100.0, 50.0, 10.0, 200.0}, {100.0, 50.0, 40.0, 2.0}));
    const std::size_t n = 8192;
    expect_hybrid_agreement("rated_epidemic", n, 60,
                            static_cast<StepCount>(n) * n * 16, 411, 412);
}

// --- throughput assertion (generous slack; not run under sanitizers) --------

TEST(HybridBenchAssertion, HybridIsCompetitiveWithTheBestFixedEngineOnPll) {
    ScopedHybridOptions restore;
    // Real calibration (probe runs), isolated from any user cache.
    HybridOptions options;
    options.recalibrate = true;
    set_hybrid_options(options);

    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    const std::size_t n = std::size_t{1} << 16U;
    const auto steps = static_cast<StepCount>(16 * n);
    const auto rate_of = [&](EngineKind kind) {
        // Warm-up build absorbs one-off costs (hybrid's calibration probes).
        (void)registry.make_simulation("pll", n, 0xABC, kind);
        double seconds = 0.0;
        StepCount executed = 0;
        std::uint64_t seed = 0xABC;
        while (seconds < 0.25) {
            const auto sim = registry.make_simulation("pll", n, seed++, kind);
            const auto start = std::chrono::steady_clock::now();
            const RunResult r = sim->run_for(steps);
            const auto stop = std::chrono::steady_clock::now();
            executed += r.steps;
            seconds += std::chrono::duration<double>(stop - start).count();
        }
        return static_cast<double>(executed) / seconds;
    };

    const double best_fixed =
        std::max({rate_of(EngineKind::agent), rate_of(EngineKind::batched),
                  rate_of(EngineKind::gillespie)});
    const double hybrid = rate_of(EngineKind::hybrid);
    // Generous slack: the regenerated BENCH_engine.json rows pin hybrid at
    // ≥ 0.9× the best fixed engine; this ctest bar only guards against the
    // meta-engine pathologically mis-picking (e.g. agent mode at n = 65536,
    // which would land around 0.05×). Wall-clock noise safe at 0.4×.
    EXPECT_GE(hybrid, 0.4 * best_fixed)
        << "hybrid " << hybrid << " int/s vs best fixed " << best_fixed << " int/s";
}

// --- the engine-table error path --------------------------------------------

TEST(HybridEngine, ParseEngineKindErrorListsEveryValidEngine) {
    try {
        (void)parse_engine_kind("warp-drive");
        FAIL() << "parse_engine_kind accepted an unknown engine";
    } catch (const InvalidArgument& e) {
        const std::string message = e.what();
        for (const EngineDescriptor& d : engine_table) {
            EXPECT_NE(message.find(d.name), std::string::npos)
                << "error message misses engine '" << d.name << "': " << message;
        }
    }
}

}  // namespace
}  // namespace ppsim
