// Tests for the junta-driven phase clock substrate (protocols/junta_clock.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "protocols/junta_clock.hpp"

namespace ppsim {
namespace {

TEST(JuntaClock, ValidatesParameters) {
    EXPECT_THROW(JuntaPhaseClock(0, 8), InvalidArgument);
    EXPECT_THROW(JuntaPhaseClock(31, 8), InvalidArgument);
    EXPECT_THROW(JuntaPhaseClock(3, 3), InvalidArgument);
    EXPECT_NO_THROW(JuntaPhaseClock(3, 8));
}

TEST(JuntaClock, ForPopulationShape) {
    const JuntaPhaseClock clock = JuntaPhaseClock::for_population(1024);
    EXPECT_EQ(clock.threshold(), ceil_log2(10) + 2);  // ⌈lg lg n⌉ + 2 = 6
    EXPECT_EQ(clock.period(), 8U * 10U + 1U);
    EXPECT_EQ(clock.period() % 2, 1U) << "period must be odd (no half-period tie)";
}

TEST(JuntaClock, RaceAdmitsOnThresholdHeads) {
    const JuntaPhaseClock clock(2, 8);
    JuntaClockState racer;
    JuntaClockState other;
    other.racing = false;
    // Two heads in a row (always the initiator) reach the threshold.
    clock.interact(racer, other);
    EXPECT_TRUE(racer.racing);
    EXPECT_FALSE(racer.junta);
    clock.interact(racer, other);
    EXPECT_FALSE(racer.racing);
    EXPECT_TRUE(racer.junta);
}

TEST(JuntaClock, TailEndsTheRaceWithoutAdmission) {
    const JuntaPhaseClock clock(2, 8);
    JuntaClockState racer;
    JuntaClockState other;
    other.racing = false;
    clock.interact(other, racer);  // responder: tail
    EXPECT_FALSE(racer.racing);
    EXPECT_FALSE(racer.junta);
    EXPECT_EQ(racer.level, 0);
}

TEST(JuntaClock, JuntaMembersDriveTheClock) {
    const JuntaPhaseClock clock(2, 5);
    JuntaClockState driver;
    driver.racing = false;
    driver.junta = true;
    JuntaClockState partner;  // persists, so it is dragged along realistically
    partner.racing = false;
    for (int i = 0; i < 5; ++i) {
        clock.interact(partner, driver);  // driver responds ⇒ advances
    }
    EXPECT_EQ(driver.position, 0);
    EXPECT_EQ(driver.rounds, 1);
    // Non-members never self-advance: they only adopt.
    JuntaClockState fresh;
    fresh.racing = false;
    fresh.position = driver.position;
    clock.interact(driver, fresh);
    EXPECT_EQ(fresh.position, driver.position);
    EXPECT_EQ(fresh.rounds, 0);
}

TEST(JuntaClock, PositionsPropagateToNonMembers) {
    const JuntaPhaseClock clock(2, 8);
    JuntaClockState ahead;
    ahead.racing = false;
    ahead.position = 3;
    JuntaClockState behind;
    behind.racing = false;
    clock.interact(ahead, behind);
    EXPECT_EQ(behind.position, 3);
}

TEST(JuntaClock, JuntaSizeConcentratesAroundExpectation) {
    // E[#junta] = n / 2^θ; check within a factor of 3 either way across
    // seeds (binomial concentration makes larger deviations vanishing).
    const std::size_t n = 4096;
    const JuntaPhaseClock clock = JuntaPhaseClock::for_population(n);
    const double expected =
        static_cast<double>(n) / std::exp2(static_cast<double>(clock.threshold()));
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        Engine<JuntaPhaseClock> engine(clock, n, seed);
        // The race finishes after every agent's first tail — a few parallel
        // time units; run 20 to be safe.
        engine.run_for(20 * static_cast<StepCount>(n));
        std::size_t junta = 0;
        std::size_t racing = 0;
        for (const JuntaClockState& s : engine.population().states()) {
            junta += s.junta ? 1 : 0;
            racing += s.racing ? 1 : 0;
        }
        EXPECT_EQ(racing, 0U) << "race unfinished after 20 parallel time units";
        EXPECT_GT(static_cast<double>(junta), expected / 3.0);
        EXPECT_LT(static_cast<double>(junta), expected * 3.0);
    }
}

TEST(JuntaClock, LeaderlessRoundsProgress) {
    const std::size_t n = 1024;
    Engine<JuntaPhaseClock> engine(JuntaPhaseClock::for_population(n), n, 9);
    const unsigned period = engine.protocol().period();
    // Expected drivers ≈ n/2^θ; each advances on ~half its interactions, so
    // a round costs about period·2 parallel time for the fastest driver.
    engine.run_for(static_cast<StepCount>(8) * period * n);
    std::uint16_t max_rounds = 0;
    for (const JuntaClockState& s : engine.population().states()) {
        max_rounds = std::max(max_rounds, s.rounds);
    }
    EXPECT_GE(max_rounds, 1U) << "no junta member completed a round";
}

TEST(JuntaClock, PopulationStaysWithinHalfAPeriod) {
    // The synchronisation property that makes the clock usable: positions
    // cluster within half a period of the maximum (checked at several
    // instants after the race settles).
    const std::size_t n = 512;
    Engine<JuntaPhaseClock> engine(JuntaPhaseClock::for_population(n), n, 4);
    const JuntaPhaseClock& clock = engine.protocol();
    engine.run_for(30 * static_cast<StepCount>(n));
    for (int checkpoint = 0; checkpoint < 10; ++checkpoint) {
        engine.run_for(10 * static_cast<StepCount>(n));
        // Find the most advanced position, then require every agent to be
        // within half a period behind it.
        std::uint16_t front = engine.population()[0].position;
        for (const JuntaClockState& s : engine.population().states()) {
            if (clock.is_ahead(s.position, front)) front = s.position;
        }
        std::size_t stragglers = 0;
        for (const JuntaClockState& s : engine.population().states()) {
            const unsigned lag =
                (front + clock.period() - s.position) % clock.period();
            stragglers += lag > clock.period() / 2 ? 1 : 0;
        }
        EXPECT_EQ(stragglers, 0U) << "agents fell behind the clock";
    }
}

}  // namespace
}  // namespace ppsim
