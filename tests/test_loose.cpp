// Tests for the loosely-stabilising protocol [Sud+12]: recovery from
// adversarial configurations and long holding times — behaviours outside
// PLL's contract that motivate its design trade-off.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "protocols/loose.hpp"

namespace ppsim {
namespace {

TEST(Loose, ValidatesConstruction) {
    EXPECT_THROW(LooselyStabilizing(1), InvalidArgument);
    EXPECT_NO_THROW(LooselyStabilizing(2));
    EXPECT_EQ(LooselyStabilizing::for_population(1024).t_max(), 160U);
}

TEST(Loose, HeartbeatEpidemicAgesByOne) {
    const LooselyStabilizing proto(10);
    LooseState high;
    high.timer = 7;
    LooseState low;
    low.timer = 2;
    proto.interact(high, low);
    EXPECT_EQ(high.timer, 6);
    EXPECT_EQ(low.timer, 6);
}

TEST(Loose, LeaderRearmsItsTimer) {
    const LooselyStabilizing proto(10);
    LooseState leader;
    leader.leader = true;
    leader.timer = 3;
    LooseState follower;
    follower.timer = 1;
    proto.interact(leader, follower);
    EXPECT_EQ(leader.timer, 10);
    EXPECT_EQ(follower.timer, 2);  // max(3,1)−1, not re-armed
}

TEST(Loose, TimeoutPromotesDrainedFollower) {
    const LooselyStabilizing proto(10);
    LooseState a;
    a.timer = 0;
    LooseState b;
    b.timer = 1;
    proto.interact(a, b);
    // Shared aged timer is 0 ⇒ both time out and step up; the leader-pair
    // rule then drops the responder, leaving exactly one fresh leader.
    EXPECT_TRUE(a.leader);
    EXPECT_FALSE(b.leader);
    EXPECT_EQ(a.timer, 10);
}

TEST(Loose, TwoLeadersReduceToOne) {
    const LooselyStabilizing proto(10);
    LooseState u;
    u.leader = true;
    LooseState v;
    v.leader = true;
    proto.interact(u, v);
    EXPECT_TRUE(u.leader);
    EXPECT_FALSE(v.leader);
}

/// Seeds an adversarial configuration and expects recovery: after a warm-up
/// in which the heartbeat saturates (transient flapping is expected and
/// allowed — that *is* the recovery), the population holds exactly one
/// leader through a long quiet window.
void expect_recovery(Engine<LooselyStabilizing>& engine) {
    const std::size_t n = engine.population_size();
    const StepCount tmax_n =
        static_cast<StepCount>(engine.protocol().t_max()) * static_cast<StepCount>(n);
    // Warm-up: O(t_max) parallel time for timer drain + heartbeat spread,
    // plus O(n) parallel time for leader coalescence from the worst case.
    engine.run_for(10 * tmax_n + static_cast<StepCount>(n) * n);
    ASSERT_EQ(engine.leader_count(), 1U) << "not recovered after warm-up";
    // Holding: with t_max = 16·lg n the timeout probability per window is
    // astronomically small; 50n steps of quiet is a conservative check.
    std::size_t changes = 0;
    for (StepCount i = 0; i < 50 * static_cast<StepCount>(n); ++i) {
        const std::size_t before = engine.leader_count();
        engine.step();
        changes += engine.leader_count() != before ? 1 : 0;
    }
    EXPECT_EQ(changes, 0U) << "leader flapped during the holding window";
}

TEST(LooseRecovery, FromCleanAllZero) {
    const std::size_t n = 256;
    Engine<LooselyStabilizing> engine(LooselyStabilizing::for_population(n), n, 1);
    expect_recovery(engine);
}

TEST(LooseRecovery, FromAllLeaders) {
    const std::size_t n = 256;
    Engine<LooselyStabilizing> engine(LooselyStabilizing::for_population(n), n, 2);
    for (auto& s : engine.population().states()) {
        s.leader = true;
        s.timer = engine.protocol().t_max();
    }
    engine.recount_leaders();
    expect_recovery(engine);
}

TEST(LooseRecovery, FromLeaderlessFullTimers) {
    // The adversarial case PLL cannot handle: no leader anywhere and timers
    // fully charged — the timeout must fire after the timers drain.
    const std::size_t n = 256;
    Engine<LooselyStabilizing> engine(LooselyStabilizing::for_population(n), n, 3);
    for (auto& s : engine.population().states()) {
        s.leader = false;
        s.timer = engine.protocol().t_max();
    }
    engine.recount_leaders();
    ASSERT_EQ(engine.leader_count(), 0U);
    expect_recovery(engine);
}

TEST(LooseRecovery, FromScatteredGarbage) {
    const std::size_t n = 256;
    Engine<LooselyStabilizing> engine(LooselyStabilizing::for_population(n), n, 4);
    Rng rng(99);
    for (auto& s : engine.population().states()) {
        s.leader = uniform_below(rng, 10) == 0;
        s.timer = static_cast<std::uint16_t>(
            uniform_below(rng, engine.protocol().t_max() + 1));
    }
    engine.recount_leaders();
    expect_recovery(engine);
}

TEST(Loose, StateBoundIsLogarithmic) {
    const LooselyStabilizing proto = LooselyStabilizing::for_population(4096);
    EXPECT_EQ(proto.state_bound(), (16U * 12U + 1U) * 2U);
}

}  // namespace
}  // namespace ppsim
