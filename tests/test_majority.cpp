// Tests for the four-state exact-majority protocol (protocols/majority.hpp).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "protocols/majority.hpp"

namespace ppsim {
namespace {

MajorityState make(MajorityOpinion o) {
    MajorityState s;
    s.opinion = o;
    return s;
}

TEST(Majority, StrongOppositesAnnihilateToWeak) {
    const ExactMajority proto;
    MajorityState a = make(MajorityOpinion::strong_a);
    MajorityState b = make(MajorityOpinion::strong_b);
    proto.interact(a, b);
    EXPECT_EQ(a.opinion, MajorityOpinion::weak_a);
    EXPECT_EQ(b.opinion, MajorityOpinion::weak_b);
}

TEST(Majority, StrongConvertsOppositeWeak) {
    const ExactMajority proto;
    MajorityState strong = make(MajorityOpinion::strong_a);
    MajorityState weak = make(MajorityOpinion::weak_b);
    proto.interact(strong, weak);
    EXPECT_EQ(strong.opinion, MajorityOpinion::strong_a);
    EXPECT_EQ(weak.opinion, MajorityOpinion::weak_a);
    // And in the other role order.
    MajorityState strong_b = make(MajorityOpinion::strong_b);
    MajorityState weak_a = make(MajorityOpinion::weak_a);
    proto.interact(weak_a, strong_b);
    EXPECT_EQ(weak_a.opinion, MajorityOpinion::weak_b);
}

TEST(Majority, SameOpinionAndWeakPairsAreInert) {
    const ExactMajority proto;
    MajorityState a1 = make(MajorityOpinion::strong_a);
    MajorityState a2 = make(MajorityOpinion::weak_a);
    proto.interact(a1, a2);
    EXPECT_EQ(a1.opinion, MajorityOpinion::strong_a);
    EXPECT_EQ(a2.opinion, MajorityOpinion::weak_a);
    MajorityState wa = make(MajorityOpinion::weak_a);
    MajorityState wb = make(MajorityOpinion::weak_b);
    proto.interact(wa, wb);
    EXPECT_EQ(wa.opinion, MajorityOpinion::weak_a);
    EXPECT_EQ(wb.opinion, MajorityOpinion::weak_b);
}

TEST(Majority, StrongMarginIsInvariant) {
    // #strongA − #strongB never changes: annihilation removes one of each,
    // conversions touch only weak agents. This is the protocol's exactness.
    const std::size_t n = 100;
    Engine<ExactMajority> engine(ExactMajority{}, n, 5);
    ExactMajority::seed_inputs(engine.population(), 53);
    engine.recount_leaders();
    const auto margin = [&] {
        long long m = 0;
        for (const MajorityState& s : engine.population().states()) {
            if (s.opinion == MajorityOpinion::strong_a) ++m;
            if (s.opinion == MajorityOpinion::strong_b) --m;
        }
        return m;
    };
    const long long initial = margin();
    EXPECT_EQ(initial, 53 - 47);
    for (int burst = 0; burst < 100; ++burst) {
        engine.run_for(100);
        ASSERT_EQ(margin(), initial);
    }
}

class MajorityDecision
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MajorityDecision, ConvergesToTheTrueMajority) {
    const auto [n, a_count] = GetParam();
    Engine<ExactMajority> engine(ExactMajority{}, n, 7 + n + a_count);
    ExactMajority::seed_inputs(engine.population(), a_count);
    engine.recount_leaders();
    const RunResult result = engine.run_until(
        static_cast<StepCount>(600) * n * n,
        [](const Engine<ExactMajority>& e) { return majority_consensus_reached(e); });
    ASSERT_TRUE(result.converged);
    const bool a_won = engine.leader_count() == n;
    EXPECT_EQ(a_won, 2 * a_count > n) << "consensus on the minority opinion";
}

INSTANTIATE_TEST_SUITE_P(Margins, MajorityDecision,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{50, 26},
                                           std::pair<std::size_t, std::size_t>{50, 24},
                                           std::pair<std::size_t, std::size_t>{100, 51},
                                           std::pair<std::size_t, std::size_t>{100, 90},
                                           std::pair<std::size_t, std::size_t>{100, 3},
                                           std::pair<std::size_t, std::size_t>{64, 33}));

TEST(Majority, TieNeverReachesConsensusButMarginStaysZero) {
    const std::size_t n = 40;
    Engine<ExactMajority> engine(ExactMajority{}, n, 3);
    ExactMajority::seed_inputs(engine.population(), n / 2);
    engine.recount_leaders();
    engine.run_for(200'000);
    EXPECT_FALSE(majority_consensus_reached(engine));
    // With a zero margin every strong agent eventually annihilates, leaving
    // a frozen all-weak mixture with both opinions still present (the weak
    // split itself is path-dependent — conversions skew it — but a tie can
    // never produce consensus).
    std::size_t weak_a = 0;
    std::size_t weak_b = 0;
    for (const MajorityState& s : engine.population().states()) {
        if (s.opinion == MajorityOpinion::weak_a) ++weak_a;
        if (s.opinion == MajorityOpinion::weak_b) ++weak_b;
    }
    EXPECT_EQ(weak_a + weak_b, n);
    EXPECT_GT(weak_a, 0U);
    EXPECT_GT(weak_b, 0U);
}

TEST(Majority, SeedInputsValidates) {
    Population<MajorityState> pop(10, MajorityState{});
    EXPECT_THROW(ExactMajority::seed_inputs(pop, 11), InvalidArgument);
    ExactMajority::seed_inputs(pop, 4);
    std::size_t strong_a = 0;
    for (const MajorityState& s : pop.states()) {
        strong_a += s.opinion == MajorityOpinion::strong_a ? 1 : 0;
    }
    EXPECT_EQ(strong_a, 4U);
}

TEST(Majority, StateAccounting) {
    const ExactMajority proto;
    EXPECT_EQ(proto.state_bound(), 4U);
    EXPECT_NE(proto.state_key(make(MajorityOpinion::strong_a)),
              proto.state_key(make(MajorityOpinion::weak_a)));
}

}  // namespace
}  // namespace ppsim
