// Tests for the exhaustive configuration-space model checker — the
// deterministic complement to the sampled property tests.
#include <gtest/gtest.h>

#include "analysis/model_checker.hpp"
#include "protocols/mst.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

TEST(ModelChecker, AngluinFullyVerifiedAtSmallSizes) {
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (const std::size_t n : {2UL, 3UL, 4UL, 6UL}) {
        const auto proto = registry.make("angluin06", n);
        const ModelCheckReport report = model_check(*proto, n, 100'000);
        EXPECT_TRUE(report.exhausted);
        // Multisets over {L, F} with ≥1 leader reachable: exactly n configs
        // (n leaders down to 1 leader; 0 leaders unreachable).
        EXPECT_EQ(report.configurations, n);
        EXPECT_TRUE(report.safety_holds);
        EXPECT_TRUE(report.single_leader_absorbing);
        EXPECT_TRUE(report.convergence_certified);
    }
}

TEST(ModelChecker, LotteryFullyVerifiedAtN3) {
    const auto proto = ProtocolRegistry::instance().make("lottery", 3);
    const ModelCheckReport report = model_check(*proto, 3, 2'000'000);
    ASSERT_TRUE(report.exhausted) << "state space larger than expected";
    EXPECT_TRUE(report.safety_holds);
    EXPECT_TRUE(report.single_leader_absorbing);
    EXPECT_TRUE(report.convergence_certified);
    EXPECT_GT(report.configurations, 10U);
}

TEST(ModelChecker, MstStyleFullyVerifiedWithNarrowNonce) {
    // The registry instance carries 3⌈lg n⌉+3 nonce bits — far too many
    // configurations to exhaust. A 2-bit instance has the same transition
    // structure (draw / epidemic / tie-break) with 24 agent states, which
    // the checker exhausts instantly.
    const auto proto = erase_protocol(MstStyle(2));
    const ModelCheckReport report = model_check(*proto, 3, 1'000'000);
    ASSERT_TRUE(report.exhausted);
    EXPECT_TRUE(report.safety_holds);
    EXPECT_TRUE(report.single_leader_absorbing);
    EXPECT_TRUE(report.convergence_certified);
}

TEST(ModelChecker, PllBudgetedSafetySweep) {
    // PLL's timer states blow up the configuration count, so exhaustion is
    // out of reach; the checker still proves safety and the absorbing
    // property over every configuration within the budget.
    const auto proto = ProtocolRegistry::instance().make("pll", 3);
    const ModelCheckReport report = model_check(*proto, 3, 50'000);
    EXPECT_FALSE(report.exhausted);
    EXPECT_EQ(report.configurations, 50'000U);
    EXPECT_TRUE(report.safety_holds);
    EXPECT_TRUE(report.single_leader_absorbing);
    EXPECT_FALSE(report.convergence_certified);  // n/a without exhaustion
}

TEST(ModelChecker, SymmetricPllBudgetedSafetySweep) {
    const auto proto = ProtocolRegistry::instance().make("pll_symmetric", 3);
    const ModelCheckReport report = model_check(*proto, 3, 50'000);
    EXPECT_TRUE(report.safety_holds);
    EXPECT_TRUE(report.single_leader_absorbing);
}

TEST(ModelChecker, ValidatesArguments) {
    const auto proto = ProtocolRegistry::instance().make("angluin06", 4);
    EXPECT_THROW((void)model_check(*proto, 1, 100), InvalidArgument);
    EXPECT_THROW((void)model_check(*proto, 4, 0), InvalidArgument);
}

TEST(ModelChecker, BudgetTruncationIsReported) {
    const auto proto = ProtocolRegistry::instance().make("lottery", 4);
    const ModelCheckReport report = model_check(*proto, 4, 50);
    EXPECT_FALSE(report.exhausted);
    EXPECT_EQ(report.configurations, 50U);
}

}  // namespace
}  // namespace ppsim
