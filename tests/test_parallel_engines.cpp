// Cross-thread-count contracts of the count engines' intra-run sharding
// (src/core/shard.hpp, batched_engine.hpp, gillespie_engine.hpp):
//
//  * shard_range really partitions [0, count) into balanced contiguous
//    ranges — the partition is part of the replay contract;
//  * a profile too narrow to ever cross the sharding thresholds is
//    bit-identical at any thread count (begin_round consumes no draws from
//    the engine's main stream);
//  * seeded replay at a fixed thread count is bit-identical run-to-run, and
//    golden pins at threads = 4 make an accidental change to the sharded
//    draw order loud (same contract as tests/test_golden_seeds.cpp pins for
//    the sequential streams);
//  * sharded rounds conserve the population and keep the engine's leader
//    count consistent with a fresh census.
//
// Distributional equivalence across thread counts (threads = 1 vs 8) is
// owned by the KS harness in test_statistical.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/batch_pairing.hpp"
#include "core/engine.hpp"
#include "core/shard.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

TEST(ShardRangeTest, PartitionsEveryCountContiguouslyAndBalanced) {
    for (const std::size_t count :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64},
          std::size_t{257}, std::size_t{8192}}) {
        for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                         std::size_t{8}, std::size_t{13}}) {
            std::size_t covered = 0;
            std::size_t expect_first = 0;
            const std::size_t base = count / shards;
            for (std::size_t s = 0; s < shards; ++s) {
                const ShardRange r = shard_range(count, shards, s);
                ASSERT_EQ(r.first, expect_first) << count << "/" << shards << "/" << s;
                ASSERT_LE(r.first, r.last);
                // Balanced: every shard holds ⌊count/shards⌋ or one more.
                ASSERT_GE(r.size(), base);
                ASSERT_LE(r.size(), base + 1);
                covered += r.size();
                expect_first = r.last;
            }
            ASSERT_EQ(covered, count);
            ASSERT_EQ(expect_first, count);
        }
    }
}

// angluin06 at n = 128 interns two to three states — below the sampling
// threshold (threads × 8 live states) — and its batches are short enough
// that the group threshold (threads × 8) stays out of reach too, so no
// round of a threads = 4 run ever shards. Because begin_round consumes no
// draws from the engine's main stream, such a run must be bit-identical to
// the sequential threads = 1 run, not merely distributionally equal.
TEST(ParallelEngines, NarrowProfileIsBitIdenticalAcrossThreadCounts) {
    const std::size_t n = 128;
    const auto budget = static_cast<StepCount>(n) * n * 50;
    for (const EngineKind engine : {EngineKind::batched, EngineKind::gillespie}) {
        const RunResult seq = ProtocolRegistry::instance().run_election(
            "angluin06", n, /*seed=*/2019, budget, engine, BatchMode::automatic,
            /*faults=*/{}, /*threads=*/1);
        const RunResult par = ProtocolRegistry::instance().run_election(
            "angluin06", n, /*seed=*/2019, budget, engine, BatchMode::automatic,
            /*faults=*/{}, /*threads=*/4);
        ASSERT_TRUE(seq.converged);
        ASSERT_TRUE(par.converged) << to_string(engine);
        EXPECT_EQ(seq.steps, par.steps) << to_string(engine);
        ASSERT_TRUE(seq.stabilization_step.has_value());
        ASSERT_TRUE(par.stabilization_step.has_value());
        EXPECT_EQ(*seq.stabilization_step, *par.stabilization_step)
            << "a never-sharding profile drifted across thread counts on "
            << to_string(engine);
    }
}

struct ShardedGoldenRun {
    const char* protocol;
    EngineKind engine;
    BatchMode batch_mode;
    std::uint64_t stabilization_step;
};

// All cells: n = 8192, seed = 2019, threads = 4. n is large enough that the
// sharded paths genuinely engage — pll's live profile (~40–60 states)
// crosses the sampling threshold (threads × 8 live states), and under
// pairwise pairing the group count equals the batch length (Θ(√n) ≈ 113
// here), crossing the cell threshold (threads × 8 groups) — so these pin
// the *sharded* draw order: stream derivation per (seed, round, shard),
// slice subtotal chains, rated thinning on the shard streams, and the
// shard-order delta merge. Every pinned value differs from its threads = 1
// counterpart, which is how we know the cell pins a sharded code path and
// not the sequential fallback. Platform assumption (glibc libm) as in
// test_golden_seeds.cpp.
constexpr ShardedGoldenRun sharded_golden_runs[] = {
    {"pll", EngineKind::batched, BatchMode::automatic, 102950ULL},
    {"pll", EngineKind::batched, BatchMode::pairwise, 132129ULL},
    {"pll", EngineKind::gillespie, BatchMode::automatic, 99212ULL},
    {"rated_epidemic", EngineKind::batched, BatchMode::pairwise, 35197398ULL},
    {"rated_election", EngineKind::batched, BatchMode::pairwise, 4642136ULL},
    {"rated_election", EngineKind::gillespie, BatchMode::automatic, 459337ULL},
};

class ShardedGoldenReplay : public ::testing::TestWithParam<ShardedGoldenRun> {};

TEST_P(ShardedGoldenReplay, StabilizationStepIsPinnedAtFourThreads) {
    const ShardedGoldenRun& run = GetParam();
    const std::size_t n = 8192;
    // The rated protocols need far wider budgets than pll: rated_epidemic's
    // thinning dilates steps by ~max_rate (Θ(n²) interactions in the slow
    // two-candidate endgame), and rated_election inherits the lottery's
    // heavy-tailed tie resolution. Rounds stay compressed, so both are cheap.
    const StepCount budget = std::string(run.protocol) == "pll"
                                 ? static_cast<StepCount>(n) * 64
                                 : static_cast<StepCount>(n) * n;
    const RunResult result = ProtocolRegistry::instance().run_election(
        run.protocol, n, /*seed=*/2019, budget, run.engine, run.batch_mode,
        /*faults=*/{}, /*threads=*/4);
    ASSERT_TRUE(result.converged) << "sharded golden run no longer converges";
    ASSERT_TRUE(result.stabilization_step.has_value());
    EXPECT_EQ(*result.stabilization_step, run.stabilization_step)
        << "sharded replay semantics changed for " << run.protocol << " on "
        << to_string(run.engine) << "/" << to_string(run.batch_mode)
        << " — if the change is intentional, update this table in the same commit";
}

std::string sharded_golden_name(const ::testing::TestParamInfo<ShardedGoldenRun>& info) {
    return std::string(info.param.protocol) + "_" +
           std::string(to_string(info.param.engine)) + "_" +
           std::string(to_string(info.param.batch_mode));
}

INSTANTIATE_TEST_SUITE_P(Cells, ShardedGoldenReplay,
                         ::testing::ValuesIn(sharded_golden_runs), sharded_golden_name);

// Replay with the same (seed, threads) must be bit-identical even when the
// pins above don't cover the cell — including a thread count that does not
// divide the live-state count evenly.
TEST(ParallelEngines, ReplayIsBitIdenticalPerThreadCount) {
    const std::size_t n = 8192;
    const auto budget = static_cast<StepCount>(n) * 256;
    for (const EngineKind engine : {EngineKind::batched, EngineKind::gillespie}) {
        for (const std::size_t threads : {std::size_t{3}, std::size_t{4}}) {
            const RunResult a = ProtocolRegistry::instance().run_election(
                "pll", n, /*seed=*/77, budget, engine, BatchMode::automatic,
                /*faults=*/{}, threads);
            const RunResult b = ProtocolRegistry::instance().run_election(
                "pll", n, /*seed=*/77, budget, engine, BatchMode::automatic,
                /*faults=*/{}, threads);
            ASSERT_TRUE(a.converged) << to_string(engine) << " threads=" << threads;
            EXPECT_EQ(a.steps, b.steps);
            ASSERT_EQ(a.stabilization_step.has_value(), b.stabilization_step.has_value());
            if (a.stabilization_step) {
                EXPECT_EQ(*a.stabilization_step, *b.stabilization_step)
                    << to_string(engine) << " threads=" << threads;
            }
            EXPECT_EQ(a.leader_count, b.leader_count);
        }
    }
}

// Sharded rounds move counts through per-shard delta buffers; any lost or
// double-merged delta breaks conservation. Run fixed work through both
// engines (pll exercises the unrated sharded sampling, rated_epidemic and
// rated_election the rated thinning / pre-thinning cell paths) and
// census-check the result.
TEST(ParallelEngines, ShardedRoundsConservePopulation) {
    const std::size_t n = 8192;
    const auto steps = static_cast<StepCount>(n) * 16;
    for (const EngineKind engine : {EngineKind::batched, EngineKind::gillespie}) {
        for (const char* protocol : {"pll", "rated_epidemic", "rated_election"}) {
            const auto sim = ProtocolRegistry::instance().make_simulation(
                protocol, n, /*seed=*/11, engine, BatchMode::automatic, /*threads=*/4);
            const RunResult run = sim->run_for(steps);
            EXPECT_GE(run.steps, steps) << protocol << " on " << to_string(engine);
            const ConfigurationSnapshot census = sim->state_counts();
            EXPECT_EQ(census.total(), n)
                << "sharded rounds leaked agents: " << protocol << " on "
                << to_string(engine);
            EXPECT_EQ(census.leaders(), sim->leader_count())
                << "incremental leader count diverged from census: " << protocol
                << " on " << to_string(engine);
        }
    }
}

// threads = 0 means "all hardware threads" everywhere the knob is plumbed;
// the resulting engine must still run (on a 1-CPU host this degenerates to
// the sequential path, which is exactly the point of the fallback).
TEST(ParallelEngines, ThreadsZeroResolvesToHardwareConcurrency) {
    const std::size_t n = 4096;
    const auto sim = ProtocolRegistry::instance().make_simulation(
        "lottery", n, /*seed=*/5, EngineKind::batched, BatchMode::automatic,
        /*threads=*/0);
    const RunResult run = sim->run_for(static_cast<StepCount>(n) * 4);
    EXPECT_GE(run.steps, static_cast<StepCount>(n) * 4);
    EXPECT_EQ(sim->state_counts().total(), n);
}

}  // namespace
}  // namespace ppsim
