// Tests for execution persistence (core/persist.hpp): schedule and
// configuration round-trips, validation, and the full repro-bundle workflow
// (save a run, reload it elsewhere, continue identically).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/engine.hpp"
#include "core/persist.hpp"
#include "protocols/pll.hpp"

namespace ppsim {
namespace {

std::string temp_path(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Persist, ScheduleRoundTrips) {
    RecordedSchedule schedule;
    schedule.append(0, 1);
    schedule.append(7, 3);
    schedule.append(2, 9);
    const std::string path = temp_path("ppsim_sched.bin");
    save_schedule(path, schedule);
    const RecordedSchedule loaded = load_schedule(path);
    ASSERT_EQ(loaded.size(), schedule.size());
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        EXPECT_EQ(loaded[i], schedule[i]);
    }
    std::filesystem::remove(path);
}

TEST(Persist, EmptyScheduleRoundTrips) {
    const std::string path = temp_path("ppsim_sched_empty.bin");
    save_schedule(path, RecordedSchedule{});
    EXPECT_TRUE(load_schedule(path).empty());
    std::filesystem::remove(path);
}

TEST(Persist, RejectsWrongMagic) {
    const std::string path = temp_path("ppsim_not_a_bundle.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "definitely not a bundle";
    }
    EXPECT_THROW((void)load_schedule(path), InvalidArgument);
    EXPECT_THROW((void)load_configuration(path), InvalidArgument);
    std::filesystem::remove(path);
}

TEST(Persist, ConfigurationRoundTrips) {
    const std::size_t n = 64;
    Engine<Pll> engine(Pll::for_population(n), n, 5);
    engine.run_for(10'000);

    const ConfigurationDump dump = dump_configuration(engine.population(), "pll");
    const std::string path = temp_path("ppsim_config.bin");
    save_configuration(path, dump);
    const ConfigurationDump loaded = load_configuration(path);
    EXPECT_EQ(loaded.protocol_name, "pll");
    EXPECT_EQ(loaded.agents, n);
    EXPECT_EQ(loaded.state_size, sizeof(PllState));

    Engine<Pll> restored(Pll::for_population(n), n, 999);
    restore_configuration(loaded, restored.population(), "pll");
    restored.recount_leaders();
    EXPECT_EQ(restored.leader_count(), engine.leader_count());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(restored.population()[static_cast<AgentId>(i)],
                  engine.population()[static_cast<AgentId>(i)]);
    }
    std::filesystem::remove(path);
}

TEST(Persist, RestoreValidatesIdentity) {
    const std::size_t n = 16;
    Engine<Pll> engine(Pll::for_population(n), n, 5);
    ConfigurationDump dump = dump_configuration(engine.population(), "pll");

    Population<PllState> wrong_size(8, PllState{});
    EXPECT_THROW(restore_configuration(dump, wrong_size, "pll"), InvalidArgument);

    Population<PllState> ok(n, PllState{});
    EXPECT_THROW(restore_configuration(dump, ok, "other_protocol"), InvalidArgument);
    EXPECT_NO_THROW(restore_configuration(dump, ok, "pll"));
}

TEST(Persist, FullReproBundleWorkflow) {
    // Record a run (schedule + final configuration), persist both, then
    // replay the schedule from scratch elsewhere and reach the same
    // configuration byte for byte.
    const std::size_t n = 48;
    const std::string sched_path = temp_path("ppsim_bundle_sched.bin");
    const std::string config_path = temp_path("ppsim_bundle_config.bin");
    {
        Engine<Pll> engine(Pll::for_population(n), n, 0xB0B);
        RecordingScheduler<UniformScheduler> recorder(UniformScheduler(n, 0xB0B));
        for (int i = 0; i < 30'000; ++i) engine.apply(recorder.next());
        save_schedule(sched_path, recorder.record());
        save_configuration(config_path, dump_configuration(engine.population(), "pll"));
    }
    {
        Engine<Pll> replayer(Pll::for_population(n), n, 1);
        replayer.apply(load_schedule(sched_path));
        const ConfigurationDump expected = load_configuration(config_path);
        Engine<Pll> reference(Pll::for_population(n), n, 2);
        restore_configuration(expected, reference.population(), "pll");
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(replayer.population()[static_cast<AgentId>(i)],
                      reference.population()[static_cast<AgentId>(i)]);
        }
    }
    std::filesystem::remove(sched_path);
    std::filesystem::remove(config_path);
}

}  // namespace
}  // namespace ppsim
