// Tests for execution persistence (core/persist.hpp): schedule and
// configuration round-trips, validation, and the full repro-bundle workflow
// (save a run, reload it elsewhere, continue identically). Also covers the
// hybrid engine's calibration cache (core/calibration.hpp): save→load
// round-trips, corrupt/stale files falling back to nullopt (re-probe), and
// --recalibrate overwriting the cached table.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/calibration.hpp"
#include "core/engine.hpp"
#include "core/persist.hpp"
#include "protocols/pll.hpp"
#include "protocols/registry.hpp"

namespace ppsim {
namespace {

std::string temp_path(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Persist, ScheduleRoundTrips) {
    RecordedSchedule schedule;
    schedule.append(0, 1);
    schedule.append(7, 3);
    schedule.append(2, 9);
    const std::string path = temp_path("ppsim_sched.bin");
    save_schedule(path, schedule);
    const RecordedSchedule loaded = load_schedule(path);
    ASSERT_EQ(loaded.size(), schedule.size());
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        EXPECT_EQ(loaded[i], schedule[i]);
    }
    std::filesystem::remove(path);
}

TEST(Persist, EmptyScheduleRoundTrips) {
    const std::string path = temp_path("ppsim_sched_empty.bin");
    save_schedule(path, RecordedSchedule{});
    EXPECT_TRUE(load_schedule(path).empty());
    std::filesystem::remove(path);
}

TEST(Persist, RejectsWrongMagic) {
    const std::string path = temp_path("ppsim_not_a_bundle.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "definitely not a bundle";
    }
    EXPECT_THROW((void)load_schedule(path), InvalidArgument);
    EXPECT_THROW((void)load_configuration(path), InvalidArgument);
    std::filesystem::remove(path);
}

TEST(Persist, ConfigurationRoundTrips) {
    const std::size_t n = 64;
    Engine<Pll> engine(Pll::for_population(n), n, 5);
    engine.run_for(10'000);

    const ConfigurationDump dump = dump_configuration(engine.population(), "pll");
    const std::string path = temp_path("ppsim_config.bin");
    save_configuration(path, dump);
    const ConfigurationDump loaded = load_configuration(path);
    EXPECT_EQ(loaded.protocol_name, "pll");
    EXPECT_EQ(loaded.agents, n);
    EXPECT_EQ(loaded.state_size, sizeof(PllState));

    Engine<Pll> restored(Pll::for_population(n), n, 999);
    restore_configuration(loaded, restored.population(), "pll");
    restored.recount_leaders();
    EXPECT_EQ(restored.leader_count(), engine.leader_count());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(restored.population()[static_cast<AgentId>(i)],
                  engine.population()[static_cast<AgentId>(i)]);
    }
    std::filesystem::remove(path);
}

TEST(Persist, RestoreValidatesIdentity) {
    const std::size_t n = 16;
    Engine<Pll> engine(Pll::for_population(n), n, 5);
    ConfigurationDump dump = dump_configuration(engine.population(), "pll");

    Population<PllState> wrong_size(8, PllState{});
    EXPECT_THROW(restore_configuration(dump, wrong_size, "pll"), InvalidArgument);

    Population<PllState> ok(n, PllState{});
    EXPECT_THROW(restore_configuration(dump, ok, "other_protocol"), InvalidArgument);
    EXPECT_NO_THROW(restore_configuration(dump, ok, "pll"));
}

TEST(Persist, FullReproBundleWorkflow) {
    // Record a run (schedule + final configuration), persist both, then
    // replay the schedule from scratch elsewhere and reach the same
    // configuration byte for byte.
    const std::size_t n = 48;
    const std::string sched_path = temp_path("ppsim_bundle_sched.bin");
    const std::string config_path = temp_path("ppsim_bundle_config.bin");
    {
        Engine<Pll> engine(Pll::for_population(n), n, 0xB0B);
        RecordingScheduler<UniformScheduler> recorder(UniformScheduler(n, 0xB0B));
        for (int i = 0; i < 30'000; ++i) engine.apply(recorder.next());
        save_schedule(sched_path, recorder.record());
        save_configuration(config_path, dump_configuration(engine.population(), "pll"));
    }
    {
        Engine<Pll> replayer(Pll::for_population(n), n, 1);
        replayer.apply(load_schedule(sched_path));
        const ConfigurationDump expected = load_configuration(config_path);
        Engine<Pll> reference(Pll::for_population(n), n, 2);
        restore_configuration(expected, reference.population(), "pll");
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(replayer.population()[static_cast<AgentId>(i)],
                      reference.population()[static_cast<AgentId>(i)]);
        }
    }
    std::filesystem::remove(sched_path);
    std::filesystem::remove(config_path);
}

// --- calibration cache (core/calibration.hpp) ------------------------------

/// Restores the ambient hybrid options on scope exit so a test can never
/// leak a temp cache dir / recalibrate flag into later suites (every test
/// in this binary shares one process).
class ScopedHybridOptions {
public:
    ScopedHybridOptions() : saved_(hybrid_options()) {}
    ~ScopedHybridOptions() { set_hybrid_options(saved_); }

private:
    HybridOptions saved_;
};

CalibrationTable sample_table(double base) {
    CalibrationTable table;
    for (std::size_t m = 0; m < hybrid_mode_count; ++m) {
        table.costs[m].wide_ns = base + static_cast<double>(m);
        table.costs[m].narrow_ns = base * 2.0 + static_cast<double>(m);
        table.costs[m].wide_exponent = -0.25 * static_cast<double>(m);
        table.costs[m].narrow_exponent = 0.1 * static_cast<double>(m);
    }
    table.probe_population = 4096;
    table.threads = 2;
    return table;
}

TEST(CalibrationPersistence, SaveLoadRoundTrips) {
    const std::string path = temp_path("ppsim_calibration_rt.ppcl");
    const CalibrationTable table = sample_table(12.5);
    save_calibration(path, "pll", table);
    const std::optional<CalibrationTable> loaded = load_calibration(path, "pll");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->probe_population, table.probe_population);
    EXPECT_EQ(loaded->threads, table.threads);
    for (std::size_t m = 0; m < hybrid_mode_count; ++m) {
        EXPECT_DOUBLE_EQ(loaded->costs[m].wide_ns, table.costs[m].wide_ns);
        EXPECT_DOUBLE_EQ(loaded->costs[m].narrow_ns, table.costs[m].narrow_ns);
        EXPECT_DOUBLE_EQ(loaded->costs[m].wide_exponent, table.costs[m].wide_exponent);
        EXPECT_DOUBLE_EQ(loaded->costs[m].narrow_exponent,
                         table.costs[m].narrow_exponent);
    }
    std::filesystem::remove(path);
}

TEST(CalibrationPersistence, MissingFileIsNullopt) {
    EXPECT_FALSE(
        load_calibration(temp_path("ppsim_calibration_missing.ppcl"), "pll"));
}

TEST(CalibrationPersistence, CorruptFileFallsBackToNullopt) {
    const std::string path = temp_path("ppsim_calibration_corrupt.ppcl");
    {
        std::ofstream out(path, std::ios::binary);
        out << "definitely not a calibration table";
    }
    // Cache corruption is a re-probe, never an error.
    EXPECT_FALSE(load_calibration(path, "pll"));
    std::filesystem::remove(path);
}

TEST(CalibrationPersistence, TruncatedFileFallsBackToNullopt) {
    const std::string path = temp_path("ppsim_calibration_trunc.ppcl");
    save_calibration(path, "pll", sample_table(3.0));
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size / 2);
    EXPECT_FALSE(load_calibration(path, "pll"));
    std::filesystem::remove(path);
}

TEST(CalibrationPersistence, StaleVersionFallsBackToNullopt) {
    const std::string path = temp_path("ppsim_calibration_stale.ppcl");
    save_calibration(path, "pll", sample_table(3.0));
    ASSERT_TRUE(load_calibration(path, "pll").has_value());
    {
        // The container version is the u32 after the 4-byte magic; a bumped
        // format number must invalidate every existing cache file.
        std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
        file.seekp(4);
        const std::uint32_t wrong_version = 0xFFFF'FFFF;
        file.write(reinterpret_cast<const char*>(&wrong_version),
                   sizeof(wrong_version));
    }
    EXPECT_FALSE(load_calibration(path, "pll"));
    std::filesystem::remove(path);
}

TEST(CalibrationPersistence, WrongProtocolFallsBackToNullopt) {
    const std::string path = temp_path("ppsim_calibration_proto.ppcl");
    save_calibration(path, "pll", sample_table(3.0));
    EXPECT_FALSE(load_calibration(path, "lottery"));
    std::filesystem::remove(path);
}

TEST(CalibrationPersistence, CachePathSeparatesKeys) {
    const std::string a = calibration_cache_path("pll", 1, 4096, "/cache");
    EXPECT_NE(a, calibration_cache_path("pll", 2, 4096, "/cache"));
    EXPECT_NE(a, calibration_cache_path("pll", 1, 8192, "/cache"));
    EXPECT_NE(a, calibration_cache_path("lottery", 1, 4096, "/cache"));
}

TEST(CalibrationPersistence, CalibrationForProbesOncePerProcessAndReloads) {
    ScopedHybridOptions restore;
    const std::string dir = temp_path("ppsim_calibration_for_dir");
    std::filesystem::remove_all(dir);

    int probes = 0;
    const auto probe = [&probes] {
        ++probes;
        return sample_table(10.0 + probes);
    };

    HybridOptions options;
    options.cache_dir = dir;
    set_hybrid_options(options);
    (void)calibration_for("pll", 2, 4096, probe);
    EXPECT_EQ(probes, 1);
    // Memoised: a second simulation in the same process re-uses the table.
    (void)calibration_for("pll", 2, 4096, probe);
    EXPECT_EQ(probes, 1);

    // Fresh process simulated by clearing the memo (set_hybrid_options):
    // the persisted file satisfies the lookup, still no second probe.
    set_hybrid_options(options);
    const CalibrationTable reloaded = calibration_for("pll", 2, 4096, probe);
    EXPECT_EQ(probes, 1);
    EXPECT_DOUBLE_EQ(reloaded.costs[0].wide_ns, 11.0);

    std::filesystem::remove_all(dir);
}

TEST(CalibrationPersistence, RecalibrateOverwritesTheCache) {
    ScopedHybridOptions restore;
    const std::string dir = temp_path("ppsim_calibration_recal_dir");
    std::filesystem::remove_all(dir);

    int probes = 0;
    const auto probe = [&probes] {
        ++probes;
        return sample_table(10.0 + probes);
    };

    HybridOptions options;
    options.cache_dir = dir;
    set_hybrid_options(options);
    (void)calibration_for("pll", 1, 4096, probe);
    EXPECT_EQ(probes, 1);

    // --recalibrate: ignore the valid cache file, probe again, overwrite.
    options.recalibrate = true;
    set_hybrid_options(options);
    const CalibrationTable fresh = calibration_for("pll", 1, 4096, probe);
    EXPECT_EQ(probes, 2);
    EXPECT_DOUBLE_EQ(fresh.costs[0].wide_ns, 12.0);

    // The overwritten file is what a later non-recalibrating process loads.
    options.recalibrate = false;
    set_hybrid_options(options);
    const CalibrationTable reloaded = calibration_for("pll", 1, 4096, probe);
    EXPECT_EQ(probes, 2);
    EXPECT_DOUBLE_EQ(reloaded.costs[0].wide_ns, 12.0);

    std::filesystem::remove_all(dir);
}

// --- checkpoint containers ("PPCK", core/persist.hpp) -----------------------
//
// Unlike the calibration cache (corruption = silent re-probe), a checkpoint
// the user asked to resume from must either load exactly or fail with a
// clear error — and a failed load must never leave a half-restored
// simulation behind. These tests corrupt a valid container every way the
// loader guards against and check both halves of that contract.

/// A small valid checkpoint file to corrupt, plus the simulation that wrote
/// it (still live, for no-partial-restore checks).
std::unique_ptr<Simulation> write_sample_checkpoint(const std::string& path) {
    auto sim = ProtocolRegistry::instance().make_simulation(
        "pll", 64, /*seed=*/11, EngineKind::batched, BatchMode::pairwise, 1);
    (void)sim->run_for(300);
    sim->write_checkpoint(path);
    return sim;
}

/// Loads the whole file, applies `mutate` to its bytes, writes it back.
template <typename Mutator>
void corrupt_file(const std::string& path, Mutator&& mutate) {
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in.good());
        std::ostringstream buffer;
        buffer << in.rdbuf();
        bytes = buffer.str();
    }
    mutate(bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The error message a corrupted load fails with.
std::string load_error(const std::string& path) {
    std::string payload;
    try {
        (void)load_checkpoint(path, payload);
    } catch (const InvalidArgument& e) {
        return e.what();
    }
    return {};
}

TEST(CheckpointContainer, HeaderRoundTrips) {
    const std::string path = temp_path("ppsim_ppck_roundtrip.ppck");
    const auto sim = write_sample_checkpoint(path);
    std::string payload;
    const CheckpointHeader header = load_checkpoint(path, payload);
    EXPECT_EQ(header.protocol, "pll");
    EXPECT_EQ(header.engine, "batched");
    EXPECT_EQ(header.batch_mode, "pairwise");
    EXPECT_EQ(header.population, 64U);
    EXPECT_EQ(header.step, 300U);
    EXPECT_FALSE(payload.empty());
    std::filesystem::remove(path);
}

TEST(CheckpointContainer, RejectsNonCheckpointFile) {
    const std::string path = temp_path("ppsim_ppck_not_a_checkpoint.ppck");
    {
        std::ofstream out(path, std::ios::binary);
        out << "definitely not a checkpoint";
    }
    EXPECT_NE(load_error(path).find("is not a ppsim checkpoint file"),
              std::string::npos);
    std::filesystem::remove(path);
}

TEST(CheckpointContainer, RejectsTruncatedFile) {
    const std::string path = temp_path("ppsim_ppck_truncated.ppck");
    (void)write_sample_checkpoint(path);
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size / 2);
    std::string payload;
    EXPECT_THROW((void)load_checkpoint(path, payload), InvalidArgument);
    std::filesystem::remove(path);
}

TEST(CheckpointContainer, RejectsBitFlippedPayload) {
    const std::string path = temp_path("ppsim_ppck_bitflip.ppck");
    (void)write_sample_checkpoint(path);
    // The last 8 bytes are the checksum; the byte before them is payload.
    corrupt_file(path, [](std::string& bytes) {
        ASSERT_GT(bytes.size(), 9U);
        bytes[bytes.size() - 9] = static_cast<char>(bytes[bytes.size() - 9] ^ 0x01);
    });
    EXPECT_NE(load_error(path).find("checksum mismatch"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(CheckpointContainer, RejectsWrongFormatVersion) {
    const std::string path = temp_path("ppsim_ppck_version.ppck");
    (void)write_sample_checkpoint(path);
    corrupt_file(path, [](std::string& bytes) {
        // The container version is the u32 after the 4-byte magic.
        ASSERT_GE(bytes.size(), 8U);
        const std::uint32_t wrong = 0xFFFF'FFFF;
        std::memcpy(bytes.data() + 4, &wrong, sizeof wrong);
    });
    EXPECT_NE(load_error(path).find("unsupported checkpoint format version"),
              std::string::npos);
    std::filesystem::remove(path);
}

TEST(CheckpointContainer, RejectsWrongCpuSignature) {
    const std::string path = temp_path("ppsim_ppck_cpu.ppck");
    (void)write_sample_checkpoint(path);
    corrupt_file(path, [](std::string& bytes) {
        // Layout: magic u32, version u32, then two length-prefixed strings —
        // the library version and the CPU signature. Flip the signature's
        // first byte.
        std::uint64_t lib_len = 0;
        ASSERT_GE(bytes.size(), 16U);
        std::memcpy(&lib_len, bytes.data() + 8, sizeof lib_len);
        const std::size_t sig_len_at = 16 + static_cast<std::size_t>(lib_len);
        std::uint64_t sig_len = 0;
        ASSERT_GE(bytes.size(), sig_len_at + 8);
        std::memcpy(&sig_len, bytes.data() + sig_len_at, sizeof sig_len);
        ASSERT_GT(sig_len, 0U);  // cpu_signature() is never empty
        bytes[sig_len_at + 8] = static_cast<char>(bytes[sig_len_at + 8] ^ 0x01);
    });
    EXPECT_NE(load_error(path).find("CPU signature mismatch"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(CheckpointContainer, FailedResumeLeavesTheSimulationUntouched) {
    // "No partial resume": a rejected file must leave the target simulation
    // exactly where it was — state, counters and stream positions.
    const std::string path = temp_path("ppsim_ppck_no_partial.ppck");
    (void)write_sample_checkpoint(path);
    corrupt_file(path, [](std::string& bytes) {
        ASSERT_GT(bytes.size(), 9U);
        bytes[bytes.size() - 9] = static_cast<char>(bytes[bytes.size() - 9] ^ 0x01);
    });

    auto victim = ProtocolRegistry::instance().make_simulation(
        "pll", 64, /*seed=*/23, EngineKind::batched, BatchMode::pairwise, 1);
    (void)victim->run_for(100);
    CheckpointWriter before;
    victim->save_checkpoint(before);
    EXPECT_THROW(victim->restore_checkpoint_file(path), InvalidArgument);
    CheckpointWriter after;
    victim->save_checkpoint(after);
    EXPECT_EQ(before.buffer(), after.buffer());
    EXPECT_EQ(victim->steps(), 100U);
    std::filesystem::remove(path);
}

TEST(CalibrationPersistence, InjectedTableBypassesProbeAndDisk) {
    ScopedHybridOptions restore;
    HybridOptions options;
    options.injected = sample_table(99.0);
    set_hybrid_options(options);
    int probes = 0;
    const CalibrationTable table = calibration_for("pll", 1, 4096, [&probes] {
        ++probes;
        return sample_table(1.0);
    });
    EXPECT_EQ(probes, 0);
    EXPECT_DOUBLE_EQ(table.costs[0].wide_ns, 99.0);
}

}  // namespace
}  // namespace ppsim
