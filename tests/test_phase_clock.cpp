// Tests for the leader-driven phase clock substrate (AAE08 family).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "protocols/phase_clock.hpp"

namespace ppsim {
namespace {

Engine<LeaderPhaseClock> make_clock_engine(std::size_t n, std::uint64_t seed) {
    Engine<LeaderPhaseClock> engine(LeaderPhaseClock::for_population(n), n, seed);
    engine.population()[0] = engine.protocol().driver_state();
    engine.recount_leaders();
    return engine;
}

TEST(PhaseClock, ValidatesPeriod) {
    EXPECT_THROW(LeaderPhaseClock(3), InvalidArgument);
    EXPECT_NO_THROW(LeaderPhaseClock(4));
}

TEST(PhaseClock, DriverAdvancesAsResponder) {
    const LeaderPhaseClock clock(8);
    PhaseClockState driver = clock.driver_state();
    PhaseClockState follower;
    clock.interact(follower, driver);
    EXPECT_EQ(driver.position, 1);
    clock.interact(driver, follower);  // as initiator: no self-advance
    EXPECT_EQ(driver.position, 1);
}

TEST(PhaseClock, FollowersAdoptAheadPositions) {
    const LeaderPhaseClock clock(8);
    PhaseClockState ahead;
    ahead.position = 3;
    PhaseClockState behind;
    behind.position = 1;
    clock.interact(ahead, behind);
    EXPECT_EQ(behind.position, 3);
    // Positions more than half a period "ahead" are treated as behind.
    PhaseClockState wrapped;
    wrapped.position = 7;
    PhaseClockState early;
    early.position = 0;
    clock.interact(wrapped, early);
    EXPECT_EQ(early.position, 0);  // 7 is behind 0 cyclically (distance 7 > 4)
    clock.interact(early, wrapped);
    EXPECT_EQ(wrapped.position, 0);  // 0 is ahead of 7 (distance 1)
}

TEST(PhaseClock, DriverWrapsIntoRounds) {
    const LeaderPhaseClock clock(4);
    PhaseClockState driver = clock.driver_state();
    PhaseClockState follower;
    for (int i = 0; i < 4; ++i) {
        PhaseClockState f = follower;
        clock.interact(f, driver);
    }
    EXPECT_EQ(driver.position, 0);
    EXPECT_EQ(driver.rounds, 1);
}

TEST(PhaseClock, RoundsProgressUnderRandomScheduling) {
    auto engine = make_clock_engine(64, 17);
    const unsigned period = engine.protocol().period();
    // One driver step needs ~n/2 interactions in expectation; a round needs
    // ~period·n/2. Run four expected rounds and require at least one.
    engine.run_for(static_cast<StepCount>(4) * period * 64 / 2);
    EXPECT_GE(engine.population()[0].rounds, 1);
    // Followers trail the driver by less than half a period most of the time;
    // loosely, every follower must have moved at all.
    std::size_t moved = 0;
    for (const PhaseClockState& s : engine.population().states()) {
        moved += s.position != 0 || s.rounds > 0 ? 1 : 0;
    }
    EXPECT_GT(moved, 32U);
}

TEST(PhaseClock, IsAheadIsAntisymmetricForOddPeriods) {
    const LeaderPhaseClock clock(9);
    for (std::uint16_t a = 0; a < 9; ++a) {
        for (std::uint16_t b = 0; b < 9; ++b) {
            if (a == b) {
                EXPECT_FALSE(clock.is_ahead(a, b));
            } else {
                EXPECT_NE(clock.is_ahead(a, b), clock.is_ahead(b, a))
                    << "a=" << a << " b=" << b;
            }
        }
    }
}

TEST(PhaseClock, EvenPeriodsTieAtExactlyHalf) {
    // At distance exactly period/2 both directions read as "ahead"; the
    // interact() rule resolves the tie by letting the responder adopt first
    // and re-checking, so positions never swap endlessly. Random executions
    // stay within half a period of the driver whp for Θ(log n) periods.
    const LeaderPhaseClock clock(10);
    EXPECT_TRUE(clock.is_ahead(6, 1));
    EXPECT_TRUE(clock.is_ahead(1, 6));
    PhaseClockState a;
    a.position = 6;
    PhaseClockState b;
    b.position = 1;
    clock.interact(a, b);
    EXPECT_EQ(a.position, 6);
    EXPECT_EQ(b.position, 6);  // responder adopted; no swap
}

}  // namespace
}  // namespace ppsim
