// Correctness under ablated configurations (DESIGN.md §4): every knob
// setting must preserve the election guarantee — only speed may change.
// These tests back the bench_ablation experiment with hard assertions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "protocols/pll.hpp"

namespace ppsim {
namespace {

RunResult elect(const PllConfig& cfg, std::size_t n, std::uint64_t seed,
                double budget_factor = 8000.0) {
    Engine<Pll> engine(Pll(cfg), n, seed);
    const auto budget = static_cast<StepCount>(
        budget_factor * static_cast<double>(n) * std::log2(static_cast<double>(n)));
    RunResult result = engine.run_until_one_leader(budget);
    if (result.converged) {
        EXPECT_TRUE(engine.verify_outputs_stable(10 * static_cast<StepCount>(n)));
    }
    return result;
}

class CmaxAblation : public ::testing::TestWithParam<unsigned> {};

TEST_P(CmaxAblation, StillElects) {
    PllConfig cfg = PllConfig::for_population(256);
    cfg.cmax_multiplier = GetParam();
    EXPECT_TRUE(elect(cfg, 256, 0xD1 + GetParam()).converged);
}

INSTANTIATE_TEST_SUITE_P(Multipliers, CmaxAblation, ::testing::Values(5, 11, 21, 41, 81));

class PhiAblation : public ::testing::TestWithParam<unsigned> {};

TEST_P(PhiAblation, StillElects) {
    PllConfig cfg = PllConfig::for_population(256);
    cfg.phi_override = GetParam();
    EXPECT_TRUE(elect(cfg, 256, 0xD2 + GetParam()).converged);
}

INSTANTIATE_TEST_SUITE_P(Widths, PhiAblation, ::testing::Values(1, 2, 4, 8, 12));

class LmaxAblation : public ::testing::TestWithParam<unsigned> {};

TEST_P(LmaxAblation, StillElects) {
    PllConfig cfg = PllConfig::for_population(256);
    cfg.lmax_multiplier = GetParam();
    EXPECT_TRUE(elect(cfg, 256, 0xD3 + GetParam()).converged);
}

INSTANTIATE_TEST_SUITE_P(Caps, LmaxAblation, ::testing::Values(1, 2, 5, 10));

TEST(ModuleAblation, EveryCompositionElects) {
    for (const bool qe : {true, false}) {
        for (const bool tournament : {true, false}) {
            PllConfig cfg = PllConfig::for_population(128);
            cfg.enable_quick_elimination = qe;
            cfg.enable_tournament = tournament;
            const RunResult result = elect(cfg, 128, 0xD4, 20000.0);
            EXPECT_TRUE(result.converged)
                << "qe=" << qe << " tournament=" << tournament;
        }
    }
}

TEST(ModuleAblation, DisabledModulesLeaveEpochVariablesUntouched) {
    PllConfig cfg = PllConfig::for_population(64);
    cfg.enable_quick_elimination = false;
    Engine<Pll> engine(Pll(cfg), 64, 5);
    engine.run_for(20'000);
    for (const PllState& s : engine.population().states()) {
        if (Pll::in_va(s) && s.epoch == 1) {
            // With QuickElimination off, nobody flips lottery coins.
            EXPECT_EQ(s.level_q, 0);
        }
    }
}

TEST(KnowledgeAblation, UndersizedMStillElects) {
    // D5: m below log2(n) voids the whp analysis, not correctness.
    for (const unsigned m : {2U, 3U, 5U}) {
        PllConfig cfg;
        cfg.m = m;
        const RunResult result = elect(cfg, 512, 0xD5 + m, 20000.0);
        EXPECT_TRUE(result.converged) << "m = " << m;
    }
}

TEST(KnowledgeAblation, OversizedMStillElects) {
    PllConfig cfg;
    cfg.m = 64;  // ≫ log2(128) = 7
    EXPECT_TRUE(elect(cfg, 128, 0xD5, 40000.0).converged);
}

TEST(ConfigValidation, RejectsOutOfRangeDerivedParameters) {
    PllConfig cfg;
    cfg.m = 2000;
    cfg.cmax_multiplier = 41;  // cmax = 82000 > uint16 range
    EXPECT_THROW(Pll{cfg}, InvalidArgument);
    PllConfig tiny;
    tiny.m = 1;
    EXPECT_THROW(Pll{tiny}, InvalidArgument);
}

}  // namespace
}  // namespace ppsim
