// Integration tests: full PLL elections across population sizes, with
// post-convergence stability verification (the absorbing-state certificate).
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "protocols/pll.hpp"

namespace ppsim {
namespace {

StepCount generous_budget(std::size_t n) {
    const double lg = std::max(1.0, std::log2(static_cast<double>(n)));
    // PLL stabilises in O(n log n) interactions in expectation; 400× margin
    // keeps flaky failures out of CI while still catching livelock bugs.
    return static_cast<StepCount>(400.0 * static_cast<double>(n) * lg);
}

class PllElection : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PllElection, ElectsExactlyOneLeader) {
    const std::size_t n = GetParam();
    Engine<Pll> engine(Pll::for_population(n), n, /*seed=*/0xE1EC + n);
    const RunResult result = engine.run_until_one_leader(generous_budget(n));
    ASSERT_TRUE(result.converged) << "no single leader within budget at n = " << n;
    EXPECT_EQ(result.leader_count, 1U);
    ASSERT_TRUE(result.stabilization_step.has_value());
    // The single-leader configuration must be absorbing: outputs never
    // change again over a long verification suffix.
    EXPECT_TRUE(engine.verify_outputs_stable(20 * static_cast<StepCount>(n)));
}

INSTANTIATE_TEST_SUITE_P(PopulationSizes, PllElection,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 33, 64, 100, 128, 256, 513,
                                           1024, 4096));

class PllSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PllSeeds, ElectionSucceedsAcrossSeeds) {
    const std::size_t n = 200;
    Engine<Pll> engine(Pll::for_population(n), n, GetParam());
    const RunResult result = engine.run_until_one_leader(generous_budget(n));
    ASSERT_TRUE(result.converged);
    EXPECT_EQ(engine.recount_leaders(), 1U);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PllSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

TEST(PllIntegration, SameSeedReproducesExactExecution) {
    const std::size_t n = 300;
    Engine<Pll> a(Pll::for_population(n), n, 777);
    Engine<Pll> b(Pll::for_population(n), n, 777);
    const RunResult ra = a.run_until_one_leader(generous_budget(n));
    const RunResult rb = b.run_until_one_leader(generous_budget(n));
    ASSERT_TRUE(ra.converged);
    EXPECT_EQ(ra.steps, rb.steps);
    EXPECT_EQ(ra.stabilization_step, rb.stabilization_step);
    // Full configurations match, not just summary statistics.
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(a.population()[static_cast<AgentId>(i)],
                  b.population()[static_cast<AgentId>(i)]);
    }
}

TEST(PllIntegration, OversizedKnowledgeParameterStillElects) {
    // m only needs to be Ω(log n); a larger m slows the timers but must not
    // break correctness.
    const std::size_t n = 64;
    PllConfig cfg;
    cfg.m = 40;  // ≫ log2(64) = 6
    Engine<Pll> engine(Pll(cfg), n, 4242);
    const RunResult result =
        engine.run_until_one_leader(4000U * static_cast<StepCount>(n));
    ASSERT_TRUE(result.converged);
    EXPECT_TRUE(engine.verify_outputs_stable(10 * static_cast<StepCount>(n)));
}

TEST(PllIntegration, UndersizedKnowledgeParameterStillElectsEventually) {
    // Ablation D5 (DESIGN.md): with m < log2(n) the whp analysis of the fast
    // path breaks, but BackUp guarantees elections with probability 1 —
    // stabilisation may just be slower. Correctness must be preserved.
    const std::size_t n = 512;
    PllConfig cfg;
    cfg.m = 4;  // < log2(512) = 9 — violates the paper's requirement
    EXPECT_THROW(cfg.validate(n), InvalidArgument);
    Engine<Pll> engine(Pll(cfg), n, 99);
    const RunResult result =
        engine.run_until_one_leader(6000U * static_cast<StepCount>(n));
    ASSERT_TRUE(result.converged);
    EXPECT_EQ(engine.leader_count(), 1U);
}

TEST(PllIntegration, StabilizationTimeGrowsFarSlowerThanLinearly) {
    // A coarse Theorem-1 smoke check (the full experiment is E4). PLL's
    // per-run time is bimodal — cheap when QuickElimination already leaves a
    // unique leader, timer-paced (≈ cmax/2 = 20.5·m parallel time per epoch)
    // when Tournament must run — so per-run variance is large; the robust
    // smoke property is distance from linear growth: ×16 the population must
    // cost far less than ×16 the time.
    const auto mean_time = [](std::size_t n) {
        double total = 0.0;
        const int reps = 10;
        for (int rep = 0; rep < reps; ++rep) {
            Engine<Pll> engine(Pll::for_population(n), n, 1000 + 17 * rep);
            const RunResult r = engine.run_until_one_leader(generous_budget(n));
            EXPECT_TRUE(r.converged);
            total += r.stabilization_parallel_time(n);
        }
        return total / reps;
    };
    const double t128 = mean_time(128);
    const double t2048 = mean_time(2048);
    EXPECT_LT(t2048, 6.0 * t128) << "growth looks super-logarithmic";
}

}  // namespace
}  // namespace ppsim
