// Property-based tests: invariants of PLL that must hold at every step of
// every execution, checked over long random runs with shadow tracking.
// These encode the facts the paper's proofs rely on (Lemma 4, the
// never-eliminate-all-leaders arguments, the Table-3 domains).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "protocols/pll.hpp"

namespace ppsim {
namespace {

struct PropertyRunParams {
    std::size_t n;
    std::uint64_t seed;
};

class PllInvariants : public ::testing::TestWithParam<PropertyRunParams> {};

std::string param_name(const ::testing::TestParamInfo<PropertyRunParams>& info) {
    return "n" + std::to_string(info.param.n) + "_seed" +
           std::to_string(info.param.seed);
}

/// Checks the Table-3 domain bounds of a single state.
void expect_domains(const Pll& pll, const PllState& s) {
    const PllConfig& cfg = pll.config();
    ASSERT_GE(s.epoch, 1);
    ASSERT_LE(s.epoch, 4);
    ASSERT_GE(s.init, 1);
    ASSERT_LE(s.init, 4);
    ASSERT_LE(s.init, s.epoch) << "init must trail epoch";
    ASSERT_LE(s.color, 2);
    switch (s.status) {
        case PllStatus::b:
            ASSERT_LT(s.count, cfg.cmax());
            ASSERT_FALSE(s.leader) << "timer agents are never leaders";
            break;
        case PllStatus::a:
            ASSERT_LE(s.level_q, cfg.lmax());
            ASSERT_LT(s.rand, 1U << cfg.phi());
            ASSERT_LE(s.index, cfg.phi());
            ASSERT_LE(s.level_b, cfg.lmax());
            break;
        case PllStatus::x:
            ASSERT_TRUE(s.leader) << "unassigned agents still output L";
            break;
    }
}

TEST_P(PllInvariants, HoldAtEveryStepOfARandomExecution) {
    const auto [n, seed] = GetParam();
    Engine<Pll> engine(Pll::for_population(n), n, seed);
    const Pll& pll = engine.protocol();

    // Shadow state for monotonicity invariants.
    std::vector<bool> was_follower(n, false);
    std::vector<std::uint8_t> prev_epoch(n, 1);
    std::vector<PllStatus> assigned_status(n, PllStatus::x);

    const double lg = std::max(1.0, std::log2(static_cast<double>(n)));
    const auto steps = static_cast<StepCount>(300.0 * static_cast<double>(n) * lg);

    for (StepCount step = 0; step < steps; ++step) {
        const Interaction ia = engine.step();
        for (const AgentId id : {ia.initiator, ia.responder}) {
            const PllState& s = engine.population()[id];
            expect_domains(pll, s);

            // Follower-ness is absorbing: leader=false never reverts.
            if (was_follower[id]) {
                ASSERT_FALSE(s.leader) << "agent " << id << " regained leadership";
            }
            if (!s.leader) was_follower[id] = true;

            // Epochs never decrease per agent.
            ASSERT_GE(s.epoch, prev_epoch[id]);
            prev_epoch[id] = s.epoch;

            // Status is fixed once assigned.
            if (assigned_status[id] != PllStatus::x) {
                ASSERT_EQ(s.status, assigned_status[id]);
            }
            assigned_status[id] = s.status;
        }
        // The protocol never eliminates all leaders (the paper's central
        // safety argument for each of the three modules).
        ASSERT_GE(engine.leader_count(), 1U) << "all leaders eliminated at step " << step;
    }

    // Lemma 4: once every agent is assigned, |VA| ≥ n/2 and |VB| ≥ 1.
    std::size_t va = 0;
    std::size_t vb = 0;
    std::size_t unassigned = 0;
    for (const PllState& s : engine.population().states()) {
        va += Pll::in_va(s) ? 1 : 0;
        vb += Pll::in_vb(s) ? 1 : 0;
        unassigned += s.status == PllStatus::x ? 1 : 0;
    }
    if (unassigned == 0) {
        EXPECT_GE(2 * va, n);
        EXPECT_GE(vb, 1U);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Runs, PllInvariants,
    ::testing::Values(PropertyRunParams{4, 1}, PropertyRunParams{9, 2},
                      PropertyRunParams{16, 3}, PropertyRunParams{50, 4},
                      PropertyRunParams{128, 5}, PropertyRunParams{128, 6},
                      PropertyRunParams{512, 7}),
    param_name);

TEST(PllSafety, SomeLeaderAlwaysHoldsTheMaximumLevelB) {
    // The invariant behind Lemma 12's absorbing argument: in epoch 4 the
    // maximum levelB over VA is always attained by at least one leader.
    const std::size_t n = 128;
    Engine<Pll> engine(Pll::for_population(n), n, 31337);
    const double lg = std::log2(static_cast<double>(n));
    const auto steps = static_cast<StepCount>(400.0 * n * lg);
    for (StepCount step = 0; step < steps; ++step) {
        engine.step();
        if (step % 64 != 0) continue;
        // Applies only once every agent reached epoch 4.
        bool all_epoch4 = true;
        for (const PllState& s : engine.population().states()) {
            if (s.epoch != 4) {
                all_epoch4 = false;
                break;
            }
        }
        if (!all_epoch4) continue;
        std::uint16_t max_level = 0;
        bool leader_at_max = false;
        for (const PllState& s : engine.population().states()) {
            if (!Pll::in_va(s)) continue;
            if (s.level_b > max_level) {
                max_level = s.level_b;
                leader_at_max = s.leader;
            } else if (s.level_b == max_level && s.leader) {
                leader_at_max = true;
            }
        }
        ASSERT_TRUE(leader_at_max) << "no leader holds max levelB at step " << step;
    }
}

TEST(PllSafety, LeadersAreAlwaysInVaOnceAssigned) {
    const std::size_t n = 200;
    Engine<Pll> engine(Pll::for_population(n), n, 2024);
    for (StepCount step = 0; step < 200'000; ++step) {
        const Interaction ia = engine.step();
        for (const AgentId id : {ia.initiator, ia.responder}) {
            const PllState& s = engine.population()[id];
            if (s.leader && s.status != PllStatus::x) {
                ASSERT_EQ(s.status, PllStatus::a);
            }
        }
    }
}

TEST(PllSafety, TickIsAlwaysClearedBetweenObservations) {
    // tick is transient: it may be true in a stored state, but the next
    // interaction of that agent clears it before reading (line 7). We check
    // the observable consequence: epoch only moves when colour moves.
    const std::size_t n = 64;
    Engine<Pll> engine(Pll::for_population(n), n, 555);
    std::vector<std::uint8_t> prev_color(n, 0);
    std::vector<std::uint8_t> prev_epoch(n, 1);
    for (StepCount step = 0; step < 100'000; ++step) {
        const Interaction ia = engine.step();
        for (const AgentId id : {ia.initiator, ia.responder}) {
            const PllState& s = engine.population()[id];
            if (s.epoch > prev_epoch[id]) {
                // An epoch advance requires a tick, which requires a new
                // colour in the same interaction (wrap or adoption).
                EXPECT_NE(s.color, prev_color[id])
                    << "epoch advanced without a colour event at step " << step;
            }
            prev_color[id] = s.color;
            prev_epoch[id] = s.epoch;
        }
    }
}

}  // namespace
}  // namespace ppsim
