// Tests for the symmetric PLL variant (Section 4): the symmetry law itself,
// the X/Y status assignment, the J/K/F0/F1 coin substrate and its fairness
// invariant, the duel tie-break, and full elections.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "protocols/pll_symmetric.hpp"

namespace ppsim {
namespace {

SymmetricPll make_sym() {
    PllConfig cfg;
    cfg.m = 4;  // lmax = 20, cmax = 164, Φ = 2
    return SymmetricPll(cfg);
}

SymPllState follower_with(CoinStatus coin, unsigned epoch = 1) {
    SymPllState s;
    s.status = SymStatus::a;
    s.leader = false;
    s.coin = coin;
    s.done = true;
    s.epoch = static_cast<std::uint8_t>(epoch);
    s.init = static_cast<std::uint8_t>(epoch);
    if (epoch == 2 || epoch == 3) {
        s.done = false;
        s.index = 2;  // Φ
    }
    if (epoch == 4) s.done = false;
    return s;
}

SymPllState leader_in(unsigned epoch) {
    SymPllState s;
    s.status = SymStatus::a;
    s.leader = true;
    s.epoch = static_cast<std::uint8_t>(epoch);
    s.init = static_cast<std::uint8_t>(epoch);
    s.done = epoch != 1 ? false : s.done;
    return s;
}

// --- the symmetry law ---------------------------------------------------------

TEST(SymmetricLaw, EqualStatesProduceEqualStates) {
    // p = q ⇒ p' = q' for every equal pair we can reach or craft. This is
    // the defining property of a symmetric protocol.
    const SymmetricPll sym = make_sym();
    std::vector<SymPllState> probes;
    probes.push_back(SymPllState{});  // X×X
    SymPllState y;
    y.status = SymStatus::y;
    probes.push_back(y);  // Y×Y
    probes.push_back(follower_with(CoinStatus::j));
    probes.push_back(follower_with(CoinStatus::k));
    probes.push_back(follower_with(CoinStatus::f0));
    probes.push_back(follower_with(CoinStatus::f1));
    probes.push_back(leader_in(1));
    probes.push_back(leader_in(4));
    SymPllState dueler = leader_in(4);
    dueler.duel = DuelBit::one;
    probes.push_back(dueler);
    SymPllState timer;
    timer.status = SymStatus::b;
    timer.leader = false;
    timer.count = 17;
    probes.push_back(timer);

    for (const SymPllState& probe : probes) {
        SymPllState a = probe;
        SymPllState b = probe;
        sym.interact(a, b);
        EXPECT_EQ(a, b) << "asymmetric outcome from equal states";
    }
}

TEST(SymmetricLaw, SwappingRolesSwapsOutcomes) {
    // For a symmetric protocol the ordered pair carries no information:
    // interact(p, q) = (p', q') implies interact(q, p) = (q', p').
    const SymmetricPll sym = make_sym();
    std::vector<std::pair<SymPllState, SymPllState>> pairs;
    pairs.emplace_back(SymPllState{}, follower_with(CoinStatus::j));
    pairs.emplace_back(leader_in(1), follower_with(CoinStatus::f0));
    pairs.emplace_back(leader_in(1), follower_with(CoinStatus::f1));
    pairs.emplace_back(leader_in(2), follower_with(CoinStatus::f0, 2));
    pairs.emplace_back(leader_in(4), follower_with(CoinStatus::f1, 4));
    pairs.emplace_back(follower_with(CoinStatus::j), follower_with(CoinStatus::k));
    SymPllState x;  // X meets Y
    SymPllState yy;
    yy.status = SymStatus::y;
    pairs.emplace_back(x, yy);

    for (const auto& [p, q] : pairs) {
        SymPllState a0 = p;
        SymPllState a1 = q;
        sym.interact(a0, a1);
        SymPllState b0 = q;
        SymPllState b1 = p;
        sym.interact(b0, b1);
        EXPECT_EQ(a0, b1);
        EXPECT_EQ(a1, b0);
    }
}

// --- status assignment ------------------------------------------------------------

TEST(SymmetricStatus, XxBecomesYy) {
    const SymmetricPll sym = make_sym();
    SymPllState a;
    SymPllState b;
    sym.interact(a, b);
    EXPECT_EQ(a.status, SymStatus::y);
    EXPECT_EQ(b.status, SymStatus::y);
    EXPECT_TRUE(a.leader);  // unassigned agents keep output L
}

TEST(SymmetricStatus, YyBecomesXx) {
    const SymmetricPll sym = make_sym();
    SymPllState a;
    a.status = SymStatus::y;
    SymPllState b;
    b.status = SymStatus::y;
    sym.interact(a, b);
    EXPECT_EQ(a.status, SymStatus::x);
    EXPECT_EQ(b.status, SymStatus::x);
}

TEST(SymmetricStatus, XyBecomesCandidateAndTimer) {
    const SymmetricPll sym = make_sym();
    SymPllState x;
    SymPllState y;
    y.status = SymStatus::y;
    sym.interact(x, y);
    EXPECT_EQ(x.status, SymStatus::a);
    EXPECT_TRUE(x.leader);
    EXPECT_EQ(y.status, SymStatus::b);
    EXPECT_FALSE(y.leader);
    EXPECT_EQ(y.coin, CoinStatus::j);  // fresh follower starts at J
}

TEST(SymmetricStatus, UnassignedMeetingAssignedJoinsAsFollower) {
    const SymmetricPll sym = make_sym();
    SymPllState y;
    y.status = SymStatus::y;
    SymPllState assigned = leader_in(1);
    sym.interact(y, assigned);
    EXPECT_EQ(y.status, SymStatus::a);
    EXPECT_FALSE(y.leader);
    EXPECT_TRUE(y.done);  // epoch-1 follower never plays the lottery
    EXPECT_EQ(y.coin, CoinStatus::j);
}

TEST(SymmetricStatus, LateJoinerInLaterEpochGetsItsGroupInitialised) {
    // Completion 2: an unassigned agent can be past epoch 1 when assigned.
    const SymmetricPll sym = make_sym();
    SymPllState y;
    y.status = SymStatus::y;
    y.epoch = 4;
    y.init = 4;
    SymPllState assigned = follower_with(CoinStatus::f0, 4);
    assigned.level_b = 3;
    sym.interact(y, assigned);
    EXPECT_EQ(y.status, SymStatus::a);
    EXPECT_FALSE(y.leader);
    // levelB initialised to 0 at assignment, then the epidemic of the same
    // interaction lifts it to the carried maximum.
    EXPECT_EQ(y.level_b, 3);
}

// --- the coin substrate -----------------------------------------------------------

TEST(SymmetricCoins, SubstrateRules) {
    const SymmetricPll sym = make_sym();
    // J×J → K×K
    SymPllState a = follower_with(CoinStatus::j);
    SymPllState b = follower_with(CoinStatus::j);
    sym.interact(a, b);
    EXPECT_EQ(a.coin, CoinStatus::k);
    EXPECT_EQ(b.coin, CoinStatus::k);
    // K×K → J×J
    sym.interact(a, b);
    EXPECT_EQ(a.coin, CoinStatus::j);
    EXPECT_EQ(b.coin, CoinStatus::j);
    // J×K → F0×F1 (the J-party mints F0)
    SymPllState j = follower_with(CoinStatus::j);
    SymPllState k = follower_with(CoinStatus::k);
    sym.interact(k, j);
    EXPECT_EQ(j.coin, CoinStatus::f0);
    EXPECT_EQ(k.coin, CoinStatus::f1);
}

TEST(SymmetricCoins, MintedCoinsAreStable) {
    const SymmetricPll sym = make_sym();
    SymPllState f0 = follower_with(CoinStatus::f0);
    SymPllState f1 = follower_with(CoinStatus::f1);
    sym.interact(f0, f1);
    EXPECT_EQ(f0.coin, CoinStatus::f0);
    EXPECT_EQ(f1.coin, CoinStatus::f1);
    SymPllState j = follower_with(CoinStatus::j);
    sym.interact(f0, j);
    EXPECT_EQ(f0.coin, CoinStatus::f0);
    EXPECT_EQ(j.coin, CoinStatus::j);
}

TEST(SymmetricCoins, LeadersDoNotDisturbFollowerCoins) {
    const SymmetricPll sym = make_sym();
    SymPllState leader = leader_in(1);
    SymPllState f0 = follower_with(CoinStatus::f0);
    sym.interact(leader, f0);
    EXPECT_EQ(f0.coin, CoinStatus::f0);
}

TEST(SymmetricCoins, F0IsHeadInTheLottery) {
    const SymmetricPll sym = make_sym();
    SymPllState leader = leader_in(1);
    SymPllState f0 = follower_with(CoinStatus::f0);
    sym.interact(leader, f0);
    EXPECT_EQ(leader.level_q, 1);
    EXPECT_FALSE(leader.done);
    // Role does not matter — only the coin does.
    SymPllState leader2 = leader_in(1);
    SymPllState f0b = follower_with(CoinStatus::f0);
    sym.interact(f0b, leader2);
    EXPECT_EQ(leader2.level_q, 1);
}

TEST(SymmetricCoins, F1IsTailInTheLottery) {
    const SymmetricPll sym = make_sym();
    SymPllState leader = leader_in(1);
    SymPllState f1 = follower_with(CoinStatus::f1);
    sym.interact(leader, f1);
    EXPECT_TRUE(leader.done);
    EXPECT_EQ(leader.level_q, 0);
}

TEST(SymmetricCoins, JkFollowersYieldNoObservation) {
    const SymmetricPll sym = make_sym();
    SymPllState leader = leader_in(1);
    SymPllState j = follower_with(CoinStatus::j);
    sym.interact(leader, j);
    EXPECT_EQ(leader.level_q, 0);
    EXPECT_FALSE(leader.done);
}

TEST(SymmetricCoins, TournamentBitsComeFromCoins) {
    const SymmetricPll sym = make_sym();
    SymPllState leader = leader_in(2);
    SymPllState f1 = follower_with(CoinStatus::f1, 2);
    sym.interact(leader, f1);
    EXPECT_EQ(leader.rand, 1);  // F1 appends bit 1
    EXPECT_EQ(leader.index, 1);
    SymPllState f0 = follower_with(CoinStatus::f0, 2);
    sym.interact(leader, f0);
    EXPECT_EQ(leader.rand, 2);  // F0 appends bit 0 ⇒ 0b10
    EXPECT_EQ(leader.index, 2);
}

// --- BackUp and the duel tie-break ---------------------------------------------------

TEST(SymmetricDuel, RefreshesFromCoins) {
    const SymmetricPll sym = make_sym();
    SymPllState leader = leader_in(4);
    SymPllState f1 = follower_with(CoinStatus::f1, 4);
    sym.interact(leader, f1);
    EXPECT_EQ(leader.duel, DuelBit::one);
    SymPllState f0 = follower_with(CoinStatus::f0, 4);
    sym.interact(leader, f0);
    EXPECT_EQ(leader.duel, DuelBit::zero);
}

TEST(SymmetricDuel, OpposingBitsEliminateTheOneSide) {
    const SymmetricPll sym = make_sym();
    SymPllState u = leader_in(4);
    u.duel = DuelBit::zero;
    SymPllState v = leader_in(4);
    v.duel = DuelBit::one;
    sym.interact(u, v);
    EXPECT_TRUE(u.leader);
    EXPECT_FALSE(v.leader);
    EXPECT_EQ(u.duel, DuelBit::none);  // consumed
    EXPECT_EQ(v.coin, CoinStatus::j);  // fresh follower
}

TEST(SymmetricDuel, EqualOrUnsetBitsDoNothing) {
    const SymmetricPll sym = make_sym();
    SymPllState u = leader_in(4);
    u.duel = DuelBit::zero;
    SymPllState v = leader_in(4);
    v.duel = DuelBit::zero;
    sym.interact(u, v);
    EXPECT_TRUE(u.leader);
    EXPECT_TRUE(v.leader);
    SymPllState w = leader_in(4);
    SymPllState z = leader_in(4);
    z.duel = DuelBit::one;
    sym.interact(w, z);
    EXPECT_TRUE(w.leader);
    EXPECT_TRUE(z.leader);
}

TEST(SymmetricBackUp, CoinGatedLevelClimbing) {
    const SymmetricPll sym = make_sym();
    // Leader whose tick raises in this interaction (colour adoption) and
    // whose partner carries F0: climbs one level.
    SymPllState leader = leader_in(4);
    leader.color = 0;
    SymPllState f0 = follower_with(CoinStatus::f0, 4);
    f0.color = 1;
    sym.interact(leader, f0);
    EXPECT_EQ(leader.level_b, 1);
    // Same setup with F1: tick raised, coin observed, but tail ⇒ no climb.
    SymPllState leader2 = leader_in(4);
    leader2.color = 0;
    SymPllState f1 = follower_with(CoinStatus::f1, 4);
    f1.color = 1;
    sym.interact(leader2, f1);
    EXPECT_EQ(leader2.level_b, 0);
}

// --- invariants and integration ---------------------------------------------------------

TEST(SymmetricInvariants, F0AndF1CountsStayEqual) {
    const std::size_t n = 200;
    Engine<SymmetricPll> engine(SymmetricPll::for_population(n), n, 808);
    const auto count_coins = [&] {
        std::int64_t balance = 0;
        for (const SymPllState& s : engine.population().states()) {
            if (s.leader) continue;
            if (s.coin == CoinStatus::f0) ++balance;
            if (s.coin == CoinStatus::f1) --balance;
        }
        return balance;
    };
    for (int burst = 0; burst < 200; ++burst) {
        engine.run_for(500);
        ASSERT_EQ(count_coins(), 0) << "F0/F1 pairing broken after burst " << burst;
        ASSERT_GE(engine.leader_count(), 1U);
    }
}

TEST(SymmetricInvariants, RequiresAtLeastThreeAgents) {
    EXPECT_THROW((void)SymmetricPll::for_population(2), InvalidArgument);
    EXPECT_NO_THROW((void)SymmetricPll::for_population(3));
}

class SymmetricElection : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymmetricElection, ElectsExactlyOneLeader) {
    const std::size_t n = GetParam();
    Engine<SymmetricPll> engine(SymmetricPll::for_population(n), n, 0x515 + n);
    const double lg = std::max(1.0, std::log2(static_cast<double>(n)));
    const auto budget = static_cast<StepCount>(800.0 * static_cast<double>(n) * lg);
    const RunResult result = engine.run_until_one_leader(budget);
    ASSERT_TRUE(result.converged) << "n = " << n;
    EXPECT_EQ(result.leader_count, 1U);
    EXPECT_TRUE(engine.verify_outputs_stable(20 * static_cast<StepCount>(n)));
}

INSTANTIATE_TEST_SUITE_P(PopulationSizes, SymmetricElection,
                         ::testing::Values(3, 4, 5, 8, 16, 33, 64, 128, 256, 1024));

}  // namespace
}  // namespace ppsim
