// Transition-level tests of PLL against hand-computed traces of
// Algorithms 1–5 (Sudo et al., PODC 2019). Each test drives interact() on
// crafted states and checks the exact post-states the pseudocode dictates.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "protocols/pll.hpp"

namespace ppsim {
namespace {

// A small, fixed parameterisation keeps hand computation tractable:
// m = 4 ⇒ lmax = 20, cmax = 164, Φ = ⌈(2/3)·lg 4⌉ = ⌈4/3⌉ = 2.
PllConfig test_config() {
    PllConfig cfg;
    cfg.m = 4;
    return cfg;
}

Pll make_pll() { return Pll(test_config()); }

/// A status-assigned leader candidate fresh out of lines 1–2.
PllState fresh_leader() {
    PllState s;
    s.status = PllStatus::a;
    s.leader = true;
    s.level_q = 0;
    s.done = false;
    return s;
}

/// A status-assigned timer agent fresh out of line 3.
PllState fresh_timer() {
    PllState s;
    s.status = PllStatus::b;
    s.leader = false;
    s.count = 0;
    return s;
}

/// A VA follower (done lottery, not a leader).
PllState va_follower() {
    PllState s;
    s.status = PllStatus::a;
    s.leader = false;
    s.done = true;
    return s;
}

// --- lines 1–6: status assignment ---------------------------------------------

TEST(PllStatusAssignment, FirstMeetingSplitsIntoCandidateAndTimer) {
    const Pll pll = make_pll();
    PllState a0;  // both in the initial state: status X, leader
    PllState a1;
    pll.interact(a0, a1);
    // Line 2: initiator → A, levelQ = 0, done = false, stays a leader.
    // The same interaction then reaches line 35 (the new leader faces the
    // new follower and is the initiator), so its first — guaranteed-head —
    // coin flip already happened: levelQ = 1. Every X×X initiator gets this
    // same +1, so the lottery comparison is unaffected.
    EXPECT_EQ(a0.status, PllStatus::a);
    EXPECT_EQ(a0.level_q, 1);
    EXPECT_FALSE(a0.done);
    EXPECT_TRUE(a0.leader);
    // Line 3: responder → B, follower. Its timer then ticks once in the
    // CountUp of this same interaction (line 24), so count = 1.
    EXPECT_EQ(a1.status, PllStatus::b);
    EXPECT_FALSE(a1.leader);
    EXPECT_EQ(a1.count, 1);
}

TEST(PllStatusAssignment, LatecomerJoinsAsNonPlayingFollower) {
    const Pll pll = make_pll();
    PllState late;  // status X
    PllState assigned = fresh_leader();
    pll.interact(late, assigned);
    // Line 5: A, levelQ = 0, done = true, follower.
    EXPECT_EQ(late.status, PllStatus::a);
    EXPECT_EQ(late.level_q, 0);
    EXPECT_TRUE(late.done);
    EXPECT_FALSE(late.leader);
    // The assigned agent keeps its status.
    EXPECT_EQ(assigned.status, PllStatus::a);
}

TEST(PllStatusAssignment, LatecomerAsResponderAlsoJoins) {
    const Pll pll = make_pll();
    PllState timer = fresh_timer();
    PllState late;  // status X
    pll.interact(timer, late);
    EXPECT_EQ(late.status, PllStatus::a);
    EXPECT_TRUE(late.done);
    EXPECT_FALSE(late.leader);
    EXPECT_EQ(timer.status, PllStatus::b);
}

TEST(PllStatusAssignment, StatusesNeverChangeOnceAssigned) {
    const Pll pll = make_pll();
    PllState a = fresh_leader();
    PllState b = fresh_timer();
    pll.interact(a, b);
    EXPECT_EQ(a.status, PllStatus::a);
    EXPECT_EQ(b.status, PllStatus::b);
    pll.interact(b, a);
    EXPECT_EQ(a.status, PllStatus::a);
    EXPECT_EQ(b.status, PllStatus::b);
}

// --- Algorithm 2: CountUp ---------------------------------------------------------

TEST(PllCountUp, TimerIncrementsEachInteraction) {
    const Pll pll = make_pll();
    PllState timer = fresh_timer();
    PllState follower = va_follower();
    pll.interact(timer, follower);
    EXPECT_EQ(timer.count, 1);
    pll.interact(follower, timer);  // role does not matter for the timer
    EXPECT_EQ(timer.count, 2);
}

TEST(PllCountUp, WrapMintsNewColorAndAdvancesEpoch) {
    const Pll pll = make_pll();
    const unsigned cmax = test_config().cmax();
    PllState timer = fresh_timer();
    timer.count = static_cast<std::uint16_t>(cmax - 1);
    PllState follower = va_follower();
    pll.interact(timer, follower);
    // Lines 24–28: count wraps to 0, colour 0 → 1, tick raised ⇒ epoch 2.
    EXPECT_EQ(timer.count, 0);
    EXPECT_EQ(timer.color, 1);
    EXPECT_EQ(timer.epoch, 2);
    // Line 10: the partner synchronises to the max epoch and, via lines
    // 30–34, adopts the new colour (tick ⇒ epoch advance happened there too).
    EXPECT_EQ(follower.color, 1);
    EXPECT_EQ(follower.epoch, 2);
}

TEST(PllCountUp, NewColorSpreadsByEpidemicAndResetsTimerCount) {
    const Pll pll = make_pll();
    PllState ahead = va_follower();
    ahead.color = 1;
    ahead.epoch = 2;
    ahead.init = 2;
    PllState behind = fresh_timer();
    behind.count = 37;
    pll.interact(behind, ahead);
    // Lines 30–34: behind adopts colour 1, raises tick (⇒ epoch 2) and, as a
    // timer agent, restarts its counter. Note count was incremented to 38
    // by line 24 first, then reset by line 33.
    EXPECT_EQ(behind.color, 1);
    EXPECT_EQ(behind.count, 0);
    EXPECT_EQ(behind.epoch, 2);
}

TEST(PllCountUp, ColorComparisonIsCyclic) {
    const Pll pll = make_pll();
    PllState ahead = va_follower();  // colour 0 is "ahead" of colour 2
    ahead.color = 0;
    PllState behind = va_follower();
    behind.color = 2;
    pll.interact(behind, ahead);
    EXPECT_EQ(behind.color, 0);
}

TEST(PllCountUp, EqualColorsDoNotTick) {
    const Pll pll = make_pll();
    PllState a = va_follower();
    PllState b = va_follower();
    pll.interact(a, b);
    EXPECT_EQ(a.epoch, 1);
    EXPECT_EQ(b.epoch, 1);
    EXPECT_EQ(a.color, 0);
}

TEST(PllCountUp, StaleColorDoesNotPropagateBackwards) {
    const Pll pll = make_pll();
    PllState ahead = va_follower();
    ahead.color = 1;
    PllState stale = va_follower();
    stale.color = 0;
    pll.interact(ahead, stale);
    // Only the stale agent moves; the ahead agent must not regress to 0.
    EXPECT_EQ(ahead.color, 1);
    EXPECT_EQ(stale.color, 1);
}

// --- lines 9–15: epochs and group initialisation -----------------------------------

TEST(PllEpochs, SynchroniseToPairwiseMax) {
    const Pll pll = make_pll();
    PllState lagging = va_follower();  // epoch 1
    PllState ahead = va_follower();
    ahead.epoch = 3;
    ahead.init = 3;
    ahead.done = false;
    ahead.level_q = 0;
    ahead.index = 2;  // Φ = 2: a finished follower in epoch 3
    pll.interact(lagging, ahead);
    EXPECT_EQ(lagging.epoch, 3);
    EXPECT_EQ(ahead.epoch, 3);
}

TEST(PllEpochs, EnteringTournamentInitialisesNonceVariables) {
    const Pll pll = make_pll();
    // A leader in epoch 1 meets an epoch-2 agent: line 10 lifts it to epoch
    // 2 and line 12 gives it (rand, index) = (0, 0) — it still owes Φ flips.
    PllState leader = fresh_leader();
    leader.level_q = 3;
    leader.done = true;
    PllState ahead = va_follower();
    ahead.epoch = 2;
    ahead.init = 2;
    ahead.index = 2;  // finished follower (fidelity note 3: followers start at Φ)
    pll.interact(leader, ahead);
    EXPECT_EQ(leader.epoch, 2);
    EXPECT_EQ(leader.init, 2);
    EXPECT_EQ(leader.rand, 0);
    EXPECT_EQ(leader.index, 1);  // line 12 set 0; then one Tournament flip ran
    EXPECT_EQ(leader.level_q, 0);  // dead V1 fields are canonicalised to zero
}

TEST(PllEpochs, FollowerEntersTournamentWithIndexPhi) {
    const Pll pll = make_pll();
    PllState follower = va_follower();  // epoch 1 follower
    PllState ahead = va_follower();
    ahead.epoch = 2;
    ahead.init = 2;
    ahead.index = 2;
    pll.interact(follower, ahead);
    EXPECT_EQ(follower.epoch, 2);
    // Fidelity note 3: followers join the nonce epidemic immediately.
    EXPECT_EQ(follower.index, test_config().phi());
    EXPECT_EQ(follower.rand, 0);
}

TEST(PllEpochs, EnteringBackUpResetsLevelB) {
    const Pll pll = make_pll();
    PllState leader = fresh_leader();
    leader.epoch = 3;
    leader.init = 3;
    leader.rand = 3;
    leader.index = 2;
    PllState ahead = va_follower();
    ahead.epoch = 4;
    ahead.init = 4;
    ahead.level_b = 0;
    pll.interact(leader, ahead);
    EXPECT_EQ(leader.epoch, 4);
    EXPECT_EQ(leader.init, 4);
    EXPECT_EQ(leader.level_b, 0);
    EXPECT_EQ(leader.rand, 0);  // dead Tournament fields canonicalised
    EXPECT_EQ(leader.index, 0);
}

TEST(PllEpochs, EpochSaturatesAtFour) {
    const Pll pll = make_pll();
    const unsigned cmax = test_config().cmax();
    PllState timer = fresh_timer();
    timer.epoch = 4;
    timer.init = 4;
    timer.count = static_cast<std::uint16_t>(cmax - 1);
    PllState follower = va_follower();
    follower.epoch = 4;
    follower.init = 4;
    pll.interact(timer, follower);
    EXPECT_EQ(timer.epoch, 4);  // line 9 caps at 4
    EXPECT_EQ(timer.color, 1);  // colour still cycles
}

// --- Algorithm 3: QuickElimination ---------------------------------------------------

TEST(PllQuickElimination, HeadIncrementsLevel) {
    const Pll pll = make_pll();
    PllState leader = fresh_leader();
    PllState follower = va_follower();
    pll.interact(leader, follower);  // leader is the initiator ⇒ head
    EXPECT_EQ(leader.level_q, 1);
    EXPECT_FALSE(leader.done);
    EXPECT_TRUE(leader.leader);
}

TEST(PllQuickElimination, TailStopsTheLottery) {
    const Pll pll = make_pll();
    PllState leader = fresh_leader();
    PllState follower = va_follower();
    pll.interact(follower, leader);  // leader is the responder ⇒ tail
    EXPECT_EQ(leader.level_q, 0);
    EXPECT_TRUE(leader.done);
    EXPECT_TRUE(leader.leader);  // stopping does not eliminate
}

TEST(PllQuickElimination, TimerFollowersAlsoServeAsCoins) {
    const Pll pll = make_pll();
    PllState leader = fresh_leader();
    PllState timer = fresh_timer();
    pll.interact(leader, timer);
    EXPECT_EQ(leader.level_q, 1);  // line 35 requires VF, not VA∩VF
}

TEST(PllQuickElimination, DoneLeaderFlipsNoMoreCoins) {
    const Pll pll = make_pll();
    PllState leader = fresh_leader();
    leader.done = true;
    leader.level_q = 2;
    PllState follower = va_follower();
    follower.level_q = 2;
    pll.interact(leader, follower);
    EXPECT_EQ(leader.level_q, 2);
    EXPECT_TRUE(leader.leader);
}

TEST(PllQuickElimination, TwoLeadersDoNotFlip) {
    const Pll pll = make_pll();
    PllState u = fresh_leader();
    PllState v = fresh_leader();
    pll.interact(u, v);
    EXPECT_EQ(u.level_q, 0);
    EXPECT_EQ(v.level_q, 0);
    EXPECT_FALSE(u.done);
    EXPECT_FALSE(v.done);
    EXPECT_TRUE(u.leader);
    EXPECT_TRUE(v.leader);
}

TEST(PllQuickElimination, EpidemicEliminatesLowerFinishedLeader) {
    const Pll pll = make_pll();
    PllState low = fresh_leader();
    low.done = true;
    low.level_q = 3;
    PllState high = va_follower();
    high.level_q = 5;
    pll.interact(low, high);
    // Lines 39–42: the lower finished agent copies the level and drops out.
    EXPECT_FALSE(low.leader);
    EXPECT_EQ(low.level_q, 5);
    EXPECT_EQ(high.level_q, 5);
}

TEST(PllQuickElimination, UnfinishedLeaderIsProtectedFromTheEpidemic) {
    const Pll pll = make_pll();
    PllState playing = fresh_leader();
    playing.level_q = 1;  // still flipping
    PllState high = va_follower();
    high.level_q = 7;
    // Interact with the leader as initiator: line 35 fires first (head),
    // lifting levelQ to 2; line 39 must NOT fire (leader not done).
    pll.interact(playing, high);
    EXPECT_TRUE(playing.leader);
    EXPECT_EQ(playing.level_q, 2);
}

TEST(PllQuickElimination, LevelSaturatesAtLmax) {
    const Pll pll = make_pll();
    const unsigned lmax = test_config().lmax();
    PllState leader = fresh_leader();
    leader.level_q = static_cast<std::uint16_t>(lmax);
    PllState follower = va_follower();
    pll.interact(leader, follower);
    EXPECT_EQ(leader.level_q, lmax);  // min(x+1, lmax), fidelity note 1
}

TEST(PllQuickElimination, MaxLevelLeaderNeverEliminated) {
    const Pll pll = make_pll();
    PllState top = fresh_leader();
    top.done = true;
    top.level_q = 9;
    PllState carrier = va_follower();
    carrier.level_q = 9;
    pll.interact(top, carrier);
    EXPECT_TRUE(top.leader);  // equal levels: line 39 requires strict <
}

// --- Algorithm 4: Tournament -----------------------------------------------------------

PllState tournament_leader(unsigned epoch = 2) {
    PllState s = fresh_leader();
    s.epoch = static_cast<std::uint8_t>(epoch);
    s.init = static_cast<std::uint8_t>(epoch);
    s.done = false;
    s.level_q = 0;
    s.rand = 0;
    s.index = 0;
    return s;
}

PllState tournament_follower(unsigned epoch = 2) {
    PllState s = va_follower();
    s.epoch = static_cast<std::uint8_t>(epoch);
    s.init = static_cast<std::uint8_t>(epoch);
    s.done = false;
    s.level_q = 0;
    s.rand = 0;
    s.index = 2;  // Φ = 2: followers enter finished (fidelity note 3)
    return s;
}

TEST(PllTournament, InitiatorAppendsBitZero) {
    const Pll pll = make_pll();
    PllState leader = tournament_leader();
    leader.rand = 1;  // one bit drawn so far: 1
    leader.index = 1;
    PllState follower = tournament_follower();
    pll.interact(leader, follower);
    // Line 44 with i = 0: rand = 2·1 + 0 = 2; index 1 → 2 = Φ, finished.
    EXPECT_EQ(leader.rand, 2);
    EXPECT_EQ(leader.index, 2);
}

TEST(PllTournament, ResponderAppendsBitOne) {
    const Pll pll = make_pll();
    PllState leader = tournament_leader();
    PllState follower = tournament_follower();
    pll.interact(follower, leader);
    // Line 44 with i = 1: rand = 2·0 + 1 = 1; one flip done.
    EXPECT_EQ(leader.rand, 1);
    EXPECT_EQ(leader.index, 1);
}

TEST(PllTournament, FinishedLeaderDrawsNoMoreBits) {
    const Pll pll = make_pll();
    PllState leader = tournament_leader();
    leader.rand = 3;
    leader.index = 2;  // Φ reached
    PllState follower = tournament_follower();
    follower.rand = 3;
    pll.interact(leader, follower);
    EXPECT_EQ(leader.rand, 3);
    EXPECT_EQ(leader.index, 2);
    EXPECT_TRUE(leader.leader);
}

TEST(PllTournament, EpidemicEliminatesLowerFinishedNonce) {
    const Pll pll = make_pll();
    PllState low = tournament_leader();
    low.rand = 1;
    low.index = 2;
    PllState high = tournament_follower();
    high.rand = 3;
    pll.interact(low, high);
    EXPECT_FALSE(low.leader);
    EXPECT_EQ(low.rand, 3);  // lines 48–49
}

TEST(PllTournament, UnfinishedLeaderIsProtected) {
    const Pll pll = make_pll();
    PllState drawing = tournament_leader();  // no flips yet (index 0)
    PllState high = tournament_follower();
    high.rand = 3;
    pll.interact(drawing, high);
    // The flip happens (bit 0 as initiator) but index is still 1 < Φ, so
    // line 47 cannot touch the leader even against a larger carried nonce.
    EXPECT_TRUE(drawing.leader);
    EXPECT_EQ(drawing.rand, 0);
    EXPECT_EQ(drawing.index, 1);
}

TEST(PllTournament, FinalFlipExposesLeaderToTheEpidemicImmediately) {
    const Pll pll = make_pll();
    PllState drawing = tournament_leader();
    drawing.rand = 1;
    drawing.index = 1;  // one flip owed
    PllState high = tournament_follower();
    high.rand = 3;
    pll.interact(drawing, high);
    // Lines run sequentially: the final flip completes the nonce (2·1+0 = 2,
    // index = Φ), and line 47 of the same interaction compares it against
    // the carried maximum — the leader loses and adopts it.
    EXPECT_FALSE(drawing.leader);
    EXPECT_EQ(drawing.rand, 3);
    EXPECT_EQ(drawing.index, 2);
}

TEST(PllTournament, EqualNoncesBothSurvive) {
    const Pll pll = make_pll();
    PllState u = tournament_leader();
    u.rand = 2;
    u.index = 2;
    PllState v = tournament_leader();
    v.rand = 2;
    v.index = 2;
    pll.interact(u, v);
    EXPECT_TRUE(u.leader);
    EXPECT_TRUE(v.leader);
}

TEST(PllTournament, FollowersRelayTheNonceEpidemic) {
    const Pll pll = make_pll();
    PllState carrier = tournament_follower();
    carrier.rand = 3;
    PllState other = tournament_follower();
    other.rand = 1;
    pll.interact(other, carrier);
    EXPECT_EQ(other.rand, 3);  // follower-to-follower propagation works
    EXPECT_FALSE(other.leader);
}

TEST(PllTournament, RunsInEpochThreeAsWell) {
    const Pll pll = make_pll();
    PllState leader = tournament_leader(3);
    PllState follower = tournament_follower(3);
    pll.interact(leader, follower);
    EXPECT_EQ(leader.index, 1);
}

// --- Algorithm 5: BackUp --------------------------------------------------------------

PllState backup_leader(std::uint16_t level = 0) {
    PllState s = fresh_leader();
    s.epoch = 4;
    s.init = 4;
    s.done = false;
    s.level_b = level;
    return s;
}

PllState backup_follower(std::uint16_t level = 0) {
    PllState s = va_follower();
    s.epoch = 4;
    s.init = 4;
    s.done = false;
    s.level_b = level;
    return s;
}

TEST(PllBackUp, TickedInitiatorLeaderClimbsOneLevel) {
    const Pll pll = make_pll();
    PllState leader = backup_leader();
    leader.color = 0;
    PllState follower = backup_follower();
    follower.color = 1;  // leader adopts colour 1 ⇒ its tick raises
    pll.interact(leader, follower);
    EXPECT_EQ(leader.level_b, 1);  // line 52 (head: leader is the initiator)
}

TEST(PllBackUp, TickedResponderLeaderDoesNotClimb) {
    const Pll pll = make_pll();
    PllState leader = backup_leader();
    leader.color = 0;
    PllState follower = backup_follower();
    follower.color = 1;
    pll.interact(follower, leader);  // leader responds: tail, no climb
    EXPECT_EQ(leader.level_b, 0);
}

TEST(PllBackUp, NoTickNoClimb) {
    const Pll pll = make_pll();
    PllState leader = backup_leader();
    PllState follower = backup_follower();
    pll.interact(leader, follower);
    EXPECT_EQ(leader.level_b, 0);  // line 51 requires the tick flag
}

TEST(PllBackUp, EpidemicEliminatesLowerLeader) {
    const Pll pll = make_pll();
    PllState low = backup_leader(2);
    PllState carrier = backup_follower(5);
    pll.interact(low, carrier);
    EXPECT_FALSE(low.leader);
    EXPECT_EQ(low.level_b, 5);  // lines 54–57
}

TEST(PllBackUp, FollowersRelayLevelB) {
    const Pll pll = make_pll();
    PllState behind = backup_follower(1);
    PllState carrier = backup_follower(4);
    pll.interact(behind, carrier);
    EXPECT_EQ(behind.level_b, 4);
}

TEST(PllBackUp, TimersDoNotJoinLevelEpidemic) {
    const Pll pll = make_pll();
    PllState timer = fresh_timer();
    timer.epoch = 4;
    timer.init = 4;
    PllState carrier = backup_follower(4);
    pll.interact(timer, carrier);
    EXPECT_EQ(timer.level_b, 0);  // line 54 requires both in VA
}

TEST(PllBackUp, EqualLevelLeadersResolveByLine58) {
    const Pll pll = make_pll();
    PllState u = backup_leader(3);
    PllState v = backup_leader(3);
    pll.interact(u, v);
    EXPECT_TRUE(u.leader);    // initiator survives
    EXPECT_FALSE(v.leader);   // line 58: responder drops
}

TEST(PllBackUp, DifferentLevelLeadersResolveByEpidemicNotLine58) {
    const Pll pll = make_pll();
    PllState high = backup_leader(4);
    PllState low = backup_leader(1);
    pll.interact(low, high);  // low is the initiator
    EXPECT_FALSE(low.leader);  // eliminated by lines 54–57, not 58
    EXPECT_TRUE(high.leader);  // the higher responder survives
    EXPECT_EQ(low.level_b, 4);
}

TEST(PllBackUp, LevelBSaturatesAtLmax) {
    const Pll pll = make_pll();
    const auto lmax = static_cast<std::uint16_t>(test_config().lmax());
    PllState leader = backup_leader(lmax);
    leader.color = 0;
    PllState follower = backup_follower();
    follower.level_b = lmax;
    follower.color = 1;
    pll.interact(leader, follower);
    EXPECT_EQ(leader.level_b, lmax);
}

// --- configuration and state accounting ----------------------------------------------

TEST(PllConfig, DerivedParametersMatchThePaper) {
    PllConfig cfg;
    cfg.m = 4;
    EXPECT_EQ(cfg.lmax(), 20U);   // 5m
    EXPECT_EQ(cfg.cmax(), 164U);  // 41m
    EXPECT_EQ(cfg.phi(), 2U);     // ⌈(2/3)·2⌉

    cfg.m = 2;
    EXPECT_EQ(cfg.phi(), 1U);  // ⌈2/3⌉
    cfg.m = 8;
    EXPECT_EQ(cfg.phi(), 2U);  // ⌈2⌉
    cfg.m = 64;
    EXPECT_EQ(cfg.phi(), 4U);  // ⌈4⌉
    cfg.m = 1024;
    EXPECT_EQ(cfg.phi(), 7U);  // ⌈20/3⌉
}

TEST(PllConfig, ForPopulationSatisfiesThePapersRequirement) {
    for (std::size_t n : {2UL, 4UL, 100UL, 1024UL, 1000000UL}) {
        const PllConfig cfg = PllConfig::for_population(n);
        EXPECT_GE(static_cast<double>(cfg.m), std::log2(static_cast<double>(n)));
        EXPECT_NO_THROW(cfg.validate(n));
    }
    PllConfig tiny;
    tiny.m = 3;
    EXPECT_THROW(tiny.validate(1U << 20U), InvalidArgument);
}

TEST(PllStateAccounting, BoundGrowsLinearlyInM) {
    PllConfig small;
    small.m = 8;
    PllConfig large;
    large.m = 16;
    const double ratio = static_cast<double>(Pll(large).state_bound()) /
                         static_cast<double>(Pll(small).state_bound());
    // Dominant groups scale linearly in m (timer, levels); the nonce group
    // adds a sub-linear wobble. The bound must stay well under quadratic.
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 3.0);
}

TEST(PllStateAccounting, StateKeyIsInjectiveOnCraftedStates) {
    const Pll pll = make_pll();
    std::vector<PllState> states;
    states.push_back(PllState{});
    states.push_back(fresh_leader());
    states.push_back(fresh_timer());
    states.push_back(va_follower());
    states.push_back(tournament_leader());
    states.push_back(tournament_follower());
    states.push_back(backup_leader(3));
    states.push_back(backup_follower(3));
    PllState timer2 = fresh_timer();
    timer2.count = 5;
    states.push_back(timer2);
    PllState high = va_follower();
    high.level_q = 7;
    states.push_back(high);

    std::set<std::uint64_t> keys;
    for (const PllState& s : states) keys.insert(pll.state_key(s));
    EXPECT_EQ(keys.size(), states.size());
}

TEST(PllStateAccounting, DeadFieldsDoNotAffectBehaviourRelevantKey) {
    const Pll pll = make_pll();
    // Two timer agents differing only in (dead) levelQ must share a key —
    // the canonical form ignores fields outside the live group.
    PllState t1 = fresh_timer();
    PllState t2 = fresh_timer();
    t2.level_q = 9;  // dead for VB
    EXPECT_EQ(pll.state_key(t1), pll.state_key(t2));
}

}  // namespace
}  // namespace ppsim
