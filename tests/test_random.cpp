// Unit tests for the PRNG suite (src/core/random.hpp): determinism,
// platform-stable bounded sampling, stream splitting and seed derivation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "core/random.hpp"

namespace ppsim {
namespace {

TEST(SplitMix64, IsDeterministicForEqualSeeds) {
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DistinctSeedsDiverge) {
    SplitMix64 a(1);
    SplitMix64 b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
    EXPECT_LE(equal, 1);
}

TEST(Xoshiro256pp, IsDeterministicForEqualSeeds) {
    Xoshiro256pp a(7);
    Xoshiro256pp b(7);
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro256pp, JumpProducesDisjointStreams) {
    Xoshiro256pp base(99);
    Xoshiro256pp jumped = base;
    jumped.jump();
    // The jumped stream must not collide with the base stream over a window
    // far larger than any coincidence would allow.
    std::set<std::uint64_t> base_values;
    for (int i = 0; i < 4096; ++i) base_values.insert(base());
    for (int i = 0; i < 4096; ++i) EXPECT_FALSE(base_values.contains(jumped()));
}

TEST(Xoshiro256pp, SplitStreamsAreDistinctPerIndex) {
    const Xoshiro256pp base(5);
    Xoshiro256pp s0 = base.split(0);
    Xoshiro256pp s1 = base.split(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += s0() == s1() ? 1 : 0;
    EXPECT_LE(equal, 1);
}

TEST(UniformBelow, StaysWithinBound) {
    Xoshiro256pp gen(11);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40U}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(uniform_below(gen, bound), bound);
        }
    }
}

TEST(UniformBelow, BoundOneAlwaysYieldsZero) {
    Xoshiro256pp gen(12);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_below(gen, 1), 0U);
}

TEST(UniformBelow, CoversAllResidues) {
    Xoshiro256pp gen(13);
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 10000; ++i) ++hits[uniform_below(gen, 10)];
    for (int h : hits) EXPECT_GT(h, 0);
    // Loose uniformity: each residue should be within 30% of the mean.
    for (int h : hits) {
        EXPECT_GT(h, 700);
        EXPECT_LT(h, 1300);
    }
}

TEST(UniformBetween, CoversClosedRange) {
    Xoshiro256pp gen(14);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = uniform_between(gen, 5, 8);
        EXPECT_GE(v, 5U);
        EXPECT_LE(v, 8U);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4U);
}

TEST(UniformUnit, StaysInHalfOpenUnitInterval) {
    Xoshiro256pp gen(15);
    for (int i = 0; i < 10000; ++i) {
        const double u = uniform_unit(gen);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(CoinFlip, IsRoughlyFair) {
    Xoshiro256pp gen(16);
    int heads = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i) heads += coin_flip(gen) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.01);
}

TEST(DeriveSeed, IsDeterministicAndSpreads) {
    EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(derive_seed(123, i));
    EXPECT_EQ(seeds.size(), 1000U);  // no collisions across stream indices
    EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(Xoshiro256pp, SatisfiesUniformRandomBitGenerator) {
    static_assert(Xoshiro256pp::min() == 0);
    static_assert(Xoshiro256pp::max() == std::numeric_limits<std::uint64_t>::max());
    Xoshiro256pp gen(1);
    (void)gen();
}

// --- hypergeometric sampler agreement (inversion vs H2PE rejection) ---------

// Exact mean and sd of Hypergeometric(total, successes, draws).
struct HypergeometricMoments {
    double mean;
    double sd;
};

HypergeometricMoments exact_moments(std::uint64_t total, std::uint64_t successes,
                                    std::uint64_t draws) {
    const double N = static_cast<double>(total);
    const double p = static_cast<double>(successes) / N;
    const double k = static_cast<double>(draws);
    return {k * p, std::sqrt(k * p * (1.0 - p) * (N - k) / (N - 1.0))};
}

// Empirical mean/sd of `reps` samples drawn by `sampler`.
template <typename Sampler>
HypergeometricMoments sample_moments(Sampler&& sampler, int reps) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < reps; ++i) {
        const double x = static_cast<double>(sampler());
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / reps;
    return {mean, std::sqrt(std::max(0.0, sum_sq / reps - mean * mean))};
}

TEST(Hypergeometric, RejectionSamplerMatchesExactMoments) {
    // Wide regime: sd ≈ 43, far beyond the inversion threshold, so the
    // public dispatcher takes the H2PE rejection path.
    const std::uint64_t total = 40000;
    const std::uint64_t successes = 20000;
    const std::uint64_t draws = 10000;
    ASSERT_GT(detail::hypergeometric_sd(total, successes, draws), 16.0);

    Rng gen(2024);
    const int reps = 200000;
    const auto empirical = sample_moments(
        [&] { return hypergeometric(gen, total, successes, draws); }, reps);
    const auto exact = exact_moments(total, successes, draws);
    // 5σ tolerance on the mean; 2% on the standard deviation.
    EXPECT_NEAR(empirical.mean, exact.mean, 5.0 * exact.sd / std::sqrt(reps));
    EXPECT_NEAR(empirical.sd, exact.sd, 0.02 * exact.sd);
}

TEST(Hypergeometric, RejectionSamplerMatchesExactPmf) {
    // Bin-by-bin check of the H2PE path against the exact pmf over the
    // mode ± 5 sd region (≥ 99.9999% of the mass).
    const std::uint64_t total = 30000;
    const std::uint64_t successes = 9000;
    const std::uint64_t draws = 4000;
    const auto exact = exact_moments(total, successes, draws);
    ASSERT_GT(exact.sd, 16.0);

    Rng gen(77);
    const int reps = 300000;
    std::map<std::uint64_t, int> freq;
    for (int i = 0; i < reps; ++i) {
        ++freq[detail::hypergeometric_hrua(gen, total, successes, draws)];
    }
    const auto lo = static_cast<std::uint64_t>(exact.mean - 5.0 * exact.sd);
    const auto hi = static_cast<std::uint64_t>(exact.mean + 5.0 * exact.sd);
    double covered = 0.0;
    for (std::uint64_t x = lo; x <= hi; ++x) {
        const double p =
            std::exp(detail::log_choose(successes, x) +
                     detail::log_choose(total - successes, draws - x) -
                     detail::log_choose(total, draws));
        covered += p;
        const double observed = static_cast<double>(freq[x]) / reps;
        const double sigma = std::sqrt(p * (1.0 - p) / reps);
        EXPECT_NEAR(observed, p, 5.0 * sigma + 1e-5) << "x = " << x;
    }
    EXPECT_GT(covered, 0.999);
}

TEST(Hypergeometric, BothPathsAgreeOnTheSameParameters) {
    // Head-to-head on parameters both samplers handle: identical moments
    // within combined standard error (they share no code beyond log_choose).
    const std::uint64_t total = 5000;
    const std::uint64_t successes = 1500;
    const std::uint64_t draws = 800;
    const auto exact = exact_moments(total, successes, draws);

    Rng gen_a(11);
    Rng gen_b(12);
    const int reps = 150000;
    const auto inv = sample_moments(
        [&] { return detail::hypergeometric_inversion(gen_a, total, successes, draws); },
        reps);
    const auto rej = sample_moments(
        [&] { return detail::hypergeometric_hrua(gen_b, total, successes, draws); },
        reps);
    const double se = exact.sd * std::sqrt(2.0 / reps);
    EXPECT_NEAR(inv.mean, rej.mean, 5.0 * se);
    EXPECT_NEAR(inv.sd, rej.sd, 0.03 * exact.sd);
}

TEST(Hypergeometric, RejectionPathRespectsSupport) {
    // Forced minimum successes (draws + successes > total) in a regime wide
    // enough for the rejection path.
    const std::uint64_t total = 50000;
    const std::uint64_t successes = 30000;
    const std::uint64_t draws = 30000;
    const std::uint64_t lo = draws + successes - total;
    Rng gen(5);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t x = hypergeometric(gen, total, successes, draws);
        ASSERT_GE(x, lo);
        ASSERT_LE(x, std::min(draws, successes));
    }
}

TEST(Hypergeometric, IsDeterministicForEqualSeeds) {
    Rng a(99);
    Rng b(99);
    for (int i = 0; i < 2000; ++i) {
        ASSERT_EQ(hypergeometric(a, 100000, 40000, 20000),
                  hypergeometric(b, 100000, 40000, 20000));
    }
}

// --- binomial sampler (inversion vs BTRS transformed rejection) --------------

// Exact pmf of Binomial(trials, num/den) at x.
double binomial_pmf(std::uint64_t trials, double p, std::uint64_t x) {
    return std::exp(detail::log_choose(trials, x) + static_cast<double>(x) * std::log(p) +
                    static_cast<double>(trials - x) * std::log1p(-p));
}

TEST(Binomial, InversionPathMatchesExactPmf) {
    // Narrow regime (mean < 10 after reflection): the dispatcher takes the
    // mode-centred inversion walk.
    Rng gen(321);
    const std::uint64_t trials = 40;
    const std::uint64_t num = 3;
    const std::uint64_t den = 20;
    std::map<std::uint64_t, int> freq;
    const int reps = 400000;
    for (int i = 0; i < reps; ++i) ++freq[binomial(gen, trials, num, den)];
    for (const auto& [value, count] : freq) {
        const double exact = binomial_pmf(trials, 0.15, value);
        const double empirical = static_cast<double>(count) / reps;
        const double sigma = std::sqrt(exact * (1.0 - exact) / reps);
        EXPECT_NEAR(empirical, exact, 5.0 * sigma + 1e-4) << "x = " << value;
    }
}

TEST(Binomial, BtrsPathMatchesExactPmf) {
    // Wide regime: mean ≈ 1850, sd ≈ 34 — the BTRS rejection path. Bin-by-bin
    // check over mode ± 5 sd (≥ 99.9999% of the mass).
    Rng gen(99);
    const std::uint64_t trials = 5000;
    const double p = 0.37;
    const double mean = static_cast<double>(trials) * p;
    const double sd = std::sqrt(mean * (1.0 - p));
    const int reps = 300000;
    std::map<std::uint64_t, int> freq;
    for (int i = 0; i < reps; ++i) ++freq[binomial(gen, trials, 37, 100)];
    const auto lo = static_cast<std::uint64_t>(mean - 5.0 * sd);
    const auto hi = static_cast<std::uint64_t>(mean + 5.0 * sd);
    double covered = 0.0;
    for (std::uint64_t x = lo; x <= hi; ++x) {
        const double exact = binomial_pmf(trials, p, x);
        covered += exact;
        const double observed = static_cast<double>(freq[x]) / reps;
        const double sigma = std::sqrt(exact * (1.0 - exact) / reps);
        EXPECT_NEAR(observed, exact, 5.0 * sigma + 1e-5) << "x = " << x;
    }
    EXPECT_GT(covered, 0.999);
}

TEST(Binomial, ReflectedProbabilityMatchesExactMoments) {
    // p > ½ exercises the reflection; moments must still match.
    Rng gen(7);
    const std::uint64_t trials = 10000;
    const double p = 0.85;
    const double mean = static_cast<double>(trials) * p;
    const double sd = std::sqrt(mean * (1.0 - p));
    const int reps = 100000;
    const auto moments =
        sample_moments([&] { return binomial(gen, trials, 85, 100); }, reps);
    EXPECT_NEAR(moments.mean, mean, 5.0 * sd / std::sqrt(reps));
    EXPECT_NEAR(moments.sd, sd, 0.02 * sd);
}

TEST(Binomial, RespectsSupportAndEdges) {
    Rng gen(55);
    EXPECT_EQ(binomial(gen, 0, 1, 2), 0U);       // no trials
    EXPECT_EQ(binomial(gen, 100, 0, 5), 0U);     // p = 0
    EXPECT_EQ(binomial(gen, 100, 5, 5), 100U);   // p = 1
    EXPECT_THROW((void)binomial(gen, 10, 6, 5), InvalidArgument);
    for (int i = 0; i < 20000; ++i) {
        ASSERT_LE(binomial(gen, 17, 1, 3), 17U);
    }
}

TEST(Binomial, ReflectionIsOverflowSafeForFullWidthRatios) {
    // num > 2^63 used to overflow the `2·num > den` reflection test, routing
    // p > ½ into the BTRS sampler whose constants assume p ≤ ½. Full-width
    // ratio with p = 0.75: the empirical mean must sit at trials·p, not
    // trials·(1−p).
    Rng gen(8);
    const std::uint64_t den = std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t num = den - den / 4;  // p = 0.75, num ≈ 1.5·2^63
    const std::uint64_t trials = 4000;
    const double mean = static_cast<double>(trials) * 0.75;
    const double sd = std::sqrt(mean * 0.25);
    const int reps = 50000;
    const auto moments =
        sample_moments([&] { return binomial(gen, trials, num, den); }, reps);
    EXPECT_NEAR(moments.mean, mean, 5.0 * sd / std::sqrt(reps));
    EXPECT_NEAR(moments.sd, sd, 0.03 * sd);
}

TEST(Binomial, IsDeterministicForEqualSeeds) {
    Rng a(4);
    Rng b(4);
    for (int i = 0; i < 2000; ++i) {
        ASSERT_EQ(binomial(a, 100000, 123, 1000), binomial(b, 100000, 123, 1000));
    }
}

// --- geometric (the SSA null-reaction skip) ----------------------------------

TEST(Geometric, MatchesExactPmf) {
    // P(X = k) = (1−p)^{k−1}·p on support 1, 2, …
    Rng gen(61);
    const double p = 0.2;
    const int reps = 400000;
    std::map<std::uint64_t, int> freq;
    for (int i = 0; i < reps; ++i) ++freq[geometric(gen, p)];
    EXPECT_EQ(freq.count(0), 0U);  // support starts at 1
    for (std::uint64_t k = 1; k <= 40; ++k) {
        const double exact = std::pow(1.0 - p, static_cast<double>(k - 1)) * p;
        const double observed = static_cast<double>(freq[k]) / reps;
        const double sigma = std::sqrt(exact * (1.0 - exact) / reps);
        EXPECT_NEAR(observed, exact, 5.0 * sigma + 1e-4) << "k = " << k;
    }
}

TEST(Geometric, SmallProbabilityMatchesTheMean) {
    // The engine's regime: tiny p, huge expected gaps. E[X] = 1/p.
    Rng gen(62);
    const double p = 1e-6;
    const int reps = 20000;
    double sum = 0.0;
    for (int i = 0; i < reps; ++i) sum += static_cast<double>(geometric(gen, p));
    const double mean = sum / reps;
    // sd of the mean ≈ (1/p)/√reps; allow 5σ.
    EXPECT_NEAR(mean, 1.0 / p, 5.0 / (p * std::sqrt(static_cast<double>(reps))));
}

TEST(Geometric, EdgesAndDeterminism) {
    Rng gen(63);
    EXPECT_EQ(geometric(gen, 1.0), 1U);
    EXPECT_EQ(geometric(gen, 2.0), 1U);
    EXPECT_EQ(geometric(gen, 0.0), std::numeric_limits<std::uint64_t>::max());
    Rng a(9);
    Rng b(9);
    for (int i = 0; i < 2000; ++i) ASSERT_EQ(geometric(a, 0.37), geometric(b, 0.37));
}

// --- multinomial (the τ-leap multiset sampler) -------------------------------

TEST(Multinomial, SumsAreExactAndMarginalsMatchTheScalarBinomial) {
    Rng gen(2025);
    const std::vector<std::uint64_t> counts = {30, 0, 50, 20};
    const std::uint64_t trials = 64;
    const int reps = 200000;
    std::vector<std::map<std::uint64_t, int>> freq(counts.size());
    for (int rep = 0; rep < reps; ++rep) {
        const auto out = multinomial(gen, counts, trials);
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < out.size(); ++i) {
            total += out[i];
            ++freq[i][out[i]];
        }
        ASSERT_EQ(total, trials);  // with replacement, but the sum is exact
    }
    EXPECT_EQ(freq[1].size(), 1U);  // empty colour never drawn
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double p = static_cast<double>(counts[i]) / 100.0;
        if (p == 0.0) continue;
        for (const auto& [value, count] : freq[i]) {
            const double exact = binomial_pmf(trials, p, value);
            const double empirical = static_cast<double>(count) / reps;
            const double sigma = std::sqrt(exact * (1.0 - exact) / reps);
            EXPECT_NEAR(empirical, exact, 5.0 * sigma + 1e-4)
                << "colour " << i << ", x = " << value;
        }
    }
}

TEST(Multinomial, IsDeterministicForEqualSeeds) {
    const std::vector<std::uint64_t> counts = {100, 300, 7, 0, 2000, 55};
    Rng a(17);
    Rng b(17);
    for (int rep = 0; rep < 2000; ++rep) {
        ASSERT_EQ(multinomial(a, counts, 500), multinomial(b, counts, 500));
    }
}

// --- multivariate hypergeometric (the contingency-table row sampler) --------

TEST(MultivariateHypergeometric, RowSumsAreExactAndWithinSupport) {
    Rng gen(31);
    const std::vector<std::uint64_t> counts = {7, 0, 1000, 3, 250, 1, 64};
    std::uint64_t pool = 0;
    for (const std::uint64_t c : counts) pool += c;
    const std::vector<std::uint64_t> draw_sizes = {0, 1, 2, 8, 100, pool - 1, pool};
    for (const std::uint64_t draws : draw_sizes) {
        for (int rep = 0; rep < 500; ++rep) {
            const auto out = multivariate_hypergeometric(gen, counts, draws);
            ASSERT_EQ(out.size(), counts.size());
            std::uint64_t total = 0;
            for (std::size_t i = 0; i < out.size(); ++i) {
                ASSERT_LE(out[i], counts[i]) << "colour " << i;
                total += out[i];
            }
            ASSERT_EQ(total, draws);  // row sums exact, never approximate
        }
    }
    // draws == pool must take everything, deterministically.
    EXPECT_EQ(multivariate_hypergeometric(gen, counts, pool), counts);
    EXPECT_THROW((void)multivariate_hypergeometric(gen, counts, pool + 1),
                 InvalidArgument);
}

TEST(MultivariateHypergeometric, MarginalsMatchTheScalarHypergeometric) {
    // Each colour's marginal is Hypergeometric(total, counts[i], draws):
    // bin-by-bin 5σ agreement with the exact pmf, for every colour — the
    // property that makes the conditional chain an exact sampler.
    Rng gen(2024);
    const std::vector<std::uint64_t> counts = {30, 20, 50, 4};
    const std::uint64_t total = 104;
    const std::uint64_t draws = 40;
    const int reps = 200000;
    std::vector<std::map<std::uint64_t, int>> freq(counts.size());
    for (int rep = 0; rep < reps; ++rep) {
        const auto out = multivariate_hypergeometric(gen, counts, draws);
        for (std::size_t i = 0; i < out.size(); ++i) ++freq[i][out[i]];
    }
    for (std::size_t i = 0; i < counts.size(); ++i) {
        for (const auto& [value, count] : freq[i]) {
            const double exact =
                std::exp(detail::log_choose(counts[i], value) +
                         detail::log_choose(total - counts[i], draws - value) -
                         detail::log_choose(total, draws));
            const double empirical = static_cast<double>(count) / reps;
            const double sigma = std::sqrt(exact * (1.0 - exact) / reps);
            EXPECT_NEAR(empirical, exact, 5.0 * sigma + 1e-4)
                << "colour " << i << ", x = " << value;
        }
    }
}

TEST(MultivariateHypergeometric, SingleDrawIsCategoricallyUniform) {
    // draws == 1 exercises the generator-free categorical fast path: the
    // drawn colour must be distributed proportionally to the counts.
    Rng gen(5);
    const std::vector<std::uint64_t> counts = {10, 0, 40, 50};
    const int reps = 100000;
    std::vector<int> hits(counts.size(), 0);
    for (int rep = 0; rep < reps; ++rep) {
        const auto out = multivariate_hypergeometric(gen, counts, 1);
        for (std::size_t i = 0; i < out.size(); ++i) {
            if (out[i] == 1) ++hits[i];
        }
    }
    EXPECT_EQ(hits[1], 0);  // empty colour never drawn
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double p = static_cast<double>(counts[i]) / 100.0;
        const double sigma = std::sqrt(p * (1.0 - p) / reps);
        EXPECT_NEAR(static_cast<double>(hits[i]) / reps, p, 5.0 * sigma + 1e-4)
            << "colour " << i;
    }
}

TEST(MultivariateHypergeometric, IsDeterministicForEqualSeeds) {
    const std::vector<std::uint64_t> counts = {100, 300, 7, 0, 2000, 55};
    Rng a(77);
    Rng b(77);
    for (int rep = 0; rep < 2000; ++rep) {
        ASSERT_EQ(multivariate_hypergeometric(a, counts, 123),
                  multivariate_hypergeometric(b, counts, 123));
    }
}

TEST(MultivariateHypergeometric, PointerFormSupportsAliasing) {
    // The documented in-place form: counts and out may be the same buffer.
    Rng a(13);
    Rng b(13);
    const std::vector<std::uint64_t> counts = {12, 34, 56, 78};
    const auto expected = multivariate_hypergeometric(a, counts, 60);
    std::vector<std::uint64_t> buffer = counts;
    multivariate_hypergeometric(b, buffer.data(), buffer.size(), 60, buffer.data());
    EXPECT_EQ(buffer, expected);
}

}  // namespace
}  // namespace ppsim
