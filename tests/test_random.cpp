// Unit tests for the PRNG suite (src/core/random.hpp): determinism,
// platform-stable bounded sampling, stream splitting and seed derivation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/random.hpp"

namespace ppsim {
namespace {

TEST(SplitMix64, IsDeterministicForEqualSeeds) {
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DistinctSeedsDiverge) {
    SplitMix64 a(1);
    SplitMix64 b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += a() == b() ? 1 : 0;
    EXPECT_LE(equal, 1);
}

TEST(Xoshiro256pp, IsDeterministicForEqualSeeds) {
    Xoshiro256pp a(7);
    Xoshiro256pp b(7);
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro256pp, JumpProducesDisjointStreams) {
    Xoshiro256pp base(99);
    Xoshiro256pp jumped = base;
    jumped.jump();
    // The jumped stream must not collide with the base stream over a window
    // far larger than any coincidence would allow.
    std::set<std::uint64_t> base_values;
    for (int i = 0; i < 4096; ++i) base_values.insert(base());
    for (int i = 0; i < 4096; ++i) EXPECT_FALSE(base_values.contains(jumped()));
}

TEST(Xoshiro256pp, SplitStreamsAreDistinctPerIndex) {
    const Xoshiro256pp base(5);
    Xoshiro256pp s0 = base.split(0);
    Xoshiro256pp s1 = base.split(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += s0() == s1() ? 1 : 0;
    EXPECT_LE(equal, 1);
}

TEST(UniformBelow, StaysWithinBound) {
    Xoshiro256pp gen(11);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40U}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(uniform_below(gen, bound), bound);
        }
    }
}

TEST(UniformBelow, BoundOneAlwaysYieldsZero) {
    Xoshiro256pp gen(12);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_below(gen, 1), 0U);
}

TEST(UniformBelow, CoversAllResidues) {
    Xoshiro256pp gen(13);
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 10000; ++i) ++hits[uniform_below(gen, 10)];
    for (int h : hits) EXPECT_GT(h, 0);
    // Loose uniformity: each residue should be within 30% of the mean.
    for (int h : hits) {
        EXPECT_GT(h, 700);
        EXPECT_LT(h, 1300);
    }
}

TEST(UniformBetween, CoversClosedRange) {
    Xoshiro256pp gen(14);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = uniform_between(gen, 5, 8);
        EXPECT_GE(v, 5U);
        EXPECT_LE(v, 8U);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4U);
}

TEST(UniformUnit, StaysInHalfOpenUnitInterval) {
    Xoshiro256pp gen(15);
    for (int i = 0; i < 10000; ++i) {
        const double u = uniform_unit(gen);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(CoinFlip, IsRoughlyFair) {
    Xoshiro256pp gen(16);
    int heads = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i) heads += coin_flip(gen) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.01);
}

TEST(DeriveSeed, IsDeterministicAndSpreads) {
    EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(derive_seed(123, i));
    EXPECT_EQ(seeds.size(), 1000U);  // no collisions across stream indices
    EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(Xoshiro256pp, SatisfiesUniformRandomBitGenerator) {
    static_assert(Xoshiro256pp::min() == 0);
    static_assert(Xoshiro256pp::max() == std::numeric_limits<std::uint64_t>::max());
    Xoshiro256pp gen(1);
    (void)gen();
}

}  // namespace
}  // namespace ppsim
